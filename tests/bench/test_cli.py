"""Tests for the two CLIs: repro.bench and repro.compiler."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.compiler.__main__ import load_target, main as compiler_main, render_stats
from repro.compiler.pipeline import protect
from repro.apps.vsftpd import build_vsftpd


class TestBenchCli:
    def test_table5(self, capsys):
        assert bench_main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "nginx" in out

    def test_table6(self, capsys):
        assert bench_main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "17/17 rows match" in out

    def test_adaptive(self, capsys):
        assert bench_main(["adaptive"]) == 0
        out = capsys.readouterr().out
        assert "oracle_forger" in out

    def test_scaled_experiment(self, capsys):
        assert bench_main(["figure3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "CET+CT+CF+AI" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["not_a_table"])


class TestCompilerCli:
    def test_builtin_app_stats(self, capsys):
        assert compiler_main(["vsftpd", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "BASTION compile of vsftpd" in out
        assert "sensitive syscall callsites" in out

    def test_metadata_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "meta.json"
        assert compiler_main(["vsftpd", "--metadata", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["program"] == "vsftpd"
        assert payload["call_types"]

    def test_dump_ir(self, capsys):
        assert compiler_main(["browser", "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "module browser" in out
        assert "@ctx_bind" in out  # instrumentation is visible

    def test_ir_file_target(self, tmp_path):
        from repro.ir.printer import format_module

        path = tmp_path / "prog.ir"
        path.write_text(format_module(build_vsftpd()))
        module = load_target(str(path))
        assert module.name == "vsftpd"

    def test_render_stats(self):
        artifact = protect(build_vsftpd())
        text = render_stats(artifact.metadata)
        assert "total instrumentation sites" in text

    def test_extend_fs_flag(self, capsys):
        assert compiler_main(["vsftpd", "--extend-fs", "--stats"]) == 0
        out = capsys.readouterr().out
        # sendfile becomes a protected syscall under the extension
        assert "sendfile" in out


class TestAnalysisExperiment:
    def test_analysis_text(self, capsys):
        assert bench_main(["analysis"]) == 0
        out = capsys.readouterr().out
        assert "syscall-flow precision" in out

    def test_analysis_json(self, capsys):
        assert bench_main(["analysis", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"nginx", "sqlite", "vsftpd"}
        assert payload["nginx"]["clean"] is True

    def test_json_rejected_for_other_experiments(self):
        with pytest.raises(SystemExit):
            bench_main(["table5", "--json"])


class TestStagesExperiment:
    def test_stages_text(self, capsys):
        assert bench_main(["stages", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "trace_stop (monitor)" in out
        assert "stack unwind" in out

    def test_stages_json_byte_stable(self, capsys):
        assert bench_main(["stages", "--scale", "0.1", "--json"]) == 0
        first = capsys.readouterr().out
        assert bench_main(["stages", "--scale", "0.1", "--json"]) == 0
        assert capsys.readouterr().out == first  # identical bytes, rerun
        payload = json.loads(first)
        bastion = payload["cet_ct_cf_ai"]["stage_cycles"]
        assert bastion["trace_stop"] > payload["vanilla"]["stage_cycles"].get(
            "trace_stop", 0
        )
        assert "verify.arg_integrity" in bastion
