"""Tests for the benchmark harness and experiment generators."""


from repro.bench.harness import (
    CONFIGS,
    DefenseConfig,
    FIGURE3_LADDER,
    build_app,
    run_app,
)
from repro.bench.experiments import table5
from repro.monitor.policy import ContextPolicy


class TestConfigs:
    def test_ladder_configs_exist(self):
        for name in FIGURE3_LADDER:
            assert name in CONFIGS

    def test_table7_configs_exist(self):
        for name in ("fs_hook_only", "fs_fetch_state", "fs_full"):
            assert name in CONFIGS
            assert CONFIGS[name].extend_filesystem

    def test_cpu_options(self):
        assert CONFIGS["cet"].cpu_options().cet
        assert CONFIGS["llvm_cfi"].cpu_options().llvm_cfi
        assert CONFIGS["dfi"].cpu_options().dfi

    def test_modes(self):
        assert CONFIGS["fs_hook_only"].policy.mode == "hook_only"
        assert CONFIGS["fs_fetch_state"].policy.mode == "fetch_state"
        assert CONFIGS["bastion_inkernel"].policy.transport == "inkernel"


class TestRunApp:
    def test_module_cache(self):
        assert build_app("nginx") is build_app("nginx")

    def test_result_fields(self):
        result = run_app("nginx", "vanilla", scale=0.05)
        assert result.ok
        assert result.total_cycles > 0
        assert result.work_units > 0
        assert result.bytes_sent > 0
        assert "accept4" in result.syscall_counts
        assert result.hook_total == 0  # no monitor in vanilla
        assert "returned" in result.summary() or "nginx" in result.summary()

    def test_protected_run_has_monitor_stats(self):
        result = run_app("nginx", "cet_ct_cf_ai", scale=0.05)
        assert result.ok
        assert result.hook_total > 0
        assert result.metadata_stats["sensitive_callsites"] > 0
        assert result.avg_unwind_depth > 1
        assert not result.violations

    def test_overhead_computation(self):
        base = run_app("nginx", "vanilla", scale=0.05)
        protected = run_app("nginx", "cet_ct_cf_ai", scale=0.05)
        assert protected.overhead_pct(base) > 0

    def test_custom_defense_config(self):
        config = DefenseConfig("custom", cet=True, policy=ContextPolicy.ct_only(), instrumented=True)
        result = run_app("vsftpd", config, scale=0.2)
        assert result.ok
        assert result.config == "custom"

    def test_all_apps_protected_clean(self):
        for app in ("nginx", "sqlite", "vsftpd"):
            result = run_app(app, "cet_ct_cf_ai", scale=0.05)
            assert result.ok, (app, result.status)
            assert not result.violations, (app, result.violations[:1])

    def test_fs_extension_clean(self):
        for app in ("nginx", "sqlite", "vsftpd"):
            result = run_app(app, "fs_full", scale=0.05)
            assert result.ok, (app, result.status)
            assert not result.violations, (app, result.violations[:1])


class TestTable5Static:
    def test_zero_indirect_sensitive_everywhere(self):
        """The paper's key Table 5 finding holds for all three apps."""
        stats = table5()
        for app, row in stats.items():
            assert row["sensitive_indirect_syscalls"] == 0, app

    def test_instrumentation_footprint_small(self):
        """Instrumentation sites are a small fraction of the program."""
        stats = table5()
        for app, row in stats.items():
            module = build_app(app)
            assert row["total_instrumentation"] < module.instruction_count() / 4

    def test_sensitive_callsites_much_smaller_than_total(self):
        stats = table5()
        for app, row in stats.items():
            assert row["sensitive_callsites"] < row["total_callsites"] / 2
