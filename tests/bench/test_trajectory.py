"""The persisted perf trajectory: determinism, stickiness, and the gate.

Wall-clock is injectable (``clock`` + ``calibration``) so these tests are
fully deterministic: a fake clock advancing a fixed amount per call makes
``wall_index`` exact, and the sticky/diff/check logic is pure data.
"""

import json

import pytest

from repro.bench import trajectory
from repro.bench.trajectory import (
    DEFAULT_TOLERANCE,
    PR_NUMBER,
    _apply_sticky,
    _cell_key,
    _normalize_key,
    _round_sig,
    check_rows,
    diff_payloads,
    find_snapshots,
    load_previous,
    measure_cells,
    measure_event_cells,
    render_diff,
    serialize,
)

SCALE = 0.05


def _fixed_clock(step=0.015):
    state = [0.0]

    def clock():
        state[0] += step
        return state[0]

    return clock


def _cell(config="vanilla", workers=1, wall=10.0, cycles=100.0, **extra):
    cell = {
        "config": config,
        "workers": workers,
        "status": "exit",
        "work_units": 50,
        "total_cycles": 1000,
        "steady_cycles": 900,
        "cycles_per_request": cycles,
        "p99_latency_cycles": 7,
        "syscalls": 200,
        "wall_index": wall,
    }
    cell.update(extra)
    return cell


def _payload(cells, pr=PR_NUMBER):
    return {"schema": trajectory.SCHEMA, "pr": pr, "cells": cells}


class TestRounding:
    def test_two_significant_digits(self):
        assert _round_sig(71234.5) == 71000.0
        assert _round_sig(14.7) == 15.0
        assert _round_sig(0.0123) == 0.012
        assert _round_sig(0.0) == 0.0


class TestMeasureCells:
    def test_deterministic_fields_and_injectable_wall(self):
        cells = measure_cells(
            workers=(1,),
            configs=("vanilla",),
            scale=SCALE,
            clock=_fixed_clock(),
            calibration=0.05,
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell["config"] == "vanilla"
        assert cell["workers"] == 1
        assert cell["status"] == "returned"
        assert cell["work_units"] > 0
        assert cell["steady_cycles"] > 0
        assert cell["cycles_per_request"] == round(
            cell["steady_cycles"] / cell["work_units"], 1
        )
        # each repeat sees exactly one clock step: wall = 0.015s,
        # calibration injected at 0.05s/spin -> index 0.3
        assert cell["wall_index"] == 0.3

    def test_byte_stable_across_two_runs(self):
        kwargs = dict(
            workers=(1,),
            configs=("vanilla", "temporal"),
            scale=SCALE,
            calibration=0.05,
        )
        one = measure_cells(clock=_fixed_clock(), **kwargs)
        two = measure_cells(clock=_fixed_clock(), **kwargs)
        blob = json.dumps(one, sort_keys=True)
        assert blob == json.dumps(two, sort_keys=True)


class TestEventCells:
    # 20 is not in EVENT_REPEATS, so the cell runs a single repeat — the
    # connection count is otherwise arbitrary for these tests
    SPECS = ((20, "vanilla"),)

    def test_event_cell_shape(self):
        cells = measure_event_cells(
            specs=self.SPECS, clock=_fixed_clock(), calibration=0.05
        )
        assert len(cells) == 1
        cell = cells[0]
        assert cell["mode"] == "event"
        assert cell["connections"] == 20
        assert cell["workers"] == 1
        assert cell["status"] == "returned"
        # the workload churns 25% more connections than the cap, each
        # pipelining EVENT_REQUESTS requests
        assert cell["work_units"] == 25 * trajectory.EVENT_REQUESTS
        assert cell["peak_inflight"] == 20
        assert cell["p50_latency_cycles"] <= cell["p95_latency_cycles"]
        assert cell["p95_latency_cycles"] <= cell["p99_latency_cycles"]
        assert cell["mbps"] > 0
        assert cell["cycles_per_request"] == round(
            cell["steady_cycles"] / cell["work_units"], 1
        )

    def test_byte_stable_across_two_runs(self):
        one = measure_event_cells(
            specs=self.SPECS, clock=_fixed_clock(), calibration=0.05
        )
        two = measure_event_cells(
            specs=self.SPECS, clock=_fixed_clock(), calibration=0.05
        )
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)

    def test_mode_aware_keys(self):
        event = {"mode": "event", "connections": 100, "config": "vanilla"}
        blocking = _cell()
        assert _cell_key(event) == ("event", 100, "vanilla")
        assert _cell_key(blocking) == ("blocking", 1, "vanilla")
        # pre-PR-7 snapshots have no mode field: still blocking
        legacy = {"workers": 4, "config": "temporal"}
        assert _cell_key(legacy) == ("blocking", 4, "temporal")

    def test_legacy_key_normalization(self):
        assert _normalize_key((1, "vanilla")) == ("blocking", 1, "vanilla")
        assert _normalize_key(("event", 100, "x")) == ("event", 100, "x")

    def test_event_and_blocking_cells_never_collide(self):
        # same config, workers=1 on both sides — distinct identities
        event = _cell(mode="event", connections=100)
        rows = diff_payloads(_payload([_cell()]), _payload([_cell(), event]))
        notes = {row["key"]: row["note"] for row in rows}
        assert notes[("blocking", 1, "vanilla")] == ""
        assert notes[("event", 100, "vanilla")] == "new cell"


class TestSticky:
    def test_within_noise_keeps_committed_wall(self):
        fresh = [_cell(wall=11.0)]
        committed = [_cell(wall=10.0)]
        out = _apply_sticky(fresh, committed, sticky_pct=25.0)
        assert out[0]["wall_index"] == 10.0

    def test_beyond_noise_refreshes(self):
        fresh = [_cell(wall=30.0)]
        committed = [_cell(wall=10.0)]
        out = _apply_sticky(fresh, committed, sticky_pct=25.0)
        assert out[0]["wall_index"] == 30.0

    def test_changed_deterministic_fields_refresh(self):
        fresh = [_cell(wall=11.0, steady_cycles=901)]
        committed = [_cell(wall=10.0)]
        out = _apply_sticky(fresh, committed, sticky_pct=25.0)
        assert out[0]["wall_index"] == 11.0

    def test_unknown_cell_passes_through(self):
        fresh = [_cell(config="dfi", wall=11.0)]
        out = _apply_sticky(fresh, [_cell(wall=10.0)], sticky_pct=25.0)
        assert out[0]["wall_index"] == 11.0


class TestDiffAndGate:
    def test_regression_beyond_tolerance_fails(self):
        old = _payload([_cell(wall=770.0)])
        new = _payload([_cell(wall=820.0)])
        rows = diff_payloads(old, new)
        assert rows[0]["wall_pct"] == pytest.approx(6.49, abs=0.01)
        assert check_rows(rows, tolerance=DEFAULT_TOLERANCE) == rows

    def test_one_rounding_step_is_not_a_regression(self):
        # wall_index is stored at two significant digits, so 14 -> 15 is
        # the smallest representable step (+7.1%): quantization, not a
        # regression, and the gate must not fail on it.
        old = _payload([_cell(wall=14.0)])
        new = _payload([_cell(wall=15.0)])
        rows = diff_payloads(old, new)
        assert rows[0]["wall_pct"] > DEFAULT_TOLERANCE
        assert check_rows(rows, tolerance=DEFAULT_TOLERANCE) == []
        # two steps exceed the quantization floor and still fail
        worse = _payload([_cell(wall=16.0)])
        assert check_rows(diff_payloads(old, worse)) != []

    def test_improvement_and_small_noise_pass(self):
        old = _payload([_cell(wall=10.0), _cell(config="dfi", wall=20.0)])
        new = _payload([_cell(wall=10.3), _cell(config="dfi", wall=5.0)])
        rows = diff_payloads(old, new)
        assert check_rows(rows, tolerance=DEFAULT_TOLERANCE) == []

    def test_added_and_removed_cells_are_annotated_not_failed(self):
        old = _payload([_cell(config="gone", wall=9.0)])
        new = _payload([_cell(config="fresh", wall=9.0)])
        rows = diff_payloads(old, new)
        notes = {row["config"]: row["note"] for row in rows}
        assert notes == {"fresh": "new cell", "gone": "cell removed"}
        assert check_rows(rows) == []

    def test_render_diff_mentions_every_cell(self):
        old = _payload([_cell(wall=10.0)])
        new = _payload([_cell(wall=12.0), _cell(config="dfi", wall=3.0)])
        text = render_diff(diff_payloads(old, new), old_pr=5)
        assert "BENCH_5.json" in text
        assert "vanilla" in text and "dfi" in text
        assert "+20.0" in text


class TestCheckRetry:
    """--check re-measures regressed cells; the min estimator means a
    noise spike retracts on retry while a true regression survives."""

    def _patch_fresh(self, monkeypatch, fresh_cell):
        calls = []

        def fake_measure(workers, configs, scale, clock):
            calls.append((workers, configs))
            return [dict(fresh_cell, workers=workers[0], config=configs[0])]

        monkeypatch.setattr(trajectory, "measure_cells", fake_measure)
        return calls

    def test_noise_spike_retracts_to_min(self, monkeypatch):
        cells = [_cell(wall=19.0), _cell(config="dfi", wall=8.0)]
        calls = self._patch_fresh(monkeypatch, _cell(wall=14.0))
        out = trajectory.remeasure_cells(cells, {(1, "vanilla")}, scale=SCALE)
        assert out[0]["wall_index"] == 14.0
        # only the regressed cell is re-measured
        assert calls == [((1,), ("vanilla",))]
        assert out[1]["wall_index"] == 8.0

    def test_true_regression_survives(self, monkeypatch):
        cells = [_cell(wall=19.0)]
        self._patch_fresh(monkeypatch, _cell(wall=21.0))
        out = trajectory.remeasure_cells(cells, {(1, "vanilla")}, scale=SCALE)
        assert out[0]["wall_index"] == 19.0  # min keeps the faster sample

    def test_deterministic_drift_replaces_cell(self, monkeypatch):
        cells = [_cell(wall=19.0)]
        self._patch_fresh(monkeypatch, _cell(wall=14.0, steady_cycles=901))
        out = trajectory.remeasure_cells(cells, {(1, "vanilla")}, scale=SCALE)
        assert out[0]["wall_index"] == 14.0
        assert out[0]["steady_cycles"] == 901


class TestSnapshotFiles:
    def test_find_and_load_previous(self, tmp_path):
        for pr, wall in ((4, 1.0), (6, 2.0)):
            path = tmp_path / ("BENCH_%d.json" % pr)
            path.write_text(serialize(_payload([_cell(wall=wall)], pr=pr)))
        (tmp_path / "BENCH_nope.json").write_text("{}")
        found = find_snapshots(str(tmp_path))
        assert [pr for pr, _path in found] == [4, 6]
        assert load_previous(str(tmp_path))["pr"] == 6
        assert load_previous(str(tmp_path), before=6)["pr"] == 4
        assert load_previous(str(tmp_path), before=4) is None

    def test_serialize_is_canonical(self):
        payload = _payload([_cell()])
        blob = serialize(payload)
        assert blob == json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert blob.endswith("\n")

    def test_committed_snapshot_matches_schema(self):
        """The repo-root BENCH_<pr>.json stays loadable and well-formed."""
        committed = load_previous()
        assert committed is not None, "BENCH_%d.json missing" % PR_NUMBER
        assert committed["schema"] == trajectory.SCHEMA
        assert committed["pr"] == PR_NUMBER
        keys = {_cell_key(c) for c in committed["cells"]}
        expected = {
            ("blocking", w, c)
            for w in trajectory.MATRIX_WORKERS
            for c in trajectory.MATRIX_CONFIGS
        } | {
            ("event", count, c) for count, c in trajectory.EVENT_MATRIX
        } | {("fuzz", trajectory.FUZZ_BUDGET, "fuzz")}
        assert keys == expected
        for cell in committed["cells"]:
            assert cell["wall_index"] > 0
            assert cell["work_units"] > 0
        event_cells = {
            (c["connections"], c["config"]): c
            for c in committed["cells"]
            if c.get("mode") == "event"
        }
        # the C10k acceptance claims, pinned in the committed snapshot:
        # one worker really held 10k connections in flight...
        assert event_cells[(10000, "vanilla")]["peak_inflight"] == 10000
        # ...per-request cost at 10k stays within 2x of the 100-conn cell...
        for config in trajectory.EVENT_CONFIGS:
            small = event_cells[(100, config)]["cycles_per_request"]
            large = event_cells[(10000, config)]["cycles_per_request"]
            assert large <= 2 * small, (config, small, large)
        # ...and the verdict cache pays for itself under pressure
        assert (
            event_cells[(10000, "cache_on")]["steady_cycles"]
            < event_cells[(10000, "cache_off")]["steady_cycles"]
        )


class TestApiBench:
    def test_api_bench_returns_trajectory_records(self):
        from repro.api import ProtectConfig, bench

        cells = bench(
            workers=(1,),
            configs=("vanilla", ProtectConfig(mechanism="temporal")),
            scale=SCALE,
            clock=_fixed_clock(),
            calibration=0.05,
        )
        assert [c["config"] for c in cells] == ["vanilla", "temporal"]
        reference = measure_cells(
            workers=(1,),
            configs=("vanilla", "temporal"),
            scale=SCALE,
            clock=_fixed_clock(),
            calibration=0.05,
        )
        assert cells == reference
