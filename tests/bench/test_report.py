"""Tests for the report renderers (every experiment prints cleanly)."""


from repro.bench.report import (
    render_ablation_cache,
    render_ablation_dfi,
    render_adaptive,
    render_figure3,
    render_security_baselines,
    render_stages,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    RENDERERS,
)

SCALE = 0.1


def test_render_figure3():
    text = render_figure3(SCALE)
    assert "Figure 3" in text
    assert "CET+CT+CF+AI" in text
    assert "LLVM CFI" in text


def test_render_table3():
    text = render_table3(SCALE)
    assert "NGINX (MB/s)" in text
    assert "Unprotected" in text


def test_render_table4():
    text = render_table4(SCALE)
    assert "accept4" in text
    assert "monitor hooks" in text
    assert "Call-depth" in text


def test_render_table5():
    text = render_table5()
    assert "ctx_write_mem()" in text
    assert "# sensitive system calls called indirectly" in text


def test_render_table6():
    text = render_table6()
    assert "17/17 rows match" in text
    assert "control_jujutsu" in text


def test_render_table7():
    text = render_table7(SCALE)
    assert "seccomp hook only" in text
    assert "in-kernel monitor" in text


def test_render_security_baselines():
    text = render_security_baselines()
    assert "BYPASSED" in text
    assert "blocked" in text


def test_render_ablation_cache():
    text = render_ablation_cache(SCALE)
    assert "verdict cache" in text
    assert "cache on" in text
    assert "hit rate" in text


def test_render_ablation_dfi():
    text = render_ablation_dfi(SCALE)
    assert "DFI" in text
    assert "BASTION (full)" in text


def test_render_adaptive():
    text = render_adaptive()
    assert "oracle_forger" in text
    assert "REACHED" in text  # the §11.1 theoretical bypass is visible


def test_render_stages():
    text = render_stages(SCALE)
    assert "trace_stop (monitor)" in text
    assert "arg-integrity" in text  # the verify.* drill-down is visible
    assert "pipeline total" in text
    assert "cet_ct_cf_ai" in text


def test_all_renderers_registered():
    assert set(RENDERERS) == {
        "figure3",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "security_baselines",
        "ablation_cache",
        "ablation_dfi",
        "adaptive",
        "analysis",
        "binary",
        "fuzz",
        "scheduler",
        "stages",
    }


def test_render_scheduler():
    from repro.bench.report import render_scheduler

    text = render_scheduler(0.1)
    assert "multi-worker NGINX" in text
    assert "p99 (ms)" in text
    assert "CET+CT+CF+AI" in text
    assert "full BASTION" in text


def test_render_analysis_columns():
    from repro.bench.report import render_analysis

    text = render_analysis()
    assert "syscall-flow precision" in text
    for column in ("compl", "ctype", "flow", "consis", "chains", "surface"):
        assert column in text
    for app in ("nginx", "sqlite", "vsftpd"):
        assert app in text
    # shipped apps must lint clean in the bench report too
    assert "FAIL" not in text


def test_analysis_json_shape():
    from repro.bench.report import analysis_json

    payload = analysis_json()
    assert set(payload) == {"nginx", "sqlite", "vsftpd"}
    for app, row in payload.items():
        assert row["ok"] is True
        assert set(row["findings_by_pass"]) == {
            "completeness",
            "call-type",
            "flow",
            "consistency",
        }
        assert row["precision"]["sensitive_sites"] > 0
        assert row["precision"]["attack_surface"] >= row["precision"]["chains"]
        assert row["per_syscall_chains"]
