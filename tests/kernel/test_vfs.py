"""Tests for the in-memory filesystem."""

from hypothesis import given, strategies as st

from repro.kernel import errno
from repro.kernel.vfs import FileSystem, O_APPEND, O_CREAT, OpenFile


class TestTree:
    def test_makedirs_and_lookup(self):
        fs = FileSystem()
        fs.makedirs("/a/b/c")
        assert fs.lookup("/a/b/c").kind == "dir"
        assert fs.lookup("/a/b") is not None
        assert fs.lookup("/a/missing") is None

    def test_write_file(self):
        fs = FileSystem()
        fs.makedirs("/etc")
        fs.write_file("/etc/conf", b"hello", mode=0o600)
        node = fs.lookup("/etc/conf")
        assert node.data == b"hello"
        assert node.mode == 0o600
        assert node.size == 5

    def test_path_normalization(self):
        fs = FileSystem()
        fs.makedirs("/a")
        fs.write_file("/a/f", b"x")
        assert fs.lookup("a//f") is not None
        assert fs.lookup("/a/./f") is not None

    def test_mkdir_errors(self):
        fs = FileSystem()
        assert fs.mkdir("/no/parent") == -errno.ENOENT
        fs.makedirs("/d")
        assert fs.mkdir("/d") == -errno.EEXIST

    def test_unlink(self):
        fs = FileSystem()
        fs.makedirs("/d")
        fs.write_file("/d/f", b"x")
        assert fs.unlink("/d/f") == 0
        assert fs.lookup("/d/f") is None
        assert fs.unlink("/d/f") == -errno.ENOENT
        assert fs.unlink("/d") == -errno.EISDIR

    def test_rename(self):
        fs = FileSystem()
        fs.makedirs("/a")
        fs.makedirs("/b")
        fs.write_file("/a/f", b"data")
        assert fs.rename("/a/f", "/b/g") == 0
        assert fs.lookup("/a/f") is None
        assert fs.lookup("/b/g").data == b"data"
        assert fs.rename("/a/nothing", "/b/h") == -errno.ENOENT

    def test_chmod(self):
        fs = FileSystem()
        fs.makedirs("/d")
        fs.write_file("/d/f", b"")
        assert fs.chmod("/d/f", 0o777) == 0
        assert fs.lookup("/d/f").mode & 0o7777 == 0o777
        assert fs.chmod("/nope", 0o777) == -errno.ENOENT

    def test_create_idempotent(self):
        fs = FileSystem()
        fs.makedirs("/d")
        n1 = fs.create("/d/f")
        n1.data = b"keep"
        n2 = fs.create("/d/f")
        assert n2 is n1
        assert n2.data == b"keep"


class TestOpenFile:
    def _file(self, data=b"hello world"):
        fs = FileSystem()
        fs.makedirs("/d")
        node = fs.write_file("/d/f", data)
        return OpenFile(node=node, path="/d/f")

    def test_sequential_reads(self):
        f = self._file()
        assert f.read(5) == b"hello"
        assert f.read(100) == b" world"
        assert f.read(10) == b""

    def test_seek(self):
        f = self._file()
        assert f.seek(6, 0) == 6
        assert f.read(5) == b"world"
        assert f.seek(-5, 2) == 6
        assert f.seek(2, 1) == 8
        assert f.seek(-100, 0) == -errno.EINVAL
        assert f.seek(0, 9) == -errno.EINVAL

    def test_write_overwrites_and_extends(self):
        f = self._file(b"abc")
        f.seek(1, 0)
        assert f.write(b"ZZZZ") == 4
        assert f.node.data == b"aZZZZ"

    def test_write_past_end_pads(self):
        f = self._file(b"ab")
        f.seek(5, 0)
        f.write(b"x")
        assert f.node.data == b"ab\x00\x00\x00x"

    def test_append_mode(self):
        f = self._file(b"log:")
        f.flags = O_CREAT | O_APPEND
        f.seek(0, 0)
        f.write(b"entry")
        assert f.node.data == b"log:entry"

    @given(chunks=st.lists(st.binary(max_size=64), max_size=8))
    def test_write_read_roundtrip(self, chunks):
        f = self._file(b"")
        total = b""
        for chunk in chunks:
            f.write(chunk)
            total += chunk
        f.seek(0, 0)
        assert f.read(len(total) + 1) == total
