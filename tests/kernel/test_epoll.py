"""epoll semantics: level-triggered readiness, EAGAIN, fd lifecycle."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.kernel import errno
from repro.kernel.kernel import F_GETFL, F_SETFL, Kernel
from repro.kernel.net import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EPOLLHUP,
    EPOLLIN,
    Connection,
    Epoll,
    Socket,
)
from repro.kernel.vfs import O_CREAT, O_NONBLOCK
from repro.vm.loader import Image
from repro.vm.memory import WORD

EVBUF = 0x7F30_0000_0000
STR = 0x7F30_0001_0000


@pytest.fixture
def setup():
    kernel = Kernel()
    kernel.vfs.makedirs("/tmp")
    mb = ModuleBuilder("t")
    f = mb.function("main")
    f.ret(0)
    proc = kernel.create_process("t", Image(mb.build()))
    return kernel, proc


def _conn_fd(proc, inbox=b"", closed=False, nonblocking=False):
    """Install a connected socket, as accept4 would."""
    conn = Connection(inbox=inbox, closed=closed)
    sock = Socket(connection=conn, nonblocking=nonblocking)
    return proc.fdtable.install(sock), conn, sock


def _wait(kernel, proc, epfd, maxevents=8):
    """Nonblocking harvest; returns [(events, data)] read back from memory."""
    n = kernel.dispatch(proc, "epoll_wait", [epfd, EVBUF, maxevents, 0])
    assert n >= 0
    return [
        (
            proc.memory.read(EVBUF + 2 * i * WORD),
            proc.memory.read(EVBUF + (2 * i + 1) * WORD),
        )
        for i in range(n)
    ]


class TestEpollCtl:
    def test_create_add_wait_roundtrip(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        assert isinstance(proc.fdtable.get(epfd), Epoll)
        fd, conn, _sock = _conn_fd(proc, inbox=b"GET /")
        # NULL event pointer defaults to (EPOLLIN, data=fd)
        assert kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0]) == 0
        assert _wait(kernel, proc, epfd) == [(EPOLLIN, fd)]

    def test_bad_descriptors(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, _conn, _sock = _conn_fd(proc)
        # missing epfd / target fd
        assert (
            kernel.dispatch(proc, "epoll_ctl", [999, EPOLL_CTL_ADD, fd, 0])
            == -errno.EBADF
        )
        assert (
            kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, 999, 0])
            == -errno.EBADF
        )
        # an epfd that is not an epoll instance
        assert (
            kernel.dispatch(proc, "epoll_ctl", [fd, EPOLL_CTL_ADD, fd, 0])
            == -errno.EINVAL
        )
        # watching a regular file is refused, as on Linux
        proc.memory.write_cstr(STR, "/tmp/f")
        file_fd = kernel.dispatch(proc, "open", [STR, O_CREAT, 0o644])
        assert (
            kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, file_fd, 0])
            == -errno.EPERM
        )

    def test_ctl_on_closed_fd_is_ebadf(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, _conn, _sock = _conn_fd(proc)
        assert kernel.dispatch(proc, "close", [fd]) == 0
        for op in (EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL):
            assert (
                kernel.dispatch(proc, "epoll_ctl", [epfd, op, fd, 0])
                == -errno.EBADF
            )

    def test_add_dup_mod_del(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, _conn, _sock = _conn_fd(proc)
        def ctl(op):
            return kernel.dispatch(proc, "epoll_ctl", [epfd, op, fd, 0])
        assert ctl(EPOLL_CTL_ADD) == 0
        assert ctl(EPOLL_CTL_ADD) == -errno.EEXIST
        assert ctl(EPOLL_CTL_MOD) == 0
        assert ctl(EPOLL_CTL_DEL) == 0
        assert ctl(EPOLL_CTL_DEL) == -errno.ENOENT
        assert ctl(EPOLL_CTL_MOD) == -errno.ENOENT


class TestLevelTriggered:
    def test_partial_read_keeps_fd_ready(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, conn, _sock = _conn_fd(proc, inbox=b"0123456789")
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        assert _wait(kernel, proc, epfd) == [(EPOLLIN, fd)]
        # read only part of the inbox: level-triggered, still ready
        assert kernel.dispatch(proc, "read", [fd, EVBUF + 0x1000, 4]) == 4
        assert _wait(kernel, proc, epfd) == [(EPOLLIN, fd)]
        # drain it: no longer ready
        assert kernel.dispatch(proc, "read", [fd, EVBUF + 0x1000, 6]) == 6
        assert _wait(kernel, proc, epfd) == []

    def test_deliver_wakes_registered_fd(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, conn, _sock = _conn_fd(proc)
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        assert _wait(kernel, proc, epfd) == []
        conn.deliver(b"ping")
        assert _wait(kernel, proc, epfd) == [(EPOLLIN, fd)]

    def test_close_reports_hangup(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, conn, _sock = _conn_fd(proc)
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        conn.closed = True
        # hangup is also readable: read observes EOF without blocking
        assert _wait(kernel, proc, epfd) == [(EPOLLHUP | EPOLLIN, fd)]

    def test_peer_close_with_residual_bytes_stays_readable(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, conn, _sock = _conn_fd(proc, inbox=b"tail")
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        conn.closed = True
        assert _wait(kernel, proc, epfd) == [(EPOLLHUP | EPOLLIN, fd)]
        # read drains the residue, then sees EOF
        assert kernel.dispatch(proc, "read", [fd, EVBUF + 0x1000, 16]) == 4
        assert kernel.dispatch(proc, "read", [fd, EVBUF + 0x1000, 16]) == 0


class TestNonblocking:
    def test_drained_nonblocking_read_is_eagain(self, setup):
        kernel, proc = setup
        fd, conn, _sock = _conn_fd(proc, inbox=b"xy", nonblocking=True)
        assert kernel.dispatch(proc, "read", [fd, EVBUF, 16]) == 2
        assert kernel.dispatch(proc, "read", [fd, EVBUF, 16]) == -errno.EAGAIN
        # a closed drained connection is EOF, not EAGAIN
        conn.closed = True
        assert kernel.dispatch(proc, "read", [fd, EVBUF, 16]) == 0

    def test_fcntl_toggles_nonblocking(self, setup):
        kernel, proc = setup
        fd, _conn, sock = _conn_fd(proc)
        assert kernel.dispatch(proc, "fcntl", [fd, F_GETFL, 0]) == 0
        assert kernel.dispatch(proc, "fcntl", [fd, F_SETFL, O_NONBLOCK]) == 0
        assert sock.nonblocking
        assert kernel.dispatch(proc, "fcntl", [fd, F_GETFL, 0]) == O_NONBLOCK
        assert kernel.dispatch(proc, "fcntl", [fd, F_SETFL, 0]) == 0
        assert not sock.nonblocking
        # non-socket fds keep the historical always-0 fcntl
        assert kernel.dispatch(proc, "fcntl", [999, F_GETFL, 0]) == 0


class TestFdLifecycle:
    def test_fd_closed_without_del_is_auto_removed(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, conn, _sock = _conn_fd(proc)
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        ep = proc.fdtable.get(epfd)
        assert ep.watches(fd)
        kernel.dispatch(proc, "close", [fd])
        # readiness arrives after the close: the stale entry must not fire
        conn.deliver(b"late")
        assert _wait(kernel, proc, epfd) == []
        assert not ep.watches(fd)
        assert ep.stale_drops == 1

    def test_fd_reuse_after_close_does_not_leak_events(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fd, old_conn, _sock = _conn_fd(proc, inbox=b"old")
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        kernel.dispatch(proc, "close", [fd])
        # a NEW socket lands on a fresh fd (the table never reuses numbers
        # within a run), so the old registration can only go stale
        new_fd, new_conn, _sock2 = _conn_fd(proc, inbox=b"new")
        assert new_fd != fd
        kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, new_fd, 0])
        assert _wait(kernel, proc, epfd) == [(EPOLLIN, new_fd)]

    def test_harvest_respects_maxevents(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        fds = []
        for _ in range(5):
            fd, _conn, _sock = _conn_fd(proc, inbox=b"r")
            kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
            fds.append(fd)
        first = _wait(kernel, proc, epfd, maxevents=2)
        assert len(first) == 2
        # the rest are still ready (level-triggered): nothing lost
        rest = _wait(kernel, proc, epfd, maxevents=8)
        assert {data for _ev, data in first + rest} == set(fds)

    def test_epoll_wait_charges_per_event(self, setup):
        kernel, proc = setup
        epfd = kernel.dispatch(proc, "epoll_create1", [0])
        for _ in range(3):
            fd, _conn, _sock = _conn_fd(proc, inbox=b"r")
            kernel.dispatch(proc, "epoll_ctl", [epfd, EPOLL_CTL_ADD, fd, 0])
        before = proc.ledger.by_category.get("kernel", 0)
        assert len(_wait(kernel, proc, epfd)) == 3
        charged = proc.ledger.by_category.get("kernel", 0) - before
        assert charged == 3 * kernel.costs.epoll_per_event

    def test_wait_on_non_epoll_fd(self, setup):
        kernel, proc = setup
        fd, _conn, _sock = _conn_fd(proc)
        assert kernel.dispatch(proc, "epoll_wait", [999, EVBUF, 8, 0]) == -errno.EBADF
        assert kernel.dispatch(proc, "epoll_wait", [fd, EVBUF, 8, 0]) == -errno.EINVAL
