"""Tests for the ptrace transport (and the in-kernel ablation transport)."""

import pytest

from repro.errors import MonitorError
from repro.kernel.kernel import Kernel
from repro.kernel.ptrace import PtraceHandle
from repro.vm.costs import DEFAULT_COSTS


@pytest.fixture
def proc():
    return Kernel().create_process("t")


def test_getregs_returns_copy(proc):
    proc.set_registers("mmap", [1, 2, 3, 4, 5, 6], rip=0x400000, rbp=0x7000, rsp=0x6000)
    pt = PtraceHandle(proc, DEFAULT_COSTS)
    regs = pt.getregs()
    assert regs.rdi == 1 and regs.r9 == 6
    assert regs.rip == 0x400000 and regs.rbp == 0x7000
    assert regs.arg(1) == 1 and regs.arg(6) == 6
    assert regs.syscall_args() == (1, 2, 3, 4, 5, 6)
    regs.rdi = 999
    assert proc.regs.rdi == 1  # copy, not alias


def test_peek_and_readv(proc):
    proc.memory.write_block(0x5000, [10, 20, 30])
    pt = PtraceHandle(proc, DEFAULT_COSTS)
    assert pt.peekdata(0x5000) == 10
    assert pt.readv(0x5000, 3) == [10, 20, 30]
    assert pt.words_read == 4


def test_read_cstr_and_vector(proc):
    proc.memory.write_cstr(0x5000, "/bin/sh")
    pt = PtraceHandle(proc, DEFAULT_COSTS)
    assert pt.read_cstr(0x5000) == "/bin/sh"
    proc.memory.write_block(0x6000, [0x111, 0x222, 0])
    assert pt.read_vector(0x6000) == [0x111, 0x222]


def test_costs_charged_to_tracee_ledger(proc):
    pt = PtraceHandle(proc, DEFAULT_COSTS)
    before = proc.ledger.cycles
    pt.getregs()
    pt.readv(0x5000, 10)
    charged = proc.ledger.cycles - before
    assert charged >= DEFAULT_COSTS.ptrace_getregs + DEFAULT_COSTS.readv_base
    assert proc.ledger.category("ptrace") == charged


def test_inkernel_transport_is_cheaper(proc):
    ptrace = PtraceHandle(proc, DEFAULT_COSTS, transport="ptrace")
    ptrace.readv(0x5000, 8)
    ptrace_cost = proc.ledger.category("ptrace")

    proc2 = Kernel().create_process("t2")
    inkernel = PtraceHandle(proc2, DEFAULT_COSTS, transport="inkernel")
    inkernel.readv(0x5000, 8)
    inkernel_cost = proc2.ledger.category("monitor")
    assert inkernel_cost < ptrace_cost // 5


def test_unknown_transport_rejected(proc):
    with pytest.raises(MonitorError):
        PtraceHandle(proc, DEFAULT_COSTS, transport="telepathy")


def test_kill_tracee(proc):
    pt = PtraceHandle(proc, DEFAULT_COSTS)
    pt.kill_tracee("violation")
    assert not proc.alive
    assert proc.kill_reason == "violation"
