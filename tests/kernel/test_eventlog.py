"""The bounded kernel event ring: capacity, drop accounting, log semantics."""

import warnings

import pytest

from repro.kernel.kernel import Kernel, KernelEvent, KernelEventLog


class TestKernelEventLog:
    def test_caps_and_counts_drops(self):
        log = KernelEventLog(capacity=4)
        for i in range(10):
            log.append(KernelEvent("tick", i))
        assert len(log) == 4
        assert log.dropped == 6
        assert log.total == 10
        # newest events are retained
        assert [event.pid for event in log] == [6, 7, 8, 9]

    def test_indexing_and_slicing(self):
        log = KernelEventLog(capacity=8)
        for i in range(5):
            log.append(KernelEvent("tick", i))
        assert log[0].pid == 0
        assert log[-1].pid == 4
        assert [event.pid for event in log[1:3]] == [1, 2]
        assert bool(log)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            KernelEventLog(0)

    def test_clear_empties_ring_but_keeps_totals(self):
        log = KernelEventLog(capacity=2)
        for i in range(3):
            log.append(KernelEvent("tick", i))
        log.clear()
        assert len(log) == 0
        assert not log
        assert log.total == 3

    def test_events_of_over_retained_window(self):
        """``events_of()`` keeps its semantics over what the ring retains;
        ``dropped`` tells a quiet run from a truncated one, and querying a
        truncated ring needs an explicit opt-in."""

        class _P:
            pid = 1

        kernel = Kernel(events_capacity=2)
        kernel.record("first", _P)
        kernel.record("second", _P)
        kernel.record("third", _P)
        assert kernel.events_of("first", allow_dropped=True) == []
        assert [event.kind for event in kernel.events] == ["second", "third"]
        assert kernel.events.dropped == 1
        assert kernel.events.total == 3

    def test_events_of_warns_once_after_drops(self):
        """Without the opt-in, the first query over a truncated ring warns
        (once); an intact ring never warns."""

        class _P:
            pid = 1

        kernel = Kernel(events_capacity=2)
        kernel.record("first", _P)
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            kernel.events_of("first")
        assert captured == []

        kernel.record("second", _P)
        kernel.record("third", _P)
        with pytest.warns(RuntimeWarning, match="dropped 1 events"):
            kernel.events_of("first")
        # one-time: the second query is silent
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            kernel.events_of("first")
        assert captured == []

    def test_truncation_warning_is_per_ring(self):
        """Each truncated ring gets its own one-time warning.  The naive
        ``warnings.warn`` dedups through the module-global
        ``__warningregistry__`` — identical message + line — which
        silently swallowed the warning for every ring after the first in
        a process; ``warn_explicit`` against a per-instance registry keeps
        the once-only behavior scoped to the ring."""

        class _P:
            pid = 1

        def _truncated_kernel():
            kernel = Kernel(events_capacity=2)
            for kind in ("first", "second", "third"):
                kernel.record(kind, _P)
            return kernel

        with warnings.catch_warnings(record=True) as captured:
            # 'default' is the action that arms registry-based dedup —
            # exactly the regime where the old code lost the 2nd warning
            warnings.simplefilter("default")
            first = _truncated_kernel()
            first.events_of("first")
            second = _truncated_kernel()
            second.events_of("first")
        assert len(captured) == 2
        assert all(
            issubclass(w.category, RuntimeWarning)
            and "dropped 1 events" in str(w.message)
            for w in captured
        )
