"""Tests for virtual memory regions (mmap/mprotect/munmap/brk)."""

from hypothesis import given, strategies as st

from repro.kernel import errno
from repro.kernel.mm import (
    AddressSpace,
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_PRIVATE,
    PAGE,
    PROT_EXEC,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
)


class TestMmap:
    def test_mmap_allocates_distinct_regions(self):
        mm = AddressSpace()
        a = mm.do_mmap(0, 4096, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS)
        b = mm.do_mmap(0, 4096, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS)
        assert a > 0 and b > 0
        assert b >= a + 4096

    def test_mmap_fixed(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0x10000000, 4096, PROT_READ, MAP_FIXED)
        assert addr == 0x10000000

    def test_mmap_bad_length(self):
        assert AddressSpace().do_mmap(0, 0, PROT_READ, 0) == -errno.EINVAL

    def test_length_page_aligned(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, 100, PROT_READ, 0)
        region = mm.region_at(addr)
        assert region.end - region.start == PAGE


class TestMprotect:
    def test_whole_region(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, 8192, PROT_READ | PROT_WRITE, 0)
        assert mm.do_mprotect(addr, 8192, PROT_READ) == 0
        assert mm.prot_at(addr) == PROT_READ

    def test_split_middle(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, 3 * PAGE, PROT_READ | PROT_WRITE, 0)
        assert mm.do_mprotect(addr + PAGE, PAGE, PROT_NONE) == 0
        assert mm.prot_at(addr) == PROT_READ | PROT_WRITE
        assert mm.prot_at(addr + PAGE) == PROT_NONE
        assert mm.prot_at(addr + 2 * PAGE) == PROT_READ | PROT_WRITE

    def test_unmapped_fails(self):
        assert AddressSpace().do_mprotect(0x5000, PAGE, PROT_READ) == -errno.ENOMEM

    def test_unaligned_fails(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, PAGE, PROT_READ, 0)
        assert mm.do_mprotect(addr + 8, PAGE, PROT_READ) == -errno.EINVAL

    def test_wx_detection(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, PAGE, PROT_READ | PROT_WRITE, 0)
        assert not mm.has_wx_region()
        mm.do_mprotect(addr, PAGE, PROT_READ | PROT_WRITE | PROT_EXEC)
        assert mm.has_wx_region()
        assert mm.is_executable(addr)


class TestMunmapBrk:
    def test_munmap_removes(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, PAGE, PROT_READ, 0)
        assert mm.do_munmap(addr, PAGE) == 0
        assert mm.region_at(addr) is None

    def test_munmap_splits(self):
        mm = AddressSpace()
        addr = mm.do_mmap(0, 3 * PAGE, PROT_READ, 0)
        assert mm.do_munmap(addr + PAGE, PAGE) == 0
        assert mm.region_at(addr) is not None
        assert mm.region_at(addr + PAGE) is None
        assert mm.region_at(addr + 2 * PAGE) is not None

    def test_munmap_nothing(self):
        assert AddressSpace().do_munmap(0x7000, PAGE) == -errno.EINVAL

    def test_brk_grows_only(self):
        mm = AddressSpace()
        start = mm.brk
        assert mm.do_brk(start + 4096) == start + 4096
        assert mm.do_brk(start) == start + 4096  # shrink ignored


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=6),
        prots=st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=6
        ),
    )
    def test_mprotect_pages_independent(self, n, prots):
        """Protecting individual pages never leaks onto neighbours."""
        mm = AddressSpace()
        addr = mm.do_mmap(0, (len(prots) + 1) * PAGE, PROT_READ, 0)
        for i, prot in enumerate(prots):
            mm.do_mprotect(addr + i * PAGE, PAGE, prot)
        for i, prot in enumerate(prots):
            assert mm.prot_at(addr + i * PAGE) == prot
        assert mm.prot_at(addr + len(prots) * PAGE) == PROT_READ
