"""Tests for the kernel's syscall dispatcher and handlers."""

import pytest

from repro.errors import ProcessKilled
from repro.ir.builder import ModuleBuilder
from repro.kernel import errno
from repro.kernel.kernel import ELIDE_BYTES, Kernel
from repro.kernel.net import Connection
from repro.kernel.seccomp import (
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRACE,
    build_action_filter,
)
from repro.kernel.vfs import O_CREAT
from repro.syscalls.table import nr_of
from repro.vm.loader import Image
from repro.vm.memory import WORD


@pytest.fixture
def setup():
    """A kernel + process with a mapped image and some files."""
    kernel = Kernel()
    kernel.vfs.makedirs("/tmp")
    kernel.vfs.write_file("/tmp/data", b"0123456789" * 100)
    mb = ModuleBuilder("t")
    f = mb.function("main")
    f.ret(0)
    image = Image(mb.build())
    proc = kernel.create_process("t", image)
    return kernel, proc


def _cstr(proc, addr, text):
    proc.memory.write_cstr(addr, text)
    return addr


BUF = 0x7F20_0000_0000
STR = 0x7F20_0001_0000


class TestFileIO:
    def test_open_read_close(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        fd = kernel.dispatch(proc, "open", [path, 0, 0])
        assert fd >= 3
        n = kernel.dispatch(proc, "read", [fd, BUF, 10])
        assert n == 10
        assert proc.memory.read(BUF) == ord("0")
        assert proc.memory.read(BUF + 9 * WORD) == ord("9")
        assert kernel.dispatch(proc, "close", [fd]) == 0
        assert kernel.dispatch(proc, "close", [fd]) == -errno.EBADF

    def test_open_missing(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/none")
        assert kernel.dispatch(proc, "open", [path, 0, 0]) == -errno.ENOENT

    def test_open_creat_write(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/new")
        fd = kernel.dispatch(proc, "open", [path, O_CREAT, 0o644])
        proc.memory.write(BUF, ord("A"))
        assert kernel.dispatch(proc, "write", [fd, BUF, 1]) == 1
        assert kernel.vfs.lookup("/tmp/new").data == b"A"

    def test_data_plane_elision(self, setup):
        """Large reads charge for the full size but materialize a prefix."""
        kernel, proc = setup
        kernel.vfs.write_file("/tmp/big", b"z" * 10000)
        path = _cstr(proc, STR, "/tmp/big")
        fd = kernel.dispatch(proc, "open", [path, 0, 0])
        before = proc.ledger.cycles
        n = kernel.dispatch(proc, "read", [fd, BUF, 10000])
        assert n == 10000
        assert proc.memory.read(BUF + (ELIDE_BYTES - 1) * WORD) == ord("z")
        assert proc.memory.read(BUF + ELIDE_BYTES * WORD) == 0
        assert proc.ledger.cycles - before >= 10000 * 0.3

    def test_stat_fstat(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        assert kernel.dispatch(proc, "stat", [path, BUF]) == 0
        assert proc.memory.read(BUF + WORD) == 1000  # st_size
        fd = kernel.dispatch(proc, "open", [path, 0, 0])
        assert kernel.dispatch(proc, "fstat", [fd, BUF]) == 0
        assert proc.memory.read(BUF + WORD) == 1000

    def test_lseek_pread_pwrite(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        fd = kernel.dispatch(proc, "open", [path, 0, 0])
        assert kernel.dispatch(proc, "lseek", [fd, 5, 0]) == 5
        n = kernel.dispatch(proc, "pread64", [fd, BUF, 3, 0])
        assert n == 3
        assert kernel.dispatch(proc, "lseek", [fd, 0, 1]) == 5  # pos unchanged
        proc.memory.write(BUF, ord("X"))
        assert kernel.dispatch(proc, "pwrite64", [fd, BUF, 1, 0]) == 1
        assert kernel.vfs.lookup("/tmp/data").data[:1] == b"X"

    def test_write_to_stdout_succeeds(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "write", [1, BUF, 5]) == 5
        assert kernel.dispatch(proc, "write", [7, BUF, 5]) == -errno.EBADF

    def test_unlink_rename_mkdir_access(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        assert kernel.dispatch(proc, "access", [path, 0]) == 0
        new_dir = _cstr(proc, STR + 0x100 * WORD, "/tmp/sub")
        assert kernel.dispatch(proc, "mkdir", [new_dir, 0o755]) == 0
        new_path = _cstr(proc, STR + 0x200 * WORD, "/tmp/sub/moved")
        assert kernel.dispatch(proc, "rename", [path, new_path]) == 0
        assert kernel.dispatch(proc, "unlink", [new_path]) == 0

    def test_open_log_records(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        kernel.dispatch(proc, "open", [path, 0, 0])
        assert (proc.pid, "/tmp/data") in kernel.open_log


class TestMemorySyscalls:
    def test_mmap_mprotect_events(self, setup):
        kernel, proc = setup
        addr = kernel.dispatch(proc, "mmap", [0, 8192, 3, 0x22, -1, 0])
        assert addr > 0
        assert kernel.dispatch(proc, "mprotect", [addr, 4096, 7]) == 0
        events = kernel.events_of("mprotect_exec")
        assert events and events[0].details["writable"]
        assert kernel.mm_is_executable(proc, addr)

    def test_munmap_brk(self, setup):
        kernel, proc = setup
        addr = kernel.dispatch(proc, "mmap", [0, 4096, 3, 0x22, -1, 0])
        assert kernel.dispatch(proc, "munmap", [addr, 4096]) == 0
        brk = kernel.dispatch(proc, "brk", [0])
        assert kernel.dispatch(proc, "brk", [brk + 4096]) == brk + 4096

    def test_mremap_records_event(self, setup):
        kernel, proc = setup
        addr = kernel.dispatch(proc, "mmap", [0, 4096, 3, 0x22, -1, 0])
        new = kernel.dispatch(proc, "mremap", [addr, 4096, 8192, 0, 0])
        assert new > 0
        assert kernel.events_of("mremap")


class TestSockets:
    def _listening(self, kernel, proc, port=80):
        fd = kernel.dispatch(proc, "socket", [2, 1, 0])
        proc.memory.write_block(BUF, [2, port, 0])
        assert kernel.dispatch(proc, "bind", [fd, BUF, 16]) == 0
        assert kernel.dispatch(proc, "listen", [fd, 16]) == 0
        return fd

    def test_accept_flow(self, setup):
        kernel, proc = setup
        fd = self._listening(kernel, proc)
        conn = Connection(peer_port=5555)
        conn.deliver(b"GET /")
        kernel.net.backlog_provider = lambda sock: conn if sock.bound_port == 80 else None
        sa = BUF + 0x100 * WORD
        cfd = kernel.dispatch(proc, "accept4", [fd, sa, 0, 0])
        assert cfd >= 3
        assert proc.memory.read(sa + WORD) == 5555  # kernel-written sockaddr
        n = kernel.dispatch(proc, "read", [cfd, BUF, 100])
        assert n == 5
        assert kernel.dispatch(proc, "write", [cfd, BUF, 64]) == 64
        assert conn.bytes_out == 64
        assert kernel.net.bytes_sent == 64

    def test_accept_empty_backlog(self, setup):
        kernel, proc = setup
        fd = self._listening(kernel, proc)
        assert kernel.dispatch(proc, "accept", [fd, 0, 0]) == -errno.EAGAIN

    def test_accept_requires_listening(self, setup):
        kernel, proc = setup
        fd = kernel.dispatch(proc, "socket", [2, 1, 0])
        assert kernel.dispatch(proc, "accept", [fd, 0, 0]) == -errno.EINVAL

    def test_bind_conflict(self, setup):
        kernel, proc = setup
        self._listening(kernel, proc, 99)
        fd2 = kernel.dispatch(proc, "socket", [2, 1, 0])
        proc.memory.write_block(BUF, [2, 99, 0])
        assert kernel.dispatch(proc, "bind", [fd2, BUF, 16]) == -errno.EADDRINUSE

    def test_connect_records(self, setup):
        kernel, proc = setup
        fd = kernel.dispatch(proc, "socket", [2, 1, 0])
        proc.memory.write_block(BUF, [2, 4444, 0])
        assert kernel.dispatch(proc, "connect", [fd, BUF, 16]) == 0
        assert kernel.events_of("connect")[0].details["port"] == 4444

    def test_sendfile_to_socket(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        file_fd = kernel.dispatch(proc, "open", [path, 0, 0])
        lfd = self._listening(kernel, proc)
        conn = Connection()
        kernel.net.backlog_provider = lambda sock: conn
        cfd = kernel.dispatch(proc, "accept", [lfd, 0, 0])
        sent = kernel.dispatch(proc, "sendfile", [cfd, file_fd, 0, 400])
        assert sent == 400
        assert conn.bytes_out == 400
        # second call continues from the file offset
        assert kernel.dispatch(proc, "sendfile", [cfd, file_fd, 0, 10000]) == 600
        assert kernel.dispatch(proc, "sendfile", [cfd, file_fd, 0, 10]) == 0

    def test_not_a_socket(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        fd = kernel.dispatch(proc, "open", [path, 0, 0])
        assert kernel.dispatch(proc, "bind", [fd, BUF, 16]) == -errno.ENOTSOCK


class TestProcessSyscalls:
    def test_clone_creates_child(self, setup):
        kernel, proc = setup
        child_pid = kernel.dispatch(proc, "clone", [0, 0, 0, 0, 0])
        assert child_pid in kernel.processes
        child = kernel.processes[child_pid]
        assert child.parent is proc
        assert child.tracer is proc.tracer
        assert kernel.events_of("clone")

    def test_child_inherits_seccomp(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("execve"): SECCOMP_RET_KILL_PROCESS})
        kernel.install_seccomp(proc, filt)
        child_pid = kernel.dispatch(proc, "fork", [])
        child = kernel.processes[child_pid]
        assert len(child.seccomp_filters) == 1

    def test_execve_records_event(self, setup):
        kernel, proc = setup
        kernel.vfs.makedirs("/bin")
        kernel.vfs.write_file("/bin/sh", b"elf")
        path = _cstr(proc, STR, "/bin/sh")
        argv = STR + 0x500 * WORD
        arg0 = _cstr(proc, STR + 0x600 * WORD, "sh")
        proc.memory.write_block(argv, [arg0, 0])
        assert kernel.dispatch(proc, "execve", [path, argv, 0]) == 0
        event = kernel.events_of("execve")[0]
        assert event.details["path"] == "/bin/sh"
        assert event.details["argv"] == ["sh"]

    def test_execve_missing_binary(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/no/such")
        assert kernel.dispatch(proc, "execve", [path, 0, 0]) == -errno.ENOENT

    def test_exit(self, setup):
        kernel, proc = setup
        kernel.dispatch(proc, "exit", [3])
        assert not proc.alive
        assert proc.exited and proc.exit_code == 3

    def test_creds_syscalls(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "getuid", []) == 0
        assert kernel.dispatch(proc, "setuid", [42]) == 0
        assert kernel.dispatch(proc, "getuid", []) == 42
        assert kernel.dispatch(proc, "setuid", [0]) == -errno.EPERM
        assert kernel.events_of("setuid")

    def test_chmod_records(self, setup):
        kernel, proc = setup
        path = _cstr(proc, STR, "/tmp/data")
        assert kernel.dispatch(proc, "chmod", [path, 0o777]) == 0
        assert kernel.events_of("chmod")[0].details["mode"] == 0o777

    def test_getpid(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "getpid", []) == proc.pid

    def test_unknown_syscall_enosys(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "eventfd2", [0, 0]) == -errno.ENOSYS


class TestSeccompIntegration:
    def test_kill_action_raises(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("execve"): SECCOMP_RET_KILL_PROCESS})
        kernel.install_seccomp(proc, filt)
        with pytest.raises(ProcessKilled):
            kernel.dispatch(proc, "execve", [STR, 0, 0])
        assert not proc.alive
        assert kernel.events_of("seccomp_kill")

    def test_errno_action_short_circuits(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("getpid"): SECCOMP_RET_ERRNO | errno.EPERM})
        kernel.install_seccomp(proc, filt)
        assert kernel.dispatch(proc, "getpid", []) == -errno.EPERM

    def test_trace_action_stops_into_tracer(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("mprotect"): SECCOMP_RET_TRACE})
        kernel.install_seccomp(proc, filt)
        stops = []

        class Tracer:
            stops_at_trace = True

            def on_syscall_stop(self, p, name):
                stops.append(name)

        proc.tracer = Tracer()
        addr = kernel.dispatch(proc, "mmap", [0, 4096, 3, 0x22, -1, 0])
        kernel.dispatch(proc, "mprotect", [addr, 4096, 1])
        assert stops == ["mprotect"]
        assert proc.ledger.category("trap") > 0

    def test_tracer_kill_propagates(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("mprotect"): SECCOMP_RET_TRACE})
        kernel.install_seccomp(proc, filt)

        class KillingTracer:
            stops_at_trace = True

            def on_syscall_stop(self, p, name):
                p.kill("tracer verdict")

        proc.tracer = KillingTracer()
        with pytest.raises(ProcessKilled):
            kernel.dispatch(proc, "mprotect", [0, 4096, 7])

    def test_hook_only_tracer_skips_trap_cost(self, setup):
        kernel, proc = setup
        filt = build_action_filter({nr_of("getpid"): SECCOMP_RET_TRACE})
        kernel.install_seccomp(proc, filt)

        class CountingTracer:
            stops_at_trace = False

            def on_syscall_stop(self, p, name):
                pass

        proc.tracer = CountingTracer()
        kernel.dispatch(proc, "getpid", [])
        assert proc.ledger.category("trap") == 0

    def test_syscall_counts_tracked(self, setup):
        kernel, proc = setup
        kernel.dispatch(proc, "getpid", [])
        kernel.dispatch(proc, "getpid", [])
        assert proc.syscall_counts["getpid"] == 2
