"""The fused block→count→seccomp fast path (wall-clock-only by contract).

The pipeline may collapse its canonical head into one call exactly when no
mechanism hook sits between the three stages and the non-final handlers
are marked ``cycle_free``.  These tests pin the contract: fusion state
tracks hook placement, ``StageOrderError`` semantics survive, and — the
load-bearing part — per-stage cycle attribution, verdicts, and counters
are identical to the unfused reference walk.
"""

import pytest

from repro.errors import ProcessKilled
from repro.kernel.dispatch import (
    STAGE_ORDER,
    DispatchPipeline,
    StageOrderError,
    SyscallContext,
    cycle_free,
)
from repro.kernel.kernel import Kernel
from repro.telemetry.bus import TelemetryBus


class TestFusionState:
    def test_fresh_kernel_pipeline_is_fused(self):
        kernel = Kernel()
        assert kernel.pipeline.fused

    def test_hook_between_fused_stages_defuses(self):
        """A hook at block or count lands inside the would-be-fused head,
        so the pipeline must fall back to the reference walk."""
        for stage in ("block", "count"):
            kernel = Kernel()
            hook = lambda ctx: None  # noqa: E731 - identity matters below
            kernel.pipeline.insert(stage, hook)
            assert not kernel.pipeline.fused
            kernel.pipeline.remove(hook)
            assert kernel.pipeline.fused

    def test_hook_after_fused_region_keeps_fusion(self):
        """A seccomp hook runs *after* the canonical seccomp handler, i.e.
        after the fused region — it gets its own plan entry and its own
        cycle attribution, so fusion survives."""
        kernel = Kernel()
        kernel.pipeline.insert("seccomp", lambda ctx: None)
        assert kernel.pipeline.fused

    def test_set_fusion_false_forces_reference_walk(self):
        kernel = Kernel()
        kernel.pipeline.set_fusion(False)
        assert not kernel.pipeline.fused
        kernel.pipeline.set_fusion(True)
        assert kernel.pipeline.fused

    def test_stage_names_report_canonical_order_while_fused(self):
        kernel = Kernel()
        assert kernel.pipeline.fused
        assert tuple(kernel.pipeline.stage_names()) == STAGE_ORDER

    def test_stage_order_error_still_raised_while_fused(self):
        """Fusion is a run-plan detail; the strict install builder keeps
        rejecting out-of-order stages."""
        pipeline = DispatchPipeline(TelemetryBus())
        pipeline.install("block", cycle_free(lambda ctx: None))
        pipeline.install("count", cycle_free(lambda ctx: None))
        pipeline.install("seccomp", lambda ctx: None)
        pipeline.install("verify", lambda ctx: None)
        with pytest.raises(StageOrderError):
            pipeline.install("seccomp", lambda ctx: None)

    def test_unmarked_head_handlers_do_not_fuse(self):
        """Fusing is only sound when block/count provably charge nothing;
        handlers without the cycle_free mark must not fuse."""
        pipeline = DispatchPipeline(TelemetryBus())
        pipeline.install("block", lambda ctx: None)
        pipeline.install("count", lambda ctx: None)
        pipeline.install("seccomp", lambda ctx: None)
        assert not pipeline.fused


def _run_syscalls(kernel):
    """Dispatch a fixed syscall mix through a kernel; returns its proc."""
    proc = kernel.create_process("app", image=None)
    kernel.syscall(proc, "getpid", ())
    fd = kernel.syscall(proc, "socket", (2, 1, 0))
    kernel.syscall(proc, "close", (fd,))
    for _ in range(3):
        kernel.syscall(proc, "getpid", ())
    return proc


class TestFusedAttributionParity:
    def test_stage_cycles_identical_to_unfused_walk(self):
        fused_kernel = Kernel()
        assert fused_kernel.pipeline.fused
        fused_proc = _run_syscalls(fused_kernel)

        ref_kernel = Kernel()
        ref_kernel.pipeline.set_fusion(False)
        ref_proc = _run_syscalls(ref_kernel)

        assert (
            fused_kernel.telemetry.stage_cycles()
            == ref_kernel.telemetry.stage_cycles()
        )
        assert fused_proc.ledger.cycles == ref_proc.ledger.cycles
        assert fused_proc.ledger.by_category == ref_proc.ledger.by_category
        assert dict(fused_proc.syscall_counts) == dict(ref_proc.syscall_counts)

    def test_verdict_counters_identical_to_unfused_walk(self):
        fused_kernel = Kernel()
        _run_syscalls(fused_kernel)
        ref_kernel = Kernel()
        ref_kernel.pipeline.set_fusion(False)
        _run_syscalls(ref_kernel)
        fused = {
            k: v
            for k, v in fused_kernel.telemetry.counters.items()
            if k.startswith("dispatch.verdict.") or k.startswith("syscall.")
        }
        ref = {
            k: v
            for k, v in ref_kernel.telemetry.counters.items()
            if k.startswith("dispatch.verdict.") or k.startswith("syscall.")
        }
        assert fused == ref

    def _kill_filter(self):
        from repro.kernel.seccomp import (
            SECCOMP_RET_KILL_PROCESS,
            build_action_filter,
        )
        from repro.syscalls.table import nr_of

        return build_action_filter({nr_of("socket"): SECCOMP_RET_KILL_PROCESS})

    def test_seccomp_kill_attribution_matches_unfused(self):
        """A KILL raised from inside the fused call must attribute its
        cycles exactly like the reference walk (try/finally parity)."""
        outcomes = []
        for fusion in (True, False):
            kernel = Kernel()
            kernel.pipeline.set_fusion(fusion)
            proc = kernel.create_process("app", image=None)
            kernel.install_seccomp(proc, self._kill_filter())
            kernel.syscall(proc, "getpid", ())
            with pytest.raises(ProcessKilled):
                kernel.syscall(proc, "socket", (2, 1, 0))
            outcomes.append(
                (
                    kernel.telemetry.stage_cycles(),
                    proc.ledger.cycles,
                    dict(proc.syscall_counts),
                    {
                        k: v
                        for k, v in kernel.telemetry.counters.items()
                        if k.startswith("dispatch.verdict.")
                    },
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_per_stage_attribution_with_hook_between_stages(self):
        """With a counting hook at ``count`` the pipeline de-fuses, and the
        hook sees every dispatch exactly once — same as it would have
        pre-fusion."""
        kernel = Kernel()
        seen = []
        kernel.pipeline.insert("count", lambda ctx: seen.append(ctx.name))
        assert not kernel.pipeline.fused
        _run_syscalls(kernel)
        assert seen == ["getpid", "socket", "close", "getpid", "getpid", "getpid"]
