"""Tests for readv/writev, pipes, and dup2."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.kernel import errno
from repro.kernel.kernel import Kernel
from repro.vm.loader import Image
from repro.vm.memory import WORD


@pytest.fixture
def setup():
    kernel = Kernel()
    kernel.vfs.makedirs("/tmp")
    kernel.vfs.write_file("/tmp/data", b"abcdefghij")
    mb = ModuleBuilder("t")
    f = mb.function("main")
    f.ret(0)
    proc = kernel.create_process("t", Image(mb.build()))
    return kernel, proc


BUF = 0x7F20_0000_0000
IOV = 0x7F20_0010_0000
STR = 0x7F20_0020_0000


def _open(kernel, proc, path="/tmp/data", flags=0):
    proc.memory.write_cstr(STR, path)
    return kernel.dispatch(proc, "open", [STR, flags, 0o644])


class TestVectoredIO:
    def test_readv_scatters(self, setup):
        kernel, proc = setup
        fd = _open(kernel, proc)
        # two iovecs: 3 bytes then 4 bytes
        proc.memory.write_block(IOV, [BUF, 3, BUF + 0x1000 * WORD, 4])
        n = kernel.dispatch(proc, "readv", [fd, IOV, 2])
        assert n == 7
        assert proc.memory.read(BUF) == ord("a")
        assert proc.memory.read(BUF + 2 * WORD) == ord("c")
        assert proc.memory.read(BUF + 0x1000 * WORD) == ord("d")

    def test_writev_gathers(self, setup):
        kernel, proc = setup
        fd = _open(kernel, proc, "/tmp/out", flags=0o100)  # O_CREAT
        proc.memory.write_cstr(BUF, "he")
        proc.memory.write_cstr(BUF + 0x1000 * WORD, "llo")
        proc.memory.write_block(IOV, [BUF, 2, BUF + 0x1000 * WORD, 3])
        n = kernel.dispatch(proc, "writev", [fd, IOV, 2])
        assert n == 5
        assert kernel.vfs.lookup("/tmp/out").data == b"hello"

    def test_readv_stops_at_short_read(self, setup):
        kernel, proc = setup
        fd = _open(kernel, proc)
        proc.memory.write_block(IOV, [BUF, 8, BUF + 0x1000 * WORD, 8])
        n = kernel.dispatch(proc, "readv", [fd, IOV, 2])
        assert n == 10  # file is only 10 bytes

    def test_readv_bad_fd(self, setup):
        kernel, proc = setup
        proc.memory.write_block(IOV, [BUF, 4])
        assert kernel.dispatch(proc, "readv", [99, IOV, 1]) == -errno.EBADF


class TestPipe:
    def test_pipe_roundtrip(self, setup):
        kernel, proc = setup
        fds = BUF
        assert kernel.dispatch(proc, "pipe", [fds]) == 0
        read_fd = proc.memory.read(fds)
        write_fd = proc.memory.read(fds + WORD)
        proc.memory.write_cstr(BUF + 0x100 * WORD, "ping")
        assert kernel.dispatch(proc, "write", [write_fd, BUF + 0x100 * WORD, 4]) == 4
        n = kernel.dispatch(proc, "read", [read_fd, BUF + 0x200 * WORD, 16])
        assert n == 4
        assert proc.memory.read(BUF + 0x200 * WORD) == ord("p")

    def test_pipe_wrong_direction(self, setup):
        kernel, proc = setup
        fds = BUF
        kernel.dispatch(proc, "pipe", [fds])
        read_fd = proc.memory.read(fds)
        write_fd = proc.memory.read(fds + WORD)
        assert kernel.dispatch(proc, "write", [read_fd, BUF, 1]) < 0
        assert kernel.dispatch(proc, "read", [write_fd, BUF, 1]) < 0

    def test_empty_pipe_reads_zero(self, setup):
        kernel, proc = setup
        fds = BUF
        kernel.dispatch(proc, "pipe", [fds])
        read_fd = proc.memory.read(fds)
        assert kernel.dispatch(proc, "read", [read_fd, BUF + 0x100 * WORD, 8]) == 0


class TestDup2:
    def test_dup2_aliases(self, setup):
        kernel, proc = setup
        fd = _open(kernel, proc)
        assert kernel.dispatch(proc, "dup2", [fd, 42]) == 42
        n = kernel.dispatch(proc, "read", [42, BUF, 3])
        assert n == 3
        # shared offset: the original fd continues where the dup left off
        n = kernel.dispatch(proc, "read", [fd, BUF, 3])
        assert proc.memory.read(BUF) == ord("d")

    def test_dup2_bad_source(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "dup2", [99, 5]) == -errno.EBADF
