"""Protection inheritance across fork/clone chains under the scheduler (§7.1).

Grandchildren spawned by clone()d workers must keep the root's seccomp
filters, the shared seccomp action cache, the tracer, and the BASTION
runtime; a worker that reaches a not-callable syscall dies at the inherited
filter without disturbing its siblings.
"""

from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.sched import Scheduler
from repro.vm.cpu import CPUOptions
from repro.vm.memory import WORD
from tests.conftest import make_wrapper

ROOT, WORKER, GRANDCHILD = 1000, 1001, 1002


def _chain_module():
    """main clones a worker, which clones a grandchild that mprotects."""
    mb = ModuleBuilder("chain")
    make_wrapper(mb, "clone", 5)
    make_wrapper(mb, "wait4", 4)
    make_wrapper(mb, "mmap", 6)
    make_wrapper(mb, "mprotect", 3)

    g = mb.function("grandchild_start", params=["arg"])
    region = g.load(g.addr_global("g_region"))
    prot = g.const(1, dst="prot")
    g.call("mprotect", [region, 4096, prot], void=True)
    g.ret(0)

    w = mb.function("worker_start", params=["arg"])
    fn = w.funcaddr("grandchild_start")
    w.call("clone", [0, 0, fn, 0, 0])
    w.call("wait4", [-1, 0, 0, 0], void=True)
    w.ret(0)

    f = mb.function("main")
    region = f.call("mmap", [0, 8192, 3, 0x22, -1, 0])
    f.store(f.addr_global("g_region"), region)
    fn = f.funcaddr("worker_start")
    f.call("clone", [0, 0, fn, 0, 0])
    f.call("wait4", [-1, 0, 0, 0], void=True)
    f.ret(0)
    mb.global_var("g_region", init=0)
    return mb.build()


def _run_chain():
    artifact = protect(_chain_module())
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    sched = Scheduler(kernel)
    sched.add(proc, cpu)
    statuses = sched.run()
    return kernel, monitor, proc, statuses


class TestCloneChainInheritance:
    def test_grandchild_keeps_filters_cache_and_tracer(self):
        kernel, monitor, root, statuses = _run_chain()
        grandchild = kernel.processes[GRANDCHILD]
        assert grandchild.parent.pid == WORKER
        assert len(grandchild.seccomp_filters) == len(root.seccomp_filters)
        assert all(
            inherited is original
            for inherited, original in zip(
                grandchild.seccomp_filters, root.seccomp_filters
            )
        )
        assert grandchild.seccomp_action_cache is root.seccomp_action_cache
        assert grandchild.tracer is monitor
        assert grandchild.bastion_runtime is root.bastion_runtime

    def test_grandchild_syscall_stops_into_the_monitor(self):
        kernel, monitor, root, statuses = _run_chain()
        assert all(status.kind == "returned" for status in statuses.values())
        assert monitor.sessions[GRANDCHILD].stop_counts.get("mprotect") == 1
        assert monitor.violations == []
        # every level of the chain was reaped by its own parent
        assert kernel.processes[WORKER].reaped
        assert kernel.processes[GRANDCHILD].reaped


def _sibling_module():
    """Two workers sharing worker_start; execve is linked but not callable."""
    mb = ModuleBuilder("siblings")
    make_wrapper(mb, "clone", 5)
    make_wrapper(mb, "wait4", 4)
    make_wrapper(mb, "mmap", 6)
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "execve", 3)  # linked but never called

    w = mb.function("worker_start", params=["arg"])
    region = w.load(w.addr_global("g_region"))
    prot = w.const(1, dst="prot")
    w.call("mprotect", [region, 4096, prot], void=True)
    # the frame corruption fires *after* the monitored call, so the next
    # control transfer is the hijacked ret itself
    w.hook("go")
    w.ret(0)

    f = mb.function("main")
    region = f.call("mmap", [0, 8192, 3, 0x22, -1, 0])
    f.store(f.addr_global("g_region"), region)
    fn = f.funcaddr("worker_start")
    f.call("clone", [0, 0, fn, 0, 0])
    f.call("clone", [0, 0, fn, 1, 0])
    f.hook("spawned")
    f.call("wait4", [-1, 0, 0, 0], void=True)
    f.call("wait4", [-1, 0, 0, 0], void=True)
    f.ret(0)
    mb.global_var("g_region", init=0)
    return mb.build()


class TestNotCallableKillIsolation:
    def test_rogue_worker_killed_siblings_undisturbed(self):
        artifact = protect(_sibling_module())
        monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
        kernel = Kernel()
        # cet=False so the return-address rewrite reaches the seccomp layer
        proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions())
        sched = Scheduler(kernel)
        sched.add(proc, cpu)
        worker_a, worker_b = 1001, 1002

        def arm(_parent_cpu):
            victim = sched.tasks[worker_b].cpu

            def rogue(c):
                # Redirect worker_start's return into the never-called
                # execve wrapper: its syscall is not-callable -> KILL.
                fake = 0x7F45_0000_0000
                c.proc.memory.write(fake, 0)
                c.proc.memory.write(fake + WORD, 0)
                c.proc.memory.write(c.fp + WORD, c.image.func_base["execve"])
                c.proc.memory.write(c.fp, fake)

            victim.hooks["go"] = rogue

        cpu.hooks["spawned"] = arm
        statuses = sched.run()

        assert statuses[worker_b].kind == "killed"
        assert "seccomp" in statuses[worker_b].reason
        # Siblings and the master keep running to normal completion.
        assert statuses[worker_a].kind == "returned"
        assert statuses[proc.pid].kind == "returned"
        assert monitor.sessions[worker_a].stop_counts.get("mprotect") == 1
        assert not monitor.sessions[worker_a].killed
        # The dead worker's stack slot went back to the pool.
        assert kernel.stacks.released == kernel.stacks.allocated == 2
