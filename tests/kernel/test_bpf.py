"""Tests for the classic-BPF VM and seccomp data loads."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError
from repro.kernel.bpf import (
    AUDIT_ARCH_X86_64,
    BPF_ABS,
    BPF_ADD,
    BPF_ALU,
    BPF_AND,
    BPF_IMM,
    BPF_JA,
    BPF_JEQ,
    BPF_JGE,
    BPF_JGT,
    BPF_JMP,
    BPF_JSET,
    BPF_K,
    BPF_LD,
    BPF_MEM,
    BPF_RET,
    BPF_ST,
    BPF_W,
    BPFProgram,
    SECCOMP_DATA_ARCH,
    SECCOMP_DATA_ARGS,
    SECCOMP_DATA_NR,
    SeccompData,
    jump,
    stmt,
)


def run(instructions, nr=0, args=(0,) * 6, ip=0):
    program = BPFProgram(instructions)
    action, _count = program.run(
        SeccompData(nr=nr, instruction_pointer=ip, args=args)
    )
    return action


class TestSeccompData:
    def test_nr_and_arch(self):
        data = SeccompData(nr=59)
        assert data.load32(SECCOMP_DATA_NR) == 59
        assert data.load32(SECCOMP_DATA_ARCH) == AUDIT_ARCH_X86_64

    def test_ip_split(self):
        data = SeccompData(nr=0, instruction_pointer=0x1234_5678_9ABC_DEF0)
        assert data.load32(8) == 0x9ABC_DEF0
        assert data.load32(12) == 0x1234_5678

    def test_args_lo_hi(self):
        data = SeccompData(nr=0, args=(0xAAAA_BBBB_CCCC_DDDD, 7, 0, 0, 0, 0))
        assert data.load32(SECCOMP_DATA_ARGS) == 0xCCCC_DDDD
        assert data.load32(SECCOMP_DATA_ARGS + 4) == 0xAAAA_BBBB
        assert data.load32(SECCOMP_DATA_ARGS + 8) == 7

    def test_bad_offset(self):
        with pytest.raises(KernelError):
            SeccompData(nr=0).load32(100)


class TestExecution:
    def test_ret_constant(self):
        assert run([stmt(BPF_RET | BPF_K, 0x1234)]) == 0x1234

    def test_load_nr_and_jeq(self):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_NR),
            jump(BPF_JMP | BPF_JEQ | BPF_K, 59, 0, 1),
            stmt(BPF_RET | BPF_K, 1),  # matched
            stmt(BPF_RET | BPF_K, 2),  # fell through
        ]
        assert run(program, nr=59) == 1
        assert run(program, nr=60) == 2

    def test_jgt_jge_jset(self):
        def mk(op, k):
            return [
                stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_NR),
                jump(BPF_JMP | op | BPF_K, k, 0, 1),
                stmt(BPF_RET | BPF_K, 1),
                stmt(BPF_RET | BPF_K, 0),
            ]

        assert run(mk(BPF_JGT, 10), nr=11) == 1
        assert run(mk(BPF_JGT, 10), nr=10) == 0
        assert run(mk(BPF_JGE, 10), nr=10) == 1
        assert run(mk(BPF_JSET, 0b100), nr=0b110) == 1
        assert run(mk(BPF_JSET, 0b100), nr=0b011) == 0

    def test_unconditional_jump(self):
        program = [
            stmt(BPF_LD | BPF_IMM, 0),
            jump(BPF_JMP | BPF_JA | BPF_K, 1, 0, 0),
            stmt(BPF_RET | BPF_K, 111),  # skipped
            stmt(BPF_RET | BPF_K, 222),
        ]
        assert run(program) == 222

    def test_alu_and_scratch(self):
        program = [
            stmt(BPF_LD | BPF_IMM, 40),
            stmt(BPF_ALU | BPF_ADD | BPF_K, 2),
            stmt(BPF_ST, 3),  # scratch[3] = 42
            stmt(BPF_LD | BPF_IMM, 0),
            stmt(BPF_LD | BPF_W | BPF_MEM, 3),
            stmt(BPF_ALU | BPF_AND | BPF_K, 0xFF),
            stmt(BPF_RET | 0x10, 0),  # BPF_RET|BPF_A
        ]
        assert run(program) == 42

    def test_alu_is_32bit(self):
        program = [
            stmt(BPF_LD | BPF_IMM, 0xFFFFFFFF),
            stmt(BPF_ALU | BPF_ADD | BPF_K, 1),
            stmt(BPF_RET | 0x10, 0),
        ]
        assert run(program) == 0

    def test_instruction_count_reported(self):
        program = BPFProgram(
            [stmt(BPF_LD | BPF_IMM, 1), stmt(BPF_RET | BPF_K, 0)]
        )
        _action, count = program.run(SeccompData(nr=0))
        assert count == 2


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(KernelError):
            BPFProgram([])

    def test_jump_out_of_range_rejected(self):
        with pytest.raises(KernelError):
            BPFProgram(
                [
                    jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 5, 0),
                    stmt(BPF_RET | BPF_K, 0),
                ]
            )

    def test_must_end_in_ret(self):
        with pytest.raises(KernelError):
            BPFProgram([stmt(BPF_LD | BPF_IMM, 1)])

    def test_too_long_rejected(self):
        instructions = [stmt(BPF_LD | BPF_IMM, 0)] * 5000 + [
            stmt(BPF_RET | BPF_K, 0)
        ]
        with pytest.raises(KernelError):
            BPFProgram(instructions)

    @given(nr=st.integers(min_value=0, max_value=1000))
    def test_always_terminates_with_action(self, nr):
        program = [
            stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_NR),
            jump(BPF_JMP | BPF_JGE | BPF_K, 500, 0, 1),
            stmt(BPF_RET | BPF_K, 1),
            stmt(BPF_RET | BPF_K, 2),
        ]
        assert run(program, nr=nr) in (1, 2)
