"""Tests for the strace-style kernel tap."""

from repro.kernel.kernel import Kernel
from repro.kernel.strace import attach_strace, format_arg, format_result
from repro.ir.builder import ModuleBuilder
from repro.vm.loader import Image
from repro.vm.cpu import CPU, CPUOptions


def _run_with_trace(only=None):
    mb = ModuleBuilder("t")
    mb.global_string("g_path", "/etc/conf")
    f = mb.function("main")
    p = f.addr_global("g_path")
    fd = f.syscall("open", [p, 0, 0])
    buf = f.const(0x7F00_0000_0000)
    f.syscall("read", [fd, buf, 64])
    f.syscall("mmap", [0, 8192, 3, 0x22, -1, 0])
    f.syscall("close", [fd])
    f.ret(0)
    module = mb.build()

    kernel = Kernel()
    kernel.vfs.makedirs("/etc")
    kernel.vfs.write_file("/etc/conf", b"data" * 20)
    trace = attach_strace(kernel, only=only)
    image = Image(module)
    proc = kernel.create_process("t", image)
    cpu = CPU(image, proc, kernel, CPUOptions())
    status = cpu.run()
    assert status.kind == "returned"
    return trace


def test_records_all_syscalls():
    trace = _run_with_trace()
    assert trace.counts() == {"open": 1, "read": 1, "mmap": 1, "close": 1}


def test_decodes_path_argument():
    trace = _run_with_trace()
    open_line = trace.lines()[0]
    assert 'open("/etc/conf", 0, 0) = ' in open_line


def test_decodes_prot_and_map_flags():
    trace = _run_with_trace()
    mmap_line = [l for l in trace.lines() if l.startswith("mmap")][0]
    assert "PROT_READ|PROT_WRITE" in mmap_line
    assert "MAP_PRIVATE|MAP_ANONYMOUS" in mmap_line
    assert mmap_line.split(" = ")[1].startswith("0x")


def test_filtering():
    trace = _run_with_trace(only=("mmap",))
    assert set(trace.counts()) == {"mmap"}


def test_errno_rendering():
    assert format_result("open", -2) == "-1 ENOENT"
    assert format_result("read", 42) == "42"


def test_format_arg_small_values():
    kernel = Kernel()
    proc = kernel.create_process("t")
    assert format_arg(proc, "close", 1, 3) == "3"
    assert format_arg(proc, "mprotect", 3, 5) == "PROT_READ|PROT_EXEC"


def test_str_renders_lines():
    trace = _run_with_trace()
    text = str(trace)
    assert text.count("\n") == 3
