"""Tests for credentials and the socket layer."""

from repro.kernel import errno
from repro.kernel.cred import Credentials
from repro.kernel.net import Connection, NetStack, Socket


class TestCredentials:
    def test_root_can_become_anyone(self):
        c = Credentials()
        assert c.setuid(1000) == 0
        assert c.uid == 1000 and c.euid == 1000

    def test_non_root_cannot_escalate(self):
        c = Credentials(uid=1000, euid=1000, gid=1000, egid=1000)
        assert c.setuid(0) == -errno.EPERM
        assert c.setgid(0) == -errno.EPERM
        assert c.euid == 1000

    def test_non_root_can_set_self(self):
        c = Credentials(uid=1000, euid=1000)
        assert c.setuid(1000) == 0

    def test_setreuid(self):
        c = Credentials()
        assert c.setreuid(500, 501) == 0
        assert (c.uid, c.euid) == (500, 501)
        assert c.setreuid(-1, 500) == 0
        assert c.uid == 500
        assert c.setreuid(0, 0) == -errno.EPERM  # no longer root

    def test_clone_independent(self):
        c = Credentials()
        child = c.clone()
        child.setuid(7)
        assert c.uid == 0

    def test_is_root(self):
        assert Credentials().is_root()
        assert not Credentials(uid=1, euid=1).is_root()


class TestNetStack:
    def test_bind_listen(self):
        net = NetStack()
        sock = Socket()
        assert net.bind(sock, 80)
        assert net.listen(sock, 128)
        assert net.listeners[80] is sock

    def test_double_bind_conflicts(self):
        net = NetStack()
        a, b = Socket(), Socket()
        net.bind(a, 80)
        net.listen(a, 1)
        assert not net.bind(b, 80)

    def test_provider_supplies_connections(self):
        net = NetStack()
        sock = Socket()
        net.bind(sock, 80)
        net.listen(sock, 1)
        queue = [Connection(), None]
        net.backlog_provider = lambda s: queue.pop(0)
        assert net.next_connection(sock) is not None
        assert net.next_connection(sock) is None
        assert net.accepted == 1

    def test_no_provider_means_no_connections(self):
        net = NetStack()
        assert net.next_connection(Socket()) is None

    def test_byte_accounting(self):
        net = NetStack()
        net.account_send(100)
        net.account_recv(40)
        assert net.bytes_sent == 100
        assert net.bytes_received == 40


class TestConnection:
    def test_deliver_take(self):
        conn = Connection()
        conn.deliver(b"hello")
        assert conn.take(3) == b"hel"
        assert conn.take(10) == b"lo"
        assert conn.take(10) == b""

    def test_server_write_counts_and_keeps_prefix(self):
        conn = Connection()
        conn.server_write(1000, b"HTTP/1.1 200")
        assert conn.bytes_out == 1000
        assert conn.out_prefix.startswith(b"HTTP/1.1 200")

    def test_write_callback_pacing(self):
        conn = Connection()
        seen = []
        conn.on_server_write = lambda c, n, prefix: seen.append((n, prefix))
        conn.server_write(10, b"226")
        assert seen == [(10, b"226")]

    def test_out_prefix_bounded(self):
        conn = Connection()
        conn.server_write(10000, b"x" * 10000)
        assert len(conn.out_prefix) <= Connection._OUT_KEEP
