"""Tests for running clone()d children under inherited protection (§7.1)."""


from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.vm.cpu import CPUOptions
from tests.conftest import make_wrapper


def _threaded_module():
    """main clones a worker; the worker start routine uses mprotect."""
    mb = ModuleBuilder("threaded")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "clone", 5)
    make_wrapper(mb, "mmap", 6)

    worker = mb.function("worker_start", params=["region"])
    prot = worker.const(1, dst="prot")
    worker.hook("worker_vuln")
    rc = worker.call("mprotect", [worker.p("region"), 4096, prot])
    worker.ret(rc)

    f = mb.function("main")
    region = f.call("mmap", [0, 8192, 3, 0x22, -1, 0])
    fn = f.funcaddr("worker_start")
    f.call("clone", [0, 0, fn, 0, 0])
    g = f.addr_global("g_region")
    f.store(g, region)
    f.ret(0)
    mb.global_var("g_region", init=0)
    return mb.build()


def _launch():
    artifact = protect(_threaded_module())
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    status = cpu.run()
    assert status.kind == "returned"
    (child,) = proc.children
    region = proc.memory.read(cpu.image.global_addr["g_region"])
    return kernel, monitor, proc, child, cpu.image, region


class TestChildExecution:
    def test_child_runs_start_routine(self):
        kernel, monitor, _proc, child, image, region = _launch()
        status = kernel.run_child(child, image, "worker_start", [region])
        assert status.kind == "returned"
        assert child.syscall_counts.get("mprotect") == 1

    def test_child_is_monitored(self):
        """The child's sensitive syscall stops into the same monitor."""
        kernel, monitor, _proc, child, image, region = _launch()
        before = monitor.hook_counts.get("mprotect", 0)
        kernel.run_child(child, image, "worker_start", [region])
        assert monitor.hook_counts["mprotect"] == before + 1
        assert monitor.violations == []

    def test_child_attack_blocked(self):
        """Corruption inside the child is caught like in the parent."""
        kernel, monitor, _proc, child, image, region = _launch()
        from repro.vm.cpu import CPU, CPUOptions
        from repro.vm.loader import STACK_TOP

        cpu = CPU(
            image,
            child,
            kernel,
            CPUOptions(),
            entry="worker_start",
            entry_args=[region],
            stack_base=STACK_TOP - (1 << 30),
        )

        def corrupt(c):
            c.proc.memory.write(c.local_addr("prot"), 7)

        cpu.hooks["worker_vuln"] = corrupt
        status = cpu.run()
        assert status.kind == "killed"
        assert monitor.violations
        assert monitor.violations[0].context == "arg-integrity"

    def test_child_shares_memory_with_parent(self):
        kernel, _monitor, proc, child, image, region = _launch()
        assert child.memory is proc.memory
        assert child.mm is proc.mm

    def test_child_not_callable_killed(self):
        """A child reaching a not-callable syscall dies at the inherited
        seccomp filter."""
        mb = ModuleBuilder("t2")
        make_wrapper(mb, "clone", 5)
        make_wrapper(mb, "execve", 3)  # linked but never called
        worker = mb.function("worker_start", params=["x"])
        worker.hook("go")
        worker.ret(0)
        f = mb.function("main")
        f.call("clone", [0, 0, 0, 0, 0])
        f.ret(0)
        artifact = protect(mb.build())
        monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
        kernel = Kernel()
        proc, cpu = monitor.launch(kernel)
        assert cpu.run().kind == "returned"
        (child,) = proc.children

        from repro.vm.cpu import CPU, CPUOptions
        from repro.vm.loader import STACK_TOP
        from repro.vm.memory import WORD

        cpu2 = CPU(
            image=monitor.image,
            proc=child,
            kernel=kernel,
            options=CPUOptions(),
            entry="worker_start",
            entry_args=[0],
            stack_base=STACK_TOP - (1 << 30),
        )

        def rogue(c):
            fake = 0x7F45_0000_0000
            c.proc.memory.write(fake, 0)
            c.proc.memory.write(fake + WORD, 0)
            c.proc.memory.write(c.fp + WORD, c.image.func_base["execve"])
            c.proc.memory.write(c.fp, fake)

        cpu2.hooks["go"] = rogue
        status = cpu2.run()
        assert status.kind == "killed"
        assert "seccomp" in status.reason
