"""Tests for seccomp filters: generation, precedence, evaluation."""

from hypothesis import given, strategies as st

from repro.kernel.seccomp import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    action_name,
    build_action_filter,
    combine_actions,
    evaluate_filters,
)


class TestActionFilterGeneration:
    def test_actions_honored(self):
        filt = build_action_filter(
            {59: SECCOMP_RET_TRACE, 10: SECCOMP_RET_KILL_PROCESS}
        )
        assert evaluate_filters([filt], 59)[0] == SECCOMP_RET_TRACE
        assert evaluate_filters([filt], 10)[0] == SECCOMP_RET_KILL_PROCESS
        assert evaluate_filters([filt], 0)[0] == SECCOMP_RET_ALLOW

    def test_custom_default(self):
        filt = build_action_filter({}, default_action=SECCOMP_RET_KILL_PROCESS)
        assert evaluate_filters([filt], 123)[0] == SECCOMP_RET_KILL_PROCESS

    def test_empty_filter_list_allows(self):
        assert evaluate_filters([], 59) == (SECCOMP_RET_ALLOW, 0)

    def test_instruction_count_scales_with_entries(self):
        small = build_action_filter({1: SECCOMP_RET_TRACE})
        big = build_action_filter(
            {nr: SECCOMP_RET_TRACE for nr in range(1, 60)}
        )
        _a1, c1 = evaluate_filters([small], 500)
        _a2, c2 = evaluate_filters([big], 500)
        assert c2 > c1

    @given(
        entries=st.dictionaries(
            st.integers(min_value=0, max_value=450),
            st.sampled_from(
                [SECCOMP_RET_TRACE, SECCOMP_RET_KILL_PROCESS, SECCOMP_RET_ERRNO | 13]
            ),
            max_size=40,
        ),
        nr=st.integers(min_value=0, max_value=460),
    )
    def test_generated_filter_matches_action_map(self, entries, nr):
        """Property: the compiled cBPF program implements the map exactly."""
        filt = build_action_filter(entries)
        action, _count = evaluate_filters([filt], nr)
        assert action == entries.get(nr, SECCOMP_RET_ALLOW)


class TestPrecedence:
    def test_kill_beats_everything(self):
        assert (
            combine_actions([SECCOMP_RET_ALLOW, SECCOMP_RET_KILL_PROCESS])
            == SECCOMP_RET_KILL_PROCESS
        )

    def test_trap_beats_errno_beats_trace(self):
        assert (
            combine_actions([SECCOMP_RET_TRACE, SECCOMP_RET_ERRNO])
            & 0xFFFF0000
            == SECCOMP_RET_ERRNO
        )
        assert (
            combine_actions([SECCOMP_RET_ERRNO, SECCOMP_RET_TRAP])
            & 0xFFFF0000
            == SECCOMP_RET_TRAP
        )

    def test_multiple_filters_strictest_wins(self):
        allow_all = build_action_filter({})
        kill_59 = build_action_filter({59: SECCOMP_RET_KILL_PROCESS})
        action, _ = evaluate_filters([allow_all, kill_59], 59)
        assert action == SECCOMP_RET_KILL_PROCESS

    def test_errno_data_preserved(self):
        filt = build_action_filter({2: SECCOMP_RET_ERRNO | 13})
        action, _ = evaluate_filters([filt], 2)
        assert action & 0xFFFF == 13


class TestNames:
    def test_action_names(self):
        assert action_name(SECCOMP_RET_ALLOW) == "ALLOW"
        assert action_name(SECCOMP_RET_TRACE) == "TRACE"
        assert action_name(SECCOMP_RET_KILL_PROCESS) == "KILL_PROCESS"
        assert action_name(SECCOMP_RET_ERRNO | 5) == "ERRNO"
