"""Tests for the advanced filtering baselines (§2.2 / §12) and their
documented weaknesses against the attack catalog."""

import pytest

from repro.apps.nginx import build_nginx
from repro.baselines.seccomp_filter import build_arg_constraint_filter
from repro.baselines.temporal import build_serving_phase_filter, phase_syscalls
from repro.kernel.seccomp import (
    evaluate_filters,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
)
from repro.syscalls.table import nr_of


class TestArgConstraints:
    def test_pins_values(self):
        filt = build_arg_constraint_filter("mprotect", 3, [1, 5])
        nr = nr_of("mprotect")
        assert (
            evaluate_filters([filt], nr, args=(0, 0, 1, 0, 0, 0))[0]
            == SECCOMP_RET_ALLOW
        )
        assert (
            evaluate_filters([filt], nr, args=(0, 0, 5, 0, 0, 0))[0]
            == SECCOMP_RET_ALLOW
        )
        assert (
            evaluate_filters([filt], nr, args=(0, 0, 7, 0, 0, 0))[0]
            == SECCOMP_RET_KILL_PROCESS
        )

    def test_other_syscalls_unconstrained(self):
        filt = build_arg_constraint_filter("mprotect", 3, [1])
        assert (
            evaluate_filters([filt], nr_of("read"), args=(9, 9, 9, 0, 0, 0))[0]
            == SECCOMP_RET_ALLOW
        )

    def test_bad_position_rejected(self):
        with pytest.raises(ValueError):
            build_arg_constraint_filter("mprotect", 0, [1])

    def test_application_wide_permissiveness(self):
        """§2.2's critique: one app legitimately uses PROT_READ at site A
        and PROT_READ|PROT_EXEC at site B, so seccomp must allow BOTH
        values at EVERY site — the attacker just picks the stronger one."""
        legitimate_values = {1, 5}  # read-only pool guard + JIT page
        filt = build_arg_constraint_filter("mprotect", 3, legitimate_values)
        nr = nr_of("mprotect")
        # the attacker calls from the read-only-pool site but asks for RX:
        attacker_args = (0xDEAD000, 4096, 5, 0, 0, 0)
        assert evaluate_filters([filt], nr, args=attacker_args)[0] == SECCOMP_RET_ALLOW
        # BASTION's per-callsite constant binding would have pinned that
        # site to 1 (see tests/monitor: "constant 1 corrupted to ...")


class TestTemporalFiltering:
    def test_phase_split(self):
        module = build_nginx()
        init_only, serving = phase_syscalls(module, ["ngx_worker_cycle"])
        # privilege drop and worker spawn are init-only
        assert "setuid" in init_only
        assert "clone" in init_only
        # the serving loop needs accept4 and the static-file path
        assert "accept4" in serving
        assert "open" in serving
        assert "sendfile" in serving

    def test_serving_filter_kills_init_only(self):
        module = build_nginx()
        filt, init_only, _serving = build_serving_phase_filter(
            module, ["ngx_worker_cycle"]
        )
        assert (
            evaluate_filters([filt], nr_of("setuid"))[0]
            == SECCOMP_RET_KILL_PROCESS
        )
        assert evaluate_filters([filt], nr_of("accept4"))[0] == SECCOMP_RET_ALLOW

    def test_temporal_filter_cannot_stop_serving_phase_attacks(self):
        """§12: Control Jujutsu / AOCR 'leverage system calls still
        permitted in the application's serving phase'.

        The Control Jujutsu route is master-cycle exec — but the master
        loop (and its upgrade path) must stay live for the process's whole
        life, so execve survives even the serving-phase split when the
        roots include the master loop.  And the NEWTON CPI route uses
        mprotect, which the serving phase keeps for... nothing in
        mini-NGINX — but the request path itself (ngx_handle_request)
        reaches the indexed-variable dispatch, which is all the attacker
        needs *if the target syscall remains allowed*."""
        module = build_nginx()
        _filt, _init, serving = build_serving_phase_filter(
            module, ["ngx_master_cycle"]
        )
        # the master-cycle phase keeps execve alive (the upgrade path)
        assert "execve" in serving
