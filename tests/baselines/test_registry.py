"""The mechanism registry: one source of truth, derivations consistent.

A mechanism registered here but forgotten anywhere downstream —
``MECHANISM_NAMES``, ``bench.harness.CONFIGS``, the fuzz oracle's
matrix — fails one of these tests instead of silently escaping
coverage.
"""

import pytest

from repro.bench.harness import CONFIGS
from repro.mechanisms.registry import (
    _ORDER,
    _REGISTRY,
    FUZZ_MATRIX,
    MECHANISM_NAMES,
    defense_for_mechanism,
    mechanism_for,
    named_defense_configs,
    spec_for,
)


def test_mechanism_names_cover_the_registry():
    assert MECHANISM_NAMES[0] == "bastion"
    assert set(MECHANISM_NAMES) == set(_ORDER)
    assert list(MECHANISM_NAMES[1:]) == sorted(MECHANISM_NAMES[1:])


def test_fuzz_matrix_is_registration_order():
    """The corpus format pins matrix order — it must follow registration
    order exactly (append-only), and cover every fuzzed mechanism."""
    assert FUZZ_MATRIX == tuple(
        n for n in _ORDER if _REGISTRY[n].fuzzed
    )
    assert set(FUZZ_MATRIX) == set(MECHANISM_NAMES)
    # the pre-registry prefix is frozen: reordering breaks pinned corpora
    assert FUZZ_MATRIX[:7] == (
        "bastion",
        "seccomp_allowlist",
        "temporal",
        "debloat",
        "binary_only",
        "llvm_cfi",
        "dfi",
    )
    assert "sfip" in FUZZ_MATRIX and "sfip_origin" in FUZZ_MATRIX


def test_oracle_matrix_is_the_registry_matrix():
    from repro.fuzz.oracle import MATRIX

    assert MATRIX == FUZZ_MATRIX


def test_harness_configs_serve_every_named_mechanism():
    for name, defense in named_defense_configs().items():
        assert name in CONFIGS, name
        assert CONFIGS[name].name == defense.name
        assert getattr(CONFIGS[name], "baseline", None) == getattr(
            defense, "baseline", None
        )


@pytest.mark.parametrize(
    "name", [n for n in _ORDER if _REGISTRY[n].defense_kwargs is not None]
)
def test_defense_resolves_to_registered_class(name):
    mechanism = mechanism_for(defense_for_mechanism(name))
    assert isinstance(mechanism, spec_for(name).mechanism_class())


def test_bastion_has_no_named_defense():
    with pytest.raises(ValueError):
        defense_for_mechanism("bastion")


def test_unknown_mechanism_raises_with_the_roster():
    with pytest.raises(ValueError, match="sfip"):
        spec_for("nope")
    with pytest.raises(ValueError):
        defense_for_mechanism("nope")


def test_api_accepts_every_registry_name():
    from repro.api import ProtectConfig

    for name in MECHANISM_NAMES:
        ProtectConfig(mechanism=name)  # must not raise
    with pytest.raises(ValueError):
        ProtectConfig(mechanism="not_a_mechanism")


def test_legacy_reexports_still_resolve():
    """The pre-registry import surface keeps working."""
    from repro.mechanisms import (
        FUZZ_MATRIX as reexported_matrix,
        MECHANISM_NAMES as reexported_names,
        SfipMechanism,
        SfipOriginMechanism,
    )

    assert reexported_matrix == FUZZ_MATRIX
    assert reexported_names == MECHANISM_NAMES
    assert issubclass(SfipOriginMechanism, SfipMechanism)
