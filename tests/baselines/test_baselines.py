"""Tests for the baseline defenses (and their documented weaknesses)."""

from repro.attacks.catalog import attack_by_name
from repro.attacks.runner import run_attack
from repro.baselines.debloat import debloat_module
from repro.baselines.llvm_cfi import (
    cfi_equivalence_classes,
    largest_equivalence_class,
    llvm_cfi_options,
)
from repro.baselines.dfi import dfi_options
from repro.baselines.seccomp_filter import build_allowlist_filter, used_syscalls
from repro.ir.builder import ModuleBuilder
from repro.kernel.seccomp import (
    evaluate_filters,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
)
from repro.syscalls.table import nr_of
from repro.vm.cpu import CPUOptions
from tests.conftest import make_wrapper


def _module():
    mb = ModuleBuilder("m")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "execve", 3)
    dead = mb.function("dead_code")
    dead.call("execve", [0, 0, 0])
    dead.ret(0)
    handler = mb.function("handler", params=["x"], sig="h1")
    handler.ret(0)
    other = mb.function("other_handler", params=["x"], sig="h1")
    other.ret(0)
    f = mb.function("main")
    f.call("mprotect", [0, 4096, 1])
    h = f.funcaddr("handler")
    o = f.funcaddr("other_handler")
    f.icall(h, [1], sig="h1")
    f.icall(o, [1], sig="h1")
    f.ret(0)
    return mb.build()


class TestAllowlist:
    def test_used_syscalls(self):
        assert used_syscalls(_module()) == {"mprotect", "execve"}

    def test_filter_allows_used_kills_rest(self):
        filt = build_allowlist_filter(_module())
        assert evaluate_filters([filt], nr_of("mprotect"))[0] == SECCOMP_RET_ALLOW
        assert evaluate_filters([filt], nr_of("setuid"))[0] == SECCOMP_RET_KILL_PROCESS

    def test_binary_decision_weakness(self):
        """§2.2: the allowlist keeps sensitive-but-used syscalls wide open —
        it still ALLOWS mprotect even from a hijacked path."""
        filt = build_allowlist_filter(_module())
        assert evaluate_filters([filt], nr_of("mprotect"))[0] == SECCOMP_RET_ALLOW


class TestDebloat:
    def test_removes_dead_functions(self):
        module = _module()
        slim, report = debloat_module(module)
        assert "dead_code" in report.removed_functions
        assert not slim.has_function("dead_code")
        assert "dead_code" in module.functions  # input untouched

    def test_keeps_address_taken(self):
        _slim, report = debloat_module(_module())
        assert "handler" in report.kept_functions

    def test_sensitive_but_used_survive(self):
        """§2.2: debloating cannot remove mmap/mprotect-style syscalls."""
        _slim, report = debloat_module(_module())
        assert "mprotect" in report.surviving_sensitive
        assert "execve" in report.removed_syscalls


class TestLLVMCFI:
    def test_equivalence_classes(self):
        classes = cfi_equivalence_classes(_module())
        assert set(classes["h1"]) == {"handler", "other_handler"}
        assert largest_equivalence_class(_module()) == 2

    def test_options(self):
        options = llvm_cfi_options()
        assert options.llvm_cfi and not options.cet
        assert dfi_options().dfi

    def test_cfi_bypassed_by_type_compatible_attacks(self):
        """§10.3: COOP and Control Jujutsu are type-valid — CFI passes."""
        for name in ("coop_chrome", "control_jujutsu", "aocr_apache"):
            spec = attack_by_name(name)
            outcome = run_attack(
                spec, None, "llvm_cfi", cpu_options=CPUOptions(llvm_cfi=True)
            )
            assert outcome.succeeded, name
            assert not outcome.blocked, name

    def test_cet_blocks_rop_but_not_data_attacks(self):
        """§10.1: CET stops ROP; §10.3 attacks sail through it."""
        rop = attack_by_name("rop_execute_user_command")
        outcome = run_attack(rop, None, "cet", cpu_options=CPUOptions(cet=True))
        assert outcome.blocked and outcome.blocked_by == "cet"
        data_only = attack_by_name("aocr_nginx_attack2")
        outcome = run_attack(
            data_only, None, "cet", cpu_options=CPUOptions(cet=True)
        )
        assert outcome.succeeded
