"""Tests for the shadow-memory hash tables (writer + ptrace-side reader)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.runtime.shadow_table import (
    BINDINGS_LAYOUT,
    COPIES_LAYOUT,
    ShadowTable,
    ShadowTableLayout,
    ShadowTableReader,
)
from repro.vm.memory import Memory, WORD


def small_layout(base=0x7E00_0000_0000, capacity=16, entry_words=2):
    return ShadowTableLayout(base, capacity, entry_words)


class TestLayout:
    def test_capacity_power_of_two(self):
        with pytest.raises(ReproError):
            ShadowTableLayout(0x1000, 12, 2)

    def test_entry_addr(self):
        layout = small_layout()
        assert layout.entry_addr(0) == layout.base
        assert layout.entry_addr(1) == layout.base + 2 * WORD

    def test_default_layouts_disjoint(self):
        copies_end = COPIES_LAYOUT.entry_addr(COPIES_LAYOUT.capacity)
        assert copies_end <= BINDINGS_LAYOUT.base


class TestWriter:
    def test_put_get(self):
        table = ShadowTable(Memory(), small_layout())
        table.put(0x1000, (42,))
        assert table.get(0x1000) == [42]
        assert table.get(0x2000) is None

    def test_update_existing(self):
        table = ShadowTable(Memory(), small_layout())
        table.put(0x1000, (1,))
        table.put(0x1000, (2,))
        assert table.get(0x1000) == [2]

    def test_zero_key_rejected(self):
        with pytest.raises(ReproError):
            ShadowTable(Memory(), small_layout()).put(0, (1,))

    def test_collisions_probe_linearly(self):
        layout = small_layout(capacity=8)
        table = ShadowTable(Memory(), layout)
        # keys chosen to share a probe start often given tiny capacity
        keys = [0x1000 + i * 8 * layout.capacity for i in range(6)]
        for i, key in enumerate(keys):
            table.put(key, (i,))
        for i, key in enumerate(keys):
            assert table.get(key) == [i]

    def test_full_table_raises(self):
        layout = small_layout(capacity=4)
        table = ShadowTable(Memory(), layout)
        for i in range(4):
            table.put(0x1000 + i * 8, (i,))
        with pytest.raises(ReproError):
            table.put(0x9999998, (9,))

    def test_update_word(self):
        layout = small_layout(entry_words=4)
        table = ShadowTable(Memory(), layout)
        table.update_word(0x1000, 2, 77)
        assert table.get(0x1000)[1] == 77


class TestReader:
    def test_reader_sees_writer_entries(self):
        memory = Memory()
        layout = small_layout()
        writer = ShadowTable(memory, layout)
        writer.put(0x1000, (123,))
        reader = ShadowTableReader(memory.read_block, layout)
        assert reader.get(0x1000) == [123]
        assert reader.get(0x2000) is None

    def test_reader_bounded_probing(self):
        memory = Memory()
        layout = small_layout(capacity=8)
        reader = ShadowTableReader(memory.read_block, layout)
        reader.MAX_PROBES = 2
        # fill everything so the probe limit is what stops the search
        writer = ShadowTable(memory, layout)
        for i in range(8):
            writer.put(0x1000 + i * 8 * 8, (i,))
        assert reader.get(0xDEAD008) is None

    @settings(max_examples=50)
    @given(
        entries=st.dictionaries(
            st.integers(min_value=1, max_value=1 << 40).map(lambda k: k * 8),
            st.integers(min_value=0, max_value=1 << 62),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, entries):
        """Property: the reader recovers exactly what the writer stored."""
        memory = Memory()
        layout = ShadowTableLayout(0x7E00_0000_0000, 64, 2)
        writer = ShadowTable(memory, layout)
        for key, value in entries.items():
            writer.put(key, (value,))
        reader = ShadowTableReader(memory.read_block, layout)
        reader.MAX_PROBES = 64
        for key, value in entries.items():
            assert reader.get(key) == [value]
