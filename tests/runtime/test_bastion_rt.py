"""Tests for the application-side BASTION runtime (Table 2 API)."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.runtime.bastion_rt import BastionRuntime
from repro.runtime.shadow_table import (
    BIND_CONST,
    BIND_MEM,
    BINDINGS_LAYOUT,
    COPIES_LAYOUT,
    ShadowTableReader,
)
from repro.vm.loader import Image
from repro.vm.memory import WORD


@pytest.fixture
def rt():
    proc = Kernel().create_process("t")
    return BastionRuntime(proc)


def _copies_reader(rt):
    return ShadowTableReader(rt.proc.memory.read_block, COPIES_LAYOUT)


def _bindings_reader(rt):
    return ShadowTableReader(rt.proc.memory.read_block, BINDINGS_LAYOUT)


class TestCtxWriteMem:
    def test_records_current_value(self, rt):
        rt.proc.memory.write(0x5000, 77)
        rt.ctx_write_mem(0x5000)
        assert _copies_reader(rt).get(0x5000) == [77]

    def test_multi_slot(self, rt):
        rt.proc.memory.write_block(0x5000, [1, 2, 3])
        rt.ctx_write_mem(0x5000, 3)
        reader = _copies_reader(rt)
        assert reader.get(0x5000) == [1]
        assert reader.get(0x5000 + WORD) == [2]
        assert reader.get(0x5000 + 2 * WORD) == [3]

    def test_refresh_overwrites(self, rt):
        rt.proc.memory.write(0x5000, 1)
        rt.ctx_write_mem(0x5000)
        rt.proc.memory.write(0x5000, 2)
        rt.ctx_write_mem(0x5000)
        assert _copies_reader(rt).get(0x5000) == [2]
        assert rt.write_count == 2


class TestCtxBind:
    def test_bind_mem(self, rt):
        rt.ctx_bind_mem(0x400010, 3, 0x5000)
        record = _bindings_reader(rt).get(0x400010)
        # record layout: [argmask, (kind, payload) x 6]
        assert record[0] == 1 << 2
        assert record[1 + 2 * 2] == BIND_MEM
        assert record[2 + 2 * 2] == 0x5000

    def test_bind_const(self, rt):
        rt.ctx_bind_const(0x400010, 1, -1 & ((1 << 64) - 1))
        record = _bindings_reader(rt).get(0x400010)
        assert record[1] == BIND_CONST

    def test_mask_accumulates(self, rt):
        rt.ctx_bind_mem(0x400010, 1, 0x5000)
        rt.ctx_bind_const(0x400010, 4, 9)
        record = _bindings_reader(rt).get(0x400010)
        assert record[0] == (1 << 0) | (1 << 3)

    def test_rebind_overwrites(self, rt):
        rt.ctx_bind_mem(0x400010, 1, 0x5000)
        rt.ctx_bind_mem(0x400010, 1, 0x6000)
        record = _bindings_reader(rt).get(0x400010)
        assert record[2] == 0x6000

    def test_position_bounds(self, rt):
        with pytest.raises(ValueError):
            rt.ctx_bind_mem(0x400010, 0, 0x5000)
        with pytest.raises(ValueError):
            rt.ctx_bind_mem(0x400010, 7, 0x5000)


class TestGlobalSeeding:
    def test_initialize_globals(self):
        mb = ModuleBuilder("t")
        mb.global_string("path", "/bin/true")
        mb.global_var("flag", init=5)
        f = mb.function("main")
        f.ret(0)
        image = Image(mb.build())
        kernel = Kernel()
        proc = kernel.create_process("t", image)
        rt = BastionRuntime(proc)
        rt.initialize_globals(image, ["path", "flag", "missing_is_ok"])
        reader = _copies_reader(rt)
        base = image.global_addr["path"]
        assert reader.get(base) == [ord("/")]
        assert reader.get(base + 8 * WORD) == [ord("e")]
        assert reader.get(base + 9 * WORD) == [0]  # NUL terminator tracked too
        assert reader.get(image.global_addr["flag"]) == [5]
