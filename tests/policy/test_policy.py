"""The transition-flow engine and the CompiledPolicy artifact.

Engine tests drive :func:`build_transition_graph` directly over
hand-built IR (the same shape both producers feed it); artifact tests
pin the byte-stable serialization contract the precision fixtures rely
on.
"""

import json

import pytest

from repro.ir.builder import ModuleBuilder
from repro.policy import (
    START,
    CompiledPolicy,
    FlowFunction,
    build_presence_filter,
    build_transition_graph,
    policy_json,
)
from tests.conftest import make_wrapper


def graph_of(mb, entry="main", indirect=(), threads=()):
    module = mb.build()
    functions = {
        name: FlowFunction(fid=name, symbol=name, instrs=tuple(fn.body))
        for name, fn in module.functions.items()
    }
    return build_transition_graph(
        functions,
        entry=entry,
        resolve_callee=lambda n: n if n in functions else None,
        indirect_targets=indirect,
        thread_entries=threads,
    )


def edges(graph):
    """{(prev, next): set(origins)} for terse assertions."""
    return {
        (prev, nxt): set(origins)
        for prev, nexts in graph.transitions.items()
        for nxt, origins in nexts.items()
    }


class TestEngine:
    def test_linear_adjacencies(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        f.syscall("open", [0, 0])
        f.syscall("read", [0, 0, 0])
        f.syscall("write", [1, 0, 0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert got == {
            (START, "open"): {"main"},
            ("open", "read"): {"main"},
            ("read", "write"): {"main"},
        }

    def test_branch_merge_unions_paths(self):
        """Both sides of a branch contribute adjacencies; the sides do
        not leak into each other (read -> write is NOT admitted)."""
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["flag"])
        f.syscall("open", [0, 0])
        f.branch(f.p("flag"), "then", "else")
        f.label("then")
        f.syscall("read", [0, 0, 0])
        f.jump("merge")
        f.label("else")
        f.syscall("write", [1, 0, 0])
        f.jump("merge")
        f.label("merge")
        f.syscall("close", [0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert ("open", "read") in got and ("open", "write") in got
        assert ("read", "close") in got and ("write", "close") in got
        assert ("read", "write") not in got
        assert ("write", "read") not in got

    def test_loop_back_edge_self_adjacency(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        f.syscall("open", [0, 0])
        n = f.const(4)
        f.loop_range(n, lambda i: f.syscall("read", [0, 0, 0]))
        f.syscall("close", [0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert ("read", "read") in got  # the back edge
        assert ("open", "read") in got
        # the loop may run zero times: open -> close must survive
        assert ("open", "close") in got
        assert ("read", "close") in got

    def test_call_composition_and_origins(self):
        """Adjacencies through a call are annotated with the *callee*
        (where the syscall instruction lives), not the caller."""
        mb = ModuleBuilder("m")
        make_wrapper(mb, "write", 3)
        f = mb.function("main")
        f.syscall("open", [0, 0])
        f.call("write", [1, 0, 0])
        f.syscall("close", [0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert got[("open", "write")] == {"write"}
        assert got[("write", "close")] == {"main"}
        assert ("open", "close") not in got  # write always fires

    def test_syscall_free_callee_is_transparent(self):
        mb = ModuleBuilder("m")
        helper = mb.function("helper", params=["x"])
        helper.ret(0)
        f = mb.function("main")
        f.syscall("open", [0, 0])
        f.call("helper", [0])
        f.syscall("close", [0])
        f.ret(0)
        assert ("open", "close") in edges(graph_of(mb))

    def test_conditionally_empty_callee_keeps_both_paths(self):
        """A callee with a syscall-free path (EMPTY) both passes the
        caller's state through and contributes its own adjacencies."""
        mb = ModuleBuilder("m")
        helper = mb.function("maybe_log", params=["flag"])
        helper.branch(helper.p("flag"), "do", "skip")
        helper.label("do")
        helper.syscall("write", [2, 0, 0])
        helper.ret(0)
        helper.label("skip")
        helper.ret(0)
        f = mb.function("main", params=["flag"])
        f.syscall("open", [0, 0])
        f.call("maybe_log", [f.p("flag")])
        f.syscall("close", [0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert got[("open", "write")] == {"maybe_log"}
        assert ("write", "close") in got
        assert ("open", "close") in got  # the skip path

    def test_recursive_wrapper_converges(self):
        """Self-recursion reaches a fixpoint: retry-until-success around
        a syscall yields the self edge, without path enumeration."""
        mb = ModuleBuilder("m")
        retry = mb.function("retry_read", params=["fd"])
        rc = retry.syscall("read", [retry.p("fd"), 0, 0])
        again = retry.lt(rc, 0)
        retry.branch(again, "again", "done")
        retry.label("again")
        retry.call("retry_read", [retry.p("fd")])
        retry.ret(0)
        retry.label("done")
        retry.ret(0)
        f = mb.function("main")
        f.syscall("open", [0, 0])
        f.call("retry_read", [0])
        f.syscall("close", [0])
        f.ret(0)
        got = edges(graph_of(mb))
        assert got[("read", "read")] == {"retry_read"}
        assert ("open", "read") in got
        assert ("read", "close") in got
        assert ("open", "close") not in got  # read always fires first

    def test_mutual_recursion_converges(self):
        mb = ModuleBuilder("m")
        ping = mb.function("ping", params=["n"])
        ping.syscall("read", [0, 0, 0])
        ping.branch(ping.p("n"), "rec", "out")
        ping.label("rec")
        ping.call("pong", [0])
        ping.ret(0)
        ping.label("out")
        ping.ret(0)
        pong = mb.function("pong", params=["n"])
        pong.syscall("write", [1, 0, 0])
        pong.call("ping", [0])
        pong.ret(0)
        f = mb.function("main")
        f.call("ping", [1])
        f.ret(0)
        got = edges(graph_of(mb))
        assert ("read", "write") in got and ("write", "read") in got
        assert (START, "read") in got

    def test_indirect_call_fans_out_to_address_taken(self):
        """An indirect callsite reaches every address-taken function —
        and only those (handler_c exists but is never taken)."""
        mb = ModuleBuilder("m")
        for name, sc in (("handler_a", "read"), ("handler_b", "write")):
            h = mb.function(name, params=["x"], sig="h")
            h.syscall(sc, [0, 0, 0])
            h.ret(0)
        h = mb.function("handler_c", params=["x"], sig="h")
        h.syscall("execve", [0, 0, 0])
        h.ret(0)
        f = mb.function("main")
        f.syscall("open", [0, 0])
        t = f.funcaddr("handler_a")
        f.icall(t, [0], sig="h")
        f.ret(0)
        graph = graph_of(mb, indirect=("handler_a", "handler_b"))
        got = edges(graph)
        assert got[("open", "read")] == {"handler_a"}
        assert got[("open", "write")] == {"handler_b"}
        assert "execve" not in graph.nodes
        assert "handler_c" not in graph.reachable

    def test_unresolvable_callee_is_passthrough(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        f.syscall("open", [0, 0])
        f.call("extern_not_linked", [0])
        f.syscall("close", [0])
        f.ret(0)
        assert ("open", "close") in edges(graph_of(mb))

    def test_dead_function_syscalls_excluded(self):
        """Reachability roots at entry: a linked-but-never-called
        function contributes nothing (what an attacker jumping into dead
        code runs into)."""
        mb = ModuleBuilder("m")
        dead = mb.function("maintenance_mode")
        dead.syscall("chmod", [0, 0])
        dead.ret(0)
        f = mb.function("main")
        f.syscall("write", [1, 0, 0])
        f.ret(0)
        graph = graph_of(mb)
        assert "chmod" not in graph.nodes
        assert "maintenance_mode" not in graph.reachable

    def test_clone_row_from_thread_entries(self):
        """clone's successors include every thread entry's first syscall
        (the child state is snapshotted from the parent at the spawn)."""
        mb = ModuleBuilder("m")
        worker = mb.function("worker", params=["arg"])
        worker.syscall("read", [0, 0, 0])
        worker.ret(0)
        f = mb.function("main")
        f.syscall("clone", [0])
        f.syscall("wait4", [0, 0, 0])
        f.ret(0)
        got = edges(graph_of(mb, threads=("worker",)))
        assert got[("clone", "read")] == {"worker"}
        assert ("clone", "wait4") in got

    def test_start_row_is_entry_first(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "open", 2)
        f = mb.function("main", params=["flag"])
        f.branch(f.p("flag"), "a", "b")
        f.label("a")
        f.call("open", [0, 0])
        f.ret(0)
        f.label("b")
        f.syscall("getpid", [])
        f.ret(0)
        graph = graph_of(mb)
        assert set(graph.transitions[START]) == {"open", "getpid"}


class TestCompiledPolicy:
    def _policy(self):
        return CompiledPolicy(
            producer="flowgraph",
            program="prog",
            entry="main",
            presence=("open", "read"),
            call_kinds={"open": ("direct",)},
            transitions={
                START: {"open": ("main",)},
                "open": {"read": ("main", "rdr")},
            },
            provenance={"functions": 3},
        )

    def test_queries(self):
        p = self._policy()
        assert p.allows_transition("open", "read")
        assert not p.allows_transition("read", "open")
        assert p.origins_of("open", "read") == ("main", "rdr")
        assert p.origins_of("read", "open") is None
        assert p.start_syscalls == ("open",)
        assert p.edge_count() == 2
        assert p.origin_count() == 3
        # 2 nodes -> 4 + 2 possible edges, 2 present
        assert p.density_pct() == round(100.0 * 2 / 6, 2)

    def test_serialization_roundtrip_and_byte_stability(self):
        p = self._policy()
        text = policy_json(p)
        # canonical: re-encoding the parsed payload is byte-identical
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        )
        clone = CompiledPolicy.from_payload(json.loads(text))
        assert policy_json(clone) == text
        assert clone.transitions["open"]["read"] == ("main", "rdr")

    def test_from_payload_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            CompiledPolicy.from_payload({"schema": "bogus/v0"})

    def test_presence_filter_kills_outside_presence(self):
        from repro.kernel.seccomp import (
            SECCOMP_RET_ALLOW,
            SECCOMP_RET_KILL_PROCESS,
            evaluate_filters,
        )
        from repro.syscalls.table import nr_of

        filt = build_presence_filter(self._policy(), label="sfip")
        assert evaluate_filters([filt], nr_of("open"))[0] == SECCOMP_RET_ALLOW
        assert evaluate_filters([filt], nr_of("read"))[0] == SECCOMP_RET_ALLOW
        assert (
            evaluate_filters([filt], nr_of("execve"))[0]
            == SECCOMP_RET_KILL_PROCESS
        )


class TestProducers:
    def test_flowgraph_producer_on_compiled_module(self):
        from repro.analyze.flowgraph import compile_policy
        from repro.compiler.pipeline import BastionCompiler

        mb = ModuleBuilder("prog")
        make_wrapper(mb, "open", 2)
        make_wrapper(mb, "read", 3)
        f = mb.function("main")
        f.call("open", [0, 0])
        f.call("read", [0, 0, 0])
        f.ret(0)
        artifact = BastionCompiler().compile(mb.build())
        policy = compile_policy(artifact)
        assert policy.producer == "flowgraph"
        assert policy.schema == "repro-policy/v1"
        assert policy.program == "prog"
        assert set(policy.presence) == {"open", "read"}
        assert policy.allows_transition(START, "open")
        assert policy.allows_transition("open", "read")
        assert policy.provenance["source"] == "compiler-metadata"

    def test_both_producers_agree_on_bench_app(self):
        """The binary producer may be coarser, never tighter: every
        flowgraph edge is admitted by the binary-recovered graph too."""
        from repro.analyze.binary import (
            compile_policy as compile_binary_policy,
        )
        from repro.analyze.binary import recover_image_for
        from repro.analyze.flowgraph import compile_policy
        from repro.apps import build_app_module
        from repro.compiler.pipeline import BastionCompiler

        module = build_app_module("vsftpd")
        artifact = BastionCompiler().compile(module)
        flow = compile_policy(artifact)
        binary = compile_binary_policy(
            recover_image_for(artifact.module),
            program=artifact.metadata.program,
        )
        flow_edges = {
            (prev, nxt)
            for prev, nexts in flow.transitions.items()
            for nxt in nexts
        }
        binary_edges = {
            (prev, nxt)
            for prev, nexts in binary.transitions.items()
            for nxt in nexts
        }
        assert flow_edges <= binary_edges
        assert set(flow.presence) <= set(binary.presence)
