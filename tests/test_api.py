"""Tests for the stable public API surface (repro.api)."""

import warnings

import pytest

import repro
from repro import api
from repro.api import ProtectConfig, RunResult, protect, run
from repro.apps.nginx import build_nginx
from repro.bench.harness import CONFIGS, run_app
from repro.apps.workloads import WrkWorkload
from repro.errors import ProcessKilled
from repro.monitor.monitor import SyscallIntegrityViolation
from repro.monitor.policy import ContextPolicy
from repro.monitor.verify import Violation

SCALE = 0.05


class TestExports:
    def test_top_level_exports(self):
        assert repro.ProtectConfig is ProtectConfig
        assert repro.run is run
        assert repro.protect is protect
        assert repro.RunResult is RunResult
        assert repro.SyscallIntegrityViolation is SyscallIntegrityViolation


class TestProtectConfig:
    def test_defaults_are_full_bastion(self):
        config = ProtectConfig()
        assert config.policy == ContextPolicy.full()
        assert config.policy.verdict_cache
        assert config.cet
        assert not config.extend_filesystem

    def test_defense_mapping(self):
        config = ProtectConfig(
            policy=ContextPolicy.ct_cf(), extend_filesystem=True, label="mine"
        )
        defense = config.defense()
        assert defense.name == "mine"
        assert defense.policy == ContextPolicy.ct_cf()
        assert defense.instrumented
        assert defense.extend_filesystem


class TestFluentPolicy:
    def test_without_arg_integrity(self):
        policy = ContextPolicy.full().without("arg_integrity")
        assert not policy.arg_integrity
        assert policy.call_type and policy.control_flow

    def test_without_aliases_and_chaining(self):
        policy = ContextPolicy.full().without("ct", "cf")
        assert policy == ContextPolicy.ai_only()
        assert ContextPolicy.full().without("cache").verdict_cache is False

    def test_with_contexts_is_the_dual(self):
        policy = ContextPolicy.ai_only().with_contexts("cf")
        assert policy.control_flow and policy.arg_integrity

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown policy feature"):
            ContextPolicy.full().without("dfi")


class TestProtect:
    def test_protect_bare(self):
        artifact = protect(build_nginx())
        assert artifact.metadata.sensitive_set

    def test_protect_with_config(self):
        config = ProtectConfig(sensitive=("mprotect", "execve"))
        artifact = protect(build_nginx(), config)
        assert set(artifact.metadata.sensitive_set) == {"mprotect", "execve"}

    def test_protect_rejects_mixed_config_and_kwargs(self):
        with pytest.raises(ValueError):
            protect(build_nginx(), ProtectConfig(), extend_filesystem=True)


class TestRun:
    def test_run_default_is_full_bastion_with_cache(self):
        result = run("nginx", scale=SCALE)
        assert isinstance(result, RunResult)
        assert result.ok
        assert result.config == "bastion"
        assert result.violations == []
        assert result.overhead_pct is not None
        assert result.monitor_stats["cache_hits"] + result.monitor_stats[
            "cache_misses"
        ] == result.monitor_stats["hooks"]
        assert 0.0 <= result.monitor_stats["hit_rate"] <= 1.0
        assert result.work_units > 0
        assert result.total_cycles == result.init_cycles + result.steady_cycles

    def test_run_accepts_config_names_and_defense(self):
        by_name = run("nginx", "cet", scale=SCALE)
        assert by_name.config == "cet"
        by_obj = run("nginx", CONFIGS["cet"], scale=SCALE)
        assert by_obj.config == "cet"

    def test_baseline_memoized(self):
        api._baseline_cache.clear()
        run("nginx", scale=SCALE)
        assert len(api._baseline_cache) == 1
        run("nginx", "cet", scale=SCALE)
        assert len(api._baseline_cache) == 1  # reused

    def test_custom_workload_skips_baseline(self):
        workload = WrkWorkload(connections=2, requests_per_connection=2)
        result = run("nginx", workload=workload)
        assert result.overhead_pct is None
        assert result.baseline is None
        assert result.work_units == 4

    def test_run_rejects_custom_sensitive(self):
        with pytest.raises(ValueError, match="sensitive"):
            run("nginx", ProtectConfig(sensitive=("read",)), scale=SCALE)

    def test_run_rejects_bad_config_type(self):
        with pytest.raises(TypeError):
            run("nginx", 42)


class TestViolationException:
    def test_is_a_real_exception(self):
        assert issubclass(SyscallIntegrityViolation, Exception)
        assert issubclass(SyscallIntegrityViolation, ProcessKilled)

    def test_carries_the_violation_record(self):
        violation = Violation("arg-integrity", "execve", "path corrupted", 0x40)
        exc = SyscallIntegrityViolation(violation)
        assert exc.violation is violation
        assert exc.context == "arg-integrity"
        assert exc.syscall == "execve"
        assert "path corrupted" in exc.detail
        assert "execve" in str(exc)

    def test_raise_on_violation(self, monkeypatch):
        violation = Violation("control-flow", "mprotect", "bad edge", 0x44)
        real = api._run_app

        def violating(app, **kwargs):
            result = real(app, **kwargs)
            if kwargs.get("config") != "vanilla":
                result.violations = [violation]
            return result

        monkeypatch.setattr(api, "_run_app", violating)
        with pytest.raises(SyscallIntegrityViolation) as excinfo:
            run("nginx", scale=SCALE, raise_on_violation=True)
        assert excinfo.value.violation is violation
        # without the flag the violations are just reported
        result = run("nginx", scale=SCALE)
        assert result.violations == [violation]


class TestMechanismSelector:
    """ProtectConfig(mechanism=...) — baselines through the stable API."""

    def test_every_registered_mechanism_runs(self):
        from repro.mechanisms import MECHANISM_NAMES

        for name in MECHANISM_NAMES:
            result = run(
                "nginx",
                ProtectConfig(mechanism=name),
                scale=SCALE,
                compare_baseline=False,
            )
            assert result.ok, name
            assert result.config == name

    @pytest.mark.parametrize(
        "name", ["seccomp_allowlist", "temporal", "debloat", "llvm_cfi", "dfi"]
    )
    def test_selector_matches_configs_path(self, name):
        """The mechanism selector must reproduce the CONFIGS verdicts and
        cycles exactly — it is a spelling, not a different defense."""
        via_api = run(
            "nginx",
            ProtectConfig(mechanism=name),
            scale=SCALE,
            compare_baseline=False,
        )
        via_configs = api._run_app("nginx", config=name, scale=SCALE)
        assert via_api.total_cycles == via_configs.total_cycles
        assert via_api.syscall_counts == via_configs.syscall_counts
        assert via_api.violations == list(via_configs.violations)

    def test_unknown_mechanism_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            ProtectConfig(mechanism="grsecurity")

    def test_non_bastion_mechanism_rejects_policy_customization(self):
        for bad in (
            ProtectConfig(mechanism="temporal", extend_filesystem=True),
            ProtectConfig(mechanism="dfi", sensitive=("read",)),
            ProtectConfig(
                mechanism="debloat", policy=ContextPolicy.full().without("cache")
            ),
        ):
            with pytest.raises(ValueError, match="BASTION"):
                bad.defense()

    def test_label_defaults_to_mechanism_name(self):
        assert ProtectConfig().defense().name == "bastion"
        assert ProtectConfig(mechanism="temporal").defense().name == "temporal"
        assert (
            ProtectConfig(mechanism="temporal", label="mine").defense().name
            == "mine"
        )


class TestRunResultStages:
    def test_stages_is_the_stage_cycles_view(self):
        result = run("nginx", scale=SCALE, compare_baseline=False)
        assert result.stages is result.stage_cycles
        assert result.stages.get("seccomp", 0) > 0
        # the monitor's verify sub-stages ride on the same bus
        assert any(key.startswith("verify") for key in result.stages)


class TestRunAppDeprecation:
    def test_workload_kwarg_warns(self):
        workload = WrkWorkload(connections=2, requests_per_connection=2)
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            run_app("nginx", "vanilla", workload=workload)

    def test_plain_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_app("nginx", "vanilla", scale=SCALE)

    def test_warning_attributed_to_caller(self):
        """The shared emission helper uses stacklevel so the warning
        points at the deprecated call site, not at the harness."""
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always", DeprecationWarning)
            workload = WrkWorkload(connections=2, requests_per_connection=2)
            run_app("nginx", "vanilla", workload=workload)
        assert len(captured) == 1
        assert captured[0].filename == __file__

    def test_single_emission_point(self, monkeypatch):
        """Every deprecated harness surface funnels through
        _warn_deprecated — patching it silences the warning."""
        from repro.bench import harness

        calls = []
        monkeypatch.setattr(
            harness, "_warn_deprecated", lambda message: calls.append(message)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            workload = WrkWorkload(connections=2, requests_per_connection=2)
            run_app("nginx", "vanilla", workload=workload)
        assert len(calls) == 1
        assert "repro.api.run" in calls[0]
