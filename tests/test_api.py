"""Tests for the stable public API surface (repro.api)."""

import warnings

import pytest

import repro
from repro import api
from repro.api import ProtectConfig, RunResult, protect, run
from repro.apps.nginx import build_nginx
from repro.bench.harness import CONFIGS, run_app
from repro.apps.workloads import WrkWorkload
from repro.errors import ProcessKilled
from repro.monitor.monitor import SyscallIntegrityViolation
from repro.monitor.policy import ContextPolicy
from repro.monitor.verify import Violation

SCALE = 0.05


class TestExports:
    def test_top_level_exports(self):
        assert repro.ProtectConfig is ProtectConfig
        assert repro.run is run
        assert repro.protect is protect
        assert repro.RunResult is RunResult
        assert repro.SyscallIntegrityViolation is SyscallIntegrityViolation


class TestProtectConfig:
    def test_defaults_are_full_bastion(self):
        config = ProtectConfig()
        assert config.policy == ContextPolicy.full()
        assert config.policy.verdict_cache
        assert config.cet
        assert not config.extend_filesystem

    def test_defense_mapping(self):
        config = ProtectConfig(
            policy=ContextPolicy.ct_cf(), extend_filesystem=True, label="mine"
        )
        defense = config.defense()
        assert defense.name == "mine"
        assert defense.policy == ContextPolicy.ct_cf()
        assert defense.instrumented
        assert defense.extend_filesystem


class TestFluentPolicy:
    def test_without_arg_integrity(self):
        policy = ContextPolicy.full().without("arg_integrity")
        assert not policy.arg_integrity
        assert policy.call_type and policy.control_flow

    def test_without_aliases_and_chaining(self):
        policy = ContextPolicy.full().without("ct", "cf")
        assert policy == ContextPolicy.ai_only()
        assert ContextPolicy.full().without("cache").verdict_cache is False

    def test_with_contexts_is_the_dual(self):
        policy = ContextPolicy.ai_only().with_contexts("cf")
        assert policy.control_flow and policy.arg_integrity

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown policy feature"):
            ContextPolicy.full().without("dfi")


class TestProtect:
    def test_protect_bare(self):
        artifact = protect(build_nginx())
        assert artifact.metadata.sensitive_set

    def test_protect_with_config(self):
        config = ProtectConfig(sensitive=("mprotect", "execve"))
        artifact = protect(build_nginx(), config)
        assert set(artifact.metadata.sensitive_set) == {"mprotect", "execve"}

    def test_protect_rejects_mixed_config_and_kwargs(self):
        with pytest.raises(ValueError):
            protect(build_nginx(), ProtectConfig(), extend_filesystem=True)


class TestRun:
    def test_run_default_is_full_bastion_with_cache(self):
        result = run("nginx", scale=SCALE)
        assert isinstance(result, RunResult)
        assert result.ok
        assert result.config == "bastion"
        assert result.violations == []
        assert result.overhead_pct is not None
        assert result.monitor_stats["cache_hits"] + result.monitor_stats[
            "cache_misses"
        ] == result.monitor_stats["hooks"]
        assert 0.0 <= result.monitor_stats["hit_rate"] <= 1.0
        assert result.work_units > 0
        assert result.total_cycles == result.init_cycles + result.steady_cycles

    def test_run_accepts_config_names_and_defense(self):
        by_name = run("nginx", "cet", scale=SCALE)
        assert by_name.config == "cet"
        by_obj = run("nginx", CONFIGS["cet"], scale=SCALE)
        assert by_obj.config == "cet"

    def test_baseline_memoized(self):
        api._baseline_cache.clear()
        run("nginx", scale=SCALE)
        assert len(api._baseline_cache) == 1
        run("nginx", "cet", scale=SCALE)
        assert len(api._baseline_cache) == 1  # reused

    def test_custom_workload_skips_baseline(self):
        workload = WrkWorkload(connections=2, requests_per_connection=2)
        result = run("nginx", workload=workload)
        assert result.overhead_pct is None
        assert result.baseline is None
        assert result.work_units == 4

    def test_run_rejects_custom_sensitive(self):
        with pytest.raises(ValueError, match="sensitive"):
            run("nginx", ProtectConfig(sensitive=("read",)), scale=SCALE)

    def test_run_rejects_bad_config_type(self):
        with pytest.raises(TypeError):
            run("nginx", 42)


class TestViolationException:
    def test_is_a_real_exception(self):
        assert issubclass(SyscallIntegrityViolation, Exception)
        assert issubclass(SyscallIntegrityViolation, ProcessKilled)

    def test_carries_the_violation_record(self):
        violation = Violation("arg-integrity", "execve", "path corrupted", 0x40)
        exc = SyscallIntegrityViolation(violation)
        assert exc.violation is violation
        assert exc.context == "arg-integrity"
        assert exc.syscall == "execve"
        assert "path corrupted" in exc.detail
        assert "execve" in str(exc)

    def test_raise_on_violation(self, monkeypatch):
        violation = Violation("control-flow", "mprotect", "bad edge", 0x44)
        real = api._run_app

        def violating(app, **kwargs):
            result = real(app, **kwargs)
            if kwargs.get("config") != "vanilla":
                result.violations = [violation]
            return result

        monkeypatch.setattr(api, "_run_app", violating)
        with pytest.raises(SyscallIntegrityViolation) as excinfo:
            run("nginx", scale=SCALE, raise_on_violation=True)
        assert excinfo.value.violation is violation
        # without the flag the violations are just reported
        result = run("nginx", scale=SCALE)
        assert result.violations == [violation]


class TestRunAppDeprecation:
    def test_workload_kwarg_warns(self):
        workload = WrkWorkload(connections=2, requests_per_connection=2)
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            run_app("nginx", "vanilla", workload=workload)

    def test_plain_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_app("nginx", "vanilla", scale=SCALE)
