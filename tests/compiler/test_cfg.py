"""Tests for the control-flow context analysis (§6.2)."""

from repro.compiler.calltype import analyze_call_types
from repro.compiler.cfg import analyze_control_flow, find_sensitive_sites
from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import CallSite, build_callgraph
from tests.conftest import make_wrapper


def _chain_module():
    """main -> outer -> inner -> mprotect(wrapper); 'other' is unrelated."""
    mb = ModuleBuilder("m")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "getpid", 0)

    inner = mb.function("inner")
    inner.call("mprotect", [0, 4096, 1])
    inner.ret(0)

    outer = mb.function("outer")
    outer.call("inner", [])
    outer.ret(0)

    other = mb.function("other")
    other.call("getpid", [])
    other.ret(0)

    f = mb.function("main")
    f.call("outer", [])
    f.call("other", [])
    f.ret(0)
    return mb.build()


def _analyze(module, sensitive=("mprotect",)):
    graph = build_callgraph(module)
    ct = analyze_call_types(module, graph)
    return analyze_control_flow(module, graph, ct, sensitive)


class TestSensitiveSites:
    def test_wrapper_callsites_found(self):
        module = _chain_module()
        graph = build_callgraph(module)
        ct = analyze_call_types(module, graph)
        sites = find_sensitive_sites(module, graph, ct, ("mprotect",))
        assert sites == {CallSite("inner", 0): "mprotect"}

    def test_inline_sensitive_sites_found(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        f.const(0)
        f.const(0)
        f.const(0)
        f.syscall("setuid", [33])
        f.ret(0)
        module = mb.build()
        graph = build_callgraph(module)
        ct = analyze_call_types(module, graph)
        sites = find_sensitive_sites(module, graph, ct, ("setuid",))
        assert CallSite("main", 3) in sites


class TestRelevance:
    def test_relevant_functions_on_path_only(self):
        info = _analyze(_chain_module())
        assert "inner" in info.relevant_functions
        assert "outer" in info.relevant_functions
        assert "main" in info.relevant_functions
        assert "mprotect" in info.relevant_functions
        # 'other' never reaches a sensitive syscall: not covered (the
        # "specifically narrow" property of §3.2)
        assert "other" not in info.relevant_functions
        assert "getpid" not in info.relevant_functions

    def test_valid_callers_edges(self):
        info = _analyze(_chain_module())
        assert info.valid_callers["inner"] == {CallSite("outer", 0)}
        assert info.valid_callers["outer"] == {CallSite("main", 0)}
        assert info.valid_callers["mprotect"] == {CallSite("inner", 0)}
        assert info.valid_callers["main"] == set()


class TestIndirectTermination:
    def test_address_taken_recorded(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "execve", 3)
        proc_body = mb.function("proc_body", params=["data"])
        proc_body.call("execve", [proc_body.p("data"), 0, 0])
        proc_body.ret(0)
        spawner = mb.function("spawner")
        h = spawner.funcaddr("proc_body")
        spawner.icall(h, [0], sig="fn1")
        spawner.ret(0)
        f = mb.function("main")
        f.call("spawner", [])
        f.ret(0)
        info = _analyze(mb.build(), ("execve",))
        assert "proc_body" in info.address_taken
        assert len(info.indirect_sites) == 1
        # proc_body has no direct callers; the CF walk terminates at the
        # indirect callsite instead
        assert info.valid_callers["proc_body"] == set()


class TestRealApps:
    def test_nginx_execve_path(self):
        from repro.apps.nginx import build_nginx

        info = _analyze(build_nginx(), ("execve",))
        assert "ngx_execute_proc" in info.relevant_functions
        assert "ngx_execute_proc" in info.address_taken  # via ngx_spawn_process
        execve_callers = info.valid_callers["execve"]
        assert all(site.caller in ("ngx_execute_proc", "system") for site in execve_callers)
