"""Compiler pass hooks and metadata provenance."""


from repro.compiler.pipeline import PASS_STAGES, BastionCompiler
from repro.ir.builder import ModuleBuilder
from tests.conftest import make_wrapper


def small_module():
    mb = ModuleBuilder("app")
    make_wrapper(mb, "setuid", 1)
    f = mb.function("main", params=[])
    f.call("setuid", [f.const(0)])
    f.ret(0)
    return mb.build()


def test_hook_sees_every_stage_in_order():
    seen = []
    BastionCompiler(hooks=lambda stage, payload: seen.append(stage)).compile(
        small_module()
    )
    assert seen == list(PASS_STAGES)


def test_hook_payload_types():
    payloads = {}
    BastionCompiler(
        hooks=lambda stage, payload: payloads.__setitem__(stage, payload)
    ).compile(small_module())
    from repro.compiler.calltype import CallTypeInfo
    from repro.compiler.metadata import BastionMetadata
    from repro.ir.callgraph import CallGraph

    assert isinstance(payloads["callgraph"], CallGraph)
    assert isinstance(payloads["calltype"], CallTypeInfo)
    assert isinstance(payloads["metadata"], BastionMetadata)
    assert payloads["validate"].name == "app"  # the validated input module


def test_multiple_hooks_all_invoked():
    a, b = [], []
    BastionCompiler(
        hooks=(lambda s, p: a.append(s), lambda s, p: b.append(s))
    ).compile(small_module())
    assert a == b == list(PASS_STAGES)


def test_no_hooks_is_the_default():
    compiler = BastionCompiler()
    assert compiler.hooks == ()
    compiler.compile(small_module())  # must not raise


def test_provenance_block_shape():
    module = small_module()
    artifact = BastionCompiler().compile(module)
    prov = artifact.metadata.provenance
    assert prov["tool"] == "repro.compiler"
    assert prov["passes"] == list(PASS_STAGES[:-1])
    assert prov["source_functions"] == len(module.functions)
    assert prov["source_instructions"] == module.instruction_count()
    assert (
        prov["instrumented_instructions"]
        == artifact.module.instruction_count()
    )
    assert prov["instrumented_instructions"] > prov["source_instructions"]
    assert prov["sensitive_set_size"] == len(artifact.metadata.sensitive_set)
