"""Property-based fuzzing of the whole compile→protect→run pipeline.

Hypothesis generates random (but valid) programs with sensitive syscall
callsites fed by random dataflow shapes, and we assert the pipeline's core
soundness property: **a benign program never triggers a violation** under
full BASTION enforcement, and its observable behaviour is unchanged by
instrumentation.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image
from tests.conftest import make_wrapper

# how each mprotect argument gets produced in the generated program
_ARG_SHAPES = st.sampled_from(
    ["imm", "const_local", "computed", "global_load", "field_load", "param"]
)


@st.composite
def programs(draw):
    """A random module: main -> mid(p) -> mprotect(args...)."""
    shapes = draw(st.lists(_ARG_SHAPES, min_size=3, max_size=3))
    extra_depth = draw(st.integers(min_value=0, max_value=2))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=7), min_size=3, max_size=3
        )
    )
    return shapes, extra_depth, values


def _build(shapes, extra_depth, values):
    mb = ModuleBuilder("fuzz")
    mb.struct("cfg_t", ["a", "b"])
    mb.global_var("g_val", init=11)
    mb.global_var("g_cfg", size=2, struct="cfg_t")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "getpid", 0)

    leaf = mb.function("leaf", params=["p0"])
    args = []
    for i, (shape, value) in enumerate(zip(shapes, values)):
        if shape == "imm":
            args.append(value)
        elif shape == "const_local":
            args.append(leaf.const(value, dst="c%d" % i))
        elif shape == "computed":
            a = leaf.const(value)
            args.append(leaf.binop("|", a, 0, dst="x%d" % i))
        elif shape == "global_load":
            p = leaf.addr_global("g_val")
            args.append(leaf.load(p, dst="g%d" % i))
        elif shape == "field_load":
            g = leaf.addr_global("g_cfg")
            fp = leaf.gep(g, "cfg_t", "a")
            args.append(leaf.load(fp, dst="f%d" % i))
        else:  # param
            args.append(leaf.p("p0"))
    rc = leaf.call("mprotect", [args[0], args[1], args[2]])
    leaf.ret(rc)

    prev = "leaf"
    for d in range(extra_depth):
        mid = mb.function("mid%d" % d, params=["m"])
        mid.call("getpid", [])
        r = mid.call(prev, [mid.p("m")])
        mid.ret(r)
        prev = "mid%d" % d

    f = mb.function("main")
    # initialize the sensitive field legitimately
    g = f.addr_global("g_cfg")
    fp = f.gep(g, "cfg_t", "a")
    f.store(fp, 5)
    r = f.call(prev, [3])
    f.ret(r)
    return mb.build()


@settings(max_examples=40, deadline=None)
@given(programs())
def test_benign_programs_never_violate(params):
    shapes, extra_depth, values = params
    module = _build(shapes, extra_depth, values)
    artifact = protect(module)
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    proc.mm.do_mmap(0, 1 << 20, 3, 0x22)
    status = cpu.run()
    assert status.kind == "returned", (status, shapes)
    assert monitor.violations == [], (monitor.violations[:1], shapes)
    assert monitor.hook_counts.get("mprotect") == 1


@settings(max_examples=20, deadline=None)
@given(programs())
def test_instrumentation_preserves_behaviour(params):
    shapes, extra_depth, values = params
    module = _build(shapes, extra_depth, values)
    artifact = protect(module)

    def run(mod):
        kernel = Kernel()
        image = Image(mod)
        proc = kernel.create_process("fuzz", image)
        proc.mm.do_mmap(0, 1 << 20, 3, 0x22)
        proc.bastion_runtime = None  # intrinsics become cost-only no-ops
        cpu = CPU(image, proc, kernel, CPUOptions())
        return cpu.run()

    plain = run(module)
    instrumented = run(artifact.module)
    assert (plain.kind, plain.code) == (instrumented.kind, instrumented.code)
