"""Tests for the argument-integrity analysis (§6.3): sensitivity sets,
bind-origin resolution, and inter-procedural propagation."""

from repro.compiler.argint import analyze_argument_integrity
from repro.compiler.calltype import analyze_call_types
from repro.compiler.cfg import find_sensitive_sites
from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import build_callgraph
from tests.conftest import make_wrapper


def _analyze(module, sensitive=("mmap", "mprotect", "execve")):
    graph = build_callgraph(module)
    ct = analyze_call_types(module, graph)
    sites = find_sensitive_sites(module, graph, ct, sensitive)
    return analyze_argument_integrity(module, graph, sites), sites


def _plan_for(info, sites, syscall):
    for site, name in sites.items():
        if name == syscall:
            return info.plans[site]
    raise AssertionError("no plan for %s" % syscall)


class TestBindResolution:
    def test_constant_args_bind_const(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        f.call("mprotect", [4096, 8192, 1])
        f.ret(0)
        info, sites = _analyze(mb.build())
        plan = _plan_for(info, sites, "mprotect")
        assert sorted(plan.binds) == [
            (1, "const", 4096),
            (2, "const", 8192),
            (3, "const", 1),
        ]

    def test_const_local_resolves_to_const(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        prot = f.const(5, dst="prot")
        f.call("mprotect", [0, 4096, prot])
        f.ret(0)
        info, sites = _analyze(mb.build())
        plan = _plan_for(info, sites, "mprotect")
        assert (3, "const", 5) in plan.binds

    def test_load_resolves_to_origin(self):
        """Figure 2: bind &gshm->size, not a load temporary."""
        mb = ModuleBuilder("m")
        mb.struct("shm_t", ["base", "size"])
        mb.global_var("gshm", size=2, struct="shm_t")
        make_wrapper(mb, "mmap", 6)
        f = mb.function("main")
        g = f.addr_global("gshm")
        size_p = f.gep(g, "shm_t", "size")
        size = f.load(size_p)
        f.call("mmap", [0, size, 3, 0x22, -1, 0])
        f.ret(0)
        info, sites = _analyze(mb.build())
        plan = _plan_for(info, sites, "mmap")
        mem_at = [b for b in plan.binds if b[1] == "mem_at"]
        assert mem_at and mem_at[0][0] == 2  # position 2 anchored at origin
        assert ("shm_t", "size") in info.sensitive_fields

    def test_computed_value_binds_own_slot(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        a = f.const(1)
        b = f.const(2)
        prot = f.binop("|", a, b, dst="prot")
        f.call("mprotect", [0, 4096, prot])
        f.ret(0)
        info, sites = _analyze(mb.build())
        plan = _plan_for(info, sites, "mprotect")
        assert (3, "mem", "prot") in plan.binds

    def test_move_chain_followed(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        orig = f.const(3, dst="orig")
        alias = f.move(orig, dst="alias")
        f.call("mprotect", [0, 4096, alias])
        f.ret(0)
        info, sites = _analyze(mb.build())
        plan = _plan_for(info, sites, "mprotect")
        assert (3, "const", 3) in plan.binds


class TestSensitivityPropagation:
    def test_param_pulls_caller_args(self):
        """Figure 2's b2 <- flags inter-procedural case."""
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mmap", 6)
        bar = mb.function("bar", params=["b0", "b1", "b2"])
        bar.call("mmap", [0, 100, 3, bar.p("b2"), -1, 0])
        bar.ret(0)
        foo = mb.function("foo")
        flags = foo.const(0x22, dst="flags")
        foo.call("bar", [1, 2, flags])
        foo.ret(0)
        f = mb.function("main")
        f.call("foo", [])
        f.ret(0)
        info, sites = _analyze(mb.build())
        assert ("bar", "b2") in info.sensitive_locals
        # the bar() callsite in foo gets a binding at position 3
        passthrough = [
            plan
            for site, plan in info.plans.items()
            if site.caller == "foo" and plan.syscall is None
        ]
        assert passthrough
        assert any(b[0] == 3 for b in passthrough[0].binds)

    def test_global_marked_and_stores_instrumented(self):
        mb = ModuleBuilder("m")
        mb.global_var("g_fd", init=0)
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        p = f.addr_global("g_fd")
        f.store(p, 7)
        v = f.load(p)
        f.call("mprotect", [v, 4096, 1])
        f.ret(0)
        info, _sites = _analyze(mb.build())
        assert "g_fd" in info.sensitive_globals
        assert info.sensitive_stores  # the store to g_fd gets ctx_write_mem

    def test_field_stores_discovered_across_functions(self):
        mb = ModuleBuilder("m")
        mb.struct("cfg_t", ["path", "mode"])
        mb.global_var("g_cfg", size=2, struct="cfg_t")
        make_wrapper(mb, "execve", 3)
        init = mb.function("init")
        g = init.addr_global("g_cfg")
        pp = init.gep(g, "cfg_t", "path")
        s = init.addr_global("g_cfg")  # placeholder pointer value
        init.store(pp, s)
        init.ret(0)
        runner = mb.function("runner")
        g2 = runner.addr_global("g_cfg")
        pp2 = runner.gep(g2, "cfg_t", "path")
        path = runner.load(pp2)
        runner.call("execve", [path, 0, 0])
        runner.ret(0)
        f = mb.function("main")
        f.call("init", [])
        f.call("runner", [])
        f.ret(0)
        info, _sites = _analyze(mb.build())
        assert ("cfg_t", "path") in info.sensitive_fields
        # init's store to the field is in the instrumentation set
        assert any(site.caller == "init" for site in info.sensitive_stores)

    def test_index_marks_index_variable(self):
        """Listing 2: the array index is in the use-def chain."""
        mb = ModuleBuilder("m")
        mb.global_var("g_table", size=8)
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main", params=["i"])
        base = f.addr_global("g_table")
        slot = f.index(base, f.p("i"))
        v = f.load(slot)
        f.call("mprotect", [v, 4096, 1])
        f.ret(0)
        info, _sites = _analyze(mb.build())
        assert ("main", "i") in info.sensitive_locals
        assert "g_table" in info.sensitive_globals

    def test_return_value_chain(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        producer = mb.function("producer")
        v = producer.const(4096, dst="page")
        producer.ret(v)
        f = mb.function("main")
        r = f.call("producer", [])
        f.call("mprotect", [r, 4096, 1])
        f.ret(0)
        info, _sites = _analyze(mb.build())
        assert ("producer", "page") in info.sensitive_locals

    def test_unrelated_code_untouched(self):
        mb = ModuleBuilder("m")
        make_wrapper(mb, "mprotect", 3)
        noise = mb.function("noise")
        noise.const(1, dst="junk")
        noise.ret(0)
        f = mb.function("main")
        f.call("noise", [])
        f.call("mprotect", [0, 4096, 1])
        f.ret(0)
        info, _sites = _analyze(mb.build())
        assert ("noise", "junk") not in info.sensitive_locals


class TestRealApps:
    def test_nginx_exec_ctx_fields_sensitive(self):
        from repro.apps.nginx import build_nginx

        module = build_nginx()
        info, _sites = _analyze(
            module, ("execve", "mmap", "mprotect", "accept4", "setuid")
        )
        for field in ("path", "argv", "envp"):
            assert ("ngx_exec_ctx_t", field) in info.sensitive_fields
        # the execve path string itself is tracked (extended argument)
        assert "g_upgrade_path" in info.sensitive_globals
