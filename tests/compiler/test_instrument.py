"""Tests for the instrumentation pass (§6.3.3)."""

from repro.compiler.argint import analyze_argument_integrity
from repro.compiler.calltype import analyze_call_types
from repro.compiler.cfg import find_sensitive_sites
from repro.compiler.instrument import instrument_module
from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import build_callgraph
from repro.ir.instructions import (
    AddrLocal,
    Call,
    Intrinsic,
    Load,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
)
from repro.ir.validate import validate_module
from tests.conftest import make_wrapper


def _instrument(module, sensitive=("mmap", "mprotect", "execve")):
    graph = build_callgraph(module)
    ct = analyze_call_types(module, graph)
    sites = find_sensitive_sites(module, graph, ct, sensitive)
    info = analyze_argument_integrity(module, graph, sites)
    return instrument_module(module, info), info


def _intrinsics(func, name):
    return [i for i in func.body if isinstance(i, Intrinsic) and i.name == name]


def _figure2_module():
    """foo(flags) -> bar(b2) -> mmap(..., b2, ...): the paper's Figure 2."""
    mb = ModuleBuilder("m")
    make_wrapper(mb, "mmap", 6)
    bar = mb.function("bar", params=["b0", "b1", "b2"])
    prots = bar.const(3, dst="prots")
    bar.call("mmap", [0, 100, prots, bar.p("b2"), -1, 0])
    bar.ret(0)
    foo = mb.function("foo")
    flags = foo.binop("|", 0x20, 0x02, dst="flags")
    foo.call("bar", [1, 2, flags])
    foo.ret(0)
    f = mb.function("main")
    f.call("foo", [])
    f.ret(0)
    return mb.build()


class TestPlacement:
    def test_binds_precede_the_callsite(self):
        result, _info = _instrument(_figure2_module())
        bar = result.module.functions["bar"]
        call_idx = next(
            i for i, ins in enumerate(bar.body) if isinstance(ins, Call)
        )
        binds = [
            i
            for i, ins in enumerate(bar.body)
            if isinstance(ins, Intrinsic) and ins.name.startswith("ctx_bind")
        ]
        assert binds and all(i < call_idx for i in binds)
        # and their metadata points at the call instruction
        for i in binds:
            assert bar.body[i].meta["callsite_index"] == call_idx

    def test_sensitive_param_refreshed_at_entry(self):
        """Figure 2 line 11: ctx_write_mem(&b2) at function entry."""
        result, _info = _instrument(_figure2_module())
        bar = result.module.functions["bar"]
        assert isinstance(bar.body[0], AddrLocal)
        assert bar.body[0].var == "b2"
        assert isinstance(bar.body[1], Intrinsic)
        assert bar.body[1].name == CTX_WRITE_MEM

    def test_const_binds_for_constants(self):
        result, _info = _instrument(_figure2_module())
        bar = result.module.functions["bar"]
        const_binds = _intrinsics(bar, CTX_BIND_CONST)
        bound_values = {b.args[0].value for b in const_binds}
        assert {0, 100, -1, 0}.issubset(bound_values | {0})
        assert result.ctx_bind_const_count >= 3

    def test_passthrough_callsite_instrumented(self):
        result, _info = _instrument(_figure2_module())
        foo = result.module.functions["foo"]
        binds = _intrinsics(foo, CTX_BIND_MEM) + _intrinsics(foo, CTX_BIND_CONST)
        assert binds  # the bar() callsite carries flags' binding

    def test_wrappers_never_instrumented(self):
        result, _info = _instrument(_figure2_module())
        mmap = result.module.functions["mmap"]
        assert not any(isinstance(i, Intrinsic) for i in mmap.body)

    def test_loads_do_not_refresh(self):
        mb = ModuleBuilder("m")
        mb.global_var("g", init=7)
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        p = f.addr_global("g")
        v = f.load(p, dst="v")
        f.call("mprotect", [v, 4096, 1])
        f.ret(0)
        result, _info = _instrument(mb.build())
        main = result.module.functions["main"]
        for i, ins in enumerate(main.body):
            if isinstance(ins, Load):
                nxt = main.body[i + 1]
                assert not (
                    isinstance(nxt, Intrinsic) and ins.dst in [
                        a.name for a in nxt.uses() if hasattr(a, "name")
                    ]
                ), "load result must not be shadow-refreshed"

    def test_sensitive_store_refreshed(self):
        mb = ModuleBuilder("m")
        mb.global_var("g", init=0)
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        p = f.addr_global("g")
        f.store(p, 9)
        v = f.load(p)
        f.call("mprotect", [v, 4096, 1])
        f.ret(0)
        result, _info = _instrument(mb.build())
        main = result.module.functions["main"]
        writes = _intrinsics(main, CTX_WRITE_MEM)
        assert writes  # the store to the sensitive global is tracked


class TestStructure:
    def test_original_module_untouched(self):
        module = _figure2_module()
        before = {name: len(f.body) for name, f in module.functions.items()}
        _result, _info = _instrument(module)
        after = {name: len(f.body) for name, f in module.functions.items()}
        assert before == after

    def test_instrumented_module_still_validates(self):
        result, _info = _instrument(_figure2_module())
        validate_module(result.module)

    def test_site_map_translates_indices(self):
        module = _figure2_module()
        result, _info = _instrument(module)
        for (func_name, old_idx), new_idx in result.site_map.items():
            old = module.functions[func_name].body[old_idx]
            new = result.module.functions[func_name].body[new_idx]
            assert type(old) is type(new)

    def test_counts_sum(self):
        result, _info = _instrument(_figure2_module())
        assert result.total_sites == (
            result.ctx_write_mem_count
            + result.ctx_bind_mem_count
            + result.ctx_bind_const_count
        )
        assert result.total_sites > 0

    def test_real_app_instruments_and_validates(self):
        from repro.apps.nginx import build_nginx

        result, _info = _instrument(
            build_nginx(), ("execve", "mmap", "mprotect", "accept4", "setuid")
        )
        validate_module(result.module)
        assert result.ctx_write_mem_count > 10
