"""Tests for metadata serialization and the compiler pipeline facade."""


from repro.compiler.metadata import (
    ArgBindingMeta,
    BastionMetadata,
    CallsiteMeta,
    SiteKey,
)
from repro.compiler.pipeline import BastionCompiler, protect
from repro.ir.builder import ModuleBuilder
from repro.syscalls.sensitive import FILESYSTEM_EXTENSION, SENSITIVE_SYSCALLS
from tests.conftest import make_wrapper


def _small_module():
    mb = ModuleBuilder("prog")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "open", 3)
    mb.global_string("g_path", "/etc/app.conf")
    f = mb.function("main")
    prot = f.const(1, dst="prot")
    f.call("mprotect", [0x10000000, 4096, prot])
    p = f.addr_global("g_path")
    f.call("open", [p, 0, 0])
    f.ret(0)
    return mb.build()


class TestPipeline:
    def test_protect_produces_artifact(self):
        artifact = protect(_small_module())
        assert artifact.original is not artifact.module
        assert artifact.metadata.program == "prog"
        assert artifact.image().entry_addr

    def test_metadata_call_types(self):
        artifact = protect(_small_module())
        assert artifact.metadata.call_types["mprotect"]["direct"]
        assert not artifact.metadata.call_types["mprotect"]["indirect"]
        assert "open" in artifact.metadata.call_types
        assert "execve" not in artifact.metadata.call_types

    def test_sensitive_set_default_and_extended(self):
        default = BastionCompiler().sensitive_names
        assert set(default) == set(SENSITIVE_SYSCALLS)
        extended = BastionCompiler(extend_filesystem=True).sensitive_names
        assert set(FILESYSTEM_EXTENSION).issubset(set(extended))

    def test_custom_sensitive_set(self):
        compiler = BastionCompiler(sensitive=("mprotect",))
        artifact = compiler.compile(_small_module())
        syscalls = {
            meta.syscall
            for meta in artifact.metadata.callsites.values()
            if meta.syscall
        }
        assert syscalls == {"mprotect"}

    def test_table5_stats_present(self):
        stats = protect(_small_module()).metadata.stats
        for key in (
            "total_callsites",
            "direct_callsites",
            "indirect_callsites",
            "sensitive_callsites",
            "sensitive_indirect_syscalls",
            "ctx_write_mem",
            "ctx_bind_mem",
            "ctx_bind_const",
            "total_instrumentation",
        ):
            assert key in stats
        assert stats["sensitive_callsites"] == 1  # only mprotect is sensitive
        assert stats["total_callsites"] == 2

    def test_sitekeys_reference_instrumented_module(self):
        artifact = protect(_small_module())
        for site in artifact.metadata.callsites:
            func = artifact.module.functions[site.func]
            assert 0 <= site.index < len(func.body)

    def test_fs_extension_adds_callsites(self):
        plain = protect(_small_module())
        extended = BastionCompiler(extend_filesystem=True).compile(_small_module())
        assert len(extended.metadata.callsites) > len(plain.metadata.callsites)

    def test_global_field_slots_for_struct_globals(self):
        mb = ModuleBuilder("m")
        mb.struct("ctx_t", ["path", "mode"])
        mb.global_var("g_ctx", size=2, struct="ctx_t")
        make_wrapper(mb, "execve", 3)
        f = mb.function("main")
        g = f.addr_global("g_ctx")
        pp = f.gep(g, "ctx_t", "path")
        f.store(pp, 0x1234)
        path = f.load(pp)
        f.call("execve", [path, 0, 0])
        f.ret(0)
        artifact = protect(mb.build())
        assert ("g_ctx", 0) in artifact.metadata.global_field_slots


class TestSerialization:
    def test_json_roundtrip(self):
        artifact = protect(_small_module())
        text = artifact.metadata.to_json()
        restored = BastionMetadata.from_json(text)
        assert restored.program == artifact.metadata.program
        assert restored.call_types == artifact.metadata.call_types
        assert restored.valid_callers == artifact.metadata.valid_callers
        assert restored.indirect_sites == artifact.metadata.indirect_sites
        assert set(restored.callsites) == set(artifact.metadata.callsites)
        assert restored.sensitive_globals == artifact.metadata.sensitive_globals
        assert restored.global_field_slots == artifact.metadata.global_field_slots
        assert restored.stats == artifact.metadata.stats

    def test_roundtrip_preserves_binds(self):
        artifact = protect(_small_module())
        restored = BastionMetadata.from_json(artifact.metadata.to_json())
        for site, meta in artifact.metadata.callsites.items():
            other = restored.callsites[site]
            assert other.binds == meta.binds
            assert other.syscall == meta.syscall

    def test_callsite_meta_bind_at(self):
        meta = CallsiteMeta(
            SiteKey("f", 0),
            "mmap",
            (ArgBindingMeta(1, "const", 0), ArgBindingMeta(3, "mem")),
        )
        assert meta.bind_at(1).kind == "const"
        assert meta.bind_at(3).kind == "mem"
        assert meta.bind_at(2) is None

    def test_real_app_roundtrip(self):
        from repro.apps.vsftpd import build_vsftpd

        artifact = protect(build_vsftpd())
        restored = BastionMetadata.from_json(artifact.metadata.to_json())
        assert len(restored.callsites) == len(artifact.metadata.callsites)
