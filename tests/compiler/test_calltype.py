"""Tests for the call-type context analysis (§6.1)."""

from repro.compiler.calltype import analyze_call_types, wrapper_map
from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import build_callgraph
from tests.conftest import make_wrapper


def _module(direct_call=True, take_address=False, inline=False):
    mb = ModuleBuilder("m")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "execve", 3)
    f = mb.function("main")
    if direct_call:
        f.call("mprotect", [0, 0, 0])
    if take_address:
        fp = f.funcaddr("mprotect")
        f.icall(fp, [0, 0, 0], sig="fn3")
    if inline:
        f.syscall("getpid", [])
    f.ret(0)
    return mb.build()


def _analyze(module):
    return analyze_call_types(module, build_callgraph(module))


class TestWrapperMap:
    def test_detects_flagged_wrappers(self):
        module = _module()
        wrappers = wrapper_map(module)
        assert wrappers["mprotect"] == ("mprotect",)
        assert wrappers["execve"] == ("execve",)
        assert "main" not in wrappers

    def test_unflagged_tiny_function_counts(self):
        mb = ModuleBuilder("m")
        w = mb.function("raw_getpid")
        w.syscall("getpid", [])
        w.ret(0)  # 2 instructions, no flag
        mb.function("main").ret(0)
        assert "raw_getpid" in wrapper_map(mb.build())

    def test_large_function_is_not_a_wrapper(self):
        mb = ModuleBuilder("m")
        f = mb.function("busy")
        for _ in range(5):
            f.const(0)
        f.syscall("getpid", [])
        f.ret(0)
        mb.function("main").ret(0)
        assert "busy" not in wrapper_map(mb.build())


class TestClassification:
    def test_directly_callable(self):
        info = _analyze(_module(direct_call=True))
        assert info.allows("mprotect", "direct")
        assert not info.allows("mprotect", "indirect")

    def test_indirectly_callable(self):
        info = _analyze(_module(direct_call=False, take_address=True))
        assert info.allows("mprotect", "indirect")

    def test_both(self):
        info = _analyze(_module(direct_call=True, take_address=True))
        assert info.allows("mprotect", "direct")
        assert info.allows("mprotect", "indirect")

    def test_not_callable_when_never_called(self):
        info = _analyze(_module(direct_call=True))
        # execve's wrapper exists but nothing calls it
        assert not info.is_used("execve")
        assert not info.allows("execve", "direct")

    def test_inline_syscall_is_direct(self):
        info = _analyze(_module(inline=True))
        assert info.allows("getpid", "direct")
        assert "main" in info.inline_sites

    def test_unknown_syscall_not_callable(self):
        info = _analyze(_module())
        assert not info.is_used("ptrace")
        assert not info.allows("ptrace", "direct")


class TestRealApps:
    def test_nginx_profile(self):
        from repro.apps.nginx import build_nginx

        info = _analyze(build_nginx())
        # Table 5's key finding: sensitive syscalls never indirectly callable
        for name in ("execve", "mprotect", "mmap", "accept4", "setuid"):
            assert info.allows(name, "direct"), name
            assert not info.allows(name, "indirect"), name
        # never used at all in nginx
        assert not info.is_used("ptrace")
        assert not info.is_used("chmod")
