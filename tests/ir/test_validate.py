"""Tests for the IR validator's error detection."""

import pytest

from repro.errors import IRValidationError
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Gep,
    Imm,
    Jump,
    Syscall,
    Var,
)
from repro.ir.validate import validate_module


def _module_with_main():
    mb = ModuleBuilder("m")
    f = mb.function("main")
    return mb, f


def test_valid_module_passes():
    mb, f = _module_with_main()
    f.const(1)
    f.ret(0)
    assert validate_module(mb.build()) is mb.module


def test_missing_entry():
    mb = ModuleBuilder("m")
    mb.function("not_main").ret(0)
    with pytest.raises(IRValidationError, match="entry"):
        validate_module(mb.build())


def test_empty_function_body():
    mb, f = _module_with_main()
    with pytest.raises(IRValidationError, match="empty body"):
        validate_module(mb.build())


def test_fallthrough_end():
    mb, f = _module_with_main()
    f.const(1)
    with pytest.raises(IRValidationError, match="falls off"):
        validate_module(mb.build())


def test_unknown_binop():
    mb, f = _module_with_main()
    f.func.append(BinOp("x", "**", Imm(2), Imm(3)))
    f.ret(0)
    with pytest.raises(IRValidationError, match="operator"):
        validate_module(mb.build())


def test_jump_to_unknown_label():
    mb, f = _module_with_main()
    f.func.append(Jump("nowhere"))
    with pytest.raises(IRValidationError, match="unknown label"):
        validate_module(mb.build())


def test_branch_to_unknown_label():
    mb, f = _module_with_main()
    f.label("here")
    f.func.append(Branch(Imm(1), "here", "gone"))
    f.ret(0)
    with pytest.raises(IRValidationError, match="unknown label"):
        validate_module(mb.build())


def test_call_to_undefined_function():
    mb, f = _module_with_main()
    f.func.append(Call("x", "ghost", []))
    f.ret(0)
    with pytest.raises(IRValidationError, match="undefined function"):
        validate_module(mb.build())


def test_funcaddr_of_undefined_function():
    mb, f = _module_with_main()
    f.funcaddr("ghost")
    f.ret(0)
    with pytest.raises(IRValidationError, match="address of undefined"):
        validate_module(mb.build())


def test_unknown_syscall_name():
    mb, f = _module_with_main()
    f.func.append(Syscall("x", "execve", [Imm(0)] * 7))
    f.ret(0)
    with pytest.raises(IRValidationError, match="at most 6"):
        validate_module(mb.build())


def test_syscall_name_must_exist():
    mb, f = _module_with_main()
    mb2, f2 = _module_with_main()
    f2.func.append(Syscall("x", "frobnicate", []))
    f2.ret(0)
    with pytest.raises(IRValidationError, match="unknown syscall"):
        validate_module(mb2.build())


def test_gep_unknown_struct_and_field():
    mb, f = _module_with_main()
    f.func.append(Gep("x", Var("p"), "nope_t", "f"))
    f.ret(0)
    with pytest.raises(IRValidationError, match="unknown struct"):
        validate_module(mb.build())

    mb2 = ModuleBuilder("m")
    mb2.struct("pair_t", ["a", "b"])
    f2 = mb2.function("main")
    f2.func.append(Gep("x", Var("p"), "pair_t", "zz"))
    f2.ret(0)
    with pytest.raises(IRValidationError, match="no field"):
        validate_module(mb2.build())


def test_unknown_global():
    mb, f = _module_with_main()
    f.addr_global("ghost")
    f.ret(0)
    with pytest.raises(IRValidationError, match="unknown global"):
        validate_module(mb.build())


def test_unknown_intrinsic():
    mb, f = _module_with_main()
    f.intrinsic("make_coffee")
    f.ret(0)
    with pytest.raises(IRValidationError, match="unknown intrinsic"):
        validate_module(mb.build())


def test_bastion_intrinsics_allowed():
    mb, f = _module_with_main()
    addr = f.const(0x600000)
    f.intrinsic("ctx_write_mem", [addr, 1])
    f.intrinsic("ctx_bind_mem", [addr], pos=1, callsite_index=0)
    f.intrinsic("ctx_bind_const", [7], pos=2, callsite_index=0)
    f.ret(0)
    validate_module(mb.build())


# ---------------------------------------------------------------------------
# definite assignment: uses of virtual registers undefined on some path
# ---------------------------------------------------------------------------


def test_use_before_def_rejected_with_location():
    from repro.ir.instructions import Move, Var

    mb = ModuleBuilder("m")
    f = mb.function("main", params=[])
    f.func.body.append(Move("y", Var("ghost")))
    f.ret(0)
    with pytest.raises(IRValidationError, match=r"main\[0\] \(block 0\).*%ghost"):
        validate_module(mb.build())


def test_cross_block_partial_definition_rejected():
    from repro.ir.instructions import Move, Var

    mb = ModuleBuilder("m")
    f = mb.function("main", params=["c"])
    f.branch(f.p("c"), "then", "join")
    f.label("then")
    f.const(1, dst="x")
    f.jump("join")
    f.label("join")
    f.func.body.append(Move("out", Var("x")))
    f.ret(0)
    with pytest.raises(IRValidationError, match="uses %x before any definition"):
        validate_module(mb.build())


def test_cross_block_full_definition_accepted():
    from repro.ir.instructions import Move, Var

    mb = ModuleBuilder("m")
    f = mb.function("main", params=["c"])
    f.branch(f.p("c"), "then", "else")
    f.label("then")
    f.const(1, dst="x")
    f.jump("join")
    f.label("else")
    f.const(2, dst="x")
    f.jump("join")
    f.label("join")
    f.func.body.append(Move("out", Var("x")))
    f.ret(0)
    validate_module(mb.build())  # must not raise


def test_address_taken_local_accepted():
    from repro.ir.instructions import Move, Var

    mb = ModuleBuilder("m")
    f = mb.function("main", params=[])
    f.func.body.append(Move("out", Var("r")))
    f.addr_local("r")
    f.ret(0)
    validate_module(mb.build())  # memory-backed local: may be stored through
