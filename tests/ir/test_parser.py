"""Tests for the textual IR parser and printer round-tripping."""

import pytest

from repro.errors import IRError
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import (
    BinOp,
    Call,
    Const,
    Imm,
    Intrinsic,
    Label,
    Load,
    Move,
    Store,
    Syscall,
    Var,
)
from repro.ir.parser import parse_instr, parse_module
from repro.ir.printer import format_module
from repro.ir.validate import validate_module


class TestParseInstr:
    def test_const(self):
        assert parse_instr("%x = const 42") == Const("x", 42)

    def test_binop(self):
        instr = parse_instr("%d = %a + $2")
        assert instr == BinOp("d", "+", Var("a"), Imm(2))

    def test_move(self):
        assert parse_instr("%d = %s") == Move("d", Var("s"))
        assert parse_instr("%d = $-7") == Move("d", Imm(-7))

    def test_load_store(self):
        assert parse_instr("%v = load %p") == Load("v", Var("p"))
        assert parse_instr("store %p <- $1") == Store(Var("p"), Imm(1))

    def test_calls(self):
        call = parse_instr("%r = call foo(%a, $1)")
        assert call == Call("r", "foo", [Var("a"), Imm(1)])
        void = parse_instr("call bar()")
        assert void == Call(None, "bar", [])

    def test_syscall(self):
        sc = parse_instr("%r = syscall mmap($0, %n, $3, $34, $-1, $0)")
        assert isinstance(sc, Syscall) and sc.name == "mmap"
        assert len(sc.args) == 6

    def test_label_and_jumps(self):
        assert parse_instr("loop:") == Label("loop")
        assert parse_instr("jump loop").label == "loop"
        branch = parse_instr("branch %c ? a : b")
        assert branch.then_label == "a" and branch.else_label == "b"

    def test_ret(self):
        assert parse_instr("ret").value is None
        assert parse_instr("ret %x").value == Var("x")

    def test_intrinsic_with_meta(self):
        instr = parse_instr("@ctx_bind_mem(%p) {'pos': 2, 'callsite_index': 5}")
        assert isinstance(instr, Intrinsic)
        assert instr.meta == {"pos": 2, "callsite_index": 5}

    def test_line_numbers_stripped(self):
        assert parse_instr("  12: %x = const 1") == Const("x", 1)

    def test_garbage_rejected(self):
        with pytest.raises(IRError):
            parse_instr("definitely not ir")
        with pytest.raises(IRError):
            parse_instr("%x = %a ** $2")


def _sample_module():
    mb = ModuleBuilder("sample")
    mb.struct("pair_t", ["first", "second"])
    mb.global_string("g_msg", "/bin/true")
    mb.global_var("g_pair", size=2, struct="pair_t")
    mb.global_words("g_tab", [1, 2, 3])

    w = mb.function("getpid", params=[])
    rc = w.syscall("getpid", [])
    w.ret(rc)
    w.func.is_wrapper = True

    f = mb.function("main")
    x = f.const(10, dst="x")
    p = f.addr_global("g_pair")
    fld = f.gep(p, "pair_t", "second")
    f.store(fld, x)
    v = f.load(fld)
    t = f.addr_global("g_tab")
    slot = f.index(t, v, scale=2)
    h = f.funcaddr("getpid")
    r = f.icall(h, [], sig="fn0")
    f.label("end")
    f.ret(r)
    return mb.build()


class TestRoundTrip:
    def test_module_round_trips(self):
        module = _sample_module()
        text = format_module(module)
        parsed = parse_module(text)
        assert format_module(parsed) == text
        validate_module(parsed)

    def test_round_trip_preserves_structure(self):
        module = _sample_module()
        parsed = parse_module(format_module(module))
        assert parsed.name == module.name
        assert set(parsed.functions) == set(module.functions)
        assert set(parsed.globals) == set(module.globals)
        assert parsed.globals["g_msg"].init == "/bin/true"
        assert parsed.globals["g_pair"].struct == "pair_t"
        assert parsed.functions["getpid"].is_wrapper
        for name, func in module.functions.items():
            assert len(parsed.functions[name].body) == len(func.body)

    def test_parsed_module_executes_identically(self):
        from tests.conftest import run_module

        module = _sample_module()
        parsed = parse_module(format_module(module))
        s1, p1, _ = run_module(module)
        s2, p2, _ = run_module(parsed)
        assert (s1.kind, s1.code) == (s2.kind, s2.code)

    def test_real_apps_round_trip(self):
        """Every workload app and attack target survives print->parse."""
        from repro.apps.browser import build_browser
        from repro.apps.httpd import build_httpd
        from repro.apps.mediasrv import build_mediasrv
        from repro.apps.nginx import build_nginx
        from repro.apps.sqlite import build_sqlite
        from repro.apps.vsftpd import build_vsftpd

        for build in (
            build_nginx,
            build_sqlite,
            build_vsftpd,
            build_httpd,
            build_browser,
            build_mediasrv,
        ):
            module = build()
            text = format_module(module)
            parsed = parse_module(text)
            assert format_module(parsed) == text, build.__name__

    def test_instrumented_module_round_trips(self):
        """Bind metadata (pos/callsite_index) survives the text form."""
        from repro.compiler.pipeline import protect

        artifact = protect(_sample_module())
        text = format_module(artifact.module)
        parsed = parse_module(text)
        assert format_module(parsed) == text


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(IRError, match="module header"):
            parse_module("func main() sig=fn0 {\n ret\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRError, match="unterminated"):
            parse_module("module m (entry=main)\nfunc main() sig=fn0 {\n ret")

    def test_junk_at_module_scope(self):
        with pytest.raises(IRError, match="unexpected line"):
            parse_module("module m (entry=main)\nwhatever")

    def test_empty_text(self):
        with pytest.raises(IRError, match="empty module"):
            parse_module("\n\n")
