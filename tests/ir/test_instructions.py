"""Tests for IR operands and instruction uses/defs."""

import pytest

from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    FuncAddr,
    Gep,
    Imm,
    Index,
    Intrinsic,
    Jump,
    Label,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
    as_operand,
)


class TestOperands:
    def test_as_operand_int(self):
        assert as_operand(42) == Imm(42)

    def test_as_operand_bool(self):
        assert as_operand(True) == Imm(1)

    def test_as_operand_str(self):
        assert as_operand("x") == Var("x")

    def test_as_operand_passthrough(self):
        v = Var("y")
        assert as_operand(v) is v
        i = Imm(7)
        assert as_operand(i) is i

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand(3.14)
        with pytest.raises(TypeError):
            as_operand([1, 2])

    def test_reprs(self):
        assert repr(Var("x")) == "%x"
        assert repr(Imm(5)) == "$5"


class TestUsesDefs:
    def test_const(self):
        i = Const("d", 1)
        assert i.defs() == ("d",)
        assert i.uses() == ()

    def test_move(self):
        i = Move("d", Var("s"))
        assert i.defs() == ("d",)
        assert i.uses() == (Var("s"),)

    def test_binop(self):
        i = BinOp("d", "+", Var("a"), Imm(2))
        assert set(i.uses()) == {Var("a"), Imm(2)}
        assert i.defs() == ("d",)

    def test_load_store(self):
        assert Load("d", Var("p")).uses() == (Var("p"),)
        st = Store(Var("p"), Var("v"))
        assert st.uses() == (Var("p"), Var("v"))
        assert st.defs() == ()

    def test_addr_instructions(self):
        assert AddrLocal("d", "x").defs() == ("d",)
        assert AddrGlobal("d", "g").defs() == ("d",)
        assert FuncAddr("d", "f").defs() == ("d",)

    def test_gep_index(self):
        gep = Gep("d", Var("b"), "S", "f")
        assert gep.uses() == (Var("b"),)
        idx = Index("d", Var("b"), Var("i"), 3)
        assert set(idx.uses()) == {Var("b"), Var("i")}

    def test_call_void_and_valued(self):
        call = Call("d", "f", [Var("a"), Imm(1)])
        assert call.defs() == ("d",)
        assert call.uses() == (Var("a"), Imm(1))
        void = Call(None, "f", [])
        assert void.defs() == ()

    def test_call_indirect(self):
        icall = CallIndirect("d", Var("p"), [Var("a")], "fn1")
        assert icall.uses() == (Var("p"), Var("a"))

    def test_syscall(self):
        sc = Syscall("d", "mmap", [Imm(0), Var("n")])
        assert sc.defs() == ("d",)
        assert sc.uses() == (Imm(0), Var("n"))

    def test_control_flow(self):
        assert Jump("L").is_terminator
        branch = Branch(Var("c"), "a", "b")
        assert branch.is_terminator
        assert branch.uses() == (Var("c"),)
        assert Ret(Var("v")).uses() == (Var("v"),)
        assert Ret().uses() == ()
        assert not Label("L").is_terminator

    def test_intrinsic(self):
        intr = Intrinsic("ctx_bind_mem", [Var("p")], None, {"pos": 2})
        assert intr.uses() == (Var("p"),)
        assert intr.defs() == ()
        valued = Intrinsic("trace", [], "d", {})
        assert valued.defs() == ("d",)
