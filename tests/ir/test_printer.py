"""Tests for the IR text printer."""

from repro.ir.builder import ModuleBuilder
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.instructions import Const, Store, Imm, Var


def test_format_instr_samples():
    assert format_instr(Const("x", 5)) == "%x = const 5"
    assert "store" in format_instr(Store(Var("p"), Imm(1)))


def test_format_function_contains_signature_and_body():
    mb = ModuleBuilder("m")
    f = mb.function("foo", params=["a"])
    f.const(1, dst="x")
    f.ret(f.var("x"))
    text = format_function(f.func)
    assert "func foo(a)" in text
    assert "%x = const 1" in text
    assert text.strip().endswith("}")


def test_format_module_lists_everything():
    mb = ModuleBuilder("prog")
    mb.struct("pair_t", ["a", "b"])
    mb.global_string("greeting", "hi")
    f = mb.function("main")
    f.ret(0)
    text = format_module(mb.build())
    assert "module prog" in text
    assert "struct pair_t { a, b }" in text
    assert 'global greeting = "hi"' in text
    assert "func main()" in text


def test_every_instruction_kind_formats():
    """Printing the real nginx module exercises every instruction kind."""
    from repro.apps.nginx import build_nginx

    text = format_module(build_nginx())
    assert "ngx_execute_proc" in text
    assert "syscall execve" in text
    assert "icall" in text
