"""Tests for call-graph construction."""

from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import CallSite, build_callgraph


def _diamond_module():
    """main -> a, b; a -> c; b -> c (indirectly); c contains a syscall."""
    mb = ModuleBuilder("m")
    c = mb.function("c")
    c.syscall("getpid", [])
    c.ret(0)

    a = mb.function("a")
    a.call("c", [])
    a.ret(0)

    b = mb.function("b")
    fp = b.funcaddr("c")
    b.icall(fp, [], sig="fn0")
    b.ret(0)

    m = mb.function("main")
    m.call("a", [])
    m.call("b", [])
    m.ret(0)
    return mb.build()


def test_direct_edges():
    module = _diamond_module()
    graph = build_callgraph(module)
    callers_of_c = graph.callers_of("c")
    assert callers_of_c == (CallSite("a", 0),)
    assert {s.caller for s in graph.callers_of("a")} == {"main"}
    assert {s.caller for s in graph.callers_of("b")} == {"main"}


def test_indirect_sites_and_sigs():
    graph = build_callgraph(_diamond_module())
    assert len(graph.indirect_sites) == 1
    site = graph.indirect_sites[0]
    assert site.caller == "b"
    assert graph.indirect_sigs[site] == "fn0"


def test_address_taken():
    graph = build_callgraph(_diamond_module())
    assert graph.address_taken == {"c"}
    assert graph.is_address_taken("c")
    assert not graph.is_address_taken("a")


def test_syscall_sites():
    graph = build_callgraph(_diamond_module())
    assert graph.functions_containing_syscall("getpid") == ("c",)
    assert graph.functions_containing_syscall("execve") == ()


def test_direct_callees():
    graph = build_callgraph(_diamond_module())
    assert set(graph.direct_callees("main")) == {"a", "b"}
    assert graph.direct_callees("c") == []


def test_reachable_from_includes_address_taken():
    module = _diamond_module()
    graph = build_callgraph(module)
    reachable = graph.reachable_from(["main"])
    # c is reachable both directly (via a) and as an address-taken function
    assert reachable == {"main", "a", "b", "c"}


def test_reachable_excludes_dead_code():
    mb = ModuleBuilder("m")
    mb.function("dead").ret(0)
    m = mb.function("main")
    m.ret(0)
    graph = build_callgraph(mb.build())
    assert "dead" not in graph.reachable_from(["main"])


# ---------------------------------------------------------------------------
# edge cases: function-pointer tables, recursion, unreachable functions
# ---------------------------------------------------------------------------


def _fp_table_module():
    """A vtable-style dispatch: handlers stored in a global table, fetched
    and invoked through an indirect call in the dispatcher."""
    mb = ModuleBuilder("fp")
    for name in ("h_read", "h_write", "h_close"):
        h = mb.function(name, params=["req"], sig="handler")
        h.ret(h.p("req"))

    mb.global_words("table", [0, 0, 0])

    init = mb.function("init_table")
    base = init.addr_global("table")
    for slot, name in enumerate(("h_read", "h_write", "h_close")):
        fp = init.funcaddr(name)
        init.store(init.index(base, init.const(slot)), fp)
    init.ret(0)

    disp = mb.function("dispatch", params=["op", "req"])
    base = disp.addr_global("table")
    fp = disp.load(disp.index(base, disp.p("op")))
    r = disp.icall(fp, [disp.p("req")], sig="handler")
    disp.ret(r)

    m = mb.function("main")
    m.call("init_table", [])
    m.call("dispatch", [m.const(0), m.const(7)])
    m.ret(0)
    return mb.build()


def test_fp_table_all_handlers_address_taken():
    graph = build_callgraph(_fp_table_module())
    assert graph.address_taken == {"h_read", "h_write", "h_close"}
    # no direct edge reaches any handler
    for name in ("h_read", "h_write", "h_close"):
        assert graph.callers_of(name) == ()


def test_fp_table_indirect_site_recorded_with_signature():
    graph = build_callgraph(_fp_table_module())
    assert len(graph.indirect_sites) == 1
    (site,) = graph.indirect_sites
    assert site.caller == "dispatch"
    assert graph.indirect_sigs[site] == "handler"


def test_fp_table_handlers_reachable_via_address_taken_closure():
    graph = build_callgraph(_fp_table_module())
    reach = graph.reachable_from(["main"])
    assert {"h_read", "h_write", "h_close"} <= reach


def test_direct_recursion_self_edge():
    mb = ModuleBuilder("rec")
    f = mb.function("fact", params=["n"])
    c = f.eq(f.p("n"), f.const(0))

    def base():
        f.ret(f.const(1))

    def rec():
        r = f.call("fact", [f.sub(f.p("n"), f.const(1))])
        f.ret(f.mul(f.p("n"), r))

    f.if_then(c, base, rec)
    f.ret(0)
    m = mb.function("main")
    m.call("fact", [m.const(5)])
    m.ret(0)
    graph = build_callgraph(mb.build())
    callers = [s.caller for s in graph.callers_of("fact")]
    assert "fact" in callers and "main" in callers
    # recursion must not break reachability
    assert "fact" in graph.reachable_from(["main"])


def test_mutual_recursion_edges_both_ways():
    mb = ModuleBuilder("mrec")
    even = mb.function("is_even", params=["n"])
    r = even.call("is_odd", [even.sub(even.p("n"), even.const(1))])
    even.ret(r)
    odd = mb.function("is_odd", params=["n"])
    r = odd.call("is_even", [odd.sub(odd.p("n"), odd.const(1))])
    odd.ret(r)
    m = mb.function("main")
    m.call("is_even", [m.const(4)])
    m.ret(0)
    graph = build_callgraph(mb.build())
    assert [s.caller for s in graph.callers_of("is_odd")] == ["is_even"]
    assert "is_odd" in [s.caller for s in graph.callers_of("is_even")]
    assert {"is_even", "is_odd"} <= graph.reachable_from(["main"])


def test_unreachable_function_has_edges_but_not_reachable():
    mb = ModuleBuilder("dead")
    helper = mb.function("helper")
    helper.syscall("getpid", [])
    helper.ret(0)
    dead = mb.function("dead_caller")  # nothing calls this
    dead.call("helper", [])
    dead.ret(0)
    m = mb.function("main")
    m.call("helper", [])
    m.ret(0)
    graph = build_callgraph(mb.build())
    # the edge from the dead function exists in the graph...
    assert "dead_caller" in [s.caller for s in graph.callers_of("helper")]
    # ...but the function itself is not reachable from main
    reach = graph.reachable_from(["main"])
    assert "dead_caller" not in reach
    assert "helper" in reach


def test_callsite_indices_match_body_positions():
    mb = ModuleBuilder("pos")
    m = mb.function("main")
    m.const(1, dst="x")
    m.call("f", [])  # index 1
    m.const(2, dst="y")
    m.call("f", [])  # index 3
    m.ret(0)
    f = mb.function("f")
    f.ret(0)
    graph = build_callgraph(mb.build())
    assert [s.index for s in graph.callers_of("f")] == [1, 3]
    assert graph.callee_of[CallSite("main", 1)] == "f"
