"""Tests for call-graph construction."""

from repro.ir.builder import ModuleBuilder
from repro.ir.callgraph import CallSite, build_callgraph


def _diamond_module():
    """main -> a, b; a -> c; b -> c (indirectly); c contains a syscall."""
    mb = ModuleBuilder("m")
    c = mb.function("c")
    c.syscall("getpid", [])
    c.ret(0)

    a = mb.function("a")
    a.call("c", [])
    a.ret(0)

    b = mb.function("b")
    fp = b.funcaddr("c")
    b.icall(fp, [], sig="fn0")
    b.ret(0)

    m = mb.function("main")
    m.call("a", [])
    m.call("b", [])
    m.ret(0)
    return mb.build()


def test_direct_edges():
    module = _diamond_module()
    graph = build_callgraph(module)
    callers_of_c = graph.callers_of("c")
    assert callers_of_c == (CallSite("a", 0),)
    assert {s.caller for s in graph.callers_of("a")} == {"main"}
    assert {s.caller for s in graph.callers_of("b")} == {"main"}


def test_indirect_sites_and_sigs():
    graph = build_callgraph(_diamond_module())
    assert len(graph.indirect_sites) == 1
    site = graph.indirect_sites[0]
    assert site.caller == "b"
    assert graph.indirect_sigs[site] == "fn0"


def test_address_taken():
    graph = build_callgraph(_diamond_module())
    assert graph.address_taken == {"c"}
    assert graph.is_address_taken("c")
    assert not graph.is_address_taken("a")


def test_syscall_sites():
    graph = build_callgraph(_diamond_module())
    assert graph.functions_containing_syscall("getpid") == ("c",)
    assert graph.functions_containing_syscall("execve") == ()


def test_direct_callees():
    graph = build_callgraph(_diamond_module())
    assert set(graph.direct_callees("main")) == {"a", "b"}
    assert graph.direct_callees("c") == []


def test_reachable_from_includes_address_taken():
    module = _diamond_module()
    graph = build_callgraph(module)
    reachable = graph.reachable_from(["main"])
    # c is reachable both directly (via a) and as an address-taken function
    assert reachable == {"main", "a", "b", "c"}


def test_reachable_excludes_dead_code():
    mb = ModuleBuilder("m")
    mb.function("dead").ret(0)
    m = mb.function("main")
    m.ret(0)
    graph = build_callgraph(mb.build())
    assert "dead" not in graph.reachable_from(["main"])
