"""Tests for the dataflow utilities backing the validator and the analyzer."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.ir.dataflow import (
    build_block_graph,
    def_use_chains,
    definitely_assigned,
    dominators,
)


def _func(module, name="main"):
    return module.functions[name]


class TestBlockGraph:
    def test_straight_line_is_one_block(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        a = f.const(1)
        b = f.const(2)
        f.ret(f.add(a, b))
        graph = build_block_graph(_func(mb.build()))
        assert len(graph.blocks) == 1
        assert graph.succs[0] == []
        assert graph.entry().start == 0

    def test_branch_builds_diamond(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["c"])
        f.branch(f.p("c"), "then", "else")
        f.label("then")
        f.const(1, dst="x")
        f.jump("join")
        f.label("else")
        f.const(2, dst="x")
        f.jump("join")
        f.label("join")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        assert len(graph.blocks) == 4
        assert sorted(graph.succs[0]) == [1, 2]
        assert graph.succs[1] == [3]
        assert graph.succs[2] == [3]
        assert sorted(graph.preds[3]) == [1, 2]

    def test_fallthrough_edge(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["c"])
        f.const(1, dst="x")
        f.label("next")  # label in the middle: new leader, fallthrough edge
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        assert len(graph.blocks) == 2
        assert graph.succs[0] == [1]
        assert graph.preds[1] == [0]

    def test_loop_back_edge(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["n"])
        f.label("head")
        c = f.lt(f.const(0), f.p("n"))
        f.branch(c, "head", "done")
        f.label("done")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        head = graph.block_of(0).index
        assert head in graph.succs[head]  # self back-edge

    def test_block_of_raises_outside_body(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        with pytest.raises(IndexError):
            graph.block_of(99)

    def test_unreachable_block_not_in_reachable_set(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.jump("end")
        f.label("island")  # nothing jumps here
        f.const(1, dst="dead")
        f.jump("end")
        f.label("end")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        island = graph.block_of(2).index
        assert island not in graph.reachable()


class TestDominators:
    def test_diamond_join_dominated_by_entry_only(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["c"])
        f.branch(f.p("c"), "then", "else")
        f.label("then")
        f.jump("join")
        f.label("else")
        f.jump("join")
        f.label("join")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        dom = dominators(graph)
        join = graph.block_of(len(_func(mb.build()).body) - 1).index
        assert dom[join] == {0, join}  # neither arm dominates the join

    def test_linear_chain_dominance(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.label("a")
        f.jump("b")
        f.label("b")
        f.jump("c")
        f.label("c")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        dom = dominators(graph)
        last = len(graph.blocks) - 1
        assert dom[last] == set(range(len(graph.blocks)))

    def test_unreachable_block_self_dominates(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.jump("end")
        f.label("island")
        f.jump("end")
        f.label("end")
        f.ret(0)
        graph = build_block_graph(_func(mb.build()))
        dom = dominators(graph)
        island = graph.block_of(2).index
        assert dom[island] == {island}


class TestDefUseChains:
    def test_positions_recorded_in_order(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["p"])
        x = f.const(1, dst="x")  # def of x at 0
        f.add(x, f.p("p"), dst="y")  # use of x at 1, def of y
        f.add(x, x, dst="x")  # use + redef of x at 2
        f.ret(0)
        defs, uses = def_use_chains(_func(mb.build()))
        assert defs["x"] == [0, 2]
        assert uses["x"] == [1, 2, 2]
        assert defs["y"] == [1]
        assert uses["p"] == [1]

    def test_params_have_no_defs(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["p"])
        f.ret(f.p("p"))
        defs, uses = def_use_chains(_func(mb.build()))
        assert "p" not in defs
        assert uses["p"]


class TestDefinitelyAssigned:
    def test_straight_line_clean(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        x = f.const(1, dst="x")
        f.ret(f.add(x, x))
        assert definitely_assigned(_func(mb.build())) == []

    def test_use_before_def_in_entry_block(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.func.body.append(_raw_move_use("ghost", "y"))
        f.ret(0)
        violations = definitely_assigned(_func(mb.build()))
        assert [v.var for v in violations] == ["ghost"]
        assert violations[0].index == 0

    def test_defined_on_one_arm_only_is_flagged(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["c"])
        f.branch(f.p("c"), "then", "join")
        f.label("then")
        f.const(1, dst="x")
        f.jump("join")
        f.label("join")
        f.func.body.append(_raw_move_use("x", "out"))
        f.ret(0)
        violations = definitely_assigned(_func(mb.build()))
        assert [v.var for v in violations] == ["x"]

    def test_defined_on_both_arms_is_clean(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["c"])
        f.branch(f.p("c"), "then", "else")
        f.label("then")
        f.const(1, dst="x")
        f.jump("join")
        f.label("else")
        f.const(2, dst="x")
        f.jump("join")
        f.label("join")
        f.func.body.append(_raw_move_use("x", "out"))
        f.ret(0)
        assert definitely_assigned(_func(mb.build())) == []

    def test_loop_carried_def_is_clean(self):
        # x defined before the loop, redefined inside: every path to the
        # backedge use has a definition.
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["n"])
        f.const(0, dst="x")
        f.label("head")
        f.func.body.append(_raw_move_use("x", "x"))
        c = f.lt(f.p("n"), f.const(10))
        f.branch(c, "head", "done")
        f.label("done")
        f.ret(0)
        assert definitely_assigned(_func(mb.build())) == []

    def test_def_only_inside_loop_body_flagged_at_head_use(self):
        # The loop head uses x; the only def is later in the body, so the
        # first iteration arrives undefined.
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["n"])
        f.label("head")
        f.func.body.append(_raw_move_use("x", "sink"))
        f.const(1, dst="x")
        c = f.lt(f.p("n"), f.const(10))
        f.branch(c, "head", "done")
        f.label("done")
        f.ret(0)
        violations = definitely_assigned(_func(mb.build()))
        assert [v.var for v in violations] == ["x"]

    def test_params_count_as_assigned(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=["p"])
        f.ret(f.add(f.p("p"), f.p("p")))
        assert definitely_assigned(_func(mb.build())) == []

    def test_address_taken_local_exempt(self):
        # Memory-backed idiom: &r taken, so r may be initialized via Store.
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.func.body.append(_raw_move_use("r", "out"))
        f.addr_local("r")
        f.ret(0)
        assert definitely_assigned(_func(mb.build())) == []

    def test_unreachable_block_not_checked(self):
        mb = ModuleBuilder("m")
        f = mb.function("main", params=[])
        f.jump("end")
        f.label("island")
        f.func.body.append(_raw_move_use("never_defined", "out"))
        f.jump("end")
        f.label("end")
        f.ret(0)
        assert definitely_assigned(_func(mb.build())) == []


def _raw_move_use(src_name, dst_name):
    """A ``Move dst <- %src`` built directly, bypassing builder bookkeeping."""
    from repro.ir.instructions import Move, Var

    return Move(dst_name, Var(src_name))
