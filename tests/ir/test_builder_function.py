"""Tests for the module/function builders and Function layout rules."""

import pytest

from repro.errors import IRError
from repro.ir.builder import ModuleBuilder
from repro.ir.function import Function
from repro.ir.instructions import Const, Label, Ret, Var


class TestFunctionLayout:
    def test_params_first_in_local_order(self):
        f = Function("f", params=["a", "b"])
        f.append(Const("x", 1))
        f.append(Const("y", 2))
        f.append(Ret(Var("x")))
        assert f.local_names()[:2] == ["a", "b"]
        assert f.local_slot("a") == 0
        assert f.local_slot("x") == 2
        assert f.frame_size == 4

    def test_duplicate_param_rejected(self):
        with pytest.raises(IRError):
            Function("f", params=["a", "a"])

    def test_labels_resolved(self):
        f = Function("f")
        f.append(Label("top"))
        f.append(Const("x", 1))
        f.append(Label("end"))
        f.append(Ret())
        assert f.label_index("top") == 0
        assert f.label_index("end") == 2

    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.append(Label("L"))
        f.append(Label("L"))
        with pytest.raises(IRError):
            f.labels  # noqa: B018 - property materializes the map

    def test_unknown_label_raises(self):
        f = Function("f")
        f.append(Ret())
        with pytest.raises(IRError):
            f.label_index("missing")

    def test_unknown_local_raises(self):
        f = Function("f")
        f.append(Ret())
        with pytest.raises(IRError):
            f.local_slot("ghost")

    def test_invalidate_after_mutation(self):
        f = Function("f")
        f.append(Ret())
        assert f.frame_size == 0
        f.body.insert(0, Const("x", 1))
        f.invalidate()
        assert f.frame_size == 1


class TestBuilders:
    def test_temps_are_fresh(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        a = f.const(1)
        b = f.const(2)
        assert a != b

    def test_explicit_dst(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        v = f.const(7, dst="seven")
        assert v == Var("seven")

    def test_loop_range_emits_working_loop(self):
        from tests.conftest import run_main

        def body(f):
            total = f.const(0, dst="total")

            def step(i):
                t = f.add(f.var("total"), i)
                f.move(t, dst="total")

            f.loop_range(f.const(5), step)
            f.intrinsic("trace", [f.var("total")])
            f.ret(f.var("total"))

        status, proc, _cpu = run_main(body)
        assert status.kind == "returned"
        assert proc.trace_log == [[10]]  # 0+1+2+3+4

    def test_if_then_else(self):
        from tests.conftest import run_main

        def body(f):
            cond = f.const(0)
            f.if_then(
                cond,
                lambda: f.intrinsic("trace", [f.const(1)]),
                lambda: f.intrinsic("trace", [f.const(2)]),
            )
            f.ret(0)

        status, proc, _cpu = run_main(body)
        assert proc.trace_log == [[2]]

    def test_duplicate_function_rejected(self):
        mb = ModuleBuilder("m")
        mb.function("f")
        with pytest.raises(IRError):
            mb.function("f")

    def test_global_string_size(self):
        mb = ModuleBuilder("m")
        g = mb.global_string("s", "abc")
        assert g.size == 4  # three chars + NUL
        assert g.initial_words() == [97, 98, 99, 0]

    def test_global_words(self):
        mb = ModuleBuilder("m")
        g = mb.global_words("w", [5, 6, 7])
        assert g.initial_words() == [5, 6, 7]

    def test_extend_merges_and_rejects_conflicts(self):
        lib = ModuleBuilder("lib")
        lib.function("helper").ret(0)
        lib.global_var("shared", init=1)
        app = ModuleBuilder("app")
        app.extend(lib.build())
        assert app.module.has_function("helper")
        other = ModuleBuilder("other")
        other.global_var("shared", init=2)
        with pytest.raises(IRError):
            app.extend(other.build())

    def test_fresh_label_unique(self):
        mb = ModuleBuilder("m")
        f = mb.function("main")
        assert f.fresh_label() != f.fresh_label()

    def test_default_sig_by_arity(self):
        mb = ModuleBuilder("m")
        f = mb.function("h", params=["a", "b", "c"])
        assert f.func.sig == "fn3"
        g = mb.function("g", params=["a"], sig="custom")
        assert g.func.sig == "custom"
