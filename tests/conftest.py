"""Shared fixtures and tiny-program builders for the test suite."""

import pytest

from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image


def make_wrapper(mb, name, arity):
    """Add a libc-style syscall wrapper to a module builder."""
    params = ["a%d" % i for i in range(arity)]
    fb = mb.function(name, params=params)
    rc = fb.syscall(name, [fb.p(p) for p in params])
    fb.ret(rc)
    fb.func.is_wrapper = True
    return fb


@pytest.fixture
def kernel():
    return Kernel()


def run_module(module, kernel=None, options=None, setup=None, hooks=None):
    """Load + run a module to completion; returns (status, proc, cpu)."""
    kernel = kernel or Kernel()
    image = Image(module)
    proc = kernel.create_process(module.name, image)
    cpu = CPU(image, proc, kernel, options or CPUOptions())
    if setup is not None:
        setup(kernel, proc, cpu)
    if hooks:
        cpu.hooks.update(hooks)
    status = cpu.run()
    return status, proc, cpu


def build_simple_program(body_fn, name="prog", globals_fn=None):
    """A module with a single main() whose body is emitted by ``body_fn``."""
    mb = ModuleBuilder(name)
    if globals_fn is not None:
        globals_fn(mb)
    f = mb.function("main", params=[])
    body_fn(f)
    if not f.func.body or not getattr(f.func.body[-1], "is_terminator", False):
        f.ret(0)
    return mb.build()


def run_main(body_fn, **kwargs):
    """Build + run a single-function program; returns (status, proc, cpu)."""
    module = build_simple_program(body_fn)
    return run_module(module, **kwargs)
