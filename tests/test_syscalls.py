"""Tests for the syscall table, Table 1 classification, and arg specs."""

import pytest

from repro.syscalls.argspec import ARG_SPECS, ArgKind, argspec_for
from repro.syscalls.sensitive import (
    SENSITIVE_BY_CATEGORY,
    SENSITIVE_SYSCALLS,
    FILESYSTEM_EXTENSION,
    AttackVector,
    category_of,
    is_sensitive,
    sensitive_numbers,
)
from repro.syscalls.table import SYSCALL_BY_NAME, SYSCALL_BY_NR, SYSCALLS, name_of, nr_of


class TestSyscallTable:
    def test_known_x86_64_numbers(self):
        # spot-check real kernel numbering
        assert nr_of("read") == 0
        assert nr_of("write") == 1
        assert nr_of("mmap") == 9
        assert nr_of("mprotect") == 10
        assert nr_of("clone") == 56
        assert nr_of("execve") == 59
        assert nr_of("accept4") == 288
        assert nr_of("execveat") == 322

    def test_no_duplicate_numbers_or_names(self):
        assert len({s.nr for s in SYSCALLS}) == len(SYSCALLS)
        assert len({s.name for s in SYSCALLS}) == len(SYSCALLS)

    def test_name_of_known_and_unknown(self):
        assert name_of(59) == "execve"
        assert name_of(9999) == "sys_9999"

    def test_lookup_maps_consistent(self):
        for entry in SYSCALLS:
            assert SYSCALL_BY_NAME[entry.name] is entry
            assert SYSCALL_BY_NR[entry.nr] is entry

    def test_nr_of_unknown_raises(self):
        with pytest.raises(KeyError):
            nr_of("not_a_syscall")


class TestSensitiveClassification:
    def test_exactly_twenty_sensitive(self):
        assert len(SENSITIVE_SYSCALLS) == 20

    def test_table1_contents(self):
        assert set(SENSITIVE_BY_CATEGORY[AttackVector.ARBITRARY_CODE_EXECUTION]) == {
            "execve",
            "execveat",
            "fork",
            "vfork",
            "clone",
            "ptrace",
        }
        assert set(SENSITIVE_BY_CATEGORY[AttackVector.MEMORY_PERMISSIONS]) == {
            "mprotect",
            "mmap",
            "mremap",
            "remap_file_pages",
        }
        assert set(SENSITIVE_BY_CATEGORY[AttackVector.PRIVILEGE_ESCALATION]) == {
            "chmod",
            "setuid",
            "setgid",
            "setreuid",
        }
        assert set(SENSITIVE_BY_CATEGORY[AttackVector.NETWORKING]) == {
            "socket",
            "bind",
            "connect",
            "listen",
            "accept",
            "accept4",
        }

    def test_is_sensitive(self):
        assert is_sensitive("execve")
        assert is_sensitive("accept4")
        assert not is_sensitive("getpid")
        assert not is_sensitive("read")
        assert is_sensitive("read", extended=True)
        assert is_sensitive("sendfile", extended=True)

    def test_sensitive_numbers_sorted_and_sized(self):
        numbers = sensitive_numbers()
        assert list(numbers) == sorted(numbers)
        assert len(numbers) == 20
        extended = sensitive_numbers(extended=True)
        assert len(extended) == 20 + len(FILESYSTEM_EXTENSION)

    def test_category_of(self):
        assert category_of("mprotect") is AttackVector.MEMORY_PERMISSIONS
        assert category_of("setuid") is AttackVector.PRIVILEGE_ESCALATION
        assert category_of("getpid") is None

    def test_all_sensitive_in_table(self):
        for name in SENSITIVE_SYSCALLS + FILESYSTEM_EXTENSION:
            assert name in SYSCALL_BY_NAME


class TestArgSpecs:
    def test_execve_pathname_extended(self):
        spec = argspec_for("execve")
        assert spec.kind(1) is ArgKind.EXTENDED
        assert spec.kind(2) is ArgKind.VECTOR
        assert spec.kind(3) is ArgKind.VECTOR

    def test_mmap_all_direct(self):
        spec = argspec_for("mmap")
        for position in range(1, 7):
            assert spec.kind(position) is ArgKind.DIRECT

    def test_accept4_sockaddr_fast_path(self):
        spec = argspec_for("accept4")
        assert spec.kind(2) is ArgKind.OUT_SOCKADDR
        assert spec.kind(4) is ArgKind.DIRECT

    def test_positions_beyond_spec_are_direct(self):
        assert argspec_for("setuid").kind(5) is ArgKind.DIRECT

    def test_unlisted_syscall_all_direct(self):
        spec = argspec_for("getpid")
        assert spec.kind(1) is ArgKind.DIRECT

    def test_every_sensitive_syscall_has_spec(self):
        for name in SENSITIVE_SYSCALLS:
            assert name in ARG_SPECS

    def test_chmod_path_extended(self):
        assert argspec_for("chmod").kind(1) is ArgKind.EXTENDED

    def test_bind_connect_sockaddr_extended(self):
        assert argspec_for("bind").kind(2) is ArgKind.EXTENDED
        assert argspec_for("connect").kind(2) is ArgKind.EXTENDED
