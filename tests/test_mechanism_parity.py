"""The parity matrix: every protection mechanism pinned against the seed.

``tests/fixtures/parity_seed.json`` was recorded on the last commit before
the dispatch-pipeline refactor (see ``tests/fixtures/record_parity.py``).
Each test here replays one (app, config) run through the current pipeline
and asserts the observable surface — status, work units, syscall counts,
monitor counters, and *exact* cycle totals — is identical.  A failure
means the refactor changed behavior or cost, not just structure.

Also pins the pipeline's structural contracts: stage order is enforced at
install time, mechanism hooks land between stages, and the temporal
baseline's phase switch actually swaps filters at the first ``accept``.
"""

import json

import pytest

from repro.bench.harness import run_app
from repro.errors import ProcessKilled
from repro.kernel.dispatch import (
    STAGE_ORDER,
    DispatchPipeline,
    StageOrderError,
    SyscallContext,
)
from repro.kernel.kernel import Kernel
from repro.telemetry import TelemetryBus
from tests.fixtures.record_parity import FIXTURE_PATH, snapshot


def _load_fixture():
    with open(FIXTURE_PATH) as fh:
        return json.load(fh)


_FIXTURE = _load_fixture()

#: runs are executed lazily, once per session, keyed "app/config"
_run_cache = {}


def _replay(key):
    if key not in _run_cache:
        app, config = key.split("/")
        _run_cache[key] = run_app(app, config, scale=_FIXTURE["scale"])
    return _run_cache[key]


@pytest.mark.parametrize("key", sorted(_FIXTURE["runs"]))
def test_mechanism_parity(key):
    """Replayed run surface == the pre-refactor recording, field by field."""
    assert snapshot(_replay(key)) == _FIXTURE["runs"][key]


def test_matrix_covers_every_mechanism():
    """The fixture exercises BASTION and all five baselines."""
    configs = {key.split("/")[1] for key in _FIXTURE["runs"]}
    assert {
        "vanilla",
        "llvm_cfi",
        "dfi",
        "cet_ct_cf_ai",
        "seccomp_allowlist",
        "temporal",
        "debloat",
    } <= configs


class TestStageOrder:
    def test_install_out_of_order_raises(self):
        pipeline = DispatchPipeline(TelemetryBus())
        pipeline.install("verify", lambda ctx: None)
        with pytest.raises(StageOrderError):
            pipeline.install("seccomp", lambda ctx: None)

    def test_install_unknown_stage_raises(self):
        pipeline = DispatchPipeline(TelemetryBus())
        with pytest.raises(StageOrderError):
            pipeline.install("frobnicate", lambda ctx: None)

    def test_kernel_pipeline_is_fully_populated_in_order(self):
        kernel = Kernel()
        assert tuple(kernel.pipeline.stage_names()) == STAGE_ORDER

    def test_insert_lands_after_stage_handlers(self):
        """A mechanism hook inserted at a stage runs after that stage's
        installed handlers but before the next stage's."""
        pipeline = DispatchPipeline(TelemetryBus())
        trace = []
        pipeline.install("count", lambda ctx: trace.append("count"))
        pipeline.install("seccomp", lambda ctx: trace.append("seccomp"))
        pipeline.insert("count", lambda ctx: trace.append("hook"))
        kernel = Kernel()
        proc = kernel.create_process("p", image=None)
        pipeline.run(SyscallContext(proc, "getpid", ()))
        assert trace == ["count", "hook", "seccomp"]


class TestTemporalPhaseSwitch:
    """The fixture alone can't catch a broken phase switch (temporal ==
    allowlist cycles when nothing init-only fires post-switch), so pin the
    mechanics directly: the serving filter installs at the first accept,
    after which init-only syscalls are killed."""

    def _launch(self):
        from repro.bench.harness import CONFIGS, build_app

        module = build_app("nginx")
        kernel = Kernel()
        mechanism = CONFIGS["temporal"].mechanism()
        proc, _cpu = mechanism.launch(kernel, "nginx", module)
        return kernel, mechanism, proc

    def _first_accept(self, kernel, proc):
        # the switch triggers at the dispatch pipeline's count stage, so
        # even an accept4 on a not-yet-listening socket flips the phase
        fd = kernel.syscall(proc, "socket", (2, 1, 0))
        kernel.syscall(proc, "accept4", (fd, 0, 0, 0))

    def test_serving_filter_installs_on_first_accept(self):
        kernel, mechanism, proc = self._launch()
        assert not mechanism.switched
        assert len(proc.seccomp_filters) == 1  # launch-time allowlist
        kernel.syscall(proc, "socket", (2, 1, 0))
        assert not mechanism.switched  # non-accept syscalls don't switch
        self._first_accept(kernel, proc)
        assert mechanism.switched
        assert len(proc.seccomp_filters) == 2

    def test_init_only_syscall_killed_after_switch(self):
        kernel, mechanism, proc = self._launch()
        # setuid is legal during init (the allowlist admits it) ...
        assert kernel.syscall(proc, "setuid", (33,)) == 0
        self._first_accept(kernel, proc)
        # ... but the serving phase kills it (the privilege drop is done)
        with pytest.raises(ProcessKilled):
            kernel.syscall(proc, "setuid", (0,))
        assert not proc.alive
