"""Cross-stack integration tests: the README quickstart path and the
paper's headline claims, end to end."""


from repro import BastionCompiler, protect
from repro.apps.nginx import build_nginx
from repro.bench.harness import run_app
from repro.bench.experiments import security_baseline_comparison
from repro.attacks.catalog import CATALOG
from repro.attacks.runner import evaluate_attack
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor


class TestQuickstartPath:
    def test_readme_flow(self):
        """The exact flow the README documents."""
        module = build_nginx()
        artifact = protect(module)
        assert artifact.metadata.stats["total_instrumentation"] > 0
        result = run_app("nginx", "cet_ct_cf_ai", scale=0.05)
        assert result.ok
        assert result.hook_total > 0

    def test_metadata_travels_as_json(self):
        """Compile once, ship metadata as JSON, monitor loads it back."""
        from repro.compiler.metadata import BastionMetadata
        from repro.compiler.pipeline import BastionArtifact

        artifact = protect(build_nginx())
        text = artifact.metadata.to_json()
        reloaded = BastionMetadata.from_json(text)
        rebuilt = BastionArtifact(
            original=artifact.original, module=artifact.module, metadata=reloaded
        )
        monitor = BastionMonitor(rebuilt)
        kernel = Kernel()
        proc, _cpu = monitor.launch(kernel)
        assert proc.seccomp_filters


class TestHeadlineClaims:
    """The abstract's claims, verified."""

    def test_low_overhead_on_syscall_intensive_apps(self):
        """'negligible performance overhead (0.60%-2.01%)' — shape: full
        BASTION stays under a few percent on all three applications."""
        for app, scale in (("nginx", 0.4), ("sqlite", 0.4), ("vsftpd", 0.6)):
            base = run_app(app, "vanilla", scale=scale)
            full = run_app(app, "cet_ct_cf_ai", scale=scale)
            overhead = full.overhead_pct(base)
            assert 0 < overhead < 6.0, (app, overhead)

    def test_contexts_cost_in_order(self):
        """Each added context costs more: CT <= CT+CF <= CT+CF+AI."""
        base = run_app("nginx", "vanilla", scale=0.4)
        ct = run_app("nginx", "cet_ct", scale=0.4).overhead_pct(base)
        cf = run_app("nginx", "cet_ct_cf", scale=0.4).overhead_pct(base)
        ai = run_app("nginx", "cet_ct_cf_ai", scale=0.4).overhead_pct(base)
        assert ct <= cf <= ai

    def test_stops_all_catalog_attacks(self):
        """'Bastion can effectively stop all the attacks' — full policy."""
        for spec in CATALOG:
            evaluation = evaluate_attack(spec)
            assert evaluation.valid, spec.name
            assert evaluation.blocked_by_full, spec.name

    def test_one_context_always_compensates(self):
        """'even if one context is bypassed, another ... can compensate'."""
        for spec in CATALOG:
            evaluation = evaluate_attack(spec)
            assert any(
                evaluation.blocks(context) for context in ("CT", "CF", "AI")
            ), spec.name


class TestBaselineContrast:
    def test_bastion_beats_baselines_on_coverage(self):
        """LLVM CFI and CET each miss attacks that BASTION blocks."""
        rows = security_baseline_comparison()
        cfi_misses = [r["attack"] for r in rows if r["cfi_bypassed"]]
        cet_misses = [r["attack"] for r in rows if r["cet_bypassed"]]
        assert cfi_misses, "LLVM CFI should miss type-compatible attacks"
        assert cet_misses, "CET should miss non-ROP attacks"
        # specifically the §10.3 set
        assert "control_jujutsu" in cfi_misses
        assert "aocr_nginx_attack2" in cet_misses


class TestExtendedScope:
    def test_fs_extension_protects_open(self):
        """§11.2: with the extension, AOCR Attack 1's open() is covered."""
        compiler = BastionCompiler(extend_filesystem=True)
        artifact = compiler.compile(build_nginx())
        assert "open" in artifact.metadata.sensitive_set

    def test_fs_extension_cost_is_ptrace_dominated(self):
        """Table 7's conclusion: state fetching dominates; the in-kernel
        variant removes most of it."""
        base = run_app("nginx", "vanilla", scale=0.3)
        hook = run_app("nginx", "fs_hook_only", scale=0.3)
        fetch = run_app("nginx", "fs_fetch_state", scale=0.3)
        full = run_app("nginx", "fs_full", scale=0.3)
        inkernel = run_app("nginx", "fs_full_inkernel", scale=0.3)
        hook_ovh = hook.overhead_pct(base)
        fetch_ovh = fetch.overhead_pct(base)
        full_ovh = full.overhead_pct(base)
        inkernel_ovh = inkernel.overhead_pct(base)
        assert hook_ovh < 5
        assert fetch_ovh > 20 * max(hook_ovh, 0.1)
        assert full_ovh >= fetch_ovh
        assert inkernel_ovh < fetch_ovh / 4
