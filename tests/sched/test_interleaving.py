"""Quantum-independence of monitor verdicts (the PR's acceptance criterion).

A run preempted every cycle (``quantum=1``) and a run that is effectively
cooperative (``quantum=10**6``) visit very different interleavings, but the
kernel raises :class:`~repro.errors.WouldBlock` *before* syscall counting
and seccomp, so every completed syscall produces exactly one trace stop —
the monitor must reach identical verdicts either way.
"""

from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.sched import Scheduler
from tests.conftest import make_wrapper

QUANTA = (1, 10**6)

#: pids are deterministic: root 1000, workers 1001/1002 in clone order
ROOT, WORKER_A, WORKER_B = 1000, 1001, 1002


def _pool_module(workers=2):
    """main mmaps a region, clones workers that mprotect it, reaps them."""
    mb = ModuleBuilder("sched-pool")
    make_wrapper(mb, "clone", 5)
    make_wrapper(mb, "wait4", 4)
    make_wrapper(mb, "mmap", 6)
    make_wrapper(mb, "mprotect", 3)

    w = mb.function("worker_start", params=["arg"])
    region = w.load(w.addr_global("g_region"))
    prot = w.const(1, dst="prot")
    w.hook("worker_vuln")
    w.burn(2_000)
    w.call("mprotect", [region, 4096, prot], void=True)
    w.ret(0)

    f = mb.function("main")
    region = f.call("mmap", [0, 8192, 3, 0x22, -1, 0])
    f.store(f.addr_global("g_region"), region)
    fn = f.funcaddr("worker_start")
    for i in range(workers):
        f.call("clone", [0, 0, fn, i, 0])
    f.hook("spawned")
    for _ in range(workers):
        f.call("wait4", [-1, 0, 0, 0], void=True)
    f.ret(0)
    mb.global_var("g_region", init=0)
    return mb.build()


def _run(quantum, corrupt=False):
    artifact = protect(_pool_module())
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    sched = Scheduler(kernel, quantum=quantum)
    sched.add(proc, cpu)
    if corrupt:
        # Worker CPUs only exist once clone() ran; arm the corruption from
        # a parent hook that fires right after both spawns.
        def arm(_parent_cpu):
            victim = sched.tasks[WORKER_B].cpu
            victim.hooks["worker_vuln"] = lambda c: c.proc.memory.write(
                c.local_addr("prot"), 7
            )

        cpu.hooks["spawned"] = arm
    statuses = sched.run()
    return monitor, sched, statuses


def _verdict_fingerprint(monitor, statuses):
    return (
        dict(monitor.hook_counts),
        [v.context for v in monitor.violations],
        {pid: status.kind for pid, status in statuses.items()},
        {
            pid: (session.killed, dict(session.stop_counts))
            for pid, session in sorted(monitor.sessions.items())
        },
    )


class TestQuantumIndependence:
    def test_clean_run_identical_verdicts(self):
        fingerprints = {}
        slices = {}
        for quantum in QUANTA:
            monitor, sched, statuses = _run(quantum)
            fingerprints[quantum] = _verdict_fingerprint(monitor, statuses)
            slices[quantum] = sched.stats.slices
        assert fingerprints[QUANTA[0]] == fingerprints[QUANTA[1]]
        # The interleavings really were different; only the verdicts match.
        assert slices[QUANTA[0]] > slices[QUANTA[1]]

    def test_violation_kills_only_offender_at_both_quanta(self):
        for quantum in QUANTA:
            monitor, sched, statuses = _run(quantum, corrupt=True)
            assert [v.context for v in monitor.violations] == ["arg-integrity"]
            assert statuses[WORKER_B].kind == "killed"
            assert statuses[WORKER_A].kind == "returned"
            assert statuses[ROOT].kind == "returned"
            assert monitor.sessions[WORKER_B].killed
            assert not monitor.sessions[WORKER_A].killed
            assert monitor.sessions[WORKER_A].violations == []

    def test_violation_fingerprints_match_across_quanta(self):
        runs = [_run(quantum, corrupt=True) for quantum in QUANTA]
        fingerprints = [
            _verdict_fingerprint(monitor, statuses)
            for monitor, _sched, statuses in runs
        ]
        assert fingerprints[0] == fingerprints[1]

    def test_sessions_track_per_pid_stops(self):
        monitor, _sched, _statuses = _run(QUANTA[1])
        assert set(monitor.sessions) >= {WORKER_A, WORKER_B}
        for pid in (WORKER_A, WORKER_B):
            assert monitor.sessions[pid].stop_counts.get("mprotect") == 1

    def test_verdict_cache_key_is_per_pid(self):
        from repro.kernel.process import RegisterFile
        from repro.monitor.cache import VerdictCache

        regs = RegisterFile(rip=0x1000, rbp=0x2000)
        key_a = VerdictCache.key_for("mprotect", regs, pid=WORKER_A)
        key_b = VerdictCache.key_for("mprotect", regs, pid=WORKER_B)
        assert key_a != key_b
