"""End-to-end: NGINX master + clone()d worker pool under concurrent wrk."""

from repro.apps.nginx import NginxConfig
from repro.apps.workloads import ConcurrentWrkWorkload
from repro.bench.harness import run_app_scheduled

REQUESTS = 6 * 4  # connections * requests_per_connection


def _workload():
    return ConcurrentWrkWorkload(
        connections=6, requests_per_connection=4, max_inflight=3
    )


def _pool(workers):
    return NginxConfig(workers=workers, master_serves=False)


class TestMultiWorkerNginx:
    def test_four_workers_serve_all_requests(self):
        result = run_app_scheduled(
            "nginx",
            config="cet_ct_cf_ai",
            app_config=_pool(4),
            workload=_workload(),
        )
        assert result.ok
        assert result.violations == []
        assert result.work_units == REQUESTS
        assert result.sched_stats["spawned"] == 4
        assert len(result.statuses) == 5  # master + 4 workers
        assert all(kind == "returned" for kind in result.statuses.values())
        assert result.throughput_mbps() > 0

    def test_latency_percentiles_populated(self):
        result = run_app_scheduled(
            "nginx", config="vanilla", app_config=_pool(2), workload=_workload()
        )
        latency = result.latency
        assert latency["count"] == REQUESTS
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]
        assert result.latency_ms("p99") > 0

    def test_protection_costs_cycles_not_requests(self):
        vanilla = run_app_scheduled(
            "nginx", config="vanilla", app_config=_pool(2), workload=_workload()
        )
        bastion = run_app_scheduled(
            "nginx",
            config="cet_ct_cf_ai",
            app_config=_pool(2),
            workload=_workload(),
        )
        assert vanilla.work_units == bastion.work_units
        assert bastion.total_cycles > vanilla.total_cycles

    def test_single_worker_pool_matches_request_count(self):
        result = run_app_scheduled(
            "nginx", config="vanilla", app_config=_pool(1), workload=_workload()
        )
        assert result.ok
        assert result.work_units == REQUESTS
        assert result.sched_stats["spawned"] == 1

    def test_api_run_scheduled(self):
        from repro.api import run

        result = run(
            "nginx",
            "cet_ct_cf_ai",
            workload=_workload(),
            app_config=_pool(2),
            scheduled=True,
        )
        assert result.ok
        assert result.latency["count"] == REQUESTS
        assert result.overhead_pct is None  # no baseline under a scheduler
        assert result.latency_ms("p50") > 0

    def test_paper_faithful_single_process_unchanged(self):
        """The default config still serves from the master with no clones
        (the seed's paper-faithful path)."""
        from repro.bench.harness import run_app

        result = run_app("nginx", "vanilla", scale=0.1)
        assert result.ok
        assert result.work_units > 0
