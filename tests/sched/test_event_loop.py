"""End-to-end: one epoll-driven NGINX worker multiplexing concurrent load.

The event-loop worker owns every connection in a single task —
nonblocking accept bursts, level-triggered ``epoll_wait``, pipelined
reads to EAGAIN — so these tests pin the properties the C10k benches
rely on: all requests served from one task, harvest batching (far fewer
``epoll_wait`` calls than requests), and monitor verdicts independent of
the scheduler quantum.
"""

from repro.apps.nginx import NginxConfig
from repro.apps.workloads import ConcurrentWrkWorkload
from repro.bench.harness import run_app_scheduled

CONNECTIONS = 6
REQUESTS_PER_CONNECTION = 4
REQUESTS = CONNECTIONS * REQUESTS_PER_CONNECTION

#: every completed syscall is counted/filtered/trace-stopped exactly once,
#: so a run preempted every cycle must reach the same verdicts as a
#: cooperative one
QUANTA = (1, 10**6)


def _workload():
    return ConcurrentWrkWorkload(
        connections=CONNECTIONS,
        requests_per_connection=REQUESTS_PER_CONNECTION,
        max_inflight=3,
    )


def _event_pool(workers=1):
    return NginxConfig(workers=workers, master_serves=False, event_loop=True)


def _run(config, quantum=None):
    return run_app_scheduled(
        "nginx",
        config=config,
        app_config=_event_pool(),
        workload=_workload(),
        quantum=quantum,
    )


def _verdict_fingerprint(result):
    """Everything the monitor decided, nothing the scheduler charged."""
    return (
        result.work_units,
        dict(result.syscall_counts),
        dict(result.hook_counts),
        [str(v) for v in result.violations],
        dict(result.statuses),
    )


class TestEventLoopNginx:
    def test_single_task_serves_all_requests(self):
        result = _run("vanilla")
        assert result.ok
        assert result.work_units == REQUESTS
        assert result.sched_stats["spawned"] == 1
        assert len(result.statuses) == 2  # master + one event worker
        assert all(kind == "returned" for kind in result.statuses.values())
        assert result.throughput_mbps() > 0

    def test_event_loop_uses_epoll_not_blocking_accept(self):
        counts = _run("vanilla").syscall_counts
        assert counts["epoll_create1"] == 1
        assert counts["epoll_ctl"] >= CONNECTIONS  # ADD per conn + listener
        assert counts["fcntl"] == 1  # listener made nonblocking
        # harvest batching: many requests per wakeup, not one wait each
        assert counts["epoll_wait"] < REQUESTS

    def test_protected_event_loop_serves_cleanly(self):
        result = _run("cet_ct_cf_ai")
        assert result.ok
        assert result.violations == []
        assert result.work_units == REQUESTS
        assert result.latency["count"] == REQUESTS
        assert 0 < result.latency["p50"] <= result.latency["p99"]

    def test_protection_costs_cycles_not_requests(self):
        vanilla = _run("vanilla")
        bastion = _run("cet_ct_cf_ai")
        assert vanilla.work_units == bastion.work_units
        assert bastion.total_cycles > vanilla.total_cycles


class TestQuantumIndependence:
    def test_event_loop_verdicts_quantum_independent(self):
        fingerprints = {
            quantum: _verdict_fingerprint(_run("cet_ct_cf_ai", quantum=quantum))
            for quantum in QUANTA
        }
        assert fingerprints[QUANTA[0]] == fingerprints[QUANTA[1]]

    def test_vanilla_service_quantum_independent(self):
        fingerprints = {
            quantum: _verdict_fingerprint(_run("vanilla", quantum=quantum))
            for quantum in QUANTA
        }
        assert fingerprints[QUANTA[0]] == fingerprints[QUANTA[1]]
