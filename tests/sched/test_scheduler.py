"""Scheduler semantics: preemption, blocking, reaping, drain, determinism."""

import pytest

from repro.errors import KernelError
from repro.kernel import errno
from repro.kernel.kernel import Kernel
from repro.kernel.net import BACKLOG_WAIT, Connection
from repro.sched import Scheduler
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image
from repro.ir.builder import ModuleBuilder
from tests.conftest import make_wrapper


def _launch(module, quantum=1000):
    kernel = Kernel()
    image = Image(module)
    proc = kernel.create_process(module.name, image)
    cpu = CPU(image, proc, kernel, CPUOptions())
    sched = Scheduler(kernel, quantum=quantum)
    sched.add(proc, cpu)
    return kernel, sched, proc, image


def _read_global(proc, image, name):
    return proc.memory.read(image.global_addr[name])


def _workers_module(workers=2, burn=40_000):
    """main clones ``workers`` spinning children, then wait4()s each."""
    mb = ModuleBuilder("sched-workers")
    make_wrapper(mb, "clone", 5)
    make_wrapper(mb, "wait4", 4)

    w = mb.function("worker_start", params=["arg"])
    w.burn(burn)
    g = w.addr_global("g_done")
    w.store(g, w.add(w.load(g), 1))
    w.ret(w.p("arg"))

    f = mb.function("main")
    fn = f.funcaddr("worker_start")
    for i in range(workers):
        f.call("clone", [0, 0, fn, 10 + i, 0])
    wst = f.addr_global("g_wstatus")
    for i in range(workers):
        pid = f.call("wait4", [-1, wst, 0, 0])
        f.store(f.addr_global("g_reaped%d" % i), pid)
    f.ret(0)

    mb.global_var("g_done", init=0)
    mb.global_var("g_wstatus", init=0)
    for i in range(workers):
        mb.global_var("g_reaped%d" % i, init=0)
    return mb.build()


class TestPreemptionAndReaping:
    def test_workers_interleave_and_all_complete(self):
        kernel, sched, proc, image = _launch(_workers_module(), quantum=500)
        statuses = sched.run()
        assert all(status.kind == "returned" for status in statuses.values())
        assert len(statuses) == 3  # main + 2 workers
        assert _read_global(proc, image, "g_done") == 2
        # Workers burn many quanta, so both were preempted mid-run, and the
        # parent's wait4 parked at least once while they still ran.
        assert sched.stats.preemptions > 0
        assert sched.stats.blocks >= 1
        assert sched.stats.spawned == 2

    def test_wait4_reaps_every_child_and_writes_wstatus(self):
        kernel, sched, proc, image = _launch(_workers_module(), quantum=500)
        sched.run()
        reaped = {
            _read_global(proc, image, "g_reaped0"),
            _read_global(proc, image, "g_reaped1"),
        }
        assert reaped == {child.pid for child in proc.children}
        assert all(child.reaped for child in proc.children)
        assert all(child.state == "reaped" for child in proc.children)
        # Children are reaped in list order; the last wstatus word carries
        # the second worker's exit code (its clone arg) in bits 8..15.
        assert _read_global(proc, image, "g_wstatus") == 11 << 8
        assert [e.details["child_pid"] for e in kernel.events_of("reap")] == [
            child.pid for child in proc.children
        ]

    def test_deterministic_across_runs(self):
        def once():
            kernel, sched, proc, image = _launch(_workers_module(), quantum=700)
            statuses = sched.run()
            return (
                {pid: s.kind for pid, s in statuses.items()},
                sched.stats.as_dict(),
                sched.now(),
            )

        assert once() == once()

    def test_stack_slots_released_on_exit(self):
        kernel, sched, proc, image = _launch(_workers_module(), quantum=500)
        sched.run()
        assert kernel.stacks.allocated == 2
        assert kernel.stacks.released == 2
        assert len(kernel.stacks) == 0
        # Both workers were alive at once, so both slots were held together.
        assert kernel.stacks.high_water == 2

    def test_clock_advances_with_any_task(self):
        kernel, sched, proc, image = _launch(_workers_module(), quantum=500)
        assert kernel.clock() == 0
        sched.run()
        total = sched.now()
        assert total > 0
        assert kernel.clock() == total
        # The clock is the union of per-process timelines.
        assert total == sum(
            p.ledger.cycles for p in kernel.processes.values()
        )

    def test_legacy_kernel_has_no_clock(self):
        assert Kernel().clock() is None


class TestAdmission:
    def test_quantum_must_be_positive(self):
        with pytest.raises(KernelError):
            Scheduler(Kernel(), quantum=0)

    def test_duplicate_add_rejected(self):
        kernel, sched, proc, image = _launch(_workers_module())
        with pytest.raises(KernelError):
            sched.add(proc, None)

    def test_corrupt_clone_entry_faults_child_only(self):
        """A clone() start routine that is not a function base faults the
        child (SIGSEGV-style) without taking down the parent."""
        mb = ModuleBuilder("bad-entry")
        make_wrapper(mb, "clone", 5)
        f = mb.function("main")
        f.call("clone", [0, 0, 0xBAD_BAD, 0, 0])
        f.ret(0)
        kernel, sched, proc, image = _launch(mb.build())
        statuses = sched.run()
        (child,) = proc.children
        assert statuses[proc.pid].kind == "returned"
        assert statuses[child.pid].kind == "fault"
        assert statuses[child.pid].code == 139
        assert not child.alive


def _accept_module():
    mb = ModuleBuilder("acceptor")
    make_wrapper(mb, "socket", 3)
    make_wrapper(mb, "listen", 2)
    make_wrapper(mb, "accept4", 4)
    f = mb.function("main")
    fd = f.call("socket", [2, 1, 0])
    f.call("listen", [fd, 16], void=True)
    rc = f.call("accept4", [fd, 0, 0, 0])
    f.store(f.addr_global("g_rc"), rc)
    f.ret(0)
    mb.global_var("g_rc", init=0)
    return mb.build()


class TestBlockingSyscalls:
    def test_accept_blocks_then_drains_to_eagain(self):
        """A lone acceptor with a never-ready backlog parks once, then the
        drain pass force-wakes it and accept fails with EAGAIN."""
        kernel, sched, proc, image = _launch(_accept_module())
        kernel.net.backlog_provider = lambda sock: BACKLOG_WAIT
        statuses = sched.run()
        assert statuses[proc.pid].kind == "returned"
        assert sched.draining
        assert sched.stats.blocks == 1
        assert sched.stats.forced_wakes == 1
        assert _read_global(proc, image, "g_rc") == -errno.EAGAIN

    def test_accept_wakes_when_connection_arrives(self):
        kernel, sched, proc, image = _launch(_accept_module())
        polls = [0]

        def provider(sock):
            polls[0] += 1
            if polls[0] >= 2:
                return Connection(peer_port=40000)
            return BACKLOG_WAIT

        kernel.net.backlog_provider = provider
        statuses = sched.run()
        assert statuses[proc.pid].kind == "returned"
        assert not sched.draining
        assert sched.stats.blocks == 1
        assert sched.stats.wakes == 1
        assert sched.stats.forced_wakes == 0
        assert _read_global(proc, image, "g_rc") >= 3  # a real fd

    def test_read_on_empty_connection_drains_to_eof(self):
        mb = ModuleBuilder("reader")
        make_wrapper(mb, "socket", 3)
        make_wrapper(mb, "listen", 2)
        make_wrapper(mb, "accept4", 4)
        make_wrapper(mb, "read", 3)
        f = mb.function("main")
        fd = f.call("socket", [2, 1, 0])
        f.call("listen", [fd, 16], void=True)
        cfd = f.call("accept4", [fd, 0, 0, 0])
        rc = f.call("read", [cfd, f.addr_global("g_buf"), 4])
        f.store(f.addr_global("g_rc"), rc)
        f.ret(0)
        mb.global_var("g_buf", size=8, init=0)
        mb.global_var("g_rc", init=-1)
        module = mb.build()

        kernel, sched, proc, image = _launch(module)
        served = [Connection(peer_port=40000)]  # empty inbox, never closed
        kernel.net.backlog_provider = lambda sock: served.pop() if served else None
        statuses = sched.run()
        assert statuses[proc.pid].kind == "returned"
        assert sched.draining
        assert sched.stats.blocks == 1  # parked on read, not on accept
        assert _read_global(proc, image, "g_rc") == 0  # EOF under drain
