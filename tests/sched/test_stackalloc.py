"""Tests for the collision-checked child stack-slot allocator."""

import pytest

from repro.errors import KernelError
from repro.sched import STACK_SLOT_BYTES, StackSlotAllocator
from repro.vm.loader import STACK_TOP


class TestAllocation:
    def test_slot_zero_reserved_for_root(self):
        alloc = StackSlotAllocator()
        assert alloc.allocate(1001) == STACK_TOP - STACK_SLOT_BYTES

    def test_bases_distinct_and_descending(self):
        alloc = StackSlotAllocator()
        bases = [alloc.allocate(1000 + i) for i in range(8)]
        assert len(set(bases)) == 8
        assert bases == sorted(bases, reverse=True)
        assert all((STACK_TOP - base) % STACK_SLOT_BYTES == 0 for base in bases)

    def test_idempotent_per_pid(self):
        alloc = StackSlotAllocator()
        assert alloc.allocate(1001) == alloc.allocate(1001)
        assert alloc.allocated == 1

    def test_release_recycles_lowest_slot_first(self):
        alloc = StackSlotAllocator()
        first = alloc.allocate(1001)
        alloc.allocate(1002)
        assert alloc.release(1001)
        # The freed (lower-numbered, higher-addressed) slot is reused first.
        assert alloc.allocate(1003) == first
        assert alloc.slot_of(1003) == 1
        assert alloc.owner(1) == 1003

    def test_release_unknown_pid_is_noop(self):
        alloc = StackSlotAllocator()
        assert not alloc.release(42)
        assert alloc.released == 0

    def test_pid_reuse_cannot_alias_live_stack(self):
        """The seed's ``pid % 64`` scheme aliased pids 64 apart; here pids
        that would have collided get disjoint regions."""
        alloc = StackSlotAllocator()
        base_a = alloc.allocate(1001)
        base_b = alloc.allocate(1001 + 64)
        assert base_a != base_b

    def test_exhaustion_raises_instead_of_aliasing(self):
        alloc = StackSlotAllocator(max_slots=4)
        for i in range(3):  # slots 1..3 (slot 0 is the root's)
            alloc.allocate(1001 + i)
        with pytest.raises(KernelError):
            alloc.allocate(2000)

    def test_counters(self):
        alloc = StackSlotAllocator()
        for i in range(4):
            alloc.allocate(1000 + i)
        alloc.release(1001)
        alloc.release(1002)
        alloc.allocate(2000)
        assert alloc.allocated == 5
        assert alloc.released == 2
        assert alloc.high_water == 4
        assert len(alloc) == 3
