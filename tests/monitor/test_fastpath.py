"""The monitor fast path: verdict cache, invalidation, and soundness."""


from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.cache import MonitorStats, VerdictCache, VerificationDeps
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.monitor.unwind import Frame
from repro.vm.cpu import CPUOptions
from tests.conftest import make_wrapper


# ---------------------------------------------------------------------------
# VerdictCache unit tests
# ---------------------------------------------------------------------------


def _frames():
    return [
        Frame("wrapper", 0x7FFF0040, 0x40_0010, 0x40_000C, "direct"),
        Frame("main", 0x7FFF0080, 0, None, "bottom"),
    ]


def _deps(shadow=(), callsites=(), volatile=False):
    deps = VerificationDeps()
    deps.shadow_addrs.update(shadow)
    deps.callsites.update(callsites)
    deps.volatile = volatile
    return deps


KEY = ("mprotect", 0x40_0020, 0x7FFF0040, (0x10000000, 4096, 1, 0, 0, 0))


class TestVerdictCache:
    def test_store_and_lookup(self):
        cache = VerdictCache()
        assert cache.lookup(KEY) is None
        entry = cache.store(KEY, _frames(), _deps(shadow={0x5000}))
        assert cache.lookup(KEY) is entry
        assert entry.probe == (0x7FFF0080, 0x40_0010)
        assert entry.depth == 2

    def test_volatile_verdicts_never_cached(self):
        cache = VerdictCache()
        assert cache.store(KEY, _frames(), _deps(volatile=True)) is None
        assert cache.lookup(KEY) is None

    def test_invalidate_shadow_drops_dependents(self):
        cache = VerdictCache()
        cache.store(KEY, _frames(), _deps(shadow={0x5000, 0x5008}))
        other = ("read",) + KEY[1:]
        cache.store(other, _frames(), _deps(shadow={0x6000}))
        cache.invalidate_shadow(0x5008)
        assert cache.lookup(KEY) is None
        assert cache.lookup(other) is not None
        assert cache.stats.invalidations == 1

    def test_invalidate_callsite_drops_dependents(self):
        cache = VerdictCache()
        cache.store(KEY, _frames(), _deps(callsites={0x40_000C}))
        cache.invalidate_callsite(0x40_000C)
        assert cache.lookup(KEY) is None

    def test_unrelated_invalidation_keeps_entry(self):
        cache = VerdictCache()
        cache.store(KEY, _frames(), _deps(shadow={0x5000}, callsites={0x40_000C}))
        cache.invalidate_shadow(0x9999)
        cache.invalidate_callsite(0x9999)
        assert cache.lookup(KEY) is not None
        assert cache.stats.invalidations == 0

    def test_fifo_eviction_at_capacity(self):
        cache = VerdictCache(capacity=2)
        keys = [("k%d" % i,) + KEY[1:] for i in range(3)]
        for key in keys:
            cache.store(key, _frames(), _deps())
        assert len(cache) == 2
        assert cache.lookup(keys[0]) is None  # oldest evicted
        assert cache.lookup(keys[2]) is not None
        assert cache.stats.cache_evictions == 1

    def test_stats_hit_rate(self):
        stats = MonitorStats()
        stats.cache_hits, stats.cache_misses = 3, 1
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["hit_rate"] == 0.75


# ---------------------------------------------------------------------------
# integration: a loop over one sensitive callsite
# ---------------------------------------------------------------------------

ITERS = 6


def _loop_module():
    """main loops mprotect(addr, 4096, g_prot) from a single callsite."""
    mb = ModuleBuilder("loopy")
    make_wrapper(mb, "mprotect", 3)
    mb.global_var("g_prot", init=[1])

    f = mb.function("main")
    gp = f.addr_global("g_prot")

    def body(i):
        v = f.load(gp, dst="v")
        f.hook("pre")
        f.call("mprotect", [0x10000000, 4096, v])

    f.loop_range(f.const(ITERS), body)
    f.ret(0)
    return mb.build()


def _launch_loop(policy, hooks=None, module=None):
    artifact = protect(module or _loop_module())
    monitor = BastionMonitor(artifact, policy=policy)
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions(cet=True))
    proc.mm.do_mmap(0x10000000, 4096, 3, 0x30)
    if hooks:
        cpu.hooks.update(hooks)
    status = cpu.run()
    return status, proc, cpu, monitor


class TestFastPathIntegration:
    def test_steady_state_hits_after_first_miss(self):
        status, proc, _cpu, monitor = _launch_loop(ContextPolicy.full())
        assert status.kind == "returned"
        assert monitor.violations == []
        stats = monitor.stats
        assert stats.hooks == ITERS
        assert stats.cache_misses >= 1
        assert stats.cache_hits >= ITERS - 2
        assert stats.trap_stops_batched == stats.cache_hits
        # hits skip the unwinder entirely
        assert stats.unwind_samples == stats.cache_misses

    def test_cache_off_policy_bit_disables_cache(self):
        policy = ContextPolicy.full().without("cache")
        status, _proc, _cpu, monitor = _launch_loop(policy)
        assert status.kind == "returned"
        assert monitor.cache is None
        assert monitor.stats.cache_hits == 0
        assert monitor.stats.unwind_samples == ITERS

    def test_cache_on_is_cheaper(self):
        _s, proc_on, _c, _m = _launch_loop(ContextPolicy.full())
        _s2, proc_off, _c2, _m2 = _launch_loop(
            ContextPolicy.full().without("cache")
        )
        assert proc_on.ledger.cycles < proc_off.ledger.cycles
        assert proc_on.ledger.category("trap") < proc_off.ledger.category("trap")

    def test_corrupted_arg_after_warm_cache_still_killed(self):
        """A corrupted argument register changes the fingerprint: no hit."""
        calls = {"n": 0}

        def corrupt_last(cpu):
            calls["n"] += 1
            if calls["n"] == ITERS:
                cpu.proc.memory.write(cpu.local_addr("v"), 7)

        status, _proc, _cpu, monitor = _launch_loop(
            ContextPolicy.full(), hooks={"pre": corrupt_last}
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "arg-integrity"
        # the warm entries never matched the corrupted fingerprint
        assert monitor.stats.cache_hits >= 1

    def test_shadow_write_invalidates_cached_verdict(self):
        """Regression: a ctx_write_mem changing a consulted shadow slot must
        drop the dependent entry, or a replayed stale argument would hit the
        warm cache and sail through."""
        mb = ModuleBuilder("replay")
        make_wrapper(mb, "mprotect", 3)
        mb.global_var("g_prot", init=[1])

        f = mb.function("main")
        gp = f.addr_global("g_prot")
        last = f.const(ITERS - 1, dst="last")

        def body(i):
            # legitimate update on the last iteration: the instrumented
            # store refreshes the shadow copy of g_prot (1 -> 4)
            f.if_then(f.eq(i, last), lambda: f.store(gp, 4))
            v = f.load(gp, dst="v")
            f.hook("pre")
            f.call("mprotect", [0x10000000, 4096, v])

        f.loop_range(f.const(ITERS), body)
        f.ret(0)
        module = mb.build()

        def replay_stale(cpu):
            # attacker rewrites the argument back to the stale value the
            # warm cache was keyed on
            if cpu.proc.memory.read(cpu.image.global_addr["g_prot"]) == 4:
                cpu.proc.memory.write(cpu.local_addr("v"), 1)

        status, _proc, _cpu, monitor = _launch_loop(
            ContextPolicy.full(), hooks={"pre": replay_stale}, module=module
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "arg-integrity"
        assert monitor.stats.invalidations >= 1
        # warm phase really produced hits before the invalidation
        assert monitor.stats.cache_hits >= 1
