"""Tests for the enforcement policy object."""

import pytest

from repro.monitor.policy import ContextPolicy


def test_defaults_full():
    policy = ContextPolicy()
    assert policy.call_type and policy.control_flow and policy.arg_integrity
    assert policy.enforcing
    assert policy.label() == "CT+CF+AI"


def test_presets():
    assert ContextPolicy.ct_only().label() == "CT"
    assert ContextPolicy.ct_cf().label() == "CT+CF"
    assert ContextPolicy.cf_only().label() == "CF"
    assert ContextPolicy.ai_only().label() == "AI"
    assert ContextPolicy.full().label() == "CT+CF+AI"


def test_modes():
    hook = ContextPolicy.full().as_hook_only()
    assert hook.mode == "hook_only"
    assert not hook.enforcing
    fetch = ContextPolicy.full().as_fetch_state()
    assert fetch.mode == "fetch_state"
    assert not fetch.enforcing


def test_transport():
    inkernel = ContextPolicy.full().as_inkernel()
    assert inkernel.transport == "inkernel"
    # chained derivation keeps both settings
    both = ContextPolicy.full().as_fetch_state().as_inkernel()
    assert both.mode == "fetch_state" and both.transport == "inkernel"


def test_validation():
    with pytest.raises(ValueError):
        ContextPolicy(mode="bogus")
    with pytest.raises(ValueError):
        ContextPolicy(transport="bogus")


def test_monitor_only_label():
    policy = ContextPolicy(call_type=False, control_flow=False, arg_integrity=False)
    assert policy.label() == "monitor-only"


def test_frozen():
    with pytest.raises(Exception):
        ContextPolicy().call_type = False
