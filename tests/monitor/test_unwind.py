"""Tests for the frame-pointer stack unwinder."""

from repro.ir.builder import ModuleBuilder
from repro.kernel.ptrace import PtraceHandle
from repro.monitor.unwind import callee_param_slot, Frame, unwind_stack
from repro.vm.costs import DEFAULT_COSTS
from repro.vm.loader import Image
from repro.vm.memory import WORD
from tests.conftest import run_module


def _chain_module(depth=3):
    """main -> f1 -> f2 -> ... -> leaf (leaf fires a hook)."""
    mb = ModuleBuilder("m")
    leaf = mb.function("leaf")
    leaf.hook("probe")
    leaf.ret(0)
    prev = "leaf"
    for i in range(depth):
        f = mb.function("f%d" % i)
        f.call(prev, [])
        f.ret(0)
        prev = "f%d" % i
    main = mb.function("main")
    main.call(prev, [])
    main.ret(0)
    return mb.build()


def _unwind_at_hook(module, mutate=None):
    captured = {}

    def probe(cpu):
        pt = PtraceHandle(cpu.proc, DEFAULT_COSTS)
        cpu.proc.set_registers("getpid", [], rip=cpu.rip, rbp=cpu.fp, rsp=cpu.sp)
        if mutate:
            mutate(cpu)
        captured["frames"] = unwind_stack(pt, cpu.proc.regs, cpu.image)

    run_module(module, hooks={"probe": probe})
    return captured["frames"]


class TestBenignUnwind:
    def test_full_chain_to_main(self):
        frames = _unwind_at_hook(_chain_module(3))
        names = [f.func for f in frames]
        assert names == ["leaf", "f0", "f1", "f2", "main"]
        assert frames[-1].kind == "bottom"
        assert all(f.kind == "direct" for f in frames[:-1])

    def test_callsite_addresses_decode(self):
        module = _chain_module(1)
        frames = _unwind_at_hook(module)
        image = Image(module)
        # leaf's caller callsite is f0's first instruction
        assert frames[0].callsite_addr == image.addr_of("f0", 0)

    def test_max_frames_bound(self):
        captured = {}

        def probe(cpu):
            pt = PtraceHandle(cpu.proc, DEFAULT_COSTS)
            cpu.proc.set_registers("getpid", [], rip=cpu.rip, rbp=cpu.fp, rsp=cpu.sp)
            captured["frames"] = unwind_stack(
                pt, cpu.proc.regs, cpu.image, max_frames=2
            )

        run_module(_chain_module(4), hooks={"probe": probe})
        assert len(captured["frames"]) == 2

    def test_indirect_hop_classified(self):
        mb = ModuleBuilder("m")
        leaf = mb.function("leaf")
        leaf.hook("probe")
        leaf.ret(0)
        main = mb.function("main")
        fp = main.funcaddr("leaf")
        main.icall(fp, [], sig="fn0")
        main.ret(0)
        frames = _unwind_at_hook(mb.build())
        assert frames[0].kind == "indirect"


class TestHijackedUnwind:
    def test_corrupted_return_address_flagged(self):
        def smash(cpu):
            # point leaf's return address into the data segment
            cpu.proc.memory.write(cpu.fp + WORD, 0x600000)

        frames = _unwind_at_hook(_chain_module(2), mutate=smash)
        assert frames[0].kind is None  # not a callsite: the walk stops
        assert len(frames) == 1

    def test_return_mid_instruction_stream_not_a_call(self):
        module = _chain_module(1)
        image = Image(module)

        def smash(cpu):
            # a code address whose preceding instruction is not a call
            cpu.proc.memory.write(cpu.fp + WORD, image.addr_of("main", 1))

        frames = _unwind_at_hook(module, mutate=smash)
        # main+0 is a Call, so ra-4 = main+0 decodes as 'direct' — use the
        # frame's own data to check the walk continued or flagged correctly
        assert frames[0].callsite_addr == image.addr_of("main", 0)

    def test_zero_return_is_bottom(self):
        def smash(cpu):
            cpu.proc.memory.write(cpu.fp + WORD, 0)

        frames = _unwind_at_hook(_chain_module(1), mutate=smash)
        assert frames[0].kind == "bottom"
        assert frames[0].func == "leaf"


def test_callee_param_slot():
    frame = Frame("f", fp=0x1000, return_addr=0x400004)
    assert callee_param_slot(frame, 1) == 0x1000 - WORD
    assert callee_param_slot(frame, 3) == 0x1000 - 3 * WORD
