"""End-to-end monitor tests: filter construction and context enforcement."""


from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.kernel.seccomp import evaluate_filters, SECCOMP_RET_ALLOW, SECCOMP_RET_KILL_PROCESS, SECCOMP_RET_TRACE
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from repro.syscalls.table import nr_of
from repro.vm.cpu import CPUOptions
from repro.vm.memory import WORD
from tests.conftest import make_wrapper


def _demo_module():
    """main -> do_protect -> mprotect(addr, len, prot) with a hook point."""
    mb = ModuleBuilder("demo")
    make_wrapper(mb, "mprotect", 3)
    make_wrapper(mb, "getpid", 0)
    make_wrapper(mb, "exit", 1)

    do_protect = mb.function("do_protect", params=["addr"])
    prot = do_protect.const(1, dst="prot")
    do_protect.hook("pre")
    rc = do_protect.call("mprotect", [do_protect.p("addr"), 4096, prot])
    do_protect.ret(rc)

    f = mb.function("main")
    f.call("getpid", [])
    r = f.call("do_protect", [0x10000000])
    f.intrinsic("trace", [r])
    f.ret(0)
    return mb.build()


def _launch(policy=None, module=None, hooks=None, cet=False):
    artifact = protect(module or _demo_module())
    monitor = BastionMonitor(artifact, policy=policy or ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions(cet=cet))
    proc.mm.do_mmap(0x10000000, 4096, 3, 0x30)
    if hooks:
        cpu.hooks.update(hooks)
    status = cpu.run()
    return status, proc, cpu, monitor


class TestFilterConstruction:
    def test_filter_actions(self):
        artifact = protect(_demo_module())
        monitor = BastionMonitor(artifact)
        filt = monitor.build_filter()
        # used + sensitive -> TRACE
        assert evaluate_filters([filt], nr_of("mprotect"))[0] == SECCOMP_RET_TRACE
        # used + non-sensitive -> ALLOW
        assert evaluate_filters([filt], nr_of("getpid"))[0] == SECCOMP_RET_ALLOW
        # never used -> KILL (call-type's coarse half)
        assert (
            evaluate_filters([filt], nr_of("execve"))[0]
            == SECCOMP_RET_KILL_PROCESS
        )

    def test_filter_without_ct_only_traces(self):
        artifact = protect(_demo_module())
        monitor = BastionMonitor(artifact, policy=ContextPolicy.ai_only())
        filt = monitor.build_filter()
        assert evaluate_filters([filt], nr_of("execve"))[0] == SECCOMP_RET_TRACE
        assert evaluate_filters([filt], nr_of("read"))[0] == SECCOMP_RET_ALLOW


class TestBenignRun:
    def test_clean_run_passes_all_contexts(self):
        status, proc, _cpu, monitor = _launch()
        assert status.kind == "returned"
        assert monitor.violations == []
        assert monitor.hook_counts == {"mprotect": 1}
        assert proc.trace_log == [[0]]

    def test_unwind_depth_stats(self):
        _s, _p, _c, monitor = _launch()
        assert monitor.average_unwind_depth >= 2
        assert monitor.max_unwind_depth >= 2

    def test_summary_renders(self):
        _s, _p, _c, monitor = _launch()
        text = monitor.summary()
        assert "CT+CF+AI" in text and "mprotect" in text


class TestNotCallable:
    def test_seccomp_kills_unused_syscall(self):
        mb = ModuleBuilder("demo2")
        make_wrapper(mb, "mprotect", 3)
        f = mb.function("main")
        f.hook("go")
        f.ret(0)
        module = mb.build()

        def rogue(cpu):
            # jump straight into the (not-callable) wrapper via ret smash
            fake = 0x7F42_0000_0000
            cpu.proc.memory.write(fake, 0)
            cpu.proc.memory.write(fake + WORD, 0)
            cpu.proc.memory.write(cpu.fp + WORD, cpu.image.func_base["mprotect"])
            cpu.proc.memory.write(cpu.fp, fake)

        status, _p, _c, monitor = _launch(module=module, hooks={"go": rogue})
        assert status.kind == "killed"
        assert "seccomp" in status.reason


class TestCallTypeContext:
    def test_indirect_call_of_direct_only_blocked(self):
        mb = ModuleBuilder("demo3")
        make_wrapper(mb, "mprotect", 3)
        caller = mb.function("caller", params=["fn"])
        caller.hook("pre")
        caller.icall(caller.p("fn"), [0x10000000, 4096, 1], sig="fn3")
        caller.ret(0)
        helper = mb.function("helper", params=["a", "b", "c"], sig="fn3")
        helper.ret(0)
        f = mb.function("main")
        h = f.funcaddr("helper")
        f.call("caller", [h])
        f.call("mprotect", [0x10000000, 4096, 1])  # legitimate direct use
        f.ret(0)
        module = mb.build()

        def bend(cpu):
            cpu.proc.memory.write(
                cpu.local_addr("fn"), cpu.image.func_base["mprotect"]
            )

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.ct_only(), module=module, hooks={"pre": bend}
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "call-type"
        assert "indirect invocation" in monitor.violations[0].detail


class TestControlFlowContext:
    def test_rop_into_wrapper_blocked(self):
        def rop(cpu):
            fake = 0x7F43_0000_0000
            mem = cpu.proc.memory
            mem.write(fake - WORD, 0x10000000)  # addr param
            mem.write(fake - 2 * WORD, 4096)
            mem.write(fake - 3 * WORD, 7)
            mem.write(fake, 0)
            mem.write(fake + WORD, 0)
            mem.write(cpu.fp + WORD, cpu.image.func_base["mprotect"])
            mem.write(cpu.fp, fake)

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.cf_only(), hooks={"pre": rop}
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "control-flow"

    def test_corrupted_intermediate_edge_blocked(self):
        def smash_mid(cpu):
            # corrupt do_protect's saved return address so the unwound edge
            # claims do_protect was called from main's getpid callsite
            cpu.proc.memory.write(cpu.fp + WORD, cpu.image.addr_of("main", 1))

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.cf_only(), hooks={"pre": smash_mid}
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "control-flow"


class TestArgIntegrityContext:
    def test_corrupted_local_blocked(self):
        def corrupt(cpu):
            cpu.proc.memory.write(cpu.local_addr("prot"), 7)

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.ai_only(), hooks={"pre": corrupt}
        )
        assert status.kind == "killed"
        violation = monitor.violations[0]
        assert violation.context == "arg-integrity"
        # 'prot' resolves to a constant bind, so the monitor reports the
        # corrupted constant directly
        assert "corrupted" in violation.detail

    def test_corrupted_param_blocked(self):
        def corrupt(cpu):
            cpu.proc.memory.write(cpu.local_addr("addr"), 0x600000)

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.ai_only(), hooks={"pre": corrupt}
        )
        assert status.kind == "killed"
        assert monitor.violations[0].context == "arg-integrity"

    def test_extended_pointee_corruption_blocked(self):
        mb = ModuleBuilder("demo4")
        make_wrapper(mb, "execve", 3)
        mb.global_string("g_bin", "/usr/bin/app")
        f = mb.function("main")
        p = f.addr_global("g_bin")
        f.hook("pre")
        f.call("execve", [p, 0, 0])
        f.ret(0)
        module = mb.build()

        def corrupt(cpu):
            # rewrite the tracked path string in place: "/bin/sh"
            cpu.proc.memory.write_cstr(
                cpu.image.global_addr["g_bin"], "/bin/sh"
            )

        artifact = protect(module)
        monitor = BastionMonitor(artifact, policy=ContextPolicy.ai_only())
        kernel = Kernel()
        kernel.vfs.makedirs("/usr/bin")
        kernel.vfs.write_file("/usr/bin/app", b"elf")
        kernel.vfs.makedirs("/bin")
        kernel.vfs.write_file("/bin/sh", b"elf")
        proc, cpu = monitor.launch(kernel, cpu_options=CPUOptions(cet=False))
        cpu.hooks["pre"] = corrupt
        status = cpu.run()
        assert status.kind == "killed"
        assert monitor.violations[0].context == "arg-integrity"
        assert "pointee" in monitor.violations[0].detail
        assert not kernel.events_of("execve")


class TestModes:
    def test_hook_only_counts_but_never_verifies(self):
        def corrupt(cpu):
            cpu.proc.memory.write(cpu.local_addr("prot"), 7)

        status, _p, _c, monitor = _launch(
            policy=ContextPolicy.full().as_hook_only(), hooks={"pre": corrupt}
        )
        assert status.kind == "returned"  # corruption sails through
        assert monitor.hook_count == 1
        assert monitor.violations == []

    def test_fetch_state_reads_but_never_kills(self):
        def corrupt(cpu):
            cpu.proc.memory.write(cpu.local_addr("prot"), 7)

        status, proc, _c, monitor = _launch(
            policy=ContextPolicy.full().as_fetch_state(), hooks={"pre": corrupt}
        )
        assert status.kind == "returned"
        assert monitor.violations == []
        assert proc.ledger.category("ptrace") > 0

    def test_inkernel_transport_charges_monitor_not_ptrace(self):
        status, proc, _c, _m = _launch(policy=ContextPolicy.full().as_inkernel())
        assert status.kind == "returned"
        assert proc.ledger.category("ptrace") == 0
        assert proc.ledger.category("trap") == 0
        assert proc.ledger.category("monitor") > 0

    def test_ct_only_unwinds_single_frame(self):
        _s, _p, _c, ct_monitor = _launch(policy=ContextPolicy.ct_only())
        _s2, _p2, _c2, full_monitor = _launch(policy=ContextPolicy.full())
        assert ct_monitor.max_unwind_depth == 1
        assert full_monitor.max_unwind_depth > 1
