"""Property-based soundness of full BASTION enforcement.

The core guarantee, fuzzed: for *any* single-word corruption of memory
feeding a sensitive syscall's arguments, either the monitor kills the
process before the syscall executes, or the syscall executes with exactly
the values the program legitimately computed (the corruption landed
somewhere harmless).  There is no third outcome — a sensitive syscall
executing with attacker-influenced arguments.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import protect
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.monitor.monitor import BastionMonitor
from repro.monitor.policy import ContextPolicy
from tests.conftest import make_wrapper

LEGIT_ADDR = 0x10000000
LEGIT_LEN = 4096
LEGIT_PROT = 1


def _module():
    mb = ModuleBuilder("sound")
    make_wrapper(mb, "mprotect", 3)
    mb.global_var("g_region", init=LEGIT_ADDR)

    inner = mb.function("apply_guard", params=["addr", "len_", "prot"])
    inner.hook("corrupt_here")
    rc = inner.call("mprotect", [inner.p("addr"), inner.p("len_"), inner.p("prot")])
    inner.ret(rc)

    f = mb.function("main")
    gp = f.addr_global("g_region")
    addr = f.load(gp)
    prot = f.const(LEGIT_PROT, dst="prot")
    r = f.call("apply_guard", [addr, LEGIT_LEN, prot])
    f.ret(r)
    return mb.build()


_ARTIFACT = protect(_module())

#: corruption targets: the callee's three parameter slots and the global
#: that feeds the address argument
_TARGETS = st.sampled_from(["addr", "len_", "prot", "g_region"])
_VALUES = st.integers(min_value=0, max_value=(1 << 48) - 1)


@settings(max_examples=120, deadline=None)
@given(target=_TARGETS, value=_VALUES)
def test_no_silent_argument_tampering(target, value):
    monitor = BastionMonitor(_ARTIFACT, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    proc.mm.do_mmap(LEGIT_ADDR, LEGIT_LEN, 3, 0x30)

    def corrupt(c):
        if target == "g_region":
            c.proc.memory.write(c.image.global_addr["g_region"], value)
        else:
            c.proc.memory.write(c.local_addr(target), value)

    cpu.hooks["corrupt_here"] = corrupt
    status = cpu.run()

    executed = kernel.events_of("mprotect_exec")
    dispatched = proc.syscall_counts.get("mprotect", 0)

    if status.kind == "killed":
        # blocked before the handler ran: no mprotect semantics applied
        assert monitor.violations
        assert not executed
        assert not proc.mm.has_wx_region()
    else:
        # the run survived: the syscall must have used the legitimate values
        assert dispatched == 1
        assert proc.regs.rdi == LEGIT_ADDR
        assert proc.regs.rsi == LEGIT_LEN
        assert proc.regs.rdx == LEGIT_PROT


@settings(max_examples=60, deadline=None)
@given(value=_VALUES)
def test_shadow_region_scribbling_never_helps(value):
    """Blind writes into the shadow region may crash the run or trip a
    verdict, but can never make a *corrupted* argument pass."""
    from repro.runtime.shadow_table import COPIES_LAYOUT

    monitor = BastionMonitor(_ARTIFACT, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    proc.mm.do_mmap(LEGIT_ADDR, LEGIT_LEN, 3, 0x30)

    def corrupt(c):
        c.proc.memory.write(c.local_addr("prot"), 7)  # the actual attack
        # plus one blind scribble somewhere in the copies table
        slot = (value % COPIES_LAYOUT.capacity)
        c.proc.memory.write(COPIES_LAYOUT.entry_addr(slot), value)

    cpu.hooks["corrupt_here"] = corrupt
    status = cpu.run()
    wx = [e for e in kernel.events_of("mprotect_exec") if e.details.get("writable")]
    assert not wx  # PROT_RWX never lands
    assert status.kind == "killed"
