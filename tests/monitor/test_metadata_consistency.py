"""BastionMonitor.check_metadata_consistency: launch-time metadata audit."""

from repro.compiler.metadata import SiteKey
from repro.compiler.pipeline import BastionCompiler
from repro.ir.builder import ModuleBuilder
from repro.monitor.monitor import BastionMonitor
from tests.conftest import make_wrapper


def build_artifact():
    mb = ModuleBuilder("app")
    make_wrapper(mb, "setuid", 1)
    f = mb.function("main", params=[])
    f.call("setuid", [f.const(0)])
    f.ret(0)
    return BastionCompiler().compile(mb.build())


def test_clean_artifact_has_no_findings():
    monitor = BastionMonitor(build_artifact())
    assert monitor.check_metadata_consistency() == []


def test_shipped_apps_pass_the_monitor_self_check():
    from repro.apps import build_app_module

    artifact = BastionCompiler().compile(build_app_module("vsftpd"))
    monitor = BastionMonitor(artifact)
    assert monitor.check_metadata_consistency() == []


def test_mistyped_site_reported():
    artifact = build_artifact()
    callee = next(iter(artifact.metadata.valid_callers))
    # index 0 of main is a Const — resolvable in the image, but not a call
    artifact.metadata.valid_callers[callee] += (SiteKey("main", 0),)
    monitor = BastionMonitor(artifact)
    diags = monitor.check_metadata_consistency()
    assert any(d.code == "edge-not-derivable" for d in diags)


def test_out_of_range_site_reported_as_unresolvable_or_dangling():
    artifact = build_artifact()
    callee = next(iter(artifact.metadata.valid_callers))
    artifact.metadata.valid_callers[callee] += (SiteKey("main", 500),)
    monitor = BastionMonitor(artifact)
    codes = {d.code for d in monitor.check_metadata_consistency()}
    # the IR-level check flags it; the image may still produce an address
    # (addresses are base + stride * index), so dangling-site is the floor
    assert "dangling-site" in codes


def test_provenance_mismatch_reported():
    artifact = build_artifact()
    artifact.metadata.provenance["instrumented_instructions"] = 3
    monitor = BastionMonitor(artifact)
    codes = {d.code for d in monitor.check_metadata_consistency()}
    assert codes == {"provenance-mismatch"}
