"""Tests for the cycle ledger and cost model."""

import pytest

from repro.vm.costs import CostModel, CycleLedger, DEFAULT_COSTS


class TestLedger:
    def test_charge_accumulates(self):
        ledger = CycleLedger()
        ledger.charge(10)
        ledger.charge(5, "kernel")
        assert ledger.cycles == 15
        assert ledger.category("app") == 10
        assert ledger.category("kernel") == 5
        assert ledger.category("missing") == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CycleLedger().charge(-1)

    def test_overhead_vs(self):
        ledger = CycleLedger()
        ledger.charge(110)
        assert ledger.overhead_vs(100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            ledger.overhead_vs(0)

    def test_breakdown_sorted(self):
        ledger = CycleLedger()
        ledger.charge(10, "a")
        ledger.charge(90, "b")
        rows = ledger.breakdown()
        assert rows[0][0] == "b"
        assert rows[0][2] == pytest.approx(90.0)


class TestCostModel:
    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.instr = 2

    def test_relative_magnitudes(self):
        """The mechanism ordering the paper relies on: instrumentation <<
        seccomp eval << ptrace round trip."""
        costs = DEFAULT_COSTS
        instrumentation = costs.ctx_write_mem_base + costs.ctx_write_mem_per_slot
        seccomp_eval = 80 * costs.seccomp_per_bpf_instr_millicycles // 1000
        trap = 2 * costs.context_switch + costs.ptrace_getregs
        assert instrumentation < seccomp_eval < trap
        assert costs.inkernel_state_access < costs.readv_base

    def test_custom_model(self):
        model = CostModel(instr=3)
        assert model.instr == 3
        assert model.load == DEFAULT_COSTS.load
