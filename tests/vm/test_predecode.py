"""The predecoded fast interpreter loop vs the classic reference loop.

``CPUOptions(predecode=...)`` is a wall-clock-only switch by contract:
both loops must produce identical cycle ledgers, stats, traces, and —
just as load-bearing — identical faults with identical messages.  These
tests run the same programs both ways and diff everything observable.
"""

from repro.ir.builder import ModuleBuilder
from repro.vm.cpu import CPUOptions
from tests.conftest import run_main, run_module


def _both(module_fn, **options_kwargs):
    """Run a module under both loops; returns the two (status, proc)."""
    out = []
    for predecode in (True, False):
        module = module_fn()
        options = CPUOptions(predecode=predecode, **options_kwargs)
        status, proc, _cpu = run_module(module, options=options)
        out.append((status, proc))
    return out


def _observables(status, proc):
    return {
        "status": (status.kind, status.code),
        "cycles": proc.ledger.cycles,
        "by_category": dict(proc.ledger.by_category),
        "trace": list(proc.trace_log),
        "syscalls": dict(proc.syscall_counts),
    }


def _recursion_module():
    mb = ModuleBuilder("m")
    fact = mb.function("fact", params=["n"])
    is_zero = fact.eq(fact.p("n"), 0)
    fact.branch(is_zero, "base", "rec")
    fact.label("base")
    one = fact.const(1)
    fact.ret(one)
    fact.label("rec")
    n1 = fact.sub(fact.p("n"), 1)
    sub = fact.call("fact", [n1])
    r = fact.mul(fact.p("n"), sub)
    fact.ret(r)
    f = mb.function("main")
    r = f.call("fact", [8])
    f.intrinsic("trace", [r])
    f.ret(r)
    return mb.build()


class TestLoopParity:
    def test_recursion_identical_both_loops(self):
        (fast_status, fast_proc), (ref_status, ref_proc) = _both(
            _recursion_module
        )
        assert fast_status.code == 40320
        assert _observables(fast_status, fast_proc) == _observables(
            ref_status, ref_proc
        )

    def test_arithmetic_and_division_edge_cases(self):
        def module_fn():
            mb = ModuleBuilder("m")
            f = mb.function("main")
            for op, a, b in [
                ("//", -7, 2),
                ("%", -7, 2),
                ("//", 5, 0),
                ("%", 5, 0),
                ("<<", 1, 200),  # shift counts wrap at 64
                ("+", (1 << 62), (1 << 62)),  # 64-bit wraparound
            ]:
                r = f.binop(op, a, b)
                f.intrinsic("trace", [r])
            f.ret(0)
            return mb.build()

        (s1, p1), (s2, p2) = _both(module_fn)
        assert _observables(s1, p1) == _observables(s2, p2)

    def test_cet_shadow_stack_parity(self):
        (s1, p1), (s2, p2) = _both(_recursion_module, cet=True)
        assert _observables(s1, p1) == _observables(s2, p2)
        assert p1.ledger.by_category.get("cet", 0) > 0

    def test_predecode_default_on(self):
        assert CPUOptions().predecode is True


class TestFaultParity:
    """Faults surface as ``ExitStatus('fault', 139, 'Type: message')`` —
    both loops must yield the identical status *and* identical cycles
    spent up to the fault (error timing is part of the contract)."""

    def _fault_both(self, body_fn, **options_kwargs):
        outcomes = []
        for predecode in (True, False):
            status, proc, _cpu = run_main(
                body_fn,
                options=CPUOptions(predecode=predecode, **options_kwargs),
            )
            outcomes.append((status.kind, status.code, status.reason, proc.ledger.cycles))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == "fault"
        return outcomes[0][2]

    def test_unaligned_store_same_fault(self):
        def body(f):
            f.store(3, 42)  # address 3: unaligned
            f.ret(0)

        reason = self._fault_both(body)
        assert "SegmentationFault" in reason and "unaligned" in reason

    def test_negative_load_same_fault(self):
        def body(f):
            addr = f.sub(0, 8)
            r = f.load(addr)
            f.ret(r)

        reason = self._fault_both(body)
        assert "SegmentationFault" in reason and "negative" in reason

    def test_shadow_stack_fault_parity(self):
        """A return-address overwrite trips CET identically in both loops."""
        from repro.vm.memory import WORD

        def module_fn():
            mb = ModuleBuilder("m")
            leaf = mb.function("leaf")
            leaf.hook("smash")
            leaf.ret(0)
            f = mb.function("main")
            f.call("leaf", [])
            f.ret(0)
            return mb.build()

        def smash(cpu):
            # the saved return address lives at fp + WORD
            cpu.proc.memory.write(cpu.fp + WORD, 0x4140)

        outcomes = []
        for predecode in (True, False):
            status, proc, _cpu = run_module(
                module_fn(),
                options=CPUOptions(predecode=predecode, cet=True),
                hooks={"smash": smash},
            )
            outcomes.append(
                (status.kind, status.code, status.reason, proc.ledger.cycles)
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == "fault"
        assert "ShadowStackFault" in outcomes[0][2]


class TestCacheInvalidation:
    def test_function_version_bump_invalidates_decoded_body(self):
        """Structural edits after a first run must not execute stale
        closures: Function.version keys the per-CPU decode cache."""
        from repro.kernel.kernel import Kernel
        from repro.vm.cpu import CPU
        from repro.vm.loader import Image

        mb = ModuleBuilder("m")
        f = mb.function("main")
        f.intrinsic("trace", [1])
        f.ret(7)
        module = mb.build()

        kernel = Kernel()
        image = Image(module)
        proc = kernel.create_process("m", image)
        cpu = CPU(image, proc, kernel, CPUOptions())
        status = cpu.run()
        assert status.code == 7
        func = module.functions["main"]
        version_before = func.version
        func.invalidate()
        assert func.version > version_before
