"""Tests for the interpreter CPU: semantics, frames, and attack surfaces."""

from hypothesis import given, strategies as st

from repro.errors import CFIFault
from repro.ir.builder import ModuleBuilder
from repro.vm.cpu import CPUOptions, _wrap
from repro.vm.loader import STACK_TOP
from repro.vm.memory import WORD
from tests.conftest import run_main, run_module


class TestArithmetic:
    def _eval(self, op, a, b):
        def body(f):
            r = f.binop(op, a, b)
            f.intrinsic("trace", [r])
            f.ret(0)

        _status, proc, _cpu = run_main(body)
        return proc.trace_log[0][0]

    def test_basic_ops(self):
        assert self._eval("+", 2, 3) == 5
        assert self._eval("-", 2, 3) == -1
        assert self._eval("*", -4, 3) == -12
        assert self._eval("&", 0b1100, 0b1010) == 0b1000
        assert self._eval("|", 0b1100, 0b1010) == 0b1110
        assert self._eval("^", 0b1100, 0b1010) == 0b0110
        assert self._eval("<<", 1, 10) == 1024
        assert self._eval(">>", 1024, 3) == 128

    def test_c_style_division(self):
        # C truncates toward zero, unlike Python's floor division
        assert self._eval("//", 7, 2) == 3
        assert self._eval("//", -7, 2) == -3
        assert self._eval("%", -7, 2) == -1
        assert self._eval("//", 7, -2) == -3

    def test_division_by_zero_yields_zero(self):
        assert self._eval("//", 5, 0) == 0
        assert self._eval("%", 5, 0) == 0

    def test_comparisons(self):
        assert self._eval("==", 3, 3) == 1
        assert self._eval("!=", 3, 3) == 0
        assert self._eval("<", 2, 3) == 1
        assert self._eval("<=", 3, 3) == 1
        assert self._eval(">", 2, 3) == 0
        assert self._eval(">=", 3, 3) == 1

    @given(
        a=st.integers(min_value=-(1 << 62), max_value=1 << 62),
        b=st.integers(min_value=-(1 << 62), max_value=1 << 62),
    )
    def test_add_matches_python_wrapped(self, a, b):
        def body(f):
            r = f.add(a, b)
            f.intrinsic("trace", [r])
            f.ret(0)

        _s, proc, _c = run_main(body)
        assert proc.trace_log[0][0] == _wrap(a + b)


class TestWrap:
    def test_wrap_in_range(self):
        assert _wrap(5) == 5
        assert _wrap(-5) == -5

    def test_wrap_overflow(self):
        assert _wrap(1 << 63) == -(1 << 63)
        assert _wrap((1 << 64) + 3) == 3
        assert _wrap(-(1 << 63) - 1) == (1 << 63) - 1


class TestCallsAndFrames:
    def test_call_returns_value(self):
        mb = ModuleBuilder("m")
        add = mb.function("add", params=["a", "b"])
        s = add.add(add.p("a"), add.p("b"))
        add.ret(s)
        f = mb.function("main")
        r = f.call("add", [4, 5])
        f.intrinsic("trace", [r])
        f.ret(r)
        status, proc, _c = run_module(mb.build())
        assert status.kind == "returned"
        assert status.code == 9
        assert proc.trace_log == [[9]]

    def test_recursion(self):
        mb = ModuleBuilder("m")
        fact = mb.function("fact", params=["n"])
        is_zero = fact.eq(fact.p("n"), 0)
        fact.branch(is_zero, "base", "rec")
        fact.label("base")
        one = fact.const(1)
        fact.ret(one)
        fact.label("rec")
        n1 = fact.sub(fact.p("n"), 1)
        sub = fact.call("fact", [n1])
        r = fact.mul(fact.p("n"), sub)
        fact.ret(r)
        f = mb.function("main")
        r = f.call("fact", [6])
        f.ret(r)
        status, _p, _c = run_module(mb.build())
        assert status.code == 720

    def test_return_address_lives_in_memory(self):
        """The stack is real: the saved return address is readable."""
        mb = ModuleBuilder("m")
        leaf = mb.function("leaf")
        leaf.hook("inside")
        leaf.ret(0)
        f = mb.function("main")
        f.call("leaf", [])
        f.ret(0)
        module = mb.build()
        seen = {}

        def probe(cpu):
            seen["ret"] = cpu.proc.memory.read(cpu.fp + WORD)
            seen["expect"] = cpu.image.addr_of("main", 1)

        _s, _p, _c = run_module(module, hooks={"inside": probe})
        assert seen["ret"] == seen["expect"]

    def test_locals_are_memory_backed(self):
        """Corrupting a local's frame slot changes the computation."""

        def body(f):
            x = f.const(10, dst="x")
            f.hook("corrupt")
            y = f.add(f.var("x"), 1)
            f.intrinsic("trace", [y])
            f.ret(0)

        def corrupt(cpu):
            cpu.proc.memory.write(cpu.local_addr("x"), 400)

        _s, proc, _c = run_main(body, hooks={"corrupt": corrupt})
        assert proc.trace_log == [[401]]

    def test_ret_to_smashed_address_is_followed(self):
        """The CPU trusts the in-memory return address (ROP works)."""
        mb = ModuleBuilder("m")
        gadget = mb.function("gadget")
        gadget.intrinsic("trace", [gadget.const(777)])
        gadget.ret(0)
        victim = mb.function("victim")
        victim.hook("smash")
        victim.ret(0)
        f = mb.function("main")
        f.call("victim", [])
        f.ret(0)
        module = mb.build()
        image_holder = {}

        def smash(cpu):
            image_holder["image"] = cpu.image
            fake_fp = 0x7F40_0000_0000
            cpu.proc.memory.write(fake_fp, 0)
            cpu.proc.memory.write(fake_fp + WORD, 0)
            cpu.proc.memory.write(cpu.fp + WORD, cpu.image.func_base["gadget"])
            cpu.proc.memory.write(cpu.fp, fake_fp)

        status, proc, _c = run_module(module, hooks={"smash": smash})
        assert [777] in proc.trace_log
        assert status.kind == "returned"

    def test_uninitialized_locals_read_stale_stack(self):
        """Frames are not zeroed: stale values persist, as on real stacks."""
        mb = ModuleBuilder("m")
        writer = mb.function("writer")
        writer.const(1234, dst="w")
        writer.ret(0)
        reader = mb.function("reader")
        # 'r' is never written; slot 0 aliases writer's slot 0.  Taking its
        # address marks it a real frame slot (initializable through memory),
        # which is what exempts it from the validator's definite-assignment
        # check — the C idiom for a deliberately uninitialized read.
        reader.intrinsic("trace", [reader.var("r")])
        reader.addr_local("r")
        reader.ret(0)
        f = mb.function("main")
        f.call("writer", [])
        f.call("reader", [])
        f.ret(0)
        _s, proc, _c = run_module(mb.build())
        assert proc.trace_log == [[1234]]

    def test_stack_grows_down_from_top(self):
        def body(f):
            f.hook("probe")
            f.ret(0)

        seen = {}

        def probe(cpu):
            seen["fp"] = cpu.fp

        run_main(body, hooks={"probe": probe})
        assert seen["fp"] < STACK_TOP
        assert STACK_TOP - seen["fp"] < 4096


class TestIndirectCalls:
    def _icall_module(self, sig="fn1", target_sig=None):
        mb = ModuleBuilder("m")
        callee = mb.function("callee", params=["x"], sig=target_sig or "fn1")
        callee.ret(callee.p("x"))
        f = mb.function("main")
        fp = f.funcaddr("callee")
        r = f.icall(fp, [11], sig=sig)
        f.ret(r)
        return mb.build()

    def test_icall_dispatches(self):
        status, _p, _c = run_module(self._icall_module())
        assert status.code == 11

    def test_llvm_cfi_allows_matching_sig(self):
        status, _p, _c = run_module(
            self._icall_module(), options=CPUOptions(llvm_cfi=True)
        )
        assert status.code == 11

    def test_llvm_cfi_blocks_sig_mismatch(self):
        status, _p, _c = run_module(
            self._icall_module(sig="fn1", target_sig="other"),
            options=CPUOptions(llvm_cfi=True),
        )
        assert status.kind == "fault"
        assert "CFIFault" in status.reason

    def test_llvm_cfi_blocks_mid_function_target(self):
        mb = ModuleBuilder("m")
        callee = mb.function("callee", params=["x"])
        callee.const(0)
        callee.ret(0)
        f = mb.function("main")
        fp = f.funcaddr("callee")
        fp2 = f.add(fp, 4)  # into the body
        f.icall(fp2, [1], sig="fn1")
        f.ret(0)
        status, _p, _c = run_module(mb.build(), options=CPUOptions(llvm_cfi=True))
        assert status.kind == "fault"
        assert "CFIFault" in status.reason

    def test_icall_to_data_faults_under_dep(self):
        mb = ModuleBuilder("m")
        mb.global_var("g", init=0)
        f = mb.function("main")
        target = f.addr_global("g")
        f.icall(target, [], sig="fn0")
        f.ret(0)
        status, _p, _c = run_module(mb.build())
        assert status.kind == "fault"
        assert "ExecutionFault" in status.reason


class TestIntrinsics:
    def test_cycle_burn_charges(self):
        def body(f):
            f.burn(5000)
            f.ret(0)

        _s, proc, _c = run_main(body)
        assert proc.ledger.cycles >= 5000

    def test_halt(self):
        def body(f):
            f.intrinsic("halt")
            f.intrinsic("trace", [f.const(1)])  # never reached
            f.ret(0)

        status, proc, _c = run_main(body)
        assert status.kind == "halt"
        assert proc.trace_log == []

    def test_step_budget(self):
        def body(f):
            f.label("spin")
            f.jump("spin")

        status, _p, _c = run_main(body, options=CPUOptions(max_steps=1000))
        assert status.kind == "fault"
        assert "step budget" in status.reason

    def test_dfi_charges_per_access(self):
        def body(f):
            p = f.const(0x10000000)
            f.store(p, 1)
            f.load(p)
            f.ret(0)

        _s1, proc1, _c1 = run_main(body)
        _s2, proc2, _c2 = run_main(body, options=CPUOptions(dfi=True))
        assert proc2.ledger.category("dfi") > 0
        assert proc2.ledger.cycles > proc1.ledger.cycles
