"""Tests (incl. property-based) for the simulated memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SegmentationFault
from repro.vm.memory import Memory, WORD

addresses = st.integers(min_value=0, max_value=1 << 47).map(lambda a: a * WORD)
values = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


class TestBasics:
    def test_unwritten_reads_zero(self):
        assert Memory().read(0x1000) == 0

    def test_write_read(self):
        m = Memory()
        m.write(0x1000, 42)
        assert m.read(0x1000) == 42

    def test_unaligned_rejected(self):
        m = Memory()
        with pytest.raises(SegmentationFault):
            m.read(0x1001)
        with pytest.raises(SegmentationFault):
            m.write(0x1004, 1)

    def test_negative_address_rejected(self):
        with pytest.raises(SegmentationFault):
            Memory().read(-8)

    def test_non_integer_address_rejected(self):
        with pytest.raises(SegmentationFault):
            Memory().read("0x1000")

    def test_non_integer_value_rejected(self):
        with pytest.raises(TypeError):
            Memory().write(0x1000, "x")

    def test_block_ops(self):
        m = Memory()
        m.write_block(0x2000, [1, 2, 3])
        assert m.read_block(0x2000, 3) == [1, 2, 3]
        assert m.read_block(0x2000, 5) == [1, 2, 3, 0, 0]

    def test_mapped_count(self):
        m = Memory()
        m.write_block(0x2000, [1, 2, 3])
        assert m.mapped_count() == 3


class TestStrings:
    def test_cstr_roundtrip(self):
        m = Memory()
        used = m.write_cstr(0x3000, "/bin/sh")
        assert used == 8
        assert m.read_cstr(0x3000) == "/bin/sh"

    def test_cstr_empty(self):
        m = Memory()
        m.write_cstr(0x3000, "")
        assert m.read_cstr(0x3000) == ""

    def test_cstr_bounded(self):
        m = Memory()
        for i in range(10):
            m.write(0x3000 + i * WORD, ord("a"))
        assert m.read_cstr(0x3000, max_slots=4) == "aaaa"

    def test_vector(self):
        m = Memory()
        m.write_block(0x4000, [0x111, 0x222, 0])
        assert m.read_vector(0x4000) == [0x111, 0x222]

    def test_vector_bounded(self):
        m = Memory()
        m.write_block(0x4000, [1] * 100)
        assert len(m.read_vector(0x4000, max_entries=8)) == 8


class TestProperties:
    @given(addr=addresses, value=values)
    def test_read_after_write(self, addr, value):
        m = Memory()
        m.write(addr, value)
        assert m.read(addr) == value

    @given(addr=addresses, first=values, second=values)
    def test_last_write_wins(self, addr, first, second):
        m = Memory()
        m.write(addr, first)
        m.write(addr, second)
        assert m.read(addr) == second

    @given(
        addr=addresses,
        text=st.text(
            alphabet=st.characters(min_codepoint=1, max_codepoint=0x10FF),
            max_size=64,
        ),
    )
    def test_cstr_roundtrip_property(self, addr, text):
        m = Memory()
        m.write_cstr(addr, text)
        assert m.read_cstr(addr, max_slots=len(text) + 8) == text

    @given(addr=addresses, words=st.lists(values, max_size=32))
    def test_block_roundtrip(self, addr, words):
        m = Memory()
        m.write_block(addr, words)
        assert m.read_block(addr, len(words)) == words
        assert m.snapshot_region(addr, len(words)) == tuple(words)

    @given(a=addresses, b=addresses, va=values, vb=values)
    def test_distinct_slots_independent(self, a, b, va, vb):
        if a == b:
            return
        m = Memory()
        m.write(a, va)
        m.write(b, vb)
        assert m.read(a) == va
        assert m.read(b) == vb
