"""Tests for image layout and code-address resolution."""

import pytest

from repro.errors import ExecutionFault, IRValidationError
from repro.ir.builder import ModuleBuilder
from repro.vm.loader import (
    DATA_BASE,
    Image,
    INSTR_STRIDE,
    TEXT_BASE,
    load_module,
)
from repro.vm.memory import Memory, WORD


def _module():
    mb = ModuleBuilder("m")
    mb.global_string("hello", "hi")
    mb.global_var("counter", init=7)

    callee = mb.function("callee", params=["x"])
    callee.ret(callee.p("x"))

    f = mb.function("main")
    v = f.const(1)
    r = f.call("callee", [v])
    fp = f.funcaddr("callee")
    f.icall(fp, [r], sig="fn1")
    f.ret(0)
    return mb.build()


class TestLayout:
    def test_functions_at_text_base(self):
        image = Image(_module())
        assert image.func_base["callee"] == TEXT_BASE
        assert image.func_base["main"] > image.func_base["callee"]
        assert image.func_base["main"] % 0x100 == 0

    def test_globals_in_data_segment(self):
        image = Image(_module())
        hello = image.global_addr["hello"]
        counter = image.global_addr["counter"]
        assert hello == DATA_BASE
        assert counter == hello + 3 * WORD  # "hi" + NUL

    def test_entry_addr(self):
        image = Image(_module())
        assert image.entry_addr == image.func_base["main"]

    def test_validates_module(self):
        mb = ModuleBuilder("bad")
        mb.function("main")  # empty body
        with pytest.raises(IRValidationError):
            Image(mb.build())


class TestResolution:
    def test_resolve_round_trip(self):
        image = Image(_module())
        for name in ("main", "callee"):
            func = image.module.functions[name]
            for idx in range(len(func.body)):
                addr = image.addr_of(name, idx)
                resolved_func, resolved_idx = image.resolve_code(addr)
                assert resolved_func.name == name
                assert resolved_idx == idx

    def test_fetch_outside_text_faults(self):
        image = Image(_module())
        with pytest.raises(ExecutionFault):
            image.resolve_code(DATA_BASE)  # data is not executable
        with pytest.raises(ExecutionFault):
            image.resolve_code(0x10)

    def test_fetch_past_function_end_faults(self):
        image = Image(_module())
        end = image.addr_of("callee", 1) + INSTR_STRIDE
        # callee has 2 instructions; its padding is not executable
        with pytest.raises(ExecutionFault):
            image.resolve_code(end)

    def test_misaligned_fetch_faults(self):
        image = Image(_module())
        with pytest.raises(ExecutionFault):
            image.resolve_code(image.entry_addr + 1)

    def test_func_containing(self):
        image = Image(_module())
        assert image.func_containing(image.entry_addr) == "main"
        assert image.func_containing(DATA_BASE) is None

    def test_call_kind_decoding(self):
        image = Image(_module())
        main = image.module.functions["main"]
        kinds = [
            image.call_kind_at(image.addr_of("main", i))
            for i in range(len(main.body))
        ]
        assert "direct" in kinds
        assert "indirect" in kinds
        assert image.call_kind_at(DATA_BASE) is None

    def test_describe(self):
        image = Image(_module())
        assert image.describe(image.entry_addr) == "main+0x0"
        assert image.describe(0x10) == "0x10"


class TestAddressResolutionEdges:
    """Boundary behavior the binary-level analyzer leans on: exact
    function extents, padding faults, and call-kind decoding at edges."""

    def test_addr_of_first_and_last_instruction(self):
        image = Image(_module())
        main = image.module.functions["main"]
        first = image.addr_of("main", 0)
        last = image.addr_of("main", len(main.body) - 1)
        assert first == image.func_base["main"]
        assert last == first + (len(main.body) - 1) * INSTR_STRIDE
        assert image.instruction_at(last) is main.body[-1]

    def test_instruction_at_function_boundary(self):
        """The first address past a body is padding even though it still
        sits inside the function's aligned span."""
        image = Image(_module())
        callee = image.module.functions["callee"]
        end = image.addr_of("callee", len(callee.body))
        assert end < image.func_base["main"]  # inside the aligned span
        with pytest.raises(ExecutionFault):
            image.instruction_at(end)
        assert image.func_containing(end) is None

    def test_instruction_at_unmapped_addresses(self):
        image = Image(_module())
        for addr in (0, TEXT_BASE - INSTR_STRIDE, image.text_end, DATA_BASE):
            with pytest.raises(ExecutionFault):
                image.instruction_at(addr)

    def test_instruction_at_misaligned(self):
        image = Image(_module())
        with pytest.raises(ExecutionFault):
            image.instruction_at(image.entry_addr + INSTR_STRIDE - 1)

    def test_call_kind_at_exact_sites(self):
        image = Image(_module())
        main = image.module.functions["main"]
        kinds = {
            idx: image.call_kind_at(image.addr_of("main", idx))
            for idx in range(len(main.body))
        }
        # main = [Const, Call, FuncAddr, CallIndirect, Ret]
        assert kinds[1] == "direct"
        assert kinds[3] == "indirect"
        assert kinds[0] is None and kinds[4] is None

    def test_call_kind_at_boundary_and_unmapped(self):
        image = Image(_module())
        callee_end = image.addr_of("callee", 2)
        assert image.call_kind_at(callee_end) is None  # padding
        assert image.call_kind_at(image.text_end) is None  # past text
        assert image.call_kind_at(TEXT_BASE - INSTR_STRIDE) is None
        assert image.call_kind_at(image.entry_addr + 1) is None  # misaligned

    def test_last_instruction_of_text_segment(self):
        """text_end is exclusive: the last laid-out instruction resolves,
        one stride past it faults."""
        image = Image(_module())
        last_base = max(image.func_base.values())
        name = next(n for n, b in image.func_base.items() if b == last_base)
        body = image.module.functions[name].body
        last_addr = image.addr_of(name, len(body) - 1)
        assert last_addr < image.text_end
        image.instruction_at(last_addr)  # must not fault
        with pytest.raises(ExecutionFault):
            image.instruction_at(last_addr + INSTR_STRIDE)


class TestGlobalsMaterialization:
    def test_write_globals(self):
        memory = Memory()
        image = load_module(_module(), memory)
        hello = image.global_addr["hello"]
        assert memory.read_cstr(hello) == "hi"
        assert memory.read(image.global_addr["counter"]) == 7
