"""Tests for image layout and code-address resolution."""

import pytest

from repro.errors import ExecutionFault, IRValidationError
from repro.ir.builder import ModuleBuilder
from repro.vm.loader import (
    DATA_BASE,
    Image,
    INSTR_STRIDE,
    TEXT_BASE,
    load_module,
)
from repro.vm.memory import Memory, WORD


def _module():
    mb = ModuleBuilder("m")
    mb.global_string("hello", "hi")
    mb.global_var("counter", init=7)

    callee = mb.function("callee", params=["x"])
    callee.ret(callee.p("x"))

    f = mb.function("main")
    v = f.const(1)
    r = f.call("callee", [v])
    fp = f.funcaddr("callee")
    f.icall(fp, [r], sig="fn1")
    f.ret(0)
    return mb.build()


class TestLayout:
    def test_functions_at_text_base(self):
        image = Image(_module())
        assert image.func_base["callee"] == TEXT_BASE
        assert image.func_base["main"] > image.func_base["callee"]
        assert image.func_base["main"] % 0x100 == 0

    def test_globals_in_data_segment(self):
        image = Image(_module())
        hello = image.global_addr["hello"]
        counter = image.global_addr["counter"]
        assert hello == DATA_BASE
        assert counter == hello + 3 * WORD  # "hi" + NUL

    def test_entry_addr(self):
        image = Image(_module())
        assert image.entry_addr == image.func_base["main"]

    def test_validates_module(self):
        mb = ModuleBuilder("bad")
        mb.function("main")  # empty body
        with pytest.raises(IRValidationError):
            Image(mb.build())


class TestResolution:
    def test_resolve_round_trip(self):
        image = Image(_module())
        for name in ("main", "callee"):
            func = image.module.functions[name]
            for idx in range(len(func.body)):
                addr = image.addr_of(name, idx)
                resolved_func, resolved_idx = image.resolve_code(addr)
                assert resolved_func.name == name
                assert resolved_idx == idx

    def test_fetch_outside_text_faults(self):
        image = Image(_module())
        with pytest.raises(ExecutionFault):
            image.resolve_code(DATA_BASE)  # data is not executable
        with pytest.raises(ExecutionFault):
            image.resolve_code(0x10)

    def test_fetch_past_function_end_faults(self):
        image = Image(_module())
        end = image.addr_of("callee", 1) + INSTR_STRIDE
        # callee has 2 instructions; its padding is not executable
        with pytest.raises(ExecutionFault):
            image.resolve_code(end)

    def test_misaligned_fetch_faults(self):
        image = Image(_module())
        with pytest.raises(ExecutionFault):
            image.resolve_code(image.entry_addr + 1)

    def test_func_containing(self):
        image = Image(_module())
        assert image.func_containing(image.entry_addr) == "main"
        assert image.func_containing(DATA_BASE) is None

    def test_call_kind_decoding(self):
        image = Image(_module())
        main = image.module.functions["main"]
        kinds = [
            image.call_kind_at(image.addr_of("main", i))
            for i in range(len(main.body))
        ]
        assert "direct" in kinds
        assert "indirect" in kinds
        assert image.call_kind_at(DATA_BASE) is None

    def test_describe(self):
        image = Image(_module())
        assert image.describe(image.entry_addr) == "main+0x0"
        assert image.describe(0x10) == "0x10"


class TestGlobalsMaterialization:
    def test_write_globals(self):
        memory = Memory()
        image = load_module(_module(), memory)
        hello = image.global_addr["hello"]
        assert memory.read_cstr(hello) == "hi"
        assert memory.read(image.global_addr["counter"]) == 7
