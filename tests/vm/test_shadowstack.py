"""Tests for the CET shadow stack."""

import pytest

from repro.errors import ShadowStackFault
from repro.ir.builder import ModuleBuilder
from repro.vm.cpu import CPUOptions
from repro.vm.memory import WORD
from repro.vm.shadowstack import ShadowStack
from tests.conftest import run_module


class TestUnit:
    def test_push_pop_matching(self):
        ss = ShadowStack()
        ss.push(0x1000)
        ss.check_pop(0x1000)
        assert ss.depth == 0
        assert ss.violations == 0

    def test_mismatch_faults(self):
        ss = ShadowStack()
        ss.push(0x1000)
        with pytest.raises(ShadowStackFault):
            ss.check_pop(0x2000)
        assert ss.violations == 1

    def test_underflow_faults(self):
        ss = ShadowStack()
        with pytest.raises(ShadowStackFault):
            ss.check_pop(0x1000)


def _rop_module():
    mb = ModuleBuilder("m")
    gadget = mb.function("gadget")
    gadget.intrinsic("trace", [gadget.const(666)])
    gadget.ret(0)
    victim = mb.function("victim")
    victim.hook("smash")
    victim.ret(0)
    f = mb.function("main")
    f.call("victim", [])
    f.ret(0)
    return mb.build()


def _smash(cpu):
    fake = 0x7F41_0000_0000
    cpu.proc.memory.write(fake, 0)
    cpu.proc.memory.write(fake + WORD, 0)
    cpu.proc.memory.write(cpu.fp + WORD, cpu.image.func_base["gadget"])
    cpu.proc.memory.write(cpu.fp, fake)


class TestIntegration:
    def test_rop_succeeds_without_cet(self):
        status, proc, _c = run_module(_rop_module(), hooks={"smash": _smash})
        assert [666] in proc.trace_log
        assert status.kind == "returned"

    def test_cet_stops_rop(self):
        status, proc, _c = run_module(
            _rop_module(), options=CPUOptions(cet=True), hooks={"smash": _smash}
        )
        assert status.kind == "fault"
        assert "ShadowStackFault" in status.reason
        assert [666] not in proc.trace_log

    def test_cet_benign_run_clean(self):
        status, _p, cpu = run_module(_rop_module(), options=CPUOptions(cet=True))
        assert status.kind == "returned"
        assert cpu.shadow_stack.violations == 0

    def test_cet_charges_cycles(self):
        _s, proc, _c = run_module(_rop_module(), options=CPUOptions(cet=True))
        assert proc.ledger.category("cet") > 0
