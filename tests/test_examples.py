"""Every example script must run cleanly end to end (they are the docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

_EXPECTED_MARKERS = {
    "quickstart.py": "BLOCKED: [arg-integrity]",
    "protect_nginx.py": "matches the paper's row (x x Y): True",
    "attack_gallery.py": "17/17 rows reproduce the paper's Table 6",
    "filtering_comparison.py": "BASTION (full)  : blocked",
    "extend_sensitive_set.py": "Conclusion (matches",
    "write_your_own_app.py": "execve events (should NOT contain /bin/sh): []",
}


def test_all_examples_have_marker_checks():
    names = {path.name for path in EXAMPLES}
    assert names == set(_EXPECTED_MARKERS)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert _EXPECTED_MARKERS[path.name] in result.stdout, result.stdout[-2000:]
