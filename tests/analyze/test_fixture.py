"""The broken fixture app must yield exactly its two seeded diagnostics."""

import json

from repro.analyze import Waiver, analyze_artifact, apply_waivers
from tests.analyze.fixtures.broken_app import (
    build_broken_artifact,
    build_clean_artifact,
)


def test_clean_fixture_is_clean():
    report = analyze_artifact(build_clean_artifact(), waivers=())
    assert report.clean
    assert report.counts_by_pass() == {
        "completeness": 0,
        "call-type": 0,
        "flow": 0,
        "consistency": 0,
    }


def test_broken_fixture_yields_exactly_two_diagnostics():
    report = analyze_artifact(build_broken_artifact(), waivers=())
    assert len(report.diagnostics) == 2
    by_code = {d.code: d for d in report.diagnostics}
    assert set(by_code) == {"missing-bind", "over-permissive"}

    completeness = by_code["missing-bind"]
    assert completeness.pass_name == "completeness"
    assert completeness.severity == "error"
    assert completeness.func == "main"
    assert completeness.syscall == "setuid"

    calltype = by_code["over-permissive"]
    assert calltype.pass_name == "call-type"
    assert calltype.severity == "error"
    assert calltype.syscall == "setuid"

    assert not report.ok
    assert report.counts_by_pass() == {
        "completeness": 1,
        "call-type": 1,
        "flow": 0,
        "consistency": 0,
    }


def test_broken_fixture_text_format():
    report = analyze_artifact(build_broken_artifact(), waivers=())
    text = report.render_text()
    assert "completeness/missing-bind" in text
    assert "call-type/over-permissive" in text
    assert "verdict: FAIL" in text
    # both findings rendered, nothing else
    finding_lines = [l for l in text.splitlines() if l.startswith("  error:")]
    assert len(finding_lines) == 2


def test_broken_fixture_json_format():
    report = analyze_artifact(build_broken_artifact(), waivers=())
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["clean"] is False
    codes = sorted(d["code"] for d in payload["diagnostics"])
    assert codes == ["missing-bind", "over-permissive"]
    assert payload["counts_by_pass"]["completeness"] == 1
    assert payload["counts_by_pass"]["call-type"] == 1


def test_waivers_can_suppress_fixture_findings():
    artifact = build_broken_artifact()
    waivers = (
        Waiver(
            app="broken-fixture",
            pass_name="completeness",
            code="missing-bind",
            reason="unit test: known seeded defect",
        ),
    )
    report = analyze_artifact(artifact, waivers=waivers)
    assert [d.code for d in report.diagnostics] == ["over-permissive"]
    assert len(report.waived) == 1
    waived_diag, waiver = report.waived[0]
    assert waived_diag.code == "missing-bind"
    assert waiver.reason == "unit test: known seeded defect"
    # the waiver and its reason appear in the rendered report
    assert "unit test: known seeded defect" in report.render_text()


def test_waiver_matching_is_narrow():
    waiver = Waiver(
        app="other-app",
        pass_name="completeness",
        code="missing-bind",
        reason="scoped elsewhere",
    )
    report = analyze_artifact(build_broken_artifact(), waivers=(waiver,))
    assert len(report.diagnostics) == 2  # wrong app: nothing suppressed


def test_apply_waivers_wildcards():
    report = analyze_artifact(build_broken_artifact(), waivers=())
    kept, waived = apply_waivers(
        "broken-fixture",
        report.diagnostics,
        (Waiver(app="*", pass_name="*", code="*", reason="silence all"),),
    )
    assert kept == []
    assert len(waived) == 2
