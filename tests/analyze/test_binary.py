"""Binary-level analyzer: recovery equivalence, soundness, stability."""

import json
import os

import pytest

from repro.analyze.binary import (
    audit_binary,
    binary_report,
    check_precision_regressions,
    precision_payload_json,
    recover_image_for,
    recovered_flow_metrics,
)
from repro.analyze.calltypes import recompute_call_types
from repro.analyze.waivers import SHIPPED_WAIVERS, apply_waivers
from repro.apps import SYNTHETIC_APPS, build_app_module
from repro.baselines.seccomp_filter import used_syscalls
from repro.compiler.pipeline import BastionCompiler

APPS = sorted(SYNTHETIC_APPS)

_artifacts = {}


def _artifact(app):
    if app not in _artifacts:
        _artifacts[app] = BastionCompiler().compile(build_app_module(app))
    return _artifacts[app]


class TestRecoveryEquivalence:
    """Presence-based recovery must equal the IR re-derivation exactly —
    the binary analyzer's self-check against compiler-visible truth."""

    @pytest.mark.parametrize("app", APPS)
    def test_present_call_types_match_ir(self, app):
        artifact = _artifact(app)
        recovery = recover_image_for(artifact.module)
        assert recovery.present_call_types == recompute_call_types(
            artifact.module
        )

    @pytest.mark.parametrize("app", APPS)
    def test_present_syscalls_match_used(self, app):
        artifact = _artifact(app)
        recovery = recover_image_for(artifact.module)
        assert recovery.present_syscalls == used_syscalls(artifact.module)

    @pytest.mark.parametrize("app", APPS)
    def test_full_function_partition(self, app):
        """Every symbol boundary is rediscovered from padding + targets."""
        artifact = _artifact(app)
        recovery = recover_image_for(artifact.module)
        assert set(recovery.functions) == set(
            recovery.image.func_base.values()
        )

    @pytest.mark.parametrize("app", APPS)
    def test_wrapper_partition_matches_ir(self, app):
        artifact = _artifact(app)
        recovery = recover_image_for(artifact.module)
        func_base = recovery.image.func_base
        ir_wrappers = {
            func_base[f.name]
            for f in artifact.module.functions.values()
            if f.is_wrapper
        }
        assert set(recovery.wrappers) == ir_wrappers


class TestReachabilityTightening:
    """The enforced tables are sound subsets of the presence tables."""

    @pytest.mark.parametrize("app", APPS)
    def test_reachable_subset_of_present(self, app):
        recovery = recover_image_for(_artifact(app).module)
        assert recovery.reachable_syscalls <= recovery.present_syscalls
        for syscall, kinds in recovery.call_types.items():
            present = recovery.present_call_types[syscall]
            for kind, flag in kinds.items():
                assert not flag or present[kind]

    @pytest.mark.parametrize("app", APPS)
    def test_dead_system_surface_dropped(self, app):
        """system()'s fork/wait4 justify call types only from dead code;
        the recovered (enforced) table must not carry them."""
        recovery = recover_image_for(_artifact(app).module)
        for syscall in ("fork", "wait4"):
            assert recovery.present_call_types[syscall]["direct"]
            entry = recovery.call_types.get(syscall)
            assert entry is None or not entry["direct"]

    @pytest.mark.parametrize("app", APPS)
    def test_audit_findings_all_waived_on_shipped_apps(self, app):
        """Shipped apps only trip the intentionally-dead system() surface,
        which the shipped waiver table documents."""
        diagnostics, _metrics = audit_binary(_artifact(app))
        assert all(d.code == "unreachable-call-type" for d in diagnostics)
        assert all(d.func == "system" for d in diagnostics)
        kept, waived = apply_waivers(app, diagnostics, SHIPPED_WAIVERS)
        assert kept == []
        assert len(waived) == len(diagnostics)


class TestRecoveredFlow:
    @pytest.mark.parametrize("app", APPS)
    def test_flow_metrics_shape(self, app):
        recovery = recover_image_for(_artifact(app).module)
        metrics = recovered_flow_metrics(recovery)
        assert set(metrics) == {
            "sensitive_sites",
            "chains",
            "attack_surface",
            "per_syscall",
        }
        for row in metrics["per_syscall"].values():
            assert row["sites"] >= 1
            assert row["surface"] == min(1_000_000, row["chains"] * row["args"])

    def test_binary_flow_no_looser_than_metadata(self):
        """Reachability can only remove sensitive sites, never add them."""
        from repro.analyze.flowgraph import analyze_flow

        artifact = _artifact("nginx")
        recovery = recover_image_for(artifact.module)
        binary = recovered_flow_metrics(recovery)
        _diags, metadata = analyze_flow(artifact)
        assert binary["sensitive_sites"] <= metadata["sensitive_sites"]


class TestPrecisionPayload:
    def test_byte_stable(self):
        one = precision_payload_json({a: binary_report(a)[1] for a in APPS})
        two = precision_payload_json({a: binary_report(a)[1] for a in APPS})
        assert one == two

    def test_matches_pinned_baseline(self):
        """The committed precision baseline is exactly reproducible.
        Regenerate with:
        ``python -m repro.analyze binary --all --write tests/fixtures/binary_precision.json``
        """
        path = os.path.join(
            os.path.dirname(__file__), "..", "fixtures", "binary_precision.json"
        )
        with open(path) as fh:
            pinned = fh.read()
        current = (
            precision_payload_json({a: binary_report(a)[1] for a in APPS})
            + "\n"
        )
        assert current == pinned

    def test_regression_check_self_clean(self):
        payload = {a: binary_report(a)[1] for a in APPS}
        baseline = json.loads(precision_payload_json(payload))
        assert check_precision_regressions(baseline, payload) == []

    def test_regression_check_catches_admitted_syscall(self):
        payload = {a: binary_report(a)[1] for a in ("nginx",)}
        baseline = json.loads(precision_payload_json(payload))
        baseline["nginx"]["syscalls"]["reachable"] = [
            s
            for s in baseline["nginx"]["syscalls"]["reachable"]
            if s != "mprotect"
        ]
        found = check_precision_regressions(baseline, payload)
        assert any("admits mprotect" in line for line in found)

    def test_regression_check_catches_lost_call_type(self):
        payload = {a: binary_report(a)[1] for a in ("nginx",)}
        baseline = json.loads(precision_payload_json(payload))
        baseline["nginx"]["call_types"]["recovered"]["chdir"] = ["direct"]
        found = check_precision_regressions(baseline, payload)
        assert any("chdir/direct lost" in line for line in found)


class TestBinaryCLI:
    def test_json_run_exits_clean(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["binary", "nginx", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nginx"]["program"] == "nginx"
        assert payload["nginx"]["syscalls"]["reachable"]

    def test_text_run_mentions_waivers(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["binary", "nginx"]) == 0
        out = capsys.readouterr().out
        assert "binary-level analysis" in out
        assert "[waived] unreachable-call-type" in out

    def test_no_waivers_fails(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["binary", "nginx", "--no-waivers"]) == 1

    def test_check_against_fresh_write(self, tmp_path, capsys):
        from repro.analyze.__main__ import main

        baseline = tmp_path / "baseline.json"
        assert main(["binary", "nginx", "--json", "--write", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["binary", "nginx", "--json", "--check", str(baseline)]) == 0

    def test_unknown_app_rejected(self):
        from repro.analyze.__main__ import main

        with pytest.raises(SystemExit):
            main(["binary", "not-an-app"])
