"""The over-permissive fixture: honest metadata the IR suite accepts,
dead code the binary analyzer tightens away (and the mechanism enforces)."""

from repro.analyze import analyze_artifact
from repro.analyze.binary import audit_binary, recover_image_for
from repro.baselines.seccomp_filter import build_allowlist_filter
from repro.kernel.seccomp import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
    evaluate_filters,
)
from repro.mechanisms.binary import build_recovered_filter
from repro.syscalls.table import nr_of
from tests.analyze.fixtures.overpermissive_app import (
    FIXTURE_NAME,
    build_artifact,
    build_module,
)


def test_ir_suite_accepts_the_metadata():
    """The compiler metadata is honest: the call edge to chmod exists, so
    every IR-level pass is satisfied — at worst the flow pass notes the
    site is unreachable, the same *warning* class libc's system() gets."""
    report = analyze_artifact(build_artifact(), waivers=())
    assert report.ok  # no errors anywhere in the four IR passes
    errors = [d for d in report.diagnostics if d.severity == "error"]
    assert errors == []
    warnings = [d for d in report.diagnostics if d.severity == "warning"]
    assert [(d.pass_name, d.code, d.func) for d in warnings] == [
        ("flow", "unreachable-site", "maintenance_mode")
    ]


def test_binary_audit_flags_the_dead_call_type():
    """What the consistency passes cannot see, reachability can: chmod's
    only justifier is dead, so the binary audit raises an *error*."""
    diagnostics, metrics = audit_binary(build_artifact())
    assert [(d.code, d.severity, d.func, d.syscall) for d in diagnostics] == [
        ("unreachable-call-type", "error", "maintenance_mode", "chmod")
    ]
    assert metrics["call_types"]["tightened"] == {"chmod": ["direct"]}
    assert "chmod" in metrics["syscalls"]["tightened"]


def test_recovered_filter_kills_what_the_allowlist_admits():
    artifact = build_artifact()
    recovery = recover_image_for(artifact.module)
    assert recovery.present_syscalls == {"chmod", "write"}
    assert recovery.reachable_syscalls == {"write"}

    presence = build_allowlist_filter(artifact.module)
    recovered = build_recovered_filter(recovery)
    chmod = nr_of("chmod")
    write = nr_of("write")
    assert evaluate_filters([presence], chmod)[0] == SECCOMP_RET_ALLOW
    assert (
        evaluate_filters([recovered], chmod)[0] == SECCOMP_RET_KILL_PROCESS
    )
    assert evaluate_filters([recovered], write)[0] == SECCOMP_RET_ALLOW


def test_fixture_runs_benignly_under_binary_only():
    """The tightened policy never fires on the program's real behavior."""
    from repro.bench.harness import CONFIGS
    from repro.kernel.kernel import Kernel

    kernel = Kernel()
    mechanism = CONFIGS["binary_only"].mechanism()
    proc, cpu = mechanism.launch(kernel, FIXTURE_NAME, build_module())
    status = cpu.run()
    assert status.kind == "returned" and status.code == 0
    assert proc.kill_reason is None
    assert mechanism.kills == 0
