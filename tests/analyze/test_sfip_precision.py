"""The sfip transition-precision payload and its pinned CI baseline."""

import json
import os

from repro.analyze.sfip import (
    check_sfip_regressions,
    sfip_payload_json,
    sfip_report,
)
from repro.apps import SYNTHETIC_APPS

APPS = tuple(sorted(SYNTHETIC_APPS))
FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "sfip_precision.json"
)


def _payload(apps=APPS):
    return {app: sfip_report(app) for app in apps}


def test_byte_stable():
    assert sfip_payload_json(_payload()) == sfip_payload_json(_payload())


def test_matches_pinned_baseline():
    """The committed baseline is exactly reproducible.  Regenerate with:
    ``python -m repro.analyze sfip --all --write tests/fixtures/sfip_precision.json``
    """
    with open(FIXTURE) as fh:
        pinned = fh.read()
    assert sfip_payload_json(_payload()) + "\n" == pinned


def test_binary_producer_never_tighter_than_flowgraph():
    """The pinned contrast: recovered graphs may add edges (coarsening),
    never drop flowgraph edges."""
    with open(FIXTURE) as fh:
        payload = json.load(fh)
    for app, report in payload.items():
        flow = report["flowgraph"]["summary"]
        binary = report["binary"]["summary"]
        assert binary["edges"] >= flow["edges"], app
        assert set(flow["start"]) <= set(binary["start"]), app


def test_regression_check_self_clean():
    payload = _payload(("nginx", "vsftpd"))
    baseline = json.loads(sfip_payload_json(payload))
    assert check_sfip_regressions(baseline, payload) == []


def test_regression_check_catches_admitted_transition():
    payload = _payload(("vsftpd",))
    baseline = json.loads(sfip_payload_json(payload))
    transitions = baseline["vsftpd"]["flowgraph"]["policy"]["transitions"]
    prev = sorted(transitions)[0]
    removed = sorted(transitions[prev])[0]
    del transitions[prev][removed]
    found = check_sfip_regressions(baseline, payload)
    assert any(
        "admits new transition %s -> %s" % (prev, removed) in line
        for line in found
    ), found


def test_regression_check_catches_lost_transition():
    payload = _payload(("vsftpd",))
    baseline = json.loads(sfip_payload_json(payload))
    transitions = baseline["vsftpd"]["flowgraph"]["policy"]["transitions"]
    transitions.setdefault("close", {})["execve"] = ["never_was"]
    found = check_sfip_regressions(baseline, payload)
    assert any("false-kill risk" in line for line in found), found


def test_regression_check_catches_origin_drift():
    payload = _payload(("vsftpd",))
    baseline = json.loads(sfip_payload_json(payload))
    transitions = baseline["vsftpd"]["flowgraph"]["policy"]["transitions"]
    prev = sorted(transitions)[0]
    nxt = sorted(transitions[prev])[0]
    transitions[prev][nxt] = list(transitions[prev][nxt]) + ["phantom_fn"]
    found = check_sfip_regressions(baseline, payload)
    assert any(
        "lost origins ['phantom_fn']" in line for line in found
    ), found
