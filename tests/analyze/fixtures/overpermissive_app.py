"""Fixture where honest compiler metadata is still over-permissive.

``maintenance_mode`` really does call the ``chmod`` wrapper — the call
edge exists in the IR, so the compiler's ``call_types`` table honestly
marks chmod directly-callable and the metadata-consistency passes have
nothing to object to (the IR suite reports *ok*, with at worst the same
class of unreachable-site warning libc's ``system()`` gets).  But nothing
ever calls ``maintenance_mode``: the binary truth is that chmod is dead
code, and only the reachability-based binary analyzer
(:mod:`repro.analyze.binary`) tightens it away — an ``unreachable-call-
type`` **error** anchored at the dead justifier, a recovered seccomp
filter that KILLs chmod, and a presence-based allowlist that would have
let it through.
"""

from repro.compiler.pipeline import BastionCompiler
from repro.ir.builder import ModuleBuilder

FIXTURE_NAME = "overpermissive-fixture"


def build_module():
    mb = ModuleBuilder(FIXTURE_NAME)
    for name, arity in (("chmod", 2), ("write", 3)):
        fb = mb.function(name, params=["a%d" % i for i in range(arity)])
        rc = fb.syscall(name, [fb.p(p) for p in fb.func.params])
        fb.ret(rc)
        fb.func.is_wrapper = True

    # dead maintenance path: linked, never called from anywhere
    f = mb.function("maintenance_mode", params=[])
    path = f.const(0, dst="path")
    mode = f.const(0o600, dst="mode")
    rc = f.call("chmod", [path, mode])
    f.ret(rc)

    f = mb.function("main", params=[])
    fd = f.const(1, dst="fd")
    n = f.const(16, dst="n")
    f.call("write", [fd, fd, n], void=True)
    f.ret(0)
    return mb.build()


def build_artifact():
    return BastionCompiler().compile(build_module())
