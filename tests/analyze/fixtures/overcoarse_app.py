"""Fixture where an honest transition graph is still over-coarse.

SFIP's state is *one* syscall deep: after observing ``open`` it cannot
tell which branch produced it.  This app has a request path
(``open -> read -> close``) and a privileged maintenance path
(``open -> execve``) selected by a configuration word in memory — both
genuinely executable, so the flow engine must (and does) admit both.
The coarseness is that the graph's ``open`` state unions the branches:
a data-only attacker who corrupts ``g_mode`` drives the process down
the privileged path using only edges the graph admits, so SFIP allows
the run — the same data-only gap Table 6's divergence rows
(``aocr_nginx_attack2``, ``control_jujutsu``, ...) show BASTION's
argument-integrity context closing on the real apps.

What SFIP *does* kill here is any adjacency outside the union — e.g. a
hijack issuing ``execve`` after ``read`` — which the runtime test pins
via a direct dispatch.
"""

from repro.compiler.pipeline import BastionCompiler
from repro.ir.builder import ModuleBuilder

FIXTURE_NAME = "overcoarse-fixture"

#: g_mode values: 0 = serve a request, 1 = privileged maintenance exec
MODE_SERVE = 0
MODE_MAINTENANCE = 1


def build_module():
    mb = ModuleBuilder(FIXTURE_NAME)
    mb.global_var("g_mode", init=[MODE_SERVE])
    for name, arity in (
        ("open", 2),
        ("read", 3),
        ("close", 1),
        ("execve", 3),
    ):
        fb = mb.function(name, params=["a%d" % i for i in range(arity)])
        rc = fb.syscall(name, [fb.p(p) for p in fb.func.params])
        fb.ret(rc)
        fb.func.is_wrapper = True

    serve = mb.function("serve_request", params=["fd"])
    serve.call("read", [serve.p("fd"), 0, 64])
    serve.call("close", [serve.p("fd")])
    serve.ret(0)

    maint = mb.function("maintenance_exec", params=["fd"])
    maint.call("close", [maint.p("fd")])
    maint.call("execve", [0, 0, 0])
    maint.ret(0)

    f = mb.function("main", params=[])
    fd = f.call("open", [0, 0])
    mode_addr = f.addr_global("g_mode")
    mode = f.load(mode_addr)
    f.if_then(
        mode,
        lambda: f.call("maintenance_exec", [fd], void=True),
        lambda: f.call("serve_request", [fd], void=True),
    )
    f.ret(0)
    return mb.build()


def build_artifact():
    return BastionCompiler().compile(build_module())
