"""The intentionally-broken fixture app for the analyzer's own tests.

``build_clean_artifact`` compiles a small but representative program (libc
wrappers, a sensitive setuid callsite, a benign write loop) that lints
clean.  ``build_broken_artifact`` then plants exactly two defects in the
compiled artifact, chosen so each trips exactly one pass and nothing else:

1. **missing ctx_bind** — the ``ctx_bind_*`` intrinsic guarding the
   sensitive ``setuid`` callsite is *replaced in place* by a harmless
   ``cycle_burn`` intrinsic.  Instruction indices (and so every SiteKey and
   the provenance instruction count) are untouched; only the completeness
   pass can notice the binding promised by the metadata is never
   established.
2. **mis-classified call type** — the metadata's ``call_types`` table is
   edited to claim ``setuid`` is *indirectly*-callable even though its
   wrapper's address is never taken.  Only the call-type audit consults
   that table.

The analyzer must report exactly these two findings — one
``completeness/missing-bind`` error and one ``call-type/over-permissive``
error — and nothing more.
"""

from repro.compiler.pipeline import BastionCompiler
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import (
    Imm,
    Intrinsic,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
)


def build_module():
    mb = ModuleBuilder("broken-fixture")
    for name, arity in (("setuid", 1), ("write", 3)):
        fb = mb.function(name, params=["a%d" % i for i in range(arity)])
        rc = fb.syscall(name, [fb.p(p) for p in fb.func.params])
        fb.ret(rc)
        fb.func.is_wrapper = True

    f = mb.function("main", params=[])
    uid = f.const(0, dst="uid")
    f.call("setuid", [uid])
    fd = f.const(1, dst="fd")
    n = f.const(16, dst="n")
    f.call("write", [fd, fd, n], void=True)
    f.ret(0)
    return mb.build()


def build_clean_artifact():
    return BastionCompiler().compile(build_module())


def build_broken_artifact():
    artifact = build_clean_artifact()

    # Defect 1: knock out the bind intrinsic ahead of the setuid callsite.
    main = artifact.module.functions["main"]
    bind_positions = [
        idx
        for idx, instr in enumerate(main.body)
        if isinstance(instr, Intrinsic)
        and instr.name in (CTX_BIND_CONST, CTX_BIND_MEM)
    ]
    assert bind_positions, "fixture expects an instrumented bind in main"
    main.body[bind_positions[0]] = Intrinsic("cycle_burn", [Imm(0)])

    # Defect 2: claim setuid is indirectly-callable (its wrapper is never
    # address-taken, so no IR construct can issue it that way).
    artifact.metadata.call_types["setuid"]["indirect"] = True
    return artifact
