"""The over-coarse fixture: SFIP's one-syscall-deep state abstraction,
asserted statically (the graph admits the infeasible-by-data path) and
at runtime (the mechanism allows a data-only corrupted run, kills
off-graph adjacencies, and the origin variant closes the replay gap)."""

import pytest

from repro.analyze.flowgraph import compile_policy
from repro.bench.harness import CONFIGS
from repro.errors import ProcessKilled
from repro.kernel.kernel import Kernel
from repro.policy import START
from tests.analyze.fixtures.overcoarse_app import (
    FIXTURE_NAME,
    MODE_MAINTENANCE,
    build_artifact,
    build_module,
)


def _launch(config="sfip"):
    kernel = Kernel()
    mechanism = CONFIGS[config].mechanism()
    proc, cpu = mechanism.launch(kernel, FIXTURE_NAME, build_module())
    return kernel, mechanism, proc, cpu


class TestStaticOvercoarseness:
    def test_graph_unions_both_branches(self):
        """Both the request path and the privileged path are genuinely
        executable, so the engine must admit both — which is exactly why
        a last-syscall state machine cannot tell them apart."""
        policy = compile_policy(build_artifact())
        assert policy.start_syscalls == ("open",)
        # the request path
        assert policy.allows_transition("open", "read")
        assert policy.allows_transition("read", "close")
        # the privileged path, reachable from the same 'close' state the
        # request path ends in: the adjacency a data-only attacker rides
        assert policy.allows_transition("close", "execve")
        # what stays outside the union (and what SFIP *can* kill)
        assert not policy.allows_transition("read", "execve")
        assert not policy.allows_transition(START, "execve")

    def test_origins_name_the_wrappers(self):
        policy = compile_policy(build_artifact())
        assert set(policy.origins_of("close", "execve")) == {"execve"}


class TestRuntimeEnforcement:
    @pytest.mark.parametrize("config", ["sfip", "sfip_origin"])
    def test_benign_run_is_clean(self, config):
        _kernel, mechanism, proc, cpu = _launch(config)
        status = cpu.run()
        assert status.kind == "returned" and proc.kill_reason is None
        assert mechanism.kills == 0 and mechanism.checks > 0

    def test_data_only_corruption_is_admitted(self):
        """Flip the mode word (the data-only attack): the run now execs,
        but every adjacency it takes is in the graph — SFIP allows it.
        This is the same gap Table 6's divergence rows pin on the real
        apps, where BASTION's argument-integrity context kills."""
        _kernel, mechanism, proc, cpu = _launch()
        proc.memory.write(cpu.image.global_addr["g_mode"], MODE_MAINTENANCE)
        status = cpu.run()
        assert status.kind == "returned" and proc.kill_reason is None
        assert proc.syscall_counts.get("execve") == 1
        assert mechanism.kills == 0

    def test_off_graph_first_dispatch_is_killed(self):
        kernel, mechanism, proc, _cpu = _launch()
        with pytest.raises(ProcessKilled):
            kernel.dispatch(proc, "read", [0, 0, 0])
        assert proc.kill_reason.startswith("sfip: transition ^ -> read")
        assert mechanism.kills == 1

    def test_off_graph_adjacency_is_killed(self):
        """execve is in the presence table, so only the transition check
        stands between a hijacked 'read' state and it."""
        kernel, mechanism, proc, _cpu = _launch()
        kernel.dispatch(proc, "open", [0, 0])
        kernel.dispatch(proc, "read", [0, 0, 0])
        with pytest.raises(ProcessKilled):
            kernel.dispatch(proc, "execve", [0, 0, 0])
        assert "read -> execve" in proc.kill_reason
        assert mechanism.kills == 1

    def test_origin_variant_kills_legal_adjacency_replay(self):
        """close -> execve is a legal edge, but issued from code outside
        the recorded origin set (a replay from injected/reused code) the
        origin variant kills where plain sfip admits."""
        kernel, mechanism, proc, cpu = _launch("sfip_origin")
        proc.regs.rip = cpu.image.addr_of("open")
        kernel.dispatch(proc, "open", [0, 0])
        proc.regs.rip = cpu.image.addr_of("close")
        kernel.dispatch(proc, "close", [3])
        proc.regs.rip = cpu.image.addr_of("serve_request")
        with pytest.raises(ProcessKilled):
            kernel.dispatch(proc, "execve", [0, 0, 0])
        assert proc.kill_reason.startswith("sfip-origin:")
        assert "not a recorded origin" in proc.kill_reason

        # the identical syscall sequence from the recorded origins passes
        kernel, mechanism, proc, cpu = _launch("sfip_origin")
        for name, args in (("open", [0, 0]), ("close", [3]), ("execve", [0, 0, 0])):
            proc.regs.rip = cpu.image.addr_of(name)
            kernel.dispatch(proc, name, args)
        assert mechanism.kills == 0

        # and plain sfip admits the replay: the variants' precision gap
        kernel, mechanism, proc, cpu = _launch("sfip")
        kernel.dispatch(proc, "open", [0, 0])
        kernel.dispatch(proc, "close", [3])
        proc.regs.rip = cpu.image.addr_of("serve_request")
        kernel.dispatch(proc, "execve", [0, 0, 0])
        assert mechanism.kills == 0
