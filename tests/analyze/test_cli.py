"""CLI (`python -m repro.analyze`) and tier-1 gate tests."""

import json

import pytest

from repro.analyze.__main__ import main


@pytest.mark.tier1
def test_all_apps_strict_exit_zero(capsys):
    """The tier-1 gate: every shipped app lints clean (waivers applied)."""
    assert main(["--all", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "verdict: clean" in out
    assert "FAIL" not in out


def test_single_app_text(capsys):
    assert main(["nginx"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("repro.analyze: ")
    assert "precision:" in out


def test_single_app_json(capsys):
    assert main(["nginx", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (program,) = payload.keys()
    report = payload[program]
    assert report["ok"] is True
    assert set(report["counts_by_pass"]) == {
        "completeness",
        "call-type",
        "flow",
        "consistency",
    }
    assert report["metrics"]["flow"]["sensitive_sites"] > 0


def test_multiple_apps(capsys):
    assert main(["nginx", "vsftpd"]) == 0
    out = capsys.readouterr().out
    assert out.count("repro.analyze: ") == 2


def test_no_waivers_surfaces_system_findings(capsys):
    # libc's system() warnings are waived by default; --no-waivers shows them
    assert main(["libc", "--no-waivers"]) == 0  # warnings: ok, not clean
    out = capsys.readouterr().out
    assert "unreachable-site" in out
    assert main(["libc", "--no-waivers", "--strict"]) == 1


def test_strict_honors_waivers(capsys):
    assert main(["libc", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "waived:" in out


def test_unknown_app_is_an_error():
    with pytest.raises(SystemExit) as exc:
        main(["no-such-app"])
    assert exc.value.code == 2


def test_no_app_is_an_error():
    with pytest.raises(SystemExit):
        main([])


def test_api_analyze_matches_cli_verdict():
    from repro import api

    report = api.analyze("nginx")
    assert report.clean
    with pytest.raises(api.AnalysisFailure):
        api.analyze("nginx", waivers=(), strict=True)


def test_api_analyze_accepts_artifact_and_module():
    from repro import api
    from repro.apps import build_app_module
    from repro.compiler.pipeline import BastionCompiler

    module = build_app_module("vsftpd")
    report = api.analyze(module)
    assert report.metrics["flow"]["sensitive_sites"] > 0

    artifact = BastionCompiler().compile(build_app_module("vsftpd"))
    report2 = api.analyze(artifact)
    assert report2.metrics == report.metrics
