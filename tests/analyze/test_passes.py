"""Unit tests for the four analysis passes, via targeted artifact tampering.

Each test compiles a small clean program, plants exactly one defect, and
asserts the pass suite reports exactly that defect (and nothing else) —
the same discipline the broken fixture app enforces end-to-end.
"""


from repro.analyze import analyze_artifact
from repro.analyze.calltypes import recompute_call_types
from repro.analyze.flowgraph import ChainCounter, reachable_args
from repro.compiler.pipeline import BastionCompiler
from repro.compiler.metadata import ArgBindingMeta, SiteKey
from repro.ir.builder import ModuleBuilder
from repro.ir.instructions import AddrLocal, Imm, Intrinsic, CTX_WRITE_MEM
from tests.conftest import make_wrapper


def compile_module(mb):
    return BastionCompiler().compile(mb.build())


def analyze(artifact):
    return analyze_artifact(artifact, waivers=())


def single_wrapper_app(extra=None):
    """main calls setuid(uid) with a locally-computed uid."""
    mb = ModuleBuilder("app")
    make_wrapper(mb, "setuid", 1)
    f = mb.function("main", params=[])
    uid = f.const(0, dst="uid")
    f.call("setuid", [uid])
    if extra is not None:
        extra(mb, f)
    f.ret(0)
    return compile_module(mb)


def replace_intrinsic(func, name, occurrence=0, when=None):
    """Swap the n-th matching intrinsic for an inert cycle_burn, in place."""
    seen = 0
    for idx, instr in enumerate(func.body):
        if isinstance(instr, Intrinsic) and instr.name == name:
            if when is not None and not when(func.body, idx):
                continue
            if seen == occurrence:
                func.body[idx] = Intrinsic("cycle_burn", [Imm(0)])
                return idx
            seen += 1
    raise AssertionError("no %s intrinsic to replace" % name)


def codes(report):
    return sorted(d.code for d in report.diagnostics)


class TestCompleteness:
    def test_clean_app_has_no_findings(self):
        report = analyze(single_wrapper_app())
        assert report.clean
        assert report.metrics["completeness"]["sensitive_sites"] == 1
        assert report.metrics["completeness"]["tainted_locals"] >= 1

    def test_missing_write_shadow_detected(self):
        artifact = single_wrapper_app()
        main = artifact.module.functions["main"]
        replace_intrinsic(main, CTX_WRITE_MEM)
        report = analyze(artifact)
        assert codes(report) == ["missing-write-shadow"]
        (diag,) = report.diagnostics
        assert diag.func == "main"
        assert diag.severity == "error"
        assert "%uid" in diag.message

    def test_missing_bind_detected(self):
        artifact = single_wrapper_app()
        main = artifact.module.functions["main"]
        replace_intrinsic(main, "ctx_bind_const")
        report = analyze(artifact)
        assert codes(report) == ["missing-bind"]
        (diag,) = report.diagnostics
        assert diag.syscall == "setuid"

    def test_bind_kind_mismatch_detected(self):
        artifact = single_wrapper_app()
        (site,) = [
            k for k, m in artifact.metadata.callsites.items() if m.syscall
        ]
        meta = artifact.metadata.callsites[site]
        meta.binds = tuple(
            ArgBindingMeta(b.position, "mem", None) for b in meta.binds
        )
        report = analyze(artifact)
        assert codes(report) == ["bind-kind-mismatch"]

    def test_unprotected_site_detected(self):
        artifact = single_wrapper_app()
        (site,) = [
            k for k, m in artifact.metadata.callsites.items() if m.syscall
        ]
        del artifact.metadata.callsites[site]
        report = analyze(artifact)
        assert codes(report) == ["unprotected-site"]
        (diag,) = report.diagnostics
        assert (diag.func, diag.index) == (site.func, site.index)

    def test_missing_param_refresh_detected(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        helper = mb.function("drop_priv", params=["uid"])
        helper.call("setuid", [helper.p("uid")])
        helper.ret(0)
        f = mb.function("main", params=[])
        f.call("drop_priv", [f.const(0)])
        f.ret(0)
        artifact = compile_module(mb)
        assert analyze(artifact).clean

        helper = artifact.module.functions["drop_priv"]

        def targets_param(body, idx):
            prev = body[idx - 1] if idx > 0 else None
            return isinstance(prev, AddrLocal) and prev.var == "uid"

        replace_intrinsic(helper, CTX_WRITE_MEM, when=targets_param)
        report = analyze(artifact)
        assert "missing-param-refresh" in codes(report)
        assert all(d.func == "drop_priv" for d in report.diagnostics)

    def test_sensitive_store_shadow_tracked(self):
        # A global holding a sensitive value: stores must be shadowed.
        mb = ModuleBuilder("app")
        make_wrapper(mb, "execve", 3)
        mb.global_string("g_path", "/bin/true")
        f = mb.function("main", params=[])
        p = f.addr_global("g_path")
        path = f.load(p)
        f.call("execve", [path, f.const(0), f.const(0)])
        f.ret(0)
        artifact = compile_module(mb)
        report = analyze(artifact)
        assert report.clean
        assert "g_path" in artifact.metadata.sensitive_globals


class TestCallTypeAudit:
    def test_recomputation_matches_compiler_on_clean_app(self):
        artifact = single_wrapper_app()
        recomputed = recompute_call_types(artifact.module)
        assert recomputed == artifact.metadata.call_types

    def test_over_permissive_entry_detected(self):
        artifact = single_wrapper_app()
        artifact.metadata.call_types["setuid"]["indirect"] = True
        report = analyze(artifact)
        assert codes(report) == ["over-permissive"]
        (diag,) = report.diagnostics
        assert diag.syscall == "setuid"

    def test_phantom_syscall_entry_detected(self):
        artifact = single_wrapper_app()
        artifact.metadata.call_types["execve"] = {
            "direct": True,
            "indirect": False,
        }
        report = analyze(artifact)
        assert codes(report) == ["over-permissive"]
        assert report.diagnostics[0].syscall == "execve"

    def test_missing_call_type_detected(self):
        artifact = single_wrapper_app()
        del artifact.metadata.call_types["setuid"]
        report = analyze(artifact)
        assert codes(report) == ["missing-call-type"]

    def test_metrics_count_table(self):
        artifact = single_wrapper_app()
        report = analyze(artifact)
        m = report.metrics["call-type"]
        assert m["used_syscalls"] == len(artifact.metadata.call_types)
        assert m["not_callable"] == m["table_size"] - m["used_syscalls"]


class TestFlow:
    def test_single_chain_app(self):
        artifact = single_wrapper_app()
        report = analyze(artifact)
        flow = report.metrics["flow"]
        assert flow["sensitive_sites"] == 1
        assert flow["chains"] == 1
        assert flow["attack_surface"] == reachable_args("setuid")
        assert flow["per_syscall"]["setuid"]["sites"] == 1

    def test_two_paths_double_the_chains(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        mid = mb.function("drop_priv", params=["uid"])
        mid.call("setuid", [mid.p("uid")])
        mid.ret(0)
        f = mb.function("main", params=[])
        f.call("drop_priv", [f.const(0)])
        f.call("drop_priv", [f.const(1)])
        f.ret(0)
        artifact = compile_module(mb)
        report = analyze(artifact)
        assert report.metrics["flow"]["chains"] == 2

    def test_recursive_caller_terminates_and_counts_once(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        rec = mb.function("retry", params=["n"])
        rec.call("setuid", [rec.p("n")])
        rec.call("retry", [rec.p("n")])  # direct recursion
        rec.ret(0)
        f = mb.function("main", params=[])
        f.call("retry", [f.const(0)])
        f.ret(0)
        artifact = compile_module(mb)
        report = analyze(artifact)
        # the recursive edge adds no new stack shape: one chain via main
        assert report.metrics["flow"]["chains"] == 1
        assert report.clean

    def test_unreachable_site_warned(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        dead = mb.function("never_called", params=[])
        dead.call("setuid", [dead.const(0)])
        dead.ret(0)
        f = mb.function("main", params=[])
        f.call("setuid", [f.const(0)])
        f.ret(0)
        artifact = compile_module(mb)
        report = analyze(artifact)
        assert codes(report) == ["unreachable-site"]
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert diag.func == "never_called"

    def test_address_taken_callee_gets_indirect_terminus_chains(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        h = mb.function("hook", params=["x"], sig="fn1")
        h.call("setuid", [h.p("x")])
        h.ret(0)
        f = mb.function("main", params=[])
        fp = f.funcaddr("hook")
        f.icall(fp, [f.const(0)], sig="fn1")
        f.ret(0)
        artifact = compile_module(mb)
        report = analyze(artifact)
        # one indirect callsite in the program = one valid chain terminus
        assert report.metrics["flow"]["chains"] == 1
        assert report.clean

    def test_chain_counter_roots_at_thread_entries(self):
        artifact = single_wrapper_app()
        artifact.metadata.thread_entries = ("main",)  # idempotent: main is root
        counter = ChainCounter(artifact.metadata)
        assert counter.chains_to("main") == 1


class TestConsistency:
    def test_dangling_valid_caller_site(self):
        artifact = single_wrapper_app()
        callee = next(iter(artifact.metadata.valid_callers))
        artifact.metadata.valid_callers[callee] += (SiteKey("main", 999),)
        report = analyze(artifact)
        assert "dangling-site" in codes(report)

    def test_edge_not_derivable(self):
        artifact = single_wrapper_app()
        callee = next(iter(artifact.metadata.valid_callers))
        # index 0 of main holds a Const, not a Call to the callee
        artifact.metadata.valid_callers[callee] += (SiteKey("main", 0),)
        report = analyze(artifact)
        assert "edge-not-derivable" in codes(report)

    def test_edge_not_accepted(self):
        artifact = single_wrapper_app()
        target = "setuid"
        assert artifact.metadata.valid_callers[target]
        artifact.metadata.valid_callers[target] = ()
        report = analyze(artifact)
        assert "edge-not-accepted" in codes(report)

    def test_indirect_site_missing(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        h = mb.function("hook", params=["x"], sig="fn1")
        h.call("setuid", [h.p("x")])
        h.ret(0)
        f = mb.function("main", params=[])
        fp = f.funcaddr("hook")
        f.icall(fp, [f.const(0)], sig="fn1")
        f.ret(0)
        artifact = compile_module(mb)
        artifact.metadata.indirect_sites = ()
        report = analyze(artifact)
        assert "indirect-site-missing" in codes(report)

    def test_address_taken_extra_and_missing(self):
        mb = ModuleBuilder("app")
        make_wrapper(mb, "setuid", 1)
        h = mb.function("hook", params=["x"], sig="fn1")
        h.call("setuid", [h.p("x")])
        h.ret(0)
        f = mb.function("main", params=[])
        fp = f.funcaddr("hook")
        f.icall(fp, [f.const(0)], sig="fn1")
        f.ret(0)
        artifact = compile_module(mb)
        artifact.metadata.address_taken = ("phantom_fn",)
        report = analyze(artifact)
        assert "address-taken-extra" in codes(report)
        assert "address-taken-missing" in codes(report)

    def test_unknown_global(self):
        artifact = single_wrapper_app()
        artifact.metadata.sensitive_globals = ("no_such_global",)
        report = analyze(artifact)
        assert "unknown-global" in codes(report)

    def test_syscall_function_mismatch(self):
        artifact = single_wrapper_app()
        artifact.metadata.syscall_functions["main"] = ("execve",)
        report = analyze(artifact)
        assert "syscall-function-mismatch" in codes(report)

    def test_provenance_mismatch(self):
        artifact = single_wrapper_app()
        artifact.metadata.provenance["instrumented_instructions"] = 1
        report = analyze(artifact)
        assert "provenance-mismatch" in codes(report)

    def test_missing_provenance_warns(self):
        artifact = single_wrapper_app()
        artifact.metadata.provenance = {}
        report = analyze(artifact)
        assert codes(report) == ["no-provenance"]
        assert report.ok and not report.clean


class TestReportShape:
    def test_counts_by_pass_zero_filled(self):
        report = analyze(single_wrapper_app())
        assert report.counts_by_pass() == {
            "completeness": 0,
            "call-type": 0,
            "flow": 0,
            "consistency": 0,
        }

    def test_json_round_trip_keys(self):
        import json

        artifact = single_wrapper_app()
        artifact.metadata.call_types["setuid"]["indirect"] = True
        report = analyze(artifact)
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["counts_by_pass"]["call-type"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "over-permissive"
        assert diag["syscall"] == "setuid"
        assert "metrics" in payload

    def test_metadata_json_round_trip_keeps_provenance(self):
        from repro.compiler.metadata import BastionMetadata

        artifact = single_wrapper_app()
        text = artifact.metadata.to_json()
        back = BastionMetadata.from_json(text)
        assert back.provenance == artifact.metadata.provenance
        report = analyze_artifact(artifact, waivers=())
        assert report.clean
