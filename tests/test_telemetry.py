"""Unit tests for the telemetry spine (bus, ring, counters, views)."""

import pytest

from repro.telemetry import (
    STAGE_CYCLES_PREFIX,
    BusCounter,
    BusMax,
    BusView,
    TelemetryBus,
)


class TestCounters:
    def test_count_and_get(self):
        bus = TelemetryBus()
        bus.count("x")
        bus.count("x", 4)
        assert bus.get("x") == 5
        assert bus.get("missing") == 0

    def test_record_max(self):
        bus = TelemetryBus()
        bus.record_max("depth", 3)
        bus.record_max("depth", 9)
        bus.record_max("depth", 5)
        assert bus.max_of("depth") == 9

    def test_counters_with_prefix(self):
        bus = TelemetryBus()
        bus.count("monitor.hook.open", 2)
        bus.count("monitor.hook.mmap", 1)
        bus.count("sched.slices", 7)
        assert bus.counters_with_prefix("monitor.hook.") == {"open": 2, "mmap": 1}

    def test_charge_stage(self):
        bus = TelemetryBus()
        bus.charge_stage("seccomp", 40)
        bus.charge_stage("seccomp", 0)  # zero-cost deltas are not recorded
        bus.charge_stage("verify.unwind", 10)
        assert bus.stage_cycles() == {"seccomp": 40, "verify.unwind": 10}
        assert STAGE_CYCLES_PREFIX + "seccomp" in bus.counters


class TestEventRing:
    def test_bounded_ring_counts_drops(self):
        bus = TelemetryBus(capacity=3)
        for i in range(5):
            bus.emit("kind", "e%d" % i)
        assert len(bus) == 3
        assert bus.dropped == 2
        assert bus.total == 5
        assert [e.event for e in bus.events()] == ["e2", "e3", "e4"]

    def test_query_filters(self):
        bus = TelemetryBus()
        bus.emit("kernel", "mmap_exec", pid=1)
        bus.emit("kernel", "setuid", pid=2)
        bus.emit("dispatch", "syscall", pid=1, syscall="open")
        assert len(bus.query(kind="kernel")) == 2
        assert len(bus.query(pid=1)) == 2
        assert [e.syscall for e in bus.query(kind="dispatch")] == ["open"]

    def test_subscribers_see_every_event_despite_eviction(self):
        bus = TelemetryBus(capacity=2)
        seen = []
        bus.subscribe(lambda e: seen.append(e.event))
        for i in range(10):
            bus.emit("k", "e%d" % i)
        assert len(seen) == 10  # the ring kept 2, the subscriber kept all
        assert len(bus) == 2

    def test_unsubscribe(self):
        bus = TelemetryBus()
        seen = []
        cb = bus.subscribe(lambda e: seen.append(e))
        bus.emit("k", "one")
        bus.unsubscribe(cb)
        bus.emit("k", "two")
        assert len(seen) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryBus(capacity=0)


class TestAbsorb:
    def test_absorb_merges_counters_maxima_and_ring(self):
        a, b = TelemetryBus(), TelemetryBus()
        a.count("x", 1)
        b.count("x", 2)
        b.count("y", 3)
        a.record_max("m", 5)
        b.record_max("m", 4)
        b.emit("k", "e")
        a.absorb(b)
        assert a.get("x") == 3
        assert a.get("y") == 3
        assert a.max_of("m") == 5
        assert [e.event for e in a.events()] == ["e"]

    def test_absorb_self_is_noop(self):
        bus = TelemetryBus()
        bus.count("x", 1)
        bus.absorb(bus)
        assert bus.get("x") == 1


class _Stats(BusView):
    hits = BusCounter("test.hits")
    deepest = BusMax("test.deepest")


class TestViews:
    def test_counter_descriptor_reads_and_writes_the_bus(self):
        stats = _Stats()
        assert stats.hits == 0
        stats.hits += 1
        stats.hits += 1
        assert stats.hits == 2
        assert stats.bus.get("test.hits") == 2

    def test_assignment_overwrites(self):
        stats = _Stats()
        stats.hits = 40
        assert stats.hits == 40

    def test_max_descriptor(self):
        stats = _Stats()
        stats.bus.record_max("test.deepest", 6)
        assert stats.deepest == 6
        stats.deepest = 2  # plain assignment, like the counters
        assert stats.deepest == 2

    def test_rebind_carries_accumulated_state(self):
        stats = _Stats()
        stats.hits = 7
        shared = TelemetryBus()
        shared.count("test.hits", 3)
        stats.rebind(shared)
        assert stats.bus is shared
        assert stats.hits == 10  # absorbed 7 into the pre-existing 3

    def test_two_views_one_bus_share_counters(self):
        shared = TelemetryBus()
        a = _Stats(bus=shared)
        b = _Stats(bus=shared)
        a.hits += 1
        assert b.hits == 1
