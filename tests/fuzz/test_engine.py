"""Campaign determinism + minimization + corpus format."""

from repro.fuzz.engine import (
    SCHEMA,
    FuzzCampaign,
    minimize_divergence,
    serialize_corpus,
)
from repro.fuzz.oracle import MATRIX, evaluate_genome
from repro.fuzz.genome import seed_genomes


def _small_campaign(seed=11, budget=6):
    return FuzzCampaign(seed=seed, budget=budget).run()


def test_same_seed_byte_identical_corpus():
    a = serialize_corpus(_small_campaign().to_payload())
    b = serialize_corpus(_small_campaign().to_payload())
    assert a == b


def test_different_seed_diverges_eventually():
    a = _small_campaign(seed=1, budget=8)
    b = _small_campaign(seed=2, budget=8)
    # the seed queue is shared, so compare the mutated tail via coverage
    assert serialize_corpus(a.to_payload()) != serialize_corpus(b.to_payload())


def test_campaign_respects_budget():
    campaign = _small_campaign(budget=5)
    assert campaign.executed == 5


def test_payload_shape():
    payload = _small_campaign(budget=4).to_payload()
    assert payload["schema"] == SCHEMA
    assert payload["matrix"] == list(MATRIX)
    assert payload["executed"] == 4
    for entry in payload["divergences"]:
        assert set(entry) == {"name", "genome", "pattern", "blocked_by", "pairs"}
        assert set(entry["pattern"]) == set(MATRIX)
        for allowing, killing in entry["pairs"]:
            assert entry["pattern"][allowing] == "allowed"
            assert entry["pattern"][killing] == "killed"


def test_coverage_keeps_only_fresh_tokens():
    campaign = _small_campaign(budget=6)
    assert campaign.kept, "the seed genomes must add coverage"
    assert len(campaign.coverage) > 0
    # every kept genome contributed at least one token at keep time, so
    # there can never be more kept genomes than coverage tokens
    assert len(campaign.kept) <= len(campaign.coverage)


def test_minimization_preserves_pattern():
    # seed genomes are already minimal except for timing/chain; build a
    # deliberately non-minimal variant of the first divergent seed
    for genome in seed_genomes():
        result = evaluate_genome(genome)
        if result.divergent:
            break
    else:
        raise AssertionError("no divergent seed genome")
    from repro.fuzz.genome import Genome, repair

    fat = repair(
        Genome(
            target=genome.target,
            trigger=genome.trigger,
            target_class=genome.target_class,
            primitive=genome.primitive,
            timing=2,
            chain=genome.chain + ("setuid_root",),
        )
    )
    fat_result = evaluate_genome(fat)
    if fat_result.pattern != result.pattern or not fat_result.valid:
        fat_result = result  # the fattened variant changed behavior; minimize the seed
    minimized = minimize_divergence(fat_result)
    assert minimized.valid
    assert minimized.pattern == fat_result.pattern
    assert minimized.genome.timing <= fat_result.genome.timing
    assert len(minimized.genome.chain) <= len(fat_result.genome.chain)
