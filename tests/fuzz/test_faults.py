"""Dispatch-time fault injection through the pipeline insert() API."""

from repro.fuzz.faults import (
    CAMPAIGN_SPECS,
    CLASSIFICATIONS,
    FAULT_SITES,
    FAULT_STAGES,
    FaultSpec,
    run_fault_campaign,
)


def test_campaign_covers_every_site_and_stage():
    pairs = {(s.site, s.stage) for s in CAMPAIGN_SPECS}
    assert pairs == {(s, st) for s in FAULT_SITES for st in FAULT_STAGES}


def test_fault_matrix_shape_and_classes():
    result = run_fault_campaign(
        mechanisms=("undefended", "bastion"),
        specs=(
            FaultSpec(site="syscall_number", stage="pre_seccomp"),
            FaultSpec(site="arg_register", stage="pre_execute"),
            FaultSpec(site="filter_state", stage="pre_seccomp"),
        ),
    )
    assert result["matrix"] == ["undefended", "bastion"]
    assert set(result["cells"]) == {
        "syscall_number@pre_seccomp",
        "arg_register@pre_execute",
        "filter_state@pre_seccomp",
    }
    for row in result["cells"].values():
        for cell in row.values():
            assert cell["class"] in CLASSIFICATIONS


def test_number_flip_pre_seccomp_caught_by_bastion_only():
    # write(1) -> mmap(9): BASTION's call-type filter sees the flipped
    # number only when the flip lands before the seccomp stage
    result = run_fault_campaign(
        mechanisms=("undefended", "bastion"),
        specs=(
            FaultSpec(site="syscall_number", stage="pre_seccomp"),
            FaultSpec(site="syscall_number", stage="pre_execute"),
        ),
    )
    pre = result["cells"]["syscall_number@pre_seccomp"]
    late = result["cells"]["syscall_number@pre_execute"]
    assert pre["bastion"]["class"] == "caught"
    assert pre["undefended"]["class"] == "missed"
    # past the filter, even BASTION executes the wrong syscall
    assert late["bastion"]["class"] == "missed"


def test_register_only_arg_flip_evades_the_monitor():
    # the monitor verifies memory-resident shadow variables, not the
    # register file: a dispatch-time argument flip is invisible to AI —
    # the honest SFP motivation this subsystem exists to demonstrate
    result = run_fault_campaign(
        mechanisms=("bastion",),
        specs=(FaultSpec(site="arg_register", stage="pre_seccomp"),),
    )
    cell = result["cells"]["arg_register@pre_seccomp"]["bastion"]
    assert cell["class"] == "missed"


def test_filter_state_fault_is_fail_stop_under_bastion():
    result = run_fault_campaign(
        mechanisms=("undefended", "bastion"),
        specs=(FaultSpec(site="filter_state", stage="pre_seccomp"),),
    )
    row = result["cells"]["filter_state@pre_seccomp"]
    # no filter installed undefended: nothing to corrupt
    assert row["undefended"]["class"] == "not-reached"
    # BASTION's own filter, corrupted, kills the benign workload
    assert row["bastion"]["class"] == "caught"


def test_fault_injection_leaves_parity_untouched():
    # running a faulted campaign must not leak state into a later clean
    # run (fresh kernel per run; the pipeline hook dies with the kernel)
    first = run_fault_campaign(
        mechanisms=("bastion",),
        specs=(FaultSpec(site="syscall_number", stage="pre_seccomp"),),
    )
    second = run_fault_campaign(
        mechanisms=("bastion",),
        specs=(FaultSpec(site="syscall_number", stage="pre_seccomp"),),
    )
    assert first == second
