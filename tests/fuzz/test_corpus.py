"""The pinned corpus fixture: replay + acceptance criteria of ISSUE 9."""

import json
import os

import pytest

from repro.attacks.catalog import CATALOG, fuzz_extension
from repro.fuzz.engine import default_corpus_path, load_corpus, replay_entry
from repro.fuzz.oracle import FILTERING_BASELINES


@pytest.fixture(scope="module")
def corpus():
    return load_corpus()


def test_fixture_exists_and_is_canonical():
    path = default_corpus_path()
    assert os.path.exists(path)
    with open(path) as handle:
        text = handle.read()
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"


def test_at_least_five_distinct_divergences(corpus):
    names = [e["name"] for e in corpus["divergences"]]
    assert len(names) == len(set(names))
    assert len(names) >= 5


def test_required_disagreement_shapes(corpus):
    pairs = {
        tuple(p) for e in corpus["divergences"] for p in e["pairs"]
    }
    # a filtering baseline allows a sequence BASTION kills
    assert any(
        allowing in FILTERING_BASELINES and killing == "bastion"
        for allowing, killing in pairs
    ), pairs
    # binary_only and BASTION disagree (either direction)
    assert any(
        {"binary_only", "bastion"} == {allowing, killing}
        for allowing, killing in pairs
    ), pairs
    # SFIP admits a sequence BASTION kills: corruption riding legal
    # transition-graph adjacencies (the ISSUE 10 acceptance divergence)
    assert ("sfip", "bastion") in pairs, pairs


def test_divergences_replay(corpus):
    # replay a representative, bounded slice so tier-1 stays fast; the CI
    # fuzz-smoke job regenerates the whole corpus byte-identically
    for entry in corpus["divergences"][:3]:
        ok, result = replay_entry(entry)
        assert ok, "%s did not replay: %s vs %s" % (
            entry["name"],
            result.pattern,
            entry["pattern"],
        )


def test_fuzz_extension_registers_catalog_specs(corpus):
    specs = fuzz_extension()
    assert len(specs) == len(corpus["divergences"])
    catalog_names = {s.name for s in CATALOG}
    for spec, entry in zip(specs, corpus["divergences"]):
        assert spec.name == entry["name"]
        assert spec.extra
        assert spec.name not in catalog_names  # never mutates CATALOG
    # calling it twice must not grow CATALOG either
    before = len(CATALOG)
    fuzz_extension()
    assert len(CATALOG) == before
