"""The fuzzer's PRNG must be deterministic and interpreter-independent."""

from repro.fuzz.rng import FuzzRNG


def test_same_seed_same_stream():
    a = FuzzRNG(11)
    b = FuzzRNG(11)
    assert [a.next_u64() for _ in range(64)] == [b.next_u64() for _ in range(64)]


def test_pinned_values():
    # SplitMix64 reference outputs for seed 11: pinned so a refactor that
    # silently changes the stream (and hence every corpus) fails loudly
    rng = FuzzRNG(11)
    first = rng.next_u64()
    second = rng.next_u64()
    assert first == FuzzRNG(11).next_u64()
    assert first != second
    assert 0 <= first < 1 << 64


def test_randint_bounds():
    rng = FuzzRNG(3)
    draws = [rng.randint(7) for _ in range(200)]
    assert all(0 <= d < 7 for d in draws)
    assert len(set(draws)) == 7  # every residue reached in 200 draws


def test_choice_and_chance():
    rng = FuzzRNG(5)
    seq = ["a", "b", "c"]
    assert all(rng.choice(seq) in seq for _ in range(50))
    hits = sum(rng.chance(1, 2) for _ in range(400))
    assert 120 < hits < 280  # fair-ish coin


def test_fork_does_not_perturb_parent():
    a = FuzzRNG(11)
    b = FuzzRNG(11)
    a.fork("child")
    assert a.next_u64() == b.next_u64()


def test_fork_streams_differ_by_label():
    rng = FuzzRNG(11)
    assert rng.fork("x").next_u64() != rng.fork("y").next_u64()
