"""Mutation-engine domain closure: every mutation yields a runnable genome."""

import pytest

from repro.fuzz.genome import (
    MAX_CHAIN,
    MAX_TIMING,
    PAYLOAD_OPS,
    TRIGGERS,
    Genome,
    classes_for,
    genome_from_dict,
    mutate,
    ops_for,
    repair,
    seed_genomes,
    spec_for_genome,
)
from repro.fuzz.rng import FuzzRNG


def _assert_valid(genome):
    assert genome.trigger in TRIGGERS[genome.target]
    assert genome.target_class in classes_for(genome.target, genome.trigger)
    assert 1 <= genome.timing <= MAX_TIMING
    assert 1 <= len(genome.chain) <= MAX_CHAIN
    valid_ops = set(ops_for(genome.target))
    assert all(op in valid_ops for op in genome.chain)


def test_seed_genomes_cover_every_site():
    seeds = seed_genomes()
    sites = {(g.target, g.trigger, g.target_class) for g in seeds}
    assert len(sites) == len(seeds)  # no duplicates
    for target, triggers in TRIGGERS.items():
        for trigger in triggers:
            for cls in classes_for(target, trigger):
                assert (target, trigger, cls) in sites
    for genome in seeds:
        _assert_valid(genome)


def test_mutation_closure_under_repair():
    rng = FuzzRNG(7)
    pool = list(seed_genomes())
    for _ in range(300):
        base = rng.choice(pool)
        mate = rng.choice(pool)
        child = repair(mutate(base, rng, mate=mate))
        _assert_valid(child)
        pool.append(child)


def test_repair_snaps_invalid_fields():
    broken = Genome(
        target="nginx",
        trigger="browser_event",  # wrong target's trigger
        target_class="no_such_class",
        primitive="no_such_primitive",
        timing=99,
        chain=("no_such_op", "exec_shell"),
    )
    fixed = repair(broken)
    _assert_valid(fixed)
    assert fixed.target == "nginx"
    assert "exec_shell" in fixed.chain


def test_repair_is_deterministic_and_idempotent():
    broken = Genome(
        target="httpd",
        trigger="ngx_request",
        target_class="bound_shadow_variable",
        primitive="spray",
        timing=0,
        chain=(),
    )
    once = repair(broken)
    assert once == repair(broken)
    assert once == repair(once)


def test_genome_roundtrip():
    for genome in seed_genomes():
        assert genome_from_dict(genome.to_dict()) == genome


def test_payload_ops_declare_targets():
    for name, op in PAYLOAD_OPS.items():
        assert op.build_args is not None, name
        assert op.check is not None, name
    for target in TRIGGERS:
        assert "exec_shell" in ops_for(target)


def test_spec_for_genome_builds_runnable_spec():
    genome = seed_genomes()[0]
    spec = spec_for_genome(genome)
    assert spec.target == genome.target
    assert spec.extra  # never part of the paper-matching matrix
    assert callable(spec.stage) and callable(spec.oracle)


def test_mutate_never_returns_same_object():
    rng = FuzzRNG(13)
    genome = seed_genomes()[0]
    children = {mutate(genome, rng, mate=seed_genomes()[-1]).key() for _ in range(40)}
    assert len(children) > 1  # the space is actually being explored


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mutation_stream_is_seed_deterministic(seed):
    def stream(s):
        rng = FuzzRNG(s)
        pool = list(seed_genomes())
        out = []
        for _ in range(25):
            child = repair(mutate(rng.choice(pool), rng, mate=rng.choice(pool)))
            out.append(child.key())
            pool.append(child)
        return out

    assert stream(seed) == stream(seed)
