"""Tests for mini-SQLite's in-IR btree (insert/search over heap nodes)."""

import pytest

from repro.apps.sqlite import SqliteConfig, build_sqlite
from repro.kernel.kernel import Kernel
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image
from repro.vm.memory import WORD


@pytest.fixture(scope="module")
def loaded():
    module = build_sqlite(SqliteConfig(btree_seed_keys=16))
    kernel = Kernel()
    kernel.vfs.makedirs("/data")
    kernel.vfs.write_file("/data/test.db", b"\x00" * 4096)
    kernel.vfs.write_file("/data/test.db-journal", b"")
    image = Image(module)
    return module, kernel, image


def _call(loaded, func, args):
    """Run one exported function directly and return its value."""
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)
    cpu = CPU(image, proc, kernel, CPUOptions(), entry=func, entry_args=args)
    status = cpu.run()
    assert status.kind == "returned", status
    return status.code, proc, image


def test_insert_then_search_hits(loaded):
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)

    def run(func, args):
        cpu = CPU(image, proc, kernel, CPUOptions(), entry=func, entry_args=args)
        return cpu.run()

    inserted = run("sqlite_btree_insert", [42])
    assert inserted.kind == "returned" and inserted.code != 0
    found = run("sqlite_btree_search", [42])
    assert found.code == inserted.code  # same node
    missing = run("sqlite_btree_search", [43])
    assert missing.code == 0


def test_tree_orders_keys(loaded):
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)

    def run(func, args):
        cpu = CPU(image, proc, kernel, CPUOptions(), entry=func, entry_args=args)
        status = cpu.run()
        assert status.kind == "returned"
        return status.code

    root = run("sqlite_btree_insert", [100])
    left = run("sqlite_btree_insert", [50])
    right = run("sqlite_btree_insert", [150])
    # node layout: {key, left, right}
    assert proc.memory.read(root) == 100
    assert proc.memory.read(root + WORD) == left
    assert proc.memory.read(root + 2 * WORD) == right
    assert proc.memory.read(left) == 50
    assert proc.memory.read(right) == 150


def test_duplicate_insert_returns_existing(loaded):
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)

    def run(func, args):
        cpu = CPU(image, proc, kernel, CPUOptions(), entry=func, entry_args=args)
        return cpu.run().code

    first = run("sqlite_btree_insert", [7])
    second = run("sqlite_btree_insert", [7])
    assert first == second


def test_seed_populates_index(loaded):
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)
    cpu = CPU(image, proc, kernel, CPUOptions(), entry="sqlite_btree_seed")
    assert cpu.run().kind == "returned"
    root = proc.memory.read(image.global_addr["g_btree_root"])
    assert root != 0
    # count nodes by walking the heap allocations via search of seeded keys:
    # at minimum the root's children exist for 16 random keys
    assert proc.memory.read(root + WORD) != 0 or proc.memory.read(root + 2 * WORD) != 0


def test_comparator_goes_through_icall(loaded):
    """Every comparison dispatches indirectly (the CFI-relevant property)."""
    module, kernel, image = loaded
    proc = kernel.create_process("sqlite", image)
    cpu = CPU(image, proc, kernel, CPUOptions(), entry="sqlite_btree_seed")
    cpu.run()
    assert cpu.stats.indirect_calls >= 16  # at least one per insert
