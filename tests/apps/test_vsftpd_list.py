"""Tests for vsftpd's LIST command and the getdents syscall behind it."""

import pytest

from repro.apps.vsftpd import build_vsftpd
from repro.apps.workloads import DkftpbenchWorkload
from repro.bench.harness import _setup_vsftpd_env
from repro.ir.builder import ModuleBuilder
from repro.kernel import errno
from repro.kernel.kernel import Kernel
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image
from repro.vm.memory import WORD


class TestGetdents:
    @pytest.fixture
    def setup(self):
        kernel = Kernel()
        kernel.vfs.makedirs("/d")
        for name in ("alpha", "beta", "gamma"):
            kernel.vfs.write_file("/d/%s" % name, b"x")
        mb = ModuleBuilder("t")
        mb.function("main").ret(0)
        proc = kernel.create_process("t", Image(mb.build()))
        return kernel, proc

    BUF = 0x7F20_0000_0000
    STR = 0x7F20_0010_0000

    def _open_dir(self, kernel, proc, path="/d"):
        proc.memory.write_cstr(self.STR, path)
        return kernel.dispatch(proc, "open", [self.STR, 0, 0])

    def test_lists_entries_sorted(self, setup):
        kernel, proc = setup
        fd = self._open_dir(kernel, proc)
        n = kernel.dispatch(proc, "getdents", [fd, self.BUF, 100])
        assert n == len("alpha") + 1 + len("beta") + 1 + len("gamma") + 1
        assert proc.memory.read_cstr(self.BUF) == "alpha"
        offset = (len("alpha") + 1) * WORD
        assert proc.memory.read_cstr(self.BUF + offset) == "beta"

    def test_paging_and_exhaustion(self, setup):
        kernel, proc = setup
        fd = self._open_dir(kernel, proc)
        first = kernel.dispatch(proc, "getdents", [fd, self.BUF, 7])
        assert first == 6  # "alpha\0" fits, "beta\0" does not
        second = kernel.dispatch(proc, "getdents", [fd, self.BUF, 100])
        assert proc.memory.read_cstr(self.BUF) == "beta"
        assert second == 11  # beta\0 gamma\0
        assert kernel.dispatch(proc, "getdents", [fd, self.BUF, 100]) == 0

    def test_not_a_directory(self, setup):
        kernel, proc = setup
        fd = self._open_dir(kernel, proc, "/d/alpha")
        assert (
            kernel.dispatch(proc, "getdents", [fd, self.BUF, 100])
            == -errno.ENOTDIR
        )

    def test_bad_fd(self, setup):
        kernel, proc = setup
        assert kernel.dispatch(proc, "getdents", [9, self.BUF, 10]) == -errno.EBADF


class TestVsftpdList:
    def _run(self, lists=1, files=1):
        module = build_vsftpd()
        kernel = Kernel()
        _setup_vsftpd_env(kernel)
        image = Image(module)
        proc = kernel.create_process("vsftpd", image)
        cpu = CPU(image, proc, kernel, CPUOptions())
        workload = DkftpbenchWorkload(
            sessions=1, files_per_session=files, lists_per_session=lists
        )
        workload.attach(kernel, proc)
        status = cpu.run()
        assert status.kind == "returned"
        return kernel, proc, workload

    def test_list_served_before_downloads(self):
        kernel, proc, workload = self._run(lists=1, files=1)
        assert proc.syscall_counts["getdents"] >= 2  # entries + exhaustion
        # one LIST + one RETR: two PASV data channels
        assert workload.stats.data_connections == 2
        assert workload.stats.transfers == 2  # both 226s

    def test_listing_contains_the_file(self):
        kernel, proc, workload = self._run(lists=1, files=0)
        # the data channel carried "file.bin" (bounded prefix retained)
        assert kernel.net.bytes_sent >= len("file.bin") + 1

    def test_no_list_requested_no_getdents(self):
        kernel, proc, _workload = self._run(lists=0, files=1)
        assert proc.syscall_counts.get("getdents", 0) == 0
