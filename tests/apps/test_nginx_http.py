"""Tests for mini-NGINX's real request-line parsing (incl. the 404 path)."""


from repro.apps.nginx import PAGE_BYTES, build_nginx
from repro.apps.workloads import WrkWorkload
from repro.bench.harness import _setup_nginx_env
from repro.kernel.kernel import Kernel
from repro.kernel.net import Connection
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image


class _OneShot(WrkWorkload):
    """Deliver arbitrary raw requests, one connection each."""

    def __init__(self, requests):
        super().__init__(connections=len(requests), requests_per_connection=1)
        self._raw = list(requests)
        self.conns = []

    def next_connection(self, sock):
        if sock.bound_port != self.port or not self._raw:
            return None
        conn = Connection(peer_port=40000 + len(self._raw))
        conn.deliver(self._raw.pop(0))
        self.conns.append(conn)
        # one request per connection: close after any write
        conn.on_server_write = lambda c, n, prefix: setattr(c, "closed", True)
        return conn


def _serve(requests):
    module = build_nginx()
    kernel = Kernel()
    _setup_nginx_env(kernel)
    image = Image(module)
    proc = kernel.create_process("nginx", image)
    cpu = CPU(image, proc, kernel, CPUOptions())
    workload = _OneShot(requests)
    workload.attach(kernel, proc)
    status = cpu.run()
    assert status.kind == "returned"
    return workload.conns, proc, image


def test_get_index_serves_page():
    conns, _proc, _image = _serve([b"GET /index.html HTTP/1.1\r\n\r\n"])
    assert conns[0].bytes_out > PAGE_BYTES
    assert b"200 OK" in conns[0].out_prefix


def test_get_root_serves_page():
    conns, _p, _i = _serve([b"GET / HTTP/1.1\r\n\r\n"])
    assert conns[0].bytes_out > PAGE_BYTES


def test_unknown_uri_gets_404():
    conns, _p, _i = _serve([b"GET /secret.txt HTTP/1.1\r\n\r\n"])
    assert b"404" in conns[0].out_prefix
    assert conns[0].bytes_out < 200  # no page body


def test_non_get_method_gets_404():
    conns, _p, _i = _serve([b"POST / HTTP/1.1\r\n\r\n"])
    assert b"404" in conns[0].out_prefix


def test_uri_extracted_into_buffer():
    _conns, proc, image = _serve([b"GET /secret.txt HTTP/1.1\r\n\r\n"])
    uri = proc.memory.read_cstr(image.global_addr["g_uri_buf"])
    assert uri == "/secret.txt"


def test_mixed_traffic():
    conns, _p, _i = _serve(
        [
            b"GET / HTTP/1.1\r\n\r\n",
            b"GET /nope HTTP/1.1\r\n\r\n",
            b"GET /index.html HTTP/1.1\r\n\r\n",
        ]
    )
    assert conns[0].bytes_out > PAGE_BYTES
    assert b"404" in conns[1].out_prefix
    assert conns[2].bytes_out > PAGE_BYTES
