"""Tests for the three workload applications and their load generators."""


from repro.apps.nginx import NginxConfig, PAGE_BYTES, build_nginx
from repro.apps.sqlite import SqliteConfig, build_sqlite
from repro.apps.vsftpd import build_vsftpd
from repro.apps.workloads import Dbt2Workload, DkftpbenchWorkload, WrkWorkload
from repro.api import run
from repro.bench.harness import run_app
from repro.ir.validate import validate_module


class TestModulesBuild:
    def test_nginx_validates(self):
        validate_module(build_nginx())

    def test_sqlite_validates(self):
        validate_module(build_sqlite())

    def test_vsftpd_validates(self):
        validate_module(build_vsftpd())

    def test_nginx_has_paper_listings(self):
        module = build_nginx()
        for func in (
            "ngx_execute_proc",
            "ngx_output_chain",
            "ngx_http_get_indexed_variable",
            "ngx_spawn_process",
        ):
            assert module.has_function(func), func

    def test_configs_change_shape(self):
        small = build_nginx(NginxConfig(workers=1, pools=2, guards=1))
        big = build_nginx(NginxConfig(workers=8, pools=32, guards=20))
        # worker/pool counts are loop bounds, not unrolled code; the
        # modules build independently and validate
        validate_module(small)
        validate_module(big)


class TestNginxServing:
    def test_serves_requests_and_counts_bytes(self):
        workload = WrkWorkload(connections=3, requests_per_connection=5)
        result = run("nginx", "vanilla", workload=workload)
        assert result.ok
        assert workload.stats.responses == 15
        assert result.bytes_sent >= 15 * PAGE_BYTES
        assert result.work_units == 15

    def test_syscall_profile_shape(self):
        """Table 4's character: accept4 per connection, init-heavy mmap."""
        workload = WrkWorkload(connections=6, requests_per_connection=4)
        result = run("nginx", "vanilla", workload=workload)
        counts = result.syscall_counts
        assert counts["accept4"] == 7  # 6 connections + final EAGAIN
        assert counts["mmap"] >= NginxConfig().pools
        assert counts["mprotect"] >= 1
        assert counts["clone"] == NginxConfig().workers
        assert counts["setuid"] == NginxConfig().workers
        assert counts.get("execve", 0) == 0  # upgrade path never taken
        assert counts["sendfile"] == 24

    def test_steady_state_marker_set(self):
        workload = WrkWorkload(connections=2, requests_per_connection=2)
        result = run("nginx", "vanilla", workload=workload)
        assert 0 < result.init_cycles < result.total_cycles
        assert result.steady_cycles == result.total_cycles - result.init_cycles

    def test_throughput_metric(self):
        result = run_app("nginx", "vanilla", scale=0.1)
        assert result.throughput_mbps() > 0


class TestSqlite:
    def test_transactions_complete(self):
        workload = Dbt2Workload(terminals=3, transactions_per_terminal=8)
        result = run("sqlite", "vanilla", workload=workload)
        assert result.ok
        assert workload.stats.transactions == 24
        assert result.work_units == 24

    def test_pager_touches_files(self):
        workload = Dbt2Workload(terminals=2, transactions_per_terminal=4)
        result = run("sqlite", "vanilla", workload=workload)
        counts = result.syscall_counts
        assert counts["pread64"] == 8 * SqliteConfig().items_per_order
        assert counts["pwrite64"] >= 8 * 2
        assert counts["fsync"] >= 8
        assert counts["clone"] == SqliteConfig().threads * 3
        assert counts["mmap"] >= SqliteConfig().init_mmaps

    def test_runtime_mprotect_cadence(self):
        config = SqliteConfig()
        txns = config.runtime_mprotect_every * 2
        workload = Dbt2Workload(terminals=1, transactions_per_terminal=txns)
        result = run("sqlite", "vanilla", workload=workload)
        runtime_mprotects = result.syscall_counts["mprotect"] - config.init_mprotects
        assert runtime_mprotects == 2

    def test_notpm_metric(self):
        result = run_app("sqlite", "vanilla", scale=0.1)
        assert result.notpm() > 0


class TestVsftpd:
    def test_sessions_and_transfers(self):
        workload = DkftpbenchWorkload(sessions=3, files_per_session=2)
        result = run("vsftpd", "vanilla", workload=workload)
        assert result.ok
        assert workload.stats.sessions == 3
        assert workload.stats.transfers == 6
        assert workload.stats.data_connections == 6

    def test_bytes_match_file_size(self):
        from repro.bench.harness import FTP_FILE_BYTES

        workload = DkftpbenchWorkload(sessions=1, files_per_session=1)
        result = run("vsftpd", "vanilla", workload=workload)
        assert result.bytes_sent >= FTP_FILE_BYTES

    def test_networking_profile(self):
        """Table 4's vsftpd row: per-transfer PASV socket dance + priv drop."""
        sessions, files = 2, 3
        workload = DkftpbenchWorkload(sessions=sessions, files_per_session=files)
        result = run("vsftpd", "vanilla", workload=workload)
        counts = result.syscall_counts
        transfers = sessions * files
        assert counts["socket"] == 1 + transfers
        assert counts["bind"] == 1 + transfers
        assert counts["listen"] == 1 + transfers
        assert counts["accept"] == 1 + sessions + transfers  # + final EAGAIN
        assert counts["setuid"] == sessions
        assert counts["setgid"] == sessions

    def test_transfer_seconds_metric(self):
        result = run_app("vsftpd", "vanilla", scale=0.2)
        assert result.transfer_seconds() > 0


class TestAttackTargets:
    def test_httpd_serves(self):
        from repro.apps.httpd import HTTPD_PORT, build_httpd
        from repro.apps.workloads import SimpleServerWorkload
        from repro.attacks.runner import attack_target
        from tests.conftest import run_module
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
        attack_target("httpd").prepare_env(kernel)
        workload = SimpleServerWorkload(
            HTTPD_PORT, connections=2, requests=3, response_threshold=100
        )
        module = build_httpd()

        def setup(k, proc, cpu):
            workload.attach(k, proc)

        status, proc, _cpu = run_module(module, kernel=kernel, setup=setup)
        assert status.kind == "returned"
        assert workload.responses == 6
        assert proc.syscall_counts.get("execve", 0) == 0

    def test_browser_event_loop(self):
        from repro.apps.browser import BrowserConfig, build_browser
        from repro.attacks.runner import attack_target
        from tests.conftest import run_module
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
        attack_target("browser").prepare_env(kernel)
        status, proc, _cpu = run_module(
            build_browser(BrowserConfig(events=5)), kernel=kernel
        )
        assert status.kind == "returned"
        # the legitimate renderer spawn happened exactly once
        assert [e.details["path"] for e in kernel.events_of("execve")] == [
            "/opt/browser/renderer"
        ]

    def test_mediasrv_decodes_frames(self):
        from repro.apps.mediasrv import MediaConfig, build_mediasrv
        from repro.attacks.runner import attack_target
        from tests.conftest import run_module
        from repro.kernel.kernel import Kernel
        from repro.vm.loader import Image

        kernel = Kernel()
        attack_target("mediasrv").prepare_env(kernel)
        module = build_mediasrv(MediaConfig(frames=3))
        status, proc, _cpu = run_module(module, kernel=kernel)
        assert status.kind == "returned"
        image = Image(module)
        done = proc.memory.read(image.global_addr["g_frames_done"])
        assert done == 3
        assert proc.syscall_counts["setuid"] == 1
