"""Tests for the IR libc: wrappers, string/memory helpers, allocator."""

from hypothesis import given, settings, strategies as st

from repro.apps.libc import LIBC_WRAPPERS, build_libc
from repro.ir.builder import ModuleBuilder
from repro.vm.memory import WORD
from tests.conftest import run_module


def _libc_program(body_fn, strings=()):
    mb = ModuleBuilder("t")
    mb.extend(build_libc())
    for name, text in strings:
        mb.global_string(name, text)
    f = mb.function("main")
    body_fn(f)
    return mb.build()


def _run(body_fn, strings=()):
    return run_module(_libc_program(body_fn, strings))


class TestWrappers:
    def test_all_wrappers_present_and_flagged(self):
        libc = build_libc()
        for name in LIBC_WRAPPERS:
            assert libc.has_function(name)
            assert libc.function(name).is_wrapper

    def test_wrapper_passes_arguments_through(self):
        def body(f):
            pid = f.call("getpid", [])
            f.intrinsic("trace", [pid])
            f.ret(0)

        _s, proc, _c = _run(body)
        assert proc.trace_log == [[proc.pid]]

    def test_system_not_a_wrapper(self):
        libc = build_libc()
        assert not libc.function("system").is_wrapper


class TestStringHelpers:
    def test_strlen(self):
        def body(f):
            s = f.addr_global("g_s")
            n = f.call("strlen", [s])
            f.intrinsic("trace", [n])
            f.ret(0)

        _s, proc, _c = _run(body, strings=[("g_s", "hello")])
        assert proc.trace_log == [[5]]

    def test_strcpy(self):
        def body(f):
            src = f.addr_global("g_src")
            dst = f.const(0x7F00_0000_0000)
            f.call("strcpy", [dst, src])
            f.ret(0)

        _s, proc, _c = _run(body, strings=[("g_src", "copy me")])
        assert proc.memory.read_cstr(0x7F00_0000_0000) == "copy me"

    def test_strcmp_cases(self):
        def make(a, b):
            def body(f):
                pa = f.addr_global("g_a")
                pb = f.addr_global("g_b")
                d = f.call("strcmp", [pa, pb])
                f.intrinsic("trace", [d])
                f.ret(0)

            _s, proc, _c = _run(body, strings=[("g_a", a), ("g_b", b)])
            return proc.trace_log[0][0]

        assert make("abc", "abc") == 0
        assert make("abd", "abc") > 0
        assert make("abb", "abc") < 0
        assert make("ab", "abc") < 0

    def test_starts_with(self):
        def make(s, prefix):
            def body(f):
                ps = f.addr_global("g_s")
                pp = f.addr_global("g_p")
                r = f.call("starts_with", [ps, pp])
                f.intrinsic("trace", [r])
                f.ret(0)

            _s, proc, _c = _run(body, strings=[("g_s", s), ("g_p", prefix)])
            return proc.trace_log[0][0]

        assert make("GET /index", "GET ") == 1
        assert make("POST /", "GET ") == 0
        assert make("G", "GET ") == 0
        assert make("anything", "") == 1

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.text(alphabet="abcdef", max_size=8),
        b=st.text(alphabet="abcdef", max_size=8),
    )
    def test_strcmp_matches_python(self, a, b):
        def body(f):
            pa = f.addr_global("g_a")
            pb = f.addr_global("g_b")
            d = f.call("strcmp", [pa, pb])
            f.intrinsic("trace", [d])
            f.ret(0)

        _s, proc, _c = _run(body, strings=[("g_a", a), ("g_b", b)])
        result = proc.trace_log[0][0]
        expected = (a > b) - (a < b)
        assert (result > 0) - (result < 0) == expected


class TestMemoryHelpers:
    def test_memcpy_w(self):
        def body(f):
            src = f.const(0x7F00_0000_0000)
            for i, v in enumerate((7, 8, 9)):
                p = f.add(src, i * WORD)
                f.store(p, v)
            dst = f.const(0x7F00_0001_0000)
            f.call("memcpy_w", [dst, src, 3])
            f.ret(0)

        _s, proc, _c = _run(body)
        assert proc.memory.read_block(0x7F00_0001_0000, 3) == [7, 8, 9]

    def test_memset_w(self):
        def body(f):
            dst = f.const(0x7F00_0000_0000)
            f.call("memset_w", [dst, 5, 4])
            f.ret(0)

        _s, proc, _c = _run(body)
        assert proc.memory.read_block(0x7F00_0000_0000, 4) == [5] * 4


class TestAllocator:
    def test_malloc_returns_distinct_regions(self):
        def body(f):
            a = f.call("malloc", [4])
            b = f.call("malloc", [4])
            f.intrinsic("trace", [a, b])
            f.ret(0)

        _s, proc, _c = _run(body)
        a, b = proc.trace_log[0]
        assert b >= a + 4 * WORD
        assert a % WORD == 0

    def test_free_is_noop(self):
        def body(f):
            a = f.call("malloc", [2])
            f.call("free", [a])
            f.ret(0)

        status, _p, _c = _run(body)
        assert status.kind == "returned"


class TestSystem:
    def test_system_forks_and_execs(self):
        from repro.kernel.kernel import Kernel

        kernel = Kernel()
        kernel.vfs.makedirs("/bin")
        kernel.vfs.write_file("/bin/sh", b"elf")

        def body(f):
            cmd = f.addr_global("g_cmd")
            f.call("system", [cmd])
            f.ret(0)

        module = _libc_program(body, strings=[("g_cmd", "/bin/sh")])
        _s, proc, _c = run_module(module, kernel=kernel)
        assert kernel.events_of("fork")
        # the child is not scheduled, so execve does not fire in the parent
        assert proc.syscall_counts.get("fork") == 1
