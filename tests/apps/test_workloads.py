"""Unit tests for workload pacing state machines (no VM involved)."""

from repro.apps.nginx import PAGE_BYTES
from repro.apps.workloads import (
    Dbt2Workload,
    DkftpbenchWorkload,
    SimpleServerWorkload,
    WrkWorkload,
)
from repro.kernel.net import Socket


def _listener(port):
    sock = Socket()
    sock.bound_port = port
    sock.listening = True
    return sock


class TestWrkPacing:
    def test_connection_budget(self):
        wl = WrkWorkload(connections=2, requests_per_connection=3)
        sock = _listener(wl.port)
        assert wl.next_connection(sock) is not None
        assert wl.next_connection(sock) is not None
        assert wl.next_connection(sock) is None
        assert wl.stats.connections == 2

    def test_wrong_port_refused(self):
        wl = WrkWorkload(connections=2)
        assert wl.next_connection(_listener(9999)) is None

    def test_body_write_advances_header_does_not(self):
        wl = WrkWorkload(connections=1, requests_per_connection=2)
        conn = wl.next_connection(_listener(wl.port))
        inbox_before = conn.take(10_000)  # server consumes request 1
        conn.server_write(33, b"HTTP/1.1 200")  # headers: no new request
        assert conn.inbox == b""
        conn.server_write(PAGE_BYTES, b"body")  # body: next request goes out
        assert conn.inbox  # second request delivered
        conn.take(10_000)
        conn.server_write(PAGE_BYTES, b"body")
        assert conn.closed
        assert wl.stats.responses == 2
        assert inbox_before  # the first request was preloaded


class TestDbt2Pacing:
    def test_transactions_counted_per_write(self):
        wl = Dbt2Workload(terminals=1, transactions_per_terminal=3)
        conn = wl.next_connection(_listener(wl.port))
        for _ in range(3):
            conn.take(1000)
            conn.server_write(44, b"NEWORDER OK")
        assert wl.stats.transactions == 3
        assert conn.closed


class TestFtpPacing:
    def test_reply_code_state_machine(self):
        wl = DkftpbenchWorkload(sessions=1, files_per_session=2)
        conn = wl.next_connection(_listener(wl.port))
        assert b"USER" in conn.inbox  # login preloaded
        conn.take(1000)
        conn.server_write(11, b"220 vsftpd")  # banner: ignored
        assert conn.inbox == b""
        conn.server_write(7, b"230 ok")  # login ok -> first RETR
        assert b"RETR" in conn.inbox
        conn.take(1000)
        conn.server_write(10, b"227 pasv")  # PASV reply: ignored
        assert conn.inbox == b""
        conn.server_write(7, b"226 ok")  # transfer done -> second RETR
        assert b"RETR" in conn.inbox
        conn.take(1000)
        conn.server_write(7, b"226 ok")  # done -> QUIT
        assert b"QUIT" in conn.inbox
        conn.server_write(8, b"221 bye")
        assert conn.closed
        assert wl.stats.transfers == 2

    def test_lists_sent_before_retr(self):
        wl = DkftpbenchWorkload(sessions=1, files_per_session=1, lists_per_session=1)
        conn = wl.next_connection(_listener(wl.port))
        conn.take(1000)
        conn.server_write(7, b"230 ok")
        assert b"LIST" in conn.inbox
        conn.take(1000)
        conn.server_write(7, b"226 ok")
        assert b"RETR" in conn.inbox

    def test_data_port_always_served(self):
        wl = DkftpbenchWorkload(sessions=0)
        data_sock = _listener(20001)
        assert wl.next_connection(data_sock) is not None
        assert wl.stats.data_connections == 1

    def test_steady_marker_on_first_provide(self):
        class FakeProc:
            class ledger:
                cycles = 1234

        wl = DkftpbenchWorkload(sessions=1)
        wl.proc = FakeProc()
        wl._provide(_listener(wl.port))
        assert wl.steady_start_cycles == 1234


class TestSimpleServer:
    def test_threshold_pacing(self):
        wl = SimpleServerWorkload(8080, connections=1, requests=2, response_threshold=50)
        conn = wl.next_connection(_listener(8080))
        conn.take(1000)
        conn.server_write(10, b"small")  # below threshold: nothing
        assert conn.inbox == b""
        conn.server_write(100, b"big enough")
        assert conn.inbox
        conn.take(1000)
        conn.server_write(100, b"again")
        assert conn.closed
        assert wl.responses == 2
