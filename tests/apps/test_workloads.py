"""Unit tests for workload pacing state machines (no VM involved)."""

import gc

from repro.apps.nginx import PAGE_BYTES
from repro.apps.workloads import (
    ConcurrentWrkWorkload,
    Dbt2Workload,
    DkftpbenchWorkload,
    LatencyStats,
    SimpleServerWorkload,
    WrkWorkload,
)
from repro.kernel.net import Connection, Socket


def _listener(port):
    sock = Socket()
    sock.bound_port = port
    sock.listening = True
    return sock


class TestWrkPacing:
    def test_connection_budget(self):
        wl = WrkWorkload(connections=2, requests_per_connection=3)
        sock = _listener(wl.port)
        assert wl.next_connection(sock) is not None
        assert wl.next_connection(sock) is not None
        assert wl.next_connection(sock) is None
        assert wl.stats.connections == 2

    def test_wrong_port_refused(self):
        wl = WrkWorkload(connections=2)
        assert wl.next_connection(_listener(9999)) is None

    def test_body_write_advances_header_does_not(self):
        wl = WrkWorkload(connections=1, requests_per_connection=2)
        conn = wl.next_connection(_listener(wl.port))
        inbox_before = conn.take(10_000)  # server consumes request 1
        conn.server_write(33, b"HTTP/1.1 200")  # headers: no new request
        assert conn.inbox == b""
        conn.server_write(PAGE_BYTES, b"body")  # body: next request goes out
        assert conn.inbox  # second request delivered
        conn.take(10_000)
        conn.server_write(PAGE_BYTES, b"body")
        assert conn.closed
        assert wl.stats.responses == 2
        assert inbox_before  # the first request was preloaded


class TestDbt2Pacing:
    def test_transactions_counted_per_write(self):
        wl = Dbt2Workload(terminals=1, transactions_per_terminal=3)
        conn = wl.next_connection(_listener(wl.port))
        for _ in range(3):
            conn.take(1000)
            conn.server_write(44, b"NEWORDER OK")
        assert wl.stats.transactions == 3
        assert conn.closed


class TestFtpPacing:
    def test_reply_code_state_machine(self):
        wl = DkftpbenchWorkload(sessions=1, files_per_session=2)
        conn = wl.next_connection(_listener(wl.port))
        assert b"USER" in conn.inbox  # login preloaded
        conn.take(1000)
        conn.server_write(11, b"220 vsftpd")  # banner: ignored
        assert conn.inbox == b""
        conn.server_write(7, b"230 ok")  # login ok -> first RETR
        assert b"RETR" in conn.inbox
        conn.take(1000)
        conn.server_write(10, b"227 pasv")  # PASV reply: ignored
        assert conn.inbox == b""
        conn.server_write(7, b"226 ok")  # transfer done -> second RETR
        assert b"RETR" in conn.inbox
        conn.take(1000)
        conn.server_write(7, b"226 ok")  # done -> QUIT
        assert b"QUIT" in conn.inbox
        conn.server_write(8, b"221 bye")
        assert conn.closed
        assert wl.stats.transfers == 2

    def test_lists_sent_before_retr(self):
        wl = DkftpbenchWorkload(sessions=1, files_per_session=1, lists_per_session=1)
        conn = wl.next_connection(_listener(wl.port))
        conn.take(1000)
        conn.server_write(7, b"230 ok")
        assert b"LIST" in conn.inbox
        conn.take(1000)
        conn.server_write(7, b"226 ok")
        assert b"RETR" in conn.inbox

    def test_data_port_always_served(self):
        wl = DkftpbenchWorkload(sessions=0)
        data_sock = _listener(20001)
        assert wl.next_connection(data_sock) is not None
        assert wl.stats.data_connections == 1

    def test_steady_marker_on_first_provide(self):
        class FakeProc:
            class ledger:
                cycles = 1234

        wl = DkftpbenchWorkload(sessions=1)
        wl.proc = FakeProc()
        wl._provide(_listener(wl.port))
        assert wl.steady_start_cycles == 1234


class TestLatencyStats:
    def test_zero_samples_define_every_percentile(self):
        stats = LatencyStats()
        assert stats.percentile(50) == 0
        assert stats.mean == 0.0
        summary = stats.summary()
        assert summary == {
            "count": 0, "p50": 0, "p95": 0, "p99": 0, "mean": 0.0, "max": 0,
        }

    def test_single_sample_is_every_percentile(self):
        stats = LatencyStats()
        stats.record(42)
        for p in (0, 1, 50, 95, 99, 100):
            assert stats.percentile(p) == 42
        summary = stats.summary()
        assert summary["p50"] == summary["p99"] == summary["max"] == 42
        assert summary["mean"] == 42.0

    def test_tied_samples_collapse_to_tie_value(self):
        stats = LatencyStats()
        for _ in range(10):
            stats.record(7)
        assert stats.percentile(50) == 7
        assert stats.percentile(99) == 7
        assert stats.summary()["max"] == 7

    def test_percentile_clamps_out_of_range(self):
        stats = LatencyStats()
        for value in (1, 2, 3):
            stats.record(value)
        assert stats.percentile(-5) == 1
        assert stats.percentile(200) == 3

    def test_nearest_rank_on_small_distributions(self):
        stats = LatencyStats()
        for value in (10, 20, 30, 40):
            stats.record(value)
        assert stats.percentile(0) == 10
        assert stats.percentile(50) == 30  # round(0.5 * 3) = 2
        assert stats.percentile(100) == 40


class TestConnectionSerials:
    """Per-connection budgets key on the monotonic serial, never id()."""

    def test_serials_monotonic_and_never_reused(self):
        seen = set()
        last = 0
        for _ in range(50):
            conn = Connection()
            assert conn.serial > last
            assert conn.serial not in seen
            seen.add(conn.serial)
            last = conn.serial
            del conn
            gc.collect()  # id() reuse territory — serials keep counting

    def test_pending_keyed_on_serial_not_id(self):
        wl = WrkWorkload(connections=2, requests_per_connection=2)
        sock = _listener(wl.port)
        a = wl.next_connection(sock)
        a_serial = a.serial
        assert set(wl._pending) == {a_serial}
        # drop the first connection object entirely: even if the allocator
        # hands the next Connection the same id(), the budgets stay apart
        del a
        gc.collect()
        b = wl.next_connection(sock)
        assert b.serial != a_serial
        assert set(wl._pending) == {a_serial, b.serial}

    def test_every_close_path_pops_its_entry(self):
        wl = WrkWorkload(connections=3, requests_per_connection=1)
        sock = _listener(wl.port)
        for _ in range(3):
            conn = wl.next_connection(sock)
            conn.take(10_000)
            conn.server_write(PAGE_BYTES, b"body")
            assert conn.closed
        assert wl._pending == {}


class TestConcurrentWrkChurn:
    def test_peak_inflight_and_bounded_state(self):
        from repro.kernel.net import BACKLOG_WAIT

        wl = ConcurrentWrkWorkload(
            connections=8, requests_per_connection=1, max_inflight=2
        )
        sock = _listener(wl.port)
        live = []
        served = 0
        while True:
            conn = wl.next_connection(sock)
            if conn is BACKLOG_WAIT:
                # cap reached: state is bounded by the in-flight set
                assert len(wl._pending) <= 2 and len(wl._sent_at) <= 2
                victim = live.pop(0)
                victim.take(10_000)
                victim.server_write(PAGE_BYTES, b"body")
                assert victim.closed
                served += 1
                continue
            if conn is None:
                break
            live.append(conn)
        for conn in live:
            conn.take(10_000)
            conn.server_write(PAGE_BYTES, b"body")
            served += 1
        assert served == 8
        assert wl.peak_inflight == 2
        assert wl._pending == {} and wl._sent_at == {}


class TestSimpleServer:
    def test_threshold_pacing(self):
        wl = SimpleServerWorkload(8080, connections=1, requests=2, response_threshold=50)
        conn = wl.next_connection(_listener(8080))
        conn.take(1000)
        conn.server_write(10, b"small")  # below threshold: nothing
        assert conn.inbox == b""
        conn.server_write(100, b"big enough")
        assert conn.inbox
        conn.take(1000)
        conn.server_write(100, b"again")
        assert conn.closed
        assert wl.responses == 2
