"""Fast-path soundness: the full Table 6 catalog, cache on vs cache off.

The default policies now run with the verdict cache enabled, so the
standard :mod:`tests.attacks.test_catalog` matrix already exercises the
fast path.  This module runs the catalog again with ``without("cache")``
and requires the two sweeps to agree verdict-for-verdict: memoizing ALLOW
decisions must never turn a blocked attack into a missed one.
"""

import pytest

from repro.attacks.catalog import CATALOG
from repro.attacks.runner import table6_matrix


@pytest.fixture(scope="module")
def both_ways():
    cache_on = {e.spec.name: e for e in table6_matrix(catalog=CATALOG)}
    cache_off = {
        e.spec.name: e
        for e in table6_matrix(
            catalog=CATALOG, policy_transform=lambda p: p.without("cache")
        )
    }
    return cache_on, cache_off


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_no_false_negatives_with_cache_on(spec, both_ways):
    cache_on, _ = both_ways
    evaluation = cache_on[spec.name]
    assert evaluation.valid
    assert evaluation.matches_paper()
    assert evaluation.blocked_by_full


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_cache_off_reference_agrees(spec, both_ways):
    """The cache must be a pure optimization: identical verdicts either way."""
    cache_on, cache_off = both_ways
    on, off = cache_on[spec.name], cache_off[spec.name]
    assert off.matches_paper() and off.blocked_by_full
    for context in on.by_context:
        assert on.blocks(context) == off.blocks(context), (spec.name, context)
    assert on.full.blocked_by == off.full.blocked_by, spec.name
