"""The Table 6 security study as tests: every attack must work undefended
and reproduce the paper's per-context verdicts."""

import pytest

from repro.attacks.catalog import CATALOG, attack_by_name
from repro.attacks.runner import evaluate_attack, run_attack
from repro.monitor.policy import ContextPolicy


@pytest.fixture(scope="module")
def evaluations():
    return {spec.name: evaluate_attack(spec) for spec in CATALOG}


def test_catalog_has_all_table6_rows():
    names = {spec.name for spec in CATALOG}
    expected = {
        "rop_execute_user_command",
        "rop_execute_root_command",
        "rop_alter_memory_permission",
        "newton_cscfi",
        "aocr_nginx_attack1",
        "cve_2016_10190",
        "cve_2016_10191",
        "cve_2015_8617",
        "cve_2012_0809",
        "cve_2013_2028",
        "cve_2014_8668",
        "cve_2014_1912",
        "newton_cpi",
        "aocr_apache",
        "aocr_nginx_attack2",
        "coop_chrome",
        "control_jujutsu",
    }
    assert expected.issubset(names)


def test_attack_by_name():
    assert attack_by_name("coop_chrome").target == "browser"
    with pytest.raises(KeyError):
        attack_by_name("nope")


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_attack_succeeds_undefended(spec, evaluations):
    """Every exploit must genuinely reach its goal without BASTION."""
    assert evaluations[spec.name].valid, evaluations[spec.name].unprotected


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_verdicts_match_paper_table6(spec, evaluations):
    evaluation = evaluations[spec.name]
    for context, expected in spec.expected.items():
        assert evaluation.blocks(context) == expected, (
            spec.name,
            context,
            evaluation.by_context[context],
        )


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_full_bastion_blocks_everything(spec, evaluations):
    assert evaluations[spec.name].blocked_by_full


def test_blocked_attacks_never_reach_goal(evaluations):
    for evaluation in evaluations.values():
        for context, outcome in evaluation.by_context.items():
            if outcome.blocked:
                assert not outcome.succeeded, (evaluation.spec.name, context)


def test_rop_category_bypasses_ct(evaluations):
    for name in (
        "rop_execute_user_command",
        "rop_execute_root_command",
        "rop_alter_memory_permission",
    ):
        outcome = evaluations[name].by_context["CT"]
        assert not outcome.blocked
        assert outcome.succeeded  # CT alone does not stop ROP


def test_data_only_attacks_need_ai(evaluations):
    for name in ("aocr_nginx_attack2", "coop_chrome", "control_jujutsu"):
        evaluation = evaluations[name]
        assert not evaluation.blocks("CT")
        assert not evaluation.blocks("CF")
        assert evaluation.blocks("AI")


def test_blocked_by_attribution():
    spec = attack_by_name("newton_cscfi")
    outcome = run_attack(spec, ContextPolicy.ct_only(), "CT")
    # normalized attribution: under CT alone the kill is the compiled
    # seccomp filter's not-callable verdict (the coarse half of call-type
    # protection), attributed as BlockingContext.SECCOMP
    assert outcome.blocked_by == "seccomp"
    outcome = run_attack(spec, ContextPolicy.cf_only(), "CF")
    assert outcome.blocked_by == "control-flow"
    outcome = run_attack(spec, ContextPolicy.ai_only(), "AI")
    assert outcome.blocked_by == "arg-integrity"
