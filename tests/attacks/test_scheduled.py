"""Scheduler-independence of the attack catalog (ISSUE 9 satellite).

An attack verdict must be a property of the program + mechanism, never of
the preemption quantum: replaying under a quantum of 1 cycle (maximal
interleaving) and 1e6 cycles (effectively run-to-completion) must produce
the same verdict for every catalog row.

The compared tuple is the *security verdict* — succeeded / blocked /
blocking context / violation contexts.  The raw exit status of the lead
process is deliberately excluded: under fine-grained preemption a forked
worker may be the task that serves the poisoned request and takes the
kill, while the master exits cleanly — same verdict, different PCB.
"""

import pytest

from repro.attacks.catalog import CATALOG
from repro.attacks.runner import run_attack
from repro.monitor.policy import ContextPolicy

QUANTA = (1, 1_000_000)


def _verdict(outcome):
    return (
        outcome.succeeded,
        outcome.blocked,
        str(outcome.blocked_by) if outcome.blocked_by is not None else None,
        tuple(sorted(v.context for v in outcome.violations)),
    )


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_catalog_replays_identically_across_quanta(spec):
    for defense_name, policy in (
        ("undefended", None),
        ("bastion", ContextPolicy.full()),
    ):
        verdicts = {
            quantum: _verdict(
                run_attack(spec, policy, defense_name, quantum=quantum)
            )
            for quantum in QUANTA
        }
        assert verdicts[QUANTA[0]] == verdicts[QUANTA[1]], (
            "%s under %s diverges across scheduler quanta: %r"
            % (spec.name, defense_name, verdicts)
        )
