"""The binary_only mechanism: zero false kills, superset of the seccomp
allowlist's blocks, and a live call-type check on the wrapper hot path."""

import pytest

from repro.attacks.catalog import CATALOG
from repro.attacks.primitives import AttackEnv
from repro.attacks.runner import TARGETS, _target_module, run_attack
from repro.bench.harness import CONFIGS, run_app
from repro.kernel.kernel import Kernel

BENCH_APPS = ("nginx", "sqlite", "vsftpd")


def _spec(name):
    return next(s for s in CATALOG if s.name == name)


def _benign_run(app):
    """Launch an attack target under binary_only and run only its benign
    workload (no attack staged)."""
    target = TARGETS[app]
    kernel = Kernel()
    target.prepare_env(kernel)
    mechanism = CONFIGS["binary_only"].mechanism()
    proc, cpu = mechanism.launch(kernel, app, _target_module(app))
    target.attach_workload(kernel, proc)
    status = cpu.run()
    return mechanism, proc, status


class TestZeroFalseKills:
    @pytest.mark.parametrize("app", sorted(TARGETS))
    def test_attack_targets_run_clean(self, app):
        mechanism, proc, status = _benign_run(app)
        assert status.kind in ("returned", "exit", "halt"), status
        assert proc.kill_reason is None
        assert mechanism.kills == 0

    @pytest.mark.parametrize("app", sorted(TARGETS))
    def test_executed_syscalls_within_recovered_allowlist(self, app):
        """Soundness, observed: everything the benign run dispatched was
        in the recovered-reachable set (or the filter would have fired)."""
        mechanism, proc, _status = _benign_run(app)
        executed = set(proc.syscall_counts)
        assert executed <= mechanism.recovery.reachable_syscalls

    @pytest.mark.parametrize("app", BENCH_APPS)
    def test_bench_workloads_run_clean(self, app):
        result = run_app(app, config="binary_only", scale=0.2)
        assert result.ok


class TestAttackCoverage:
    def test_blocks_rop_into_wrapper_via_calltype_hook(self):
        """A ROP return into a reachable wrapper passes the recovered
        seccomp filter — the call-type hook is what kills it (no call
        instruction sits above the forged return address)."""
        spec = _spec("rop_mmap_rwx")
        target = TARGETS[spec.target]
        kernel = Kernel()
        target.prepare_env(kernel)
        mechanism = CONFIGS["binary_only"].mechanism()
        proc, cpu = mechanism.launch(
            kernel, spec.target, _target_module(spec.target)
        )
        env = AttackEnv(
            kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=None
        )
        spec.stage(env)
        target.attach_workload(kernel, proc)
        cpu.run()
        assert not spec.oracle(env)
        assert proc.kill_reason.startswith("binary-calltype")
        assert mechanism.kills == 1

    def test_blocks_ret2system_where_allowlist_cannot(self):
        """system() is linked, so fork/execve sit in the presence-based
        allowlist — but they are unreachable, so the recovered filter
        drops them and ret2system dies."""
        spec = _spec("ret2system")
        seccomp = run_attack(
            spec, None, "seccomp_allowlist",
            defense=CONFIGS["seccomp_allowlist"],
        )
        binary = run_attack(
            spec, None, "binary_only", defense=CONFIGS["binary_only"]
        )
        assert seccomp.succeeded and not seccomp.blocked
        assert binary.blocked and not binary.succeeded
        # normalized attribution: the tightened *filter* kills this one,
        # not the live call-kind hook
        assert binary.blocked_by == "seccomp"

    def test_blocks_superset_of_seccomp_allowlist(self):
        """Acceptance criterion: every row the presence allowlist blocks,
        the recovered filter blocks too."""
        from repro.bench.experiments import security_baseline_comparison

        for row in security_baseline_comparison():
            if row["seccomp_blocked"]:
                assert row["binary_blocked"], row["attack"]


class TestRegistryIntegration:
    def test_mechanism_registered(self):
        from repro.mechanisms import MECHANISM_NAMES, BinaryOnlyMechanism

        assert "binary_only" in MECHANISM_NAMES
        assert "binary_only" in CONFIGS
        mechanism = CONFIGS["binary_only"].mechanism()
        assert isinstance(mechanism, BinaryOnlyMechanism)

    def test_calltype_checks_are_charged(self):
        """Each sensitive-syscall check bills monitor_check cycles."""
        from repro.vm.costs import CostModel

        mechanism, proc, _status = _benign_run("nginx")
        assert mechanism.checks > 0
        charged = proc.ledger.category("binary_calltype")
        assert charged == mechanism.checks * CostModel().monitor_check
