"""The sfip mechanisms end to end: zero false kills on every benign
workload, scheduler-correct per-pid state, the Table 6 kill split
(transition vs presence), and the pinned SFIP-allows/BASTION-kills
divergence family."""

import pytest

from repro.attacks.catalog import attack_by_name
from repro.attacks.runner import TARGETS, _target_module, run_attack
from repro.bench.harness import CONFIGS, run_app, run_app_scheduled
from repro.kernel.kernel import Kernel
from repro.monitor.policy import ContextPolicy

BENCH_APPS = ("nginx", "sqlite", "vsftpd")
VARIANTS = ("sfip", "sfip_origin")

#: Table 6 rows the transition *hook* kills (presence admits the syscall,
#: the last->current adjacency is off-graph)
TRANSITION_KILLS = (
    "rop_execute_root_command",
    "rop_alter_memory_permission",
    "rop_mmap_rwx",
    "aocr_nginx_attack1",
    "cve_2012_0809",
    "newton_cpi",
)

#: Table 6 rows the presence filter kills in-kernel before the hook
PRESENCE_KILLS = ("ret2system", "rop_chmod_unused_syscall", "newton_cscfi")

#: the SFIP-allows/BASTION-kills family: corruption riding *legal*
#: adjacencies (data-only and mimicry-within-a-state attacks), the gap
#: BASTION's context checks close — what the differential fuzzer hunts
DIVERGENCES = (
    "rop_execute_user_command",
    "cve_2013_2028",
    "aocr_apache",
    "aocr_nginx_attack2",
    "coop_chrome",
    "control_jujutsu",
)


def _run(name, variant="sfip", quantum=None):
    return run_attack(
        attack_by_name(name),
        None,
        variant,
        defense=CONFIGS[variant],
        quantum=quantum,
    )


def _benign_run(app, variant):
    target = TARGETS[app]
    kernel = Kernel()
    target.prepare_env(kernel)
    mechanism = CONFIGS[variant].mechanism()
    proc, cpu = mechanism.launch(kernel, app, _target_module(app))
    target.attach_workload(kernel, proc)
    status = cpu.run()
    return mechanism, proc, status


class TestZeroFalseKills:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("app", sorted(TARGETS))
    def test_attack_targets_run_clean(self, app, variant):
        mechanism, proc, status = _benign_run(app, variant)
        assert status.kind in ("returned", "exit", "halt"), status
        assert proc.kill_reason is None
        assert mechanism.kills == 0
        assert mechanism.checks > 0

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("app", BENCH_APPS)
    def test_bench_workloads_run_clean(self, app, variant):
        result = run_app(app, config=variant, scale=0.2)
        assert result.ok
        # the hook's cost is attributed to the sfip ledger category
        assert result.ledger_breakdown.get("sfip", 0) > 0


class TestSchedulerCorrectness:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_scheduled_worker_pool_runs_clean(self, variant):
        """clone()d workers interleave under the preemptive scheduler;
        the per-pid state machine must never cross streams."""
        from repro.apps.nginx import NginxConfig
        from repro.apps.workloads import ConcurrentWrkWorkload

        result = run_app_scheduled(
            "nginx",
            config=variant,
            app_config=NginxConfig(workers=2, master_serves=False),
            workload=ConcurrentWrkWorkload(connections=8),
            quantum=3000,
        )
        assert result.status.kind in ("returned", "exit", "halt")
        bad = {
            pid: kind
            for pid, kind in result.statuses.items()
            if kind == "killed"
        }
        assert not bad, bad

    @pytest.mark.parametrize("name", ["rop_mmap_rwx", "rop_execute_user_command"])
    def test_verdicts_are_quantum_independent(self, name):
        """The clone snapshot fires at the spawn dispatch, not at a
        quantum boundary — so verdict and attribution cannot depend on
        the scheduler's slice length."""
        cooperative = _run(name)
        for quantum in (500, 7919):
            sliced = _run(name, quantum=quantum)
            assert sliced.blocked == cooperative.blocked
            assert sliced.succeeded == cooperative.succeeded
            assert str(sliced.blocked_by) == str(cooperative.blocked_by)


class TestAttackCoverage:
    @pytest.mark.parametrize("name", TRANSITION_KILLS)
    def test_transition_hook_kills(self, name):
        outcome = _run(name)
        assert outcome.blocked and not outcome.succeeded
        assert outcome.blocked_by == "sfip"

    @pytest.mark.parametrize("name", PRESENCE_KILLS)
    def test_presence_filter_kills(self, name):
        """The filtering half: syscalls outside the graph's node set die
        in-kernel before the hook ever runs."""
        outcome = _run(name)
        assert outcome.blocked and not outcome.succeeded
        assert outcome.blocked_by == "seccomp"

    @pytest.mark.parametrize("name", TRANSITION_KILLS[:2])
    def test_origin_variant_blocks_at_least_as_much(self, name):
        outcome = _run(name, "sfip_origin")
        assert outcome.blocked and not outcome.succeeded


class TestDivergences:
    @pytest.mark.parametrize("name", DIVERGENCES)
    def test_sfip_allows_where_bastion_kills(self, name):
        """The acceptance-criteria divergences: a valid exploit riding
        legal transition-graph adjacencies — SFIP admits, BASTION's
        context checks kill."""
        spec = attack_by_name(name)
        sfip = _run(name)
        assert sfip.succeeded and not sfip.blocked, (
            name,
            sfip.blocked_by,
        )
        bastion = run_attack(spec, ContextPolicy.full(), "bastion")
        assert bastion.blocked and not bastion.succeeded

    def test_divergent_runs_were_checked_not_skipped(self):
        """SFIP really examined every dispatch of an admitted exploit —
        the divergence is a policy gap, not a dead hook."""
        spec = attack_by_name("rop_execute_user_command")
        target = TARGETS[spec.target]
        kernel = Kernel()
        target.prepare_env(kernel)
        mechanism = CONFIGS["sfip"].mechanism()
        proc, cpu = mechanism.launch(
            kernel, spec.target, _target_module(spec.target)
        )
        from repro.attacks.primitives import AttackEnv

        env = AttackEnv(
            kernel=kernel, proc=proc, cpu=cpu, image=cpu.image, monitor=None
        )
        spec.stage(env)
        target.attach_workload(kernel, proc)
        cpu.run()
        assert spec.oracle(env)  # the exploit reached its goal
        assert mechanism.kills == 0
        assert mechanism.checks >= sum(proc.syscall_counts.values())

    def test_divergence_is_statically_predicted(self):
        """The runtime admission is the policy's doing: the hijacked
        execve rides an adjacency the flowgraph producer recorded as
        legal for nginx (ngx_execute_proc is reachable code)."""
        from repro.mechanisms.sfip import sfip_policy_for

        spec = attack_by_name("rop_execute_user_command")
        module = _target_module(spec.target)
        policy = sfip_policy_for(spec.target, module)
        assert "execve" in policy.presence
        legal_prevs = {
            prev
            for prev, nexts in policy.transitions.items()
            if "execve" in nexts
        }
        assert legal_prevs  # at least one legal way into execve
