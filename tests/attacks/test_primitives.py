"""Tests for attacker primitives and ROP chain construction."""

import pytest

from repro.attacks.primitives import AttackEnv
from repro.attacks.rop import build_ret2libc_chain, launch_ret2libc
from repro.errors import AttackError
from repro.ir.builder import ModuleBuilder
from repro.kernel.kernel import Kernel
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image
from repro.vm.memory import WORD
from tests.conftest import make_wrapper


def _env(module=None):
    if module is None:
        mb = ModuleBuilder("t")
        mb.global_string("g_s", "seed")
        make_wrapper(mb, "setuid", 1)
        make_wrapper(mb, "execve", 3)
        f = mb.function("victim")
        f.hook("vuln")
        f.ret(0)
        m = mb.function("main")
        m.call("victim", [])
        m.ret(0)
        module = mb.build()
    kernel = Kernel()
    kernel.vfs.makedirs("/bin")
    kernel.vfs.write_file("/bin/sh", b"elf")
    image = Image(module)
    proc = kernel.create_process("t", image)
    cpu = CPU(image, proc, kernel, CPUOptions())
    return AttackEnv(kernel=kernel, proc=proc, cpu=cpu, image=image), cpu


class TestSymbolsAndStaging:
    def test_symbol_lookup(self):
        env, _cpu = _env()
        assert env.func_addr("setuid") == env.image.func_base["setuid"]
        assert env.global_addr("g_s") == env.image.global_addr["g_s"]
        with pytest.raises(AttackError):
            env.func_addr("nope")
        with pytest.raises(AttackError):
            env.global_addr("nope")

    def test_plant_string_and_words(self):
        env, _cpu = _env()
        s = env.plant_string("/bin/sh")
        assert env.proc.memory.read_cstr(s) == "/bin/sh"
        w = env.plant_words([1, 2, 3])
        assert env.proc.memory.read_block(w, 3) == [1, 2, 3]
        assert w > s  # staging advances

    def test_fake_frame_layout(self):
        env, _cpu = _env()
        fp = env.fake_frame([11, 22], saved_fp=0x100, return_addr=0x200)
        mem = env.proc.memory
        assert mem.read(fp - WORD) == 11
        assert mem.read(fp - 2 * WORD) == 22
        assert mem.read(fp) == 0x100
        assert mem.read(fp + WORD) == 0x200

    def test_read_write(self):
        env, _cpu = _env()
        env.write(0x7F00_0000_0000, 5)
        assert env.read(0x7F00_0000_0000) == 5


class TestHooks:
    def test_on_hook_once(self):
        env, cpu = _env()
        fired = []
        env.on_hook("vuln", lambda e: fired.append(1))
        cpu.run()
        assert fired == [1]

    def test_on_hook_repeating(self):
        mb = ModuleBuilder("t")
        f = mb.function("main")

        def body(i):
            f.hook("tick")

        f.loop_range(f.const(3), body)
        f.ret(0)
        env, cpu = _env(mb.build())
        fired = []
        env.on_hook("tick", lambda e: fired.append(1), once=False)
        cpu.run()
        assert fired == [1, 1, 1]


class TestRopChains:
    def test_chain_frames_linked(self):
        env, _cpu = _env()
        target, frame = build_ret2libc_chain(
            env, [("setuid", (0,)), ("execve", (0x111, 0, 0))]
        )
        mem = env.proc.memory
        assert target == env.func_addr("setuid")
        # first frame: retaddr -> execve entry, saved fp -> second frame
        assert mem.read(frame + WORD) == env.func_addr("execve")
        second = mem.read(frame)
        assert mem.read(second + WORD) == 0  # chain terminator
        assert mem.read(frame - WORD) == 0  # setuid's uid arg
        assert mem.read(second - WORD) == 0x111  # execve's path arg

    def test_empty_chain_rejected(self):
        env, _cpu = _env()
        with pytest.raises(ValueError):
            build_ret2libc_chain(env, [])

    def test_launch_executes_chain(self):
        env, cpu = _env()
        sh = env.plant_string("/bin/sh")

        def fire(e):
            launch_ret2libc(e, [("setuid", (0,)), ("execve", (sh, 0, 0))])

        env.on_hook("vuln", fire)
        status = cpu.run()
        assert status.kind == "returned"  # stealthy exit via retaddr 0
        assert env.setuid_attempted(0)
        assert env.executed("/bin/sh")


class TestOracles:
    def test_oracles_empty_on_clean_run(self):
        env, cpu = _env()
        cpu.run()
        assert not env.executed("/bin/sh")
        assert not env.made_memory_executable()
        assert not env.opened("/etc/shadow")
        assert not env.setuid_attempted(0)
        assert not env.chmod_attempted("/etc/passwd")
        assert not env.connected_to(4444)
        assert not env.mremap_attempted()
