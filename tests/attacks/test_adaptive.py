"""Tests for the §11.1 adaptive-attacker study and extension scenarios."""

import pytest

from repro.attacks.adaptive import blind_forger, constant_violator, oracle_forger
from repro.attacks.catalog import CATALOG, attack_by_name
from repro.attacks.runner import evaluate_attack, table6_matrix


class TestAdaptiveStudy:
    def test_oracle_forger_bypasses(self):
        """§11.1: 'in theory, a powerful adversary ... can circumvent all
        three contexts' — given full shadow-layout knowledge."""
        outcome = oracle_forger()
        assert outcome.succeeded
        assert outcome.blocked_by is None
        # ...at a real cost: many consistent forgeries beyond the hijack
        assert outcome.attacker_writes > 25

    def test_blind_forger_blocked(self):
        """Without the shadow region's location, the forgeries miss and
        the origin-shadow check fires."""
        outcome = blind_forger()
        assert not outcome.succeeded
        assert outcome.blocked_by == "arg-integrity"

    def test_constant_violator_blocked(self):
        """Static constraints live in the monitor's address space: no
        number of application-memory writes can change them (§11.1)."""
        outcome = constant_violator()
        assert not outcome.succeeded
        assert outcome.blocked_by == "arg-integrity"
        assert outcome.attacker_writes >= 1


class TestExtensionScenarios:
    def test_extras_excluded_from_paper_matrix(self):
        names = {e.spec.name for e in table6_matrix()}
        assert "ret2system" not in names
        assert "rop_mmap_rwx" not in names

    def test_extras_included_on_request(self):
        specs = [s for s in CATALOG if s.extra]
        assert len(specs) >= 3

    @pytest.mark.parametrize(
        "name", ("rop_mmap_rwx", "rop_chmod_unused_syscall", "ret2system")
    )
    def test_extra_scenarios_behave_as_documented(self, name):
        evaluation = evaluate_attack(attack_by_name(name))
        assert evaluation.valid, name
        for context, expected in evaluation.spec.expected.items():
            assert evaluation.blocks(context) == expected, (name, context)
        assert evaluation.blocked_by_full, name

    def test_ret2system_documents_ai_laundering(self):
        """The honest negative result: entering system() at its entry runs
        its own instrumentation, so AI alone misses ret2system — the CF
        context is what stops it (see DESIGN.md deviations)."""
        evaluation = evaluate_attack(attack_by_name("ret2system"))
        assert not evaluation.blocks("AI")
        assert evaluation.blocks("CF")

    def test_rop_into_unused_syscall_blocked_by_ct(self):
        """Unlike the paper's ROP rows (which target used syscalls), ROP
        into a never-used syscall dies at the seccomp filter — call-type's
        coarse half covers even ROP."""
        evaluation = evaluate_attack(attack_by_name("rop_chmod_unused_syscall"))
        assert evaluation.blocks("CT")
