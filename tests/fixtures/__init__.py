"""Recorded behavior pins (and the scripts that regenerate them)."""
