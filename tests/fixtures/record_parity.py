"""Regenerate ``parity_seed.json`` — the pre-refactor behavior pin.

The fixture was recorded on the last commit *before* the dispatch-pipeline
refactor, by running every protection mechanism through the harness (or,
for the filtering baselines that predated their ``CONFIGS`` entries, a
manual equivalent of what the mechanism now does).  The parity matrix test
(``tests/test_mechanism_parity.py``) replays the same runs on the current
code and asserts byte-identical verdicts, syscall counts, and cycle totals
— proving the pipeline refactor is behavior- and cost-neutral.

Only regenerate this fixture deliberately (a cost-model or workload change
invalidates the pin)::

    PYTHONPATH=src python tests/fixtures/record_parity.py
"""

import json
import os

from repro.bench.harness import CONFIGS, run_app

SCALE = 0.05

#: the (app, config) parity matrix; every mechanism appears at least once
MATRIX = {
    "nginx": (
        "vanilla",
        "llvm_cfi",
        "cet",
        "dfi",
        "cet_ct",
        "cet_ct_cf",
        "cet_ct_cf_ai",
        "cache_on",
        "cache_off",
        "fs_full",
        "seccomp_allowlist",
        "temporal",
        "debloat",
    ),
    "sqlite": (
        "vanilla",
        "cet_ct_cf_ai",
        "seccomp_allowlist",
        "temporal",
        "debloat",
    ),
    "vsftpd": (
        "vanilla",
        "cet_ct_cf_ai",
        "seccomp_allowlist",
        "debloat",
    ),
}

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "parity_seed.json")


def snapshot(result):
    """The pinned observable surface of one run."""
    snap = {
        "status": result.status.kind,
        "work_units": result.work_units,
        "total_cycles": result.total_cycles,
        "steady_cycles": result.steady_cycles,
        "hook_total": result.hook_total,
        "violations": len(result.violations),
        "syscall_counts": dict(sorted(result.syscall_counts.items())),
    }
    if result.monitor_stats:
        snap["monitor_stats"] = {
            key: result.monitor_stats[key]
            for key in (
                "hooks",
                "violations",
                "cache_hits",
                "cache_misses",
                "trap_stops_full",
                "trap_stops_batched",
            )
        }
    return snap


def record():
    fixture = {"scale": SCALE, "runs": {}}
    for app, configs in sorted(MATRIX.items()):
        for config in configs:
            if config not in CONFIGS:
                raise SystemExit("unknown config %r" % config)
            result = run_app(app, config, scale=SCALE)
            fixture["runs"]["%s/%s" % (app, config)] = snapshot(result)
            print("recorded %s/%s: %s" % (app, config, result.summary()))
    with open(FIXTURE_PATH, "w") as fh:
        json.dump(fixture, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % FIXTURE_PATH)


if __name__ == "__main__":
    record()
