#!/usr/bin/env python3
"""§11.2: extend BASTION to filesystem syscalls and decompose the cost.

Reproduces the Table 7 experiment for mini-NGINX: protect
open/read/write/sendfile and friends, then measure the three steps —
seccomp hook only, + fetching process state over ptrace, + full context
checking — plus the paper's proposed fix (an in-kernel monitor).

Run:  python examples/extend_sensitive_set.py
"""

from repro.bench.harness import run_app
from repro.compiler.pipeline import BastionCompiler
from repro.apps.nginx import build_nginx

SCALE = 0.5


def main():
    artifact = BastionCompiler(extend_filesystem=True).compile(build_nginx())
    print("protected syscalls: %d (20 sensitive + filesystem extension)" % len(
        artifact.metadata.sensitive_set))

    baseline = run_app("nginx", "vanilla", scale=SCALE)
    print("\nbaseline: %.2f MB/s" % baseline.throughput_mbps())
    print("\n%-38s %12s %12s" % ("configuration", "MB/s", "loss"))
    print("-" * 66)
    for config, label in (
        ("fs_hook_only", "seccomp hook only"),
        ("fs_fetch_state", "+ fetch process state (ptrace)"),
        ("fs_full", "+ full context checking"),
        ("fs_full_inkernel", "in-kernel monitor (ablation)"),
    ):
        result = run_app("nginx", config, scale=SCALE)
        slowdown = result.steady_cycles / baseline.steady_cycles
        loss = 100.0 * (1 - 1 / slowdown)
        print("%-38s %12.2f %11.1f%%" % (label, result.throughput_mbps(), loss))

    result = run_app("nginx", "fs_full", scale=SCALE)
    print("\ncycle breakdown under full fs protection:")
    total = sum(result.ledger_breakdown.values())
    for category, cycles in sorted(
        result.ledger_breakdown.items(), key=lambda kv: -kv[1]
    )[:6]:
        print("  %-16s %5.1f%%" % (category, 100.0 * cycles / total))
    print(
        "\nConclusion (matches §11.2): the seccomp hook is nearly free; "
        "fetching\nprocess state over ptrace dominates; an in-kernel monitor "
        "removes it."
    )


if __name__ == "__main__":
    main()
