#!/usr/bin/env python3
"""Bring your own program: write an app in the IR, protect it, attack it.

This walkthrough shows the full downstream-user loop on a program that is
NOT one of the built-in workloads:

1. write a small "backup daemon" in the IR builder (it reads a config,
   spawns a worker thread, and re-execs itself on upgrade — a classic
   sensitive-syscall profile);
2. inspect it under the strace-style tracer;
3. compile it with the BASTION pass and print its context metadata;
4. run it protected (clean), then run a data-only attack against the
   upgrade path and watch the argument-integrity context kill it.

Run:  python examples/write_your_own_app.py
"""

from repro import protect, ContextPolicy
from repro.apps.libc import build_libc
from repro.ir import ModuleBuilder
from repro.kernel import Kernel
from repro.kernel.strace import attach_strace
from repro.monitor.monitor import BastionMonitor
from repro.vm.cpu import CPU, CPUOptions
from repro.vm.loader import Image


def build_backupd():
    mb = ModuleBuilder("backupd")
    mb.extend(build_libc())
    mb.struct("upgrade_t", ["binary", "argv"])

    mb.global_string("g_conf", "/etc/backupd.conf")
    mb.global_string("g_self", "/usr/sbin/backupd")
    mb.global_var("g_upgrade", size=2, struct="upgrade_t")
    mb.global_var("g_do_upgrade", init=1)  # config said: upgrade today
    mb.global_var("g_buf", size=600)

    worker = mb.function("backup_worker", params=["arg"])
    worker.burn(5_000)  # the actual backup work
    worker.ret(0)

    f = mb.function("load_config", params=[])
    p = f.addr_global("g_conf")
    fd = f.call("open", [p, 0, 0])
    buf = f.addr_global("g_buf")
    f.call("read", [fd, buf, 256])
    f.call("close", [fd])
    up = f.addr_global("g_upgrade")
    bin_p = f.gep(up, "upgrade_t", "binary")
    self_p = f.addr_global("g_self")
    f.store(bin_p, self_p)
    f.ret(0)

    f = mb.function("self_upgrade", params=[])
    f.hook("pre_upgrade")  # the memory-corruption window
    up = f.addr_global("g_upgrade")
    bin_p = f.gep(up, "upgrade_t", "binary")
    binary = f.load(bin_p)
    f.call("execve", [binary, 0, 0], void=True)
    f.ret(0)

    f = mb.function("main", params=[])
    f.call("load_config", [], void=True)
    fn = f.funcaddr("backup_worker")
    f.call("clone", [0, 0, fn, 0, 0], void=True)
    flag_p = f.addr_global("g_do_upgrade")
    flag = f.load(flag_p)
    f.if_then(flag, lambda: f.call("self_upgrade", [], void=True))
    f.ret(0)
    return mb.build()


def environment():
    kernel = Kernel()
    kernel.vfs.makedirs("/etc")
    kernel.vfs.makedirs("/usr/sbin")
    kernel.vfs.makedirs("/bin")
    kernel.vfs.write_file("/etc/backupd.conf", b"upgrade=yes\n")
    kernel.vfs.write_file("/usr/sbin/backupd", b"\x7fELF", mode=0o755)
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)
    return kernel


def main():
    module = build_backupd()

    print("=== 1. unprotected run, under the strace tap ===")
    kernel = environment()
    trace = attach_strace(kernel)
    image = Image(module)
    proc = kernel.create_process("backupd", image)
    status = CPU(image, proc, kernel, CPUOptions()).run()
    print("exit:", status.kind)
    for line in trace.lines():
        print("   ", line)

    print("\n=== 2. compile with BASTION ===")
    artifact = protect(module)
    meta = artifact.metadata
    print("sensitive & used:", [n for n in sorted(meta.call_types) if n in meta.sensitive_set])
    print("thread entries:", list(meta.thread_entries))
    print("instrumentation sites:", meta.stats["total_instrumentation"])

    print("\n=== 3. protected, benign ===")
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = environment()
    proc, cpu = monitor.launch(kernel)
    status = cpu.run()
    print("exit:", status.kind, "| hooks:", monitor.hook_counts, "| violations:", len(monitor.violations))

    print("\n=== 4. protected, attacked: swap the upgrade binary in place ===")
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = environment()
    proc, cpu = monitor.launch(kernel)

    def corrupt(c):
        # data-only: point upgrade_t.binary at an attacker string
        sh = 0x7F50_0000_0000
        c.proc.memory.write_cstr(sh, "/bin/sh")
        slot = c.image.global_addr["g_upgrade"]  # .binary is field 0
        c.proc.memory.write(slot, sh)

    cpu.hooks["pre_upgrade"] = corrupt
    status = cpu.run()
    print("exit:", status.kind)
    for violation in monitor.violations:
        print("BLOCKED:", violation)
    executed = [e.details["path"] for e in kernel.events_of("execve")]
    print("execve events (should NOT contain /bin/sh):", executed)


if __name__ == "__main__":
    main()
