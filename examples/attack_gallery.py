#!/usr/bin/env python3
"""Run the full Table 6 security study and print the verdict matrix.

Every scenario is first validated against the undefended binary (the
exploit must genuinely reach its goal), then evaluated under each context
alone and under full BASTION.  The final column checks our ✓/× pattern
against the paper's Table 6.

Run:  python examples/attack_gallery.py
"""

from repro.attacks.runner import table6_matrix


def main():
    rows = table6_matrix()
    print("%-28s %-7s  CT CF AI  %-9s %s" % ("attack", "works?", "full", "paper"))
    print("-" * 72)
    category = None
    for evaluation in rows:
        spec = evaluation.spec
        if spec.category != category:
            category = spec.category
            print("-- %s" % category)
        marks = "  ".join(
            "Y" if evaluation.blocks(c) else "." for c in ("CT", "CF", "AI")
        )
        print(
            "%-28s %-7s  %s  %-9s %s"
            % (
                spec.name,
                "yes" if evaluation.valid else "NO",
                marks,
                "blocked" if evaluation.blocked_by_full else "BYPASSED",
                "match" if evaluation.matches_paper() else "MISMATCH",
            )
        )
    print("-" * 72)
    matched = sum(1 for e in rows if e.valid and e.matches_paper())
    print("%d/%d rows reproduce the paper's Table 6" % (matched, len(rows)))

    print("\nSample detections:")
    for evaluation in rows[:3] + rows[-2:]:
        outcome = evaluation.full
        if outcome.violations:
            print("  %-28s %s" % (evaluation.spec.name, outcome.violations[0]))


if __name__ == "__main__":
    main()
