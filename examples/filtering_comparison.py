#!/usr/bin/env python3
"""Why allowlists and debloating are not enough (§2.2), demonstrated.

Takes mini-NGINX and shows, against the same NEWTON-CPI-style attack:

- **debloating** removes dead code but must keep mmap/mprotect (they are
  legitimately used), so the attack surface survives;
- a **seccomp allowlist** ALLOWs mprotect outright — the hijacked call
  sails through;
- **LLVM CFI** passes because the bent callsite is type-compatible;
- **BASTION** blocks the same attack with all three contexts.

Run:  python examples/filtering_comparison.py
"""

from repro.attacks.catalog import attack_by_name
from repro.attacks.runner import run_attack
from repro.baselines.debloat import debloat_module
from repro.baselines.seccomp_filter import build_allowlist_filter
from repro.apps.nginx import build_nginx
from repro.kernel.seccomp import evaluate_filters, SECCOMP_RET_ALLOW, action_name
from repro.monitor.policy import ContextPolicy
from repro.syscalls.table import nr_of
from repro.vm.cpu import CPUOptions


def main():
    module = build_nginx()
    spec = attack_by_name("newton_cpi")

    print("=== debloating ===")
    _slim, report = debloat_module(module)
    print("functions removed:", len(report.removed_functions))
    print("sensitive syscalls surviving debloat:",
          ", ".join(sorted(report.surviving_sensitive)))

    print("\n=== seccomp allowlist ===")
    filt = build_allowlist_filter(module)
    action, _ = evaluate_filters([filt], nr_of("mprotect"))
    print("allowlist verdict for mprotect:", action_name(action))
    assert action == SECCOMP_RET_ALLOW  # the §2.2 gap

    print("\n=== the NEWTON CPI attack vs each defense ===")
    undefended = run_attack(spec, None, "none")
    print("undefended      : %s" % ("SUCCEEDS" if undefended.succeeded else "fails"))

    cfi = run_attack(spec, None, "llvm_cfi", cpu_options=CPUOptions(llvm_cfi=True))
    print("LLVM CFI        : %s" % ("SUCCEEDS (bypassed)" if cfi.succeeded else "blocked"))

    cet = run_attack(spec, None, "cet", cpu_options=CPUOptions(cet=True))
    print("CET             : %s" % ("SUCCEEDS (bypassed)" if cet.succeeded else "blocked"))

    bastion = run_attack(spec, ContextPolicy.full(), "bastion")
    verdict = "blocked by %s" % bastion.blocked_by if bastion.blocked else "SUCCEEDS"
    print("BASTION (full)  : %s" % verdict)
    if bastion.violations:
        print("                  %s" % bastion.violations[0])


if __name__ == "__main__":
    main()
