#!/usr/bin/env python3
"""Protect mini-NGINX, serve real traffic, then stop a Control Jujutsu attack.

Demonstrates the paper's headline scenario end to end:

1. compile mini-NGINX with the BASTION pass (prints Table-5-style stats);
2. serve a wrk-style keep-alive workload under full protection and report
   the overhead vs the unprotected baseline (the Figure 3 measurement);
3. replay the Control Jujutsu attack (Listing 1: ``ctx->output_filter``
   redirected to ``ngx_execute_proc`` with a counterfeit exec context) and
   show the argument-integrity context catching it.

Run:  python examples/protect_nginx.py
"""

from repro.attacks.catalog import attack_by_name
from repro.attacks.runner import evaluate_attack
from repro.bench.harness import run_app
from repro.compiler.pipeline import BastionCompiler
from repro.apps.nginx import build_nginx


def main():
    print("=== 1. compile ===")
    artifact = BastionCompiler().compile(build_nginx())
    stats = artifact.metadata.stats
    print("application callsites: %d (%d direct, %d indirect)" % (
        stats["total_callsites"], stats["direct_callsites"], stats["indirect_callsites"]))
    print("sensitive syscall callsites: %d" % stats["sensitive_callsites"])
    print("sensitive syscalls callable indirectly: %d" % stats["sensitive_indirect_syscalls"])
    print("instrumentation sites: %d" % stats["total_instrumentation"])

    print("\n=== 2. serve traffic (wrk-style keep-alive workload) ===")
    baseline = run_app("nginx", "vanilla", scale=0.5)
    protected = run_app("nginx", "cet_ct_cf_ai", scale=0.5)
    print("baseline : %6.2f MB/s  (%d responses)" % (
        baseline.throughput_mbps(), baseline.work_units))
    print("BASTION  : %6.2f MB/s  (%d responses, %d monitor hooks)" % (
        protected.throughput_mbps(), protected.work_units, protected.hook_total))
    print("overhead : %.2f%%  (paper: 0.60%%)" % protected.overhead_pct(baseline))
    print("violations during benign serving:", len(protected.violations))
    top = sorted(protected.hook_counts.items(), key=lambda kv: -kv[1])[:4]
    print("top monitored syscalls:", ", ".join("%s x%d" % kv for kv in top))

    print("\n=== 3. Control Jujutsu (Table 6, last row) ===")
    evaluation = evaluate_attack(attack_by_name("control_jujutsu"))
    print("undefended run reaches execve('/bin/sh'):", evaluation.unprotected.succeeded)
    for context in ("CT", "CF", "AI"):
        outcome = evaluation.by_context[context]
        verdict = "BLOCKED" if outcome.blocked else "bypassed"
        print("  %s alone: %s" % (context, verdict))
        if outcome.violations:
            print("      %s" % outcome.violations[0])
    print("full BASTION blocks it:", evaluation.blocked_by_full)
    print("matches the paper's row (x x Y):", evaluation.matches_paper())


if __name__ == "__main__":
    main()
