#!/usr/bin/env python3
"""Quickstart: protect a tiny program with BASTION and watch it work.

Builds a 30-line IR program with one sensitive syscall (``mprotect``),
compiles it with the BASTION pass, launches it under the runtime monitor,
and then re-runs it with a simulated memory-corruption attack to show the
argument-integrity context killing the process.

Run:  python examples/quickstart.py
"""

from repro import protect, ContextPolicy
from repro.ir import ModuleBuilder
from repro.kernel import Kernel
from repro.monitor.monitor import BastionMonitor


def build_program():
    """A mini C program:

        int mprotect(void *addr, size_t len, int prot);  // libc stub

        static int harden(long addr) {
            int prot = PROT_READ;              // the value BASTION locks in
            return mprotect(addr, 4096, prot);
        }

        int main(void) { return harden(0x10000000); }
    """
    mb = ModuleBuilder("quickstart")

    libc = mb.function("mprotect", params=["addr", "len", "prot"])
    rc = libc.syscall("mprotect", [libc.p("addr"), libc.p("len"), libc.p("prot")])
    libc.ret(rc)
    libc.func.is_wrapper = True

    harden = mb.function("harden", params=["addr"])
    prot = harden.const(1, dst="prot")  # PROT_READ
    harden.hook("vulnerable_spot")  # stands in for a memory-corruption bug
    rc = harden.call("mprotect", [harden.p("addr"), 4096, prot])
    harden.ret(rc)

    main = mb.function("main")
    rc = main.call("harden", [0x10000000])
    main.ret(rc)
    return mb.build()


def launch(artifact, attack=None):
    monitor = BastionMonitor(artifact, policy=ContextPolicy.full())
    kernel = Kernel()
    proc, cpu = monitor.launch(kernel)
    proc.mm.do_mmap(0x10000000, 4096, 3, 0x30)  # something to mprotect
    if attack is not None:
        cpu.hooks["vulnerable_spot"] = attack
    status = cpu.run()
    return status, monitor


def main():
    module = build_program()
    print("=== compiling with the BASTION pass ===")
    artifact = protect(module)
    stats = artifact.metadata.stats
    print("call types:", artifact.metadata.call_types)
    print(
        "instrumentation: %d ctx_write_mem, %d ctx_bind_mem, %d ctx_bind_const"
        % (stats["ctx_write_mem"], stats["ctx_bind_mem"], stats["ctx_bind_const"])
    )

    print("\n=== benign run under the monitor ===")
    status, monitor = launch(artifact)
    print("exit:", status.kind, "| hooks:", monitor.hook_counts, "| violations:", len(monitor.violations))

    print("\n=== attacked run: corrupt 'prot' to PROT_RWX before the call ===")

    def corrupt_prot(cpu):
        # the attacker's arbitrary-write primitive flips PROT_READ -> RWX
        cpu.proc.memory.write(cpu.local_addr("prot"), 7)

    status, monitor = launch(artifact, attack=corrupt_prot)
    print("exit:", status.kind)
    for violation in monitor.violations:
        print("BLOCKED:", violation)


if __name__ == "__main__":
    main()
