"""Monitor fast-path bench: the verdict cache must pay for itself."""

import pytest

from repro.bench.experiments import ablation_cache
from benchmarks.conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def cache_rows():
    return ablation_cache(BENCH_SCALE)


def test_cache_on_no_worse_than_cache_off(cache_rows):
    """Steady-state overhead with the cache on must not exceed cache off."""
    for app, row in cache_rows.items():
        assert row["cache_on_overhead_pct"] <= row["cache_off_overhead_pct"], (
            app,
            row,
        )


def test_nginx_cache_wins_measurably(cache_rows):
    """The acceptance bar: a visible drop on the syscall-heavy server."""
    row = cache_rows["nginx"]
    assert row["cache_on_overhead_pct"] < row["cache_off_overhead_pct"]
    assert row["hit_rate"] > 0.3, row


def test_steady_state_hit_rates(cache_rows):
    """Repeated request loops hit warm entries; the cache actually engages."""
    for app, row in cache_rows.items():
        assert row["cache_hits"] > 0, (app, row)
        assert 0.0 < row["hit_rate"] <= 1.0, (app, row)


def test_seccomp_action_cache_engages(cache_rows):
    """Always-ALLOW syscalls skip the BPF engine on every config."""
    for app, row in cache_rows.items():
        assert row["seccomp_cache_hits"] > 0, (app, row)


def test_fastpath_benchmark(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_cache(0.2), iterations=1, rounds=2
    )
    assert rows["nginx"]["cache_on_overhead_pct"] <= rows["nginx"][
        "cache_off_overhead_pct"
    ]
