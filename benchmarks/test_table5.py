"""Table 5: instrumentation statistics (static compile-time numbers).

Paper shape: sensitive callsites are a tiny fraction of all callsites
(26 / 7,017 for NGINX); no sensitive syscall is ever legitimately called
through a function pointer; ``ctx_write_mem`` dominates the
instrumentation mix.
"""

import pytest

from repro.bench.experiments import table5
from repro.bench.harness import build_app
from repro.compiler.pipeline import BastionCompiler


@pytest.fixture(scope="module")
def stats():
    return table5()


def test_sensitive_fraction_tiny(stats):
    for app, row in stats.items():
        fraction = row["sensitive_callsites"] / row["total_callsites"]
        assert fraction < 0.35, (app, fraction)


def test_no_sensitive_syscall_called_indirectly(stats):
    """The paper's 'key finding' row is all zeroes."""
    for app, row in stats.items():
        assert row["sensitive_indirect_syscalls"] == 0, app


def test_direct_vs_indirect_split(stats):
    for app, row in stats.items():
        assert (
            row["direct_callsites"] + row["indirect_callsites"]
            == row["total_callsites"]
        )
        assert row["direct_callsites"] > row["indirect_callsites"]


def test_write_mem_dominates_instrumentation(stats):
    """Paper: NGINX has 5,226 ctx_write_mem vs 61 binds."""
    row = stats["nginx"]
    assert row["ctx_write_mem"] >= row["ctx_bind_mem"]


def test_instrumentation_counts_consistent(stats):
    for app, row in stats.items():
        assert row["total_instrumentation"] == (
            row["ctx_write_mem"] + row["ctx_bind_mem"] + row["ctx_bind_const"]
        )


def test_table5_benchmark_compile_time(benchmark):
    """How long the full BASTION compile of NGINX takes (wall time)."""
    module = build_app("nginx")
    artifact = benchmark(lambda: BastionCompiler().compile(module))
    assert artifact.metadata.stats["total_instrumentation"] > 0
