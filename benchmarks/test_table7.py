"""Table 7: extending protection to filesystem syscalls (§11.2).

Paper (throughput degradation vs baseline):

    configuration            NGINX    SQLite   vsftpd
    seccomp hook only        0.15%    0.29%    0.08%
    + fetch process state   95.88%   79.89%    1.85%
    + full context checking 96.70%   80.00%    2.41%

Shape: the seccomp hook is nearly free; fetching process state over ptrace
is catastrophic for the request/transaction-bound apps and mild for the
transfer-bound one; the in-kernel ablation (§11.2's proposed fix) removes
most of the collapse.
"""



def _loss(table7_data, app, config):
    return table7_data[app]["rows"][config]["degradation_pct"]


def test_hook_only_negligible(table7_data):
    for app in ("nginx", "sqlite", "vsftpd"):
        assert _loss(table7_data, app, "fs_hook_only") < 5.0, app


def test_fetch_state_collapses_request_bound_apps(table7_data):
    assert _loss(table7_data, "nginx", "fs_fetch_state") > 60.0
    assert _loss(table7_data, "sqlite", "fs_fetch_state") > 60.0


def test_vsftpd_remains_mild(table7_data):
    """The transfer-bound app barely notices (paper: 1.85-2.41%)."""
    assert _loss(table7_data, "vsftpd", "fs_full") < 20.0
    assert _loss(table7_data, "vsftpd", "fs_full") < (
        _loss(table7_data, "nginx", "fs_full") / 3
    )


def test_full_checking_adds_little_over_fetch(table7_data):
    """The paper's delta between rows 2 and 3 is under one percentage
    point of throughput — verification is cheap once the state is fetched."""
    for app in ("nginx", "sqlite", "vsftpd"):
        delta = _loss(table7_data, app, "fs_full") - _loss(
            table7_data, app, "fs_fetch_state"
        )
        assert 0 <= delta < 5.0, (app, delta)


def test_inkernel_ablation_removes_collapse(table7_data):
    """§11.2: running the monitor in the kernel 'would completely resolve
    overhead incurred from context switching'."""
    for app in ("nginx", "sqlite"):
        ptrace_loss = _loss(table7_data, app, "fs_full")
        inkernel_loss = _loss(table7_data, app, "fs_full_inkernel")
        assert inkernel_loss < ptrace_loss / 3, app


def test_ptrace_dominates_ledger(table7_data):
    """The cycle ledger attributes the collapse to ptrace state fetching."""
    result = table7_data["nginx"]["rows"]["fs_full"]["result"]
    breakdown = result.ledger_breakdown
    ptrace = breakdown.get("ptrace", 0)
    total = sum(breakdown.values())
    assert ptrace > 0.4 * total


def test_table7_benchmark(benchmark):
    from repro.bench.harness import run_app

    result = benchmark.pedantic(
        lambda: run_app("sqlite", "fs_full", scale=0.1), iterations=1, rounds=2
    )
    assert result.ok
