"""Figure 3: performance overhead of LLVM CFI, CET, and the BASTION ladder.

Paper values (%):

    config        NGINX  SQLite  vsftpd
    LLVM CFI       0.06    2.56    1.72
    CET            0.07    0.39    0.18
    CET+CT         0.17    0.92    0.31
    CET+CT+CF      0.29    1.48    0.58
    CET+CT+CF+AI   0.60    2.01    1.65

Shape assertions: the ladder is monotone (each context adds cost), full
BASTION stays in the low single digits everywhere, CET is near-free, and
SQLite is the one app where plain LLVM CFI costs more than full BASTION.
"""

import pytest

from repro.bench.harness import FIGURE3_LADDER, run_app


@pytest.mark.parametrize("app", ("nginx", "sqlite", "vsftpd"))
def test_figure3_ladder_shape(sweeps, app):
    sweep = sweeps[app]
    overheads = [sweep.overhead(config) for config in FIGURE3_LADDER[2:]]
    # monotone ladder: CT <= CT+CF <= CT+CF+AI
    assert overheads == sorted(overheads), (app, overheads)
    # full BASTION is low-single-digit overhead
    assert 0 < overheads[-1] < 6.0, (app, overheads[-1])


def test_figure3_cet_negligible(sweeps):
    for app, sweep in sweeps.items():
        assert sweep.overhead("cet") < 1.0, app


def test_figure3_sqlite_cfi_exceeds_bastion(sweeps):
    """The paper's inversion: LLVM CFI (2.56%) > full BASTION (2.01%) on
    SQLite, because SQLite's VFS dispatch is indirect-call heavy."""
    sweep = sweeps["sqlite"]
    assert sweep.overhead("llvm_cfi") > sweep.overhead("cet_ct_cf_ai")


def test_figure3_nginx_cheapest(sweeps):
    """NGINX has the lowest full-BASTION overhead of the three (0.60%)."""
    full = {app: sweeps[app].overhead("cet_ct_cf_ai") for app in sweeps}
    assert full["nginx"] == min(full.values())


def test_figure3_ai_costs_most(sweeps):
    """'the Argument Integrity context adds the most overhead' (§9.2)."""
    for app, sweep in sweeps.items():
        ct_step = sweep.overhead("cet_ct") - sweep.overhead("cet")
        ai_step = sweep.overhead("cet_ct_cf_ai") - sweep.overhead("cet_ct_cf")
        assert ai_step > 0, app


def test_figure3_benchmark_nginx_full(benchmark):
    """pytest-benchmark hook: wall time of one protected NGINX run."""
    result = benchmark.pedantic(
        lambda: run_app("nginx", "cet_ct_cf_ai", scale=0.1),
        iterations=1,
        rounds=3,
    )
    assert result.ok
