"""Table 6: the security case study — 17 scenarios covering the paper's 32
referenced exploits, each validated to work undefended, then checked per
context.  The verdict matrix must match the paper row for row.
"""

import pytest

from repro.attacks.catalog import CATALOG
from repro.attacks.runner import evaluate_attack, table6_matrix


@pytest.fixture(scope="module")
def matrix():
    return table6_matrix()


def test_every_attack_valid(matrix):
    for evaluation in matrix:
        assert evaluation.valid, evaluation.spec.name


def test_every_row_matches_paper(matrix):
    mismatches = [
        evaluation.spec.name
        for evaluation in matrix
        if not evaluation.matches_paper()
    ]
    assert mismatches == []


def test_full_bastion_blocks_all(matrix):
    for evaluation in matrix:
        assert evaluation.blocked_by_full, evaluation.spec.name


def test_categories_covered(matrix):
    categories = {evaluation.spec.category for evaluation in matrix}
    assert categories == {
        "Return-oriented programming (ROP)",
        "Direct system call manipulation",
        "Indirect system call manipulation",
    }


def test_ai_blocks_everything(matrix):
    """In the paper's Table 6 the AI column is ✓ on every row."""
    for evaluation in matrix:
        assert evaluation.blocks("AI"), evaluation.spec.name


def test_table6_benchmark(benchmark):
    """Wall time of one full attack evaluation (5 runs of the scenario)."""
    evaluation = benchmark.pedantic(
        lambda: evaluate_attack(CATALOG[0]), iterations=1, rounds=3
    )
    assert evaluation.valid
