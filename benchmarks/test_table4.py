"""Table 4: sensitive system call usage during benchmarking.

Paper shape: NGINX's hook count is dominated by per-connection ``accept4``;
SQLite "relies more on mprotect"; vsftpd's row is dominated by networking
(a PASV socket/bind/listen/accept quartet per transfer); nobody ever calls
execve/ptrace/chmod during benign runs.  §9.2 also reports NGINX stack
depths at syscalls: min 4 / avg 5.2 / max 9 frames.
"""

import pytest

from repro.bench.experiments import table4
from benchmarks.conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def data(benchmark_disabled=None):
    return table4(BENCH_SCALE)


def test_nginx_accept4_dominates(data):
    columns, _depths = data
    nginx = columns["nginx"]
    networking = nginx["accept4"]
    assert networking == max(
        nginx[name] for name in nginx if name != "total_hooks"
    )


def test_sqlite_relies_on_mprotect(data):
    columns, _depths = data
    assert columns["sqlite"]["mprotect"] > columns["nginx"]["mprotect"] or (
        columns["sqlite"]["mprotect"] >= 50
    )
    assert columns["sqlite"]["accept4"] == 0  # DBT2 uses plain accept


def test_vsftpd_networking_heavy(data):
    columns, _depths = data
    vsftpd = columns["vsftpd"]
    networking = (
        vsftpd["socket"] + vsftpd["bind"] + vsftpd["listen"] + vsftpd["accept"]
    )
    other = sum(
        count
        for name, count in vsftpd.items()
        if name not in ("socket", "bind", "listen", "accept", "total_hooks")
    )
    assert networking > other


def test_never_invoked_rows_zero(data):
    columns, _depths = data
    for app, counts in columns.items():
        for name in ("execve", "execveat", "ptrace", "remap_file_pages", "chmod"):
            assert counts[name] == 0, (app, name)


def test_hook_totals_match_sensitive_sum(data):
    columns, _depths = data
    for app, counts in columns.items():
        total = counts.pop("total_hooks")
        # hooks == sensitive syscalls dispatched while traced (all of them)
        assert total == sum(counts.values()), app
        counts["total_hooks"] = total


def test_call_depth_statistics(data):
    """§9.2: shallow call depths at syscall invocations."""
    _columns, depths = data
    nginx = depths["nginx"]
    assert 2 <= nginx["avg_depth"] <= 8
    assert nginx["max_depth"] <= 12


def test_table4_benchmark(benchmark):
    from repro.bench.harness import run_app

    result = benchmark.pedantic(
        lambda: run_app("vsftpd", "cet_ct_cf_ai", scale=0.3),
        iterations=1,
        rounds=2,
    )
    assert result.hook_total > 0
