"""Table 3: raw benchmark numbers behind Figure 3.

Paper: NGINX 110.61 MB/s, SQLite 37,107 NOTPM, vsftpd 10.75 s — each config
shaves a fraction of a percent off.  Our absolute units are simulated; the
shape assertion is that every protected configuration retains >94% of
baseline throughput and the ordering matches the overhead ladder.
"""

import pytest

from repro.bench.harness import FIGURE3_LADDER, run_app


@pytest.mark.parametrize("app", ("nginx", "sqlite", "vsftpd"))
def test_table3_metrics_positive(sweeps, app):
    sweep = sweeps[app]
    assert sweep.raw_metric() > 0
    for config in FIGURE3_LADDER:
        assert sweep.raw_metric(config) > 0


def test_table3_nginx_throughput_barely_drops(sweeps):
    sweep = sweeps["nginx"]
    baseline = sweep.raw_metric()
    protected = sweep.raw_metric("cet_ct_cf_ai")
    assert protected > 0.94 * baseline


def test_table3_sqlite_notpm_barely_drops(sweeps):
    sweep = sweeps["sqlite"]
    assert sweep.raw_metric("cet_ct_cf_ai") > 0.94 * sweep.raw_metric()


def test_table3_vsftpd_transfer_barely_slows(sweeps):
    sweep = sweeps["vsftpd"]
    # seconds per transfer: lower is better
    assert sweep.raw_metric("cet_ct_cf_ai") < 1.06 * sweep.raw_metric()


def test_table3_ordering_matches_overheads(sweeps):
    """Higher overhead == lower throughput, config by config."""
    sweep = sweeps["nginx"]
    metrics = [sweep.raw_metric(c) for c in ("cet", "cet_ct", "cet_ct_cf", "cet_ct_cf_ai")]
    assert metrics == sorted(metrics, reverse=True)


def test_table3_benchmark_vanilla_nginx(benchmark):
    result = benchmark.pedantic(
        lambda: run_app("nginx", "vanilla", scale=0.1), iterations=1, rounds=3
    )
    assert result.throughput_mbps() > 0
