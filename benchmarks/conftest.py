"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures at a reduced
workload scale (``BENCH_SCALE``) and asserts the paper's *shape*: which
configuration wins, roughly by how much, and where the crossovers fall.
Absolute simulated numbers are reported for EXPERIMENTS.md.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.bench.experiments import perf_sweep, table7

#: workload scale for the benchmark suite (1.0 = the full bench runs)
BENCH_SCALE = 1.0


@pytest.fixture(scope="session")
def sweeps():
    """One Figure-3 ladder sweep shared by figure3/table3/table4 benches."""
    return perf_sweep(BENCH_SCALE)


@pytest.fixture(scope="session")
def table7_data():
    return table7(BENCH_SCALE)
