"""Ablation benches for the design choices DESIGN.md §5 calls out."""

import pytest

from repro.bench.experiments import ablation_dfi, security_baseline_comparison
from repro.bench.harness import run_app
from benchmarks.conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def dfi_rows():
    return ablation_dfi(BENCH_SCALE)


def test_dfi_costs_more_than_bastion(dfi_rows):
    """§3.3: argument-only value integrity is 'magnitudes smaller' than
    application-wide DFI on memory-access-heavy apps."""
    for app in ("nginx", "sqlite"):
        assert (
            dfi_rows[app]["dfi_overhead_pct"]
            > dfi_rows[app]["bastion_overhead_pct"]
        ), (app, dfi_rows[app])


def test_security_baselines_sweep():
    """LLVM CFI / CET coverage vs the catalog: each misses attacks."""
    rows = security_baseline_comparison()
    assert any(r["cfi_bypassed"] for r in rows)
    assert any(r["cet_bypassed"] for r in rows)
    assert any(r["cet_blocked"] for r in rows)  # CET does stop plain ROP


def test_unwind_termination_at_indirect_calls():
    """CF verification stops at the first indirect callsite: depth at the
    execve stop is bounded even though the static path through
    ngx_spawn_process is longer."""
    result = run_app("nginx", "cet_ct_cf_ai", scale=0.1)
    assert result.max_unwind_depth <= 12


def test_sockaddr_fastpath_no_false_positives():
    """§9.2: accept/accept4's kernel-written sockaddr must not trip AI."""
    for app in ("nginx", "vsftpd"):
        result = run_app(app, "cet_ct_cf_ai", scale=0.1)
        assert not result.violations, (app, result.violations[:1])


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_app("nginx", "dfi", scale=0.1), iterations=1, rounds=2
    )
    assert result.ok
