"""Load generators: the wrk / DBT2 / dkftpbench stand-ins.

Each workload plugs into the simulated network stack as a *backlog
provider*: when the server calls ``accept``/``accept4`` the workload hands
it the next pending connection, and it paces requests by watching the
server's writes (keep-alive HTTP requests after each response body, the
next NEWORDER after each result, the next RETR after each ``226``).

All three record the cycle count at the first ``accept`` — the steady-state
marker the benches use so that initialization cost is excluded from
throughput, matching the paper's steady-state measurements.
"""

from dataclasses import dataclass

from repro.apps.nginx import NGINX_PORT, PAGE_BYTES
from repro.apps.sqlite import SQLITE_PORT
from repro.apps.vsftpd import FTP_PORT
from repro.kernel.net import BACKLOG_WAIT, Connection


class Workload:
    """Base: provider wiring + steady-state marker."""

    def __init__(self):
        self.kernel = None
        self.proc = None
        self.steady_start_cycles = None
        self.accepted = 0

    def attach(self, kernel, proc):
        """Install this workload as the kernel's backlog provider."""
        self.kernel = kernel
        self.proc = proc
        kernel.net.backlog_provider = self._provide
        latency = getattr(self, "latency", None)
        if latency is not None:
            latency.bind(kernel.telemetry)
        return self

    def now(self):
        """Current cycle timestamp: the scheduler's global clock when one
        is driving, else the attached process's own ledger."""
        if self.kernel is not None:
            clock = self.kernel.clock()
            if clock is not None:
                return clock
        return self.proc.ledger.cycles if self.proc is not None else 0

    def _provide(self, sock):
        if self.steady_start_cycles is None:
            self.steady_start_cycles = self.now()
        conn = self.next_connection(sock)
        if conn is not None and conn is not BACKLOG_WAIT:
            self.accepted += 1
        return conn

    def next_connection(self, sock):  # pragma: no cover - interface
        raise NotImplementedError


class LatencyStats:
    """Per-request latency samples (cycles) with percentile summaries.

    When :meth:`bind`-ed to a telemetry bus, every sample is published as
    a ``('latency', <source>)`` event and the stats collect their samples
    back through a bus subscription — i.e. the stats become a *view*: any
    other producer emitting latency events for the same source is
    aggregated identically.  Unbound (unit tests), samples are kept
    locally and nothing else changes.
    """

    def __init__(self, source="request"):
        self.samples = []
        self.source = source
        self._bus = None

    def bind(self, bus):
        """Publish future samples on ``bus`` and collect them back."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
        self._bus = bus
        bus.subscribe(self._on_event)
        return self

    def _on_event(self, record):
        if record.kind == "latency" and record.event == self.source:
            self.samples.append(record.cycles)

    def record(self, cycles):
        if self._bus is not None:
            self._bus.emit("latency", self.source, cycles=cycles)
        else:
            self.samples.append(cycles)

    def __len__(self):
        return len(self.samples)

    @staticmethod
    def _nearest_rank(ordered, p):
        if not ordered:
            return 0
        rank = int(round((p / 100.0) * (len(ordered) - 1)))
        return ordered[min(max(rank, 0), len(ordered) - 1)]

    def percentile(self, p):
        """Nearest-rank percentile over the recorded samples (cycles).

        Defined for every sample count: zero samples yield 0, a single
        sample is every percentile, and tied samples collapse to the tie
        value.  ``p`` outside [0, 100] clamps to the extremes.
        """
        return self._nearest_rank(sorted(self.samples), p)

    @property
    def mean(self):
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def summary(self):
        ordered = sorted(self.samples)
        return {
            "count": len(ordered),
            "p50": self._nearest_rank(ordered, 50),
            "p95": self._nearest_rank(ordered, 95),
            "p99": self._nearest_rank(ordered, 99),
            "mean": self.mean,
            "max": ordered[-1] if ordered else 0,
        }


# ---------------------------------------------------------------------------
# wrk (HTTP keep-alive)
# ---------------------------------------------------------------------------

HTTP_REQUEST = b"GET /index.html HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n"


@dataclass
class WrkStats:
    connections: int = 0
    requests_sent: int = 0
    responses: int = 0


class WrkWorkload(Workload):
    """Keep-alive HTTP load: N connections x M pipelined-one-at-a-time requests.

    A request is considered answered when the server writes the response
    *body* (>= half the static page); headers and log writes don't advance
    the state machine.
    """

    def __init__(self, connections=40, requests_per_connection=58, port=NGINX_PORT):
        super().__init__()
        self.connections = connections
        self.requests_per_connection = requests_per_connection
        self.port = port
        self.stats = WrkStats()
        self._remaining = connections
        self._pending = {}

    def next_connection(self, sock):
        if sock.bound_port != self.port or self._remaining <= 0:
            return None
        self._remaining -= 1
        self.stats.connections += 1
        conn = Connection(peer_port=40000 + self._remaining)
        self._pending[conn.serial] = self.requests_per_connection - 1
        conn.deliver(HTTP_REQUEST)
        self.stats.requests_sent += 1
        conn.on_server_write = self._on_write
        return conn

    def _on_write(self, conn, data_len, prefix):
        if data_len < PAGE_BYTES // 2:
            return  # headers / small writes
        self.stats.responses += 1
        left = self._pending.get(conn.serial, 0)
        if left > 0:
            self._pending[conn.serial] = left - 1
            conn.deliver(HTTP_REQUEST)
            self.stats.requests_sent += 1
        else:
            self._pending.pop(conn.serial, None)
            conn.closed = True


class SimpleServerWorkload(Workload):
    """Generic request/response driver for the attack-target servers.

    Delivers ``requests`` request messages per connection; the next request
    goes out after any server write of at least ``response_threshold``
    bytes.
    """

    def __init__(
        self,
        port,
        connections=2,
        requests=3,
        request=b"GET / HTTP/1.0\r\n\r\n",
        response_threshold=1,
    ):
        super().__init__()
        self.port = port
        self.connections = connections
        self.requests = requests
        self.request = request
        self.response_threshold = response_threshold
        self.responses = 0
        self._remaining = connections
        self._pending = {}

    def next_connection(self, sock):
        if sock.bound_port != self.port or self._remaining <= 0:
            return None
        self._remaining -= 1
        conn = Connection(peer_port=45000 + self._remaining)
        self._pending[conn.serial] = self.requests - 1
        conn.deliver(self.request)
        conn.on_server_write = self._on_write
        return conn

    def _on_write(self, conn, data_len, prefix):
        if data_len < self.response_threshold:
            return
        self.responses += 1
        left = self._pending.get(conn.serial, 0)
        if left > 0:
            self._pending[conn.serial] = left - 1
            conn.deliver(self.request)
        else:
            self._pending.pop(conn.serial, None)
            conn.closed = True


# ---------------------------------------------------------------------------
# DBT2 (new-order transaction mix)
# ---------------------------------------------------------------------------

NEWORDER_REQUEST = b"NEWORDER w=1 d=3 items=10\n"


@dataclass
class Dbt2Stats:
    terminals: int = 0
    transactions: int = 0


class Dbt2Workload(Workload):
    """DBT2-style terminals: each sends NEWORDER requests back-to-back."""

    def __init__(self, terminals=8, transactions_per_terminal=100, port=SQLITE_PORT):
        super().__init__()
        self.terminals = terminals
        self.transactions_per_terminal = transactions_per_terminal
        self.port = port
        self.stats = Dbt2Stats()
        self._remaining = terminals
        self._pending = {}

    def next_connection(self, sock):
        if sock.bound_port != self.port or self._remaining <= 0:
            return None
        self._remaining -= 1
        self.stats.terminals += 1
        conn = Connection(peer_port=50000 + self._remaining)
        self._pending[conn.serial] = self.transactions_per_terminal - 1
        conn.deliver(NEWORDER_REQUEST)
        conn.on_server_write = self._on_write
        return conn

    def _on_write(self, conn, data_len, prefix):
        self.stats.transactions += 1
        left = self._pending.get(conn.serial, 0)
        if left > 0:
            self._pending[conn.serial] = left - 1
            conn.deliver(NEWORDER_REQUEST)
        else:
            self._pending.pop(conn.serial, None)
            conn.closed = True


# ---------------------------------------------------------------------------
# dkftpbench (FTP downloads)
# ---------------------------------------------------------------------------

FTP_LOGIN = b"USER anonymous PASS dkftpbench\n"
FTP_RETR = b"RETR file.bin\n"
FTP_LIST = b"LIST\n"
FTP_QUIT = b"QUIT\n"


@dataclass
class FtpStats:
    sessions: int = 0
    transfers: int = 0
    data_connections: int = 0


class DkftpbenchWorkload(Workload):
    """Sequential FTP clients, each downloading the file several times.

    Control-channel pacing keys off the server's reply codes: ``230`` (login
    ok) triggers the first RETR, each ``226`` (transfer complete) triggers
    the next RETR or QUIT.  Data-channel connections are granted whenever
    the server accepts on a PASV port.
    """

    def __init__(
        self, sessions=12, files_per_session=6, lists_per_session=0, port=FTP_PORT
    ):
        super().__init__()
        self.sessions = sessions
        self.files_per_session = files_per_session
        self.lists_per_session = lists_per_session
        self.port = port
        self.stats = FtpStats()
        self._remaining = sessions
        self._files_left = {}
        self._lists_left = {}

    def next_connection(self, sock):
        if sock.bound_port == self.port:
            if self._remaining <= 0:
                return None
            self._remaining -= 1
            self.stats.sessions += 1
            conn = Connection(peer_port=60000 + self._remaining)
            self._files_left[conn.serial] = self.files_per_session
            self._lists_left[conn.serial] = self.lists_per_session
            conn.deliver(FTP_LOGIN)
            conn.on_server_write = self._on_control_write
            return conn
        # PASV data port: hand over a fresh data connection
        self.stats.data_connections += 1
        return Connection(peer_port=61000 + self.stats.data_connections)

    def _on_control_write(self, conn, data_len, prefix):
        code = prefix[:3]
        if code == b"230":
            self._send_next(conn)
        elif code == b"226":
            self.stats.transfers += 1
            self._send_next(conn)
        elif code == b"221":
            self._files_left.pop(conn.serial, None)
            self._lists_left.pop(conn.serial, None)
            conn.closed = True

    def _send_next(self, conn):
        lists = self._lists_left.get(conn.serial, 0)
        if lists > 0:
            self._lists_left[conn.serial] = lists - 1
            conn.deliver(FTP_LIST)
            return
        left = self._files_left.get(conn.serial, 0)
        if left > 0:
            self._files_left[conn.serial] = left - 1
            conn.deliver(FTP_RETR)
        else:
            conn.deliver(FTP_QUIT)


# ---------------------------------------------------------------------------
# concurrent variants (scheduler-driven multi-worker benches)
# ---------------------------------------------------------------------------


class ConcurrentWrkWorkload(Workload):
    """wrk with many connections genuinely in flight.

    The sequential :class:`WrkWorkload` hands the server a connection
    whenever it asks, so one accept loop drains the whole run.  This
    variant keeps at most ``max_inflight`` connections open and answers
    ``BACKLOG_WAIT`` while the cap is reached — parked accept loops in
    *other* workers wake as connections finish, which is what spreads the
    load across a scheduled worker pool.  Per-request latency is sampled
    on the global scheduler clock from request delivery to the
    response-*body* write (>= half the static page).

    The same cap doubles as the C10k knob for the event-loop benches:
    with ``max_inflight=10_000`` a single nonblocking accept burst pulls
    the whole backlog into one worker task, ``peak_inflight`` records the
    high-water concurrency actually reached, and ``connections >
    max_inflight`` produces churn (new connections admitted as earlier
    ones close).  Per-connection state is keyed on ``Connection.serial``
    (monotonic, never reused) and dropped at close, so bookkeeping stays
    bounded by the in-flight set, not the total connection count.
    """

    def __init__(
        self,
        connections=40,
        requests_per_connection=58,
        max_inflight=8,
        port=NGINX_PORT,
    ):
        super().__init__()
        self.connections = connections
        self.requests_per_connection = requests_per_connection
        self.max_inflight = max_inflight
        self.port = port
        self.stats = WrkStats()
        self.latency = LatencyStats()
        self._remaining = connections
        self._inflight = 0
        self.peak_inflight = 0
        self._pending = {}
        self._sent_at = {}

    def next_connection(self, sock):
        if sock.bound_port != self.port or self._remaining <= 0:
            return None
        if self._inflight >= self.max_inflight:
            return BACKLOG_WAIT
        self._remaining -= 1
        self._inflight += 1
        if self._inflight > self.peak_inflight:
            self.peak_inflight = self._inflight
        self.stats.connections += 1
        conn = Connection(peer_port=40000 + self._remaining)
        self._pending[conn.serial] = self.requests_per_connection - 1
        conn.on_server_write = self._on_write
        self._send(conn)
        return conn

    def _send(self, conn):
        self._sent_at[conn.serial] = self.now()
        self.stats.requests_sent += 1
        conn.deliver(HTTP_REQUEST)

    def _on_write(self, conn, data_len, prefix):
        if data_len < PAGE_BYTES // 2:
            return  # headers / small writes
        self.stats.responses += 1
        sent = self._sent_at.pop(conn.serial, None)
        if sent is not None:
            self.latency.record(max(self.now() - sent, 0))
        left = self._pending.get(conn.serial, 0)
        if left > 0:
            self._pending[conn.serial] = left - 1
            self._send(conn)
        else:
            self._pending.pop(conn.serial, None)
            conn.closed = True
            self._inflight -= 1


class ConcurrentDkftpbenchWorkload(Workload):
    """dkftpbench with a bounded pool of concurrent FTP sessions.

    Same pacing as :class:`DkftpbenchWorkload` (230 starts the first RETR,
    each 226 the next), but at most ``max_inflight`` control sessions are
    live at once and further sessions wait in ``BACKLOG_WAIT`` until one
    QUITs.  Latency is one full transfer: RETR delivery to the ``226``
    completion reply.
    """

    def __init__(self, sessions=12, files_per_session=6, max_inflight=4, port=FTP_PORT):
        super().__init__()
        self.sessions = sessions
        self.files_per_session = files_per_session
        self.max_inflight = max_inflight
        self.port = port
        self.stats = FtpStats()
        self.latency = LatencyStats()
        self._remaining = sessions
        self._inflight = 0
        self._files_left = {}
        self._retr_at = {}

    def next_connection(self, sock):
        if sock.bound_port == self.port:
            if self._remaining <= 0:
                return None
            if self._inflight >= self.max_inflight:
                return BACKLOG_WAIT
            self._remaining -= 1
            self._inflight += 1
            self.stats.sessions += 1
            conn = Connection(peer_port=62000 + self._remaining)
            self._files_left[conn.serial] = self.files_per_session
            conn.deliver(FTP_LOGIN)
            conn.on_server_write = self._on_control_write
            return conn
        # PASV data port: hand over a fresh data connection
        self.stats.data_connections += 1
        return Connection(peer_port=63000 + self.stats.data_connections)

    def _on_control_write(self, conn, data_len, prefix):
        code = prefix[:3]
        if code == b"230":
            self._send_next(conn)
        elif code == b"226":
            self.stats.transfers += 1
            started = self._retr_at.pop(conn.serial, None)
            if started is not None:
                self.latency.record(max(self.now() - started, 0))
            self._send_next(conn)
        elif code == b"221":
            self._files_left.pop(conn.serial, None)
            conn.closed = True
            self._inflight -= 1

    def _send_next(self, conn):
        left = self._files_left.get(conn.serial, 0)
        if left > 0:
            self._files_left[conn.serial] = left - 1
            self._retr_at[conn.serial] = self.now()
            conn.deliver(FTP_RETR)
        else:
            conn.deliver(FTP_QUIT)
