"""mini-vsftpd: control/data-channel FTP with per-session privilege drop.

Mirrors the vsftpd behaviours the paper's evaluation leans on:

- per-session ``setuid``/``setgid`` privilege drop (Table 4's 12 each);
- PASV data connections: every ``RETR`` creates a fresh data socket —
  ``socket``/``bind``/``listen``/``accept`` per transfer, which is why
  vsftpd's Table 4 row is dominated by networking syscalls;
- downloads served by a chunked ``sendfile`` loop (dkftpbench fetches a
  large file; the transfer cost dominates and BASTION's rare traps all but
  vanish — the 1.65% column of Figure 3 and the mild Table 7 row).
"""

from dataclasses import dataclass

from repro.apps.libc import build_libc
from repro.ir.builder import ModuleBuilder

FTP_PORT = 21
DATA_PORT_BASE = 20000
FILE_PATH = "/srv/ftp/file.bin"

#: sendfile chunk size (vsftpd streams large files in bounded chunks)
CHUNK_BYTES = 2 << 20


@dataclass(frozen=True)
class VsftpdConfig:
    """Build-time constants for the IR program."""

    ftp_uid: int = 1001
    ftp_gid: int = 1001
    session_burn: int = 8_000
    command_burn: int = 1_500


def build_vsftpd(config=VsftpdConfig()):
    """Build the mini-vsftpd module (libc linked in)."""
    mb = ModuleBuilder("vsftpd")
    mb.extend(build_libc())

    mb.global_string("g_file_path", FILE_PATH)
    mb.global_string("g_banner", "220 vsftpd\n")
    mb.global_string("g_login_ok", "230 ok\n")
    mb.global_string("g_pasv_ok", "227 pasv\n")
    mb.global_string("g_xfer_ok", "226 ok\n")
    mb.global_string("g_bye", "221 bye\n")
    mb.global_string("g_cmd_retr", "RETR")
    mb.global_string("g_cmd_list", "LIST")
    mb.global_string("g_ftp_dir", "/srv/ftp")
    mb.global_var("g_dirent_buf", size=200)
    mb.global_string("g_cmd_quit", "QUIT")
    mb.global_var("g_cmd_buf", size=80)
    mb.global_var("g_sockaddr", size=4)
    mb.global_var("g_data_sa", size=4)
    mb.global_var("g_client_sa", size=4)
    mb.global_var("g_salen", init=3)
    mb.global_var("g_statbuf", size=8)
    mb.global_var("g_listen_fd", init=-1)
    mb.global_var("g_next_data_port", init=DATA_PORT_BASE)

    _build_data_channel(mb, config)
    _build_session(mb, config)
    _build_main(mb, config)
    return mb.build()


def _build_data_channel(mb, config):
    # PASV: open a fresh data socket and accept the client's data connection
    f = mb.function("vsftpd_pasv_data", params=["conn"])
    s = f.call("socket", [2, 1, 0])
    port_p = f.addr_global("g_next_data_port")
    port = f.load(port_p)
    port2 = f.add(port, 1)
    f.store(port_p, port2)
    sa = f.addr_global("g_data_sa")
    f.store(sa, 2)
    sa_port = f.add(sa, 8)
    f.store(sa_port, port)
    f.call("bind", [s, sa, 16])
    f.call("listen", [s, 1])
    pasv = f.addr_global("g_pasv_ok")
    f.call("write", [f.p("conn"), pasv, 10], void=True)
    csa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    d = f.call("accept", [s, csa, salen])
    f.call("close", [s], void=True)
    f.ret(d)

    # LIST: stream the directory listing over a PASV data channel
    f = mb.function("vsftpd_list", params=["conn"])
    data_fd = f.call("vsftpd_pasv_data", [f.p("conn")])
    dpath = f.addr_global("g_ftp_dir")
    dir_fd = f.call("open", [dpath, 0, 0])
    buf = f.addr_global("g_dirent_buf")
    f.label("dents_loop")
    n = f.call("getdents", [dir_fd, buf, 160])
    done = f.binop("<=", n, 0)
    f.branch(done, "dents_done", "send_chunk")
    f.label("send_chunk")
    f.call("write", [data_fd, buf, n], void=True)
    f.jump("dents_loop")
    f.label("dents_done")
    f.call("close", [dir_fd], void=True)
    f.call("close", [data_fd], void=True)
    ok = f.addr_global("g_xfer_ok")
    f.call("write", [f.p("conn"), ok, 7], void=True)
    f.ret(0)

    # RETR: stream the file over the data channel in bounded chunks
    f = mb.function("vsftpd_retr", params=["conn"])
    data_fd = f.call("vsftpd_pasv_data", [f.p("conn")])
    path = f.addr_global("g_file_path")
    file_fd = f.call("open", [path, 0, 0])
    st = f.addr_global("g_statbuf")
    f.call("fstat", [file_fd, st], void=True)
    f.label("xfer_loop")
    sent = f.call("sendfile", [data_fd, file_fd, 0, CHUNK_BYTES])
    more = f.binop(">", sent, 0)
    f.branch(more, "xfer_loop", "xfer_done")
    f.label("xfer_done")
    f.call("close", [file_fd], void=True)
    f.call("close", [data_fd], void=True)
    ok = f.addr_global("g_xfer_ok")
    f.call("write", [f.p("conn"), ok, 7], void=True)
    f.ret(0)


def _build_session(mb, config):
    f = mb.function("vsftpd_login", params=["conn"])
    buf = f.addr_global("g_cmd_buf")
    f.call("read", [f.p("conn"), buf, 64], void=True)
    f.burn(config.command_burn)
    f.call("setuid", [config.ftp_uid], void=True)
    f.call("setgid", [config.ftp_gid], void=True)
    ok = f.addr_global("g_login_ok")
    f.call("write", [f.p("conn"), ok, 7], void=True)
    f.ret(0)

    f = mb.function("vsftpd_handle_session", params=["conn"])
    banner = f.addr_global("g_banner")
    f.call("write", [f.p("conn"), banner, 11], void=True)
    f.call("vsftpd_login", [f.p("conn")], void=True)
    f.burn(config.session_burn)
    buf = f.addr_global("g_cmd_buf")
    f.label("cmd_loop")
    n = f.call("read", [f.p("conn"), buf, 64])
    done = f.binop("<=", n, 0)
    f.branch(done, "finish", "dispatch")
    f.label("dispatch")
    f.burn(config.command_burn)
    retr = f.addr_global("g_cmd_retr")
    is_retr = f.call("starts_with", [buf, retr])
    f.branch(is_retr, "do_retr", "check_list")
    f.label("do_retr")
    f.hook("vsftpd_retr")
    f.call("vsftpd_retr", [f.p("conn")], void=True)
    f.jump("cmd_loop")
    f.label("check_list")
    list_s = f.addr_global("g_cmd_list")
    is_list = f.call("starts_with", [buf, list_s])
    f.branch(is_list, "do_list", "check_quit")
    f.label("do_list")
    f.call("vsftpd_list", [f.p("conn")], void=True)
    f.jump("cmd_loop")
    f.label("check_quit")
    quit_s = f.addr_global("g_cmd_quit")
    is_quit = f.call("starts_with", [buf, quit_s])
    f.branch(is_quit, "do_quit", "cmd_loop")
    f.label("do_quit")
    bye = f.addr_global("g_bye")
    f.call("write", [f.p("conn"), bye, 8], void=True)
    f.label("finish")
    f.call("close", [f.p("conn")], void=True)
    f.ret(0)


def _build_main(mb, config):
    f = mb.function("main", params=[])
    sfd = f.call("socket", [2, 1, 0])
    sa = f.addr_global("g_sockaddr")
    f.store(sa, 2)
    sa_port = f.add(sa, 8)
    f.store(sa_port, FTP_PORT)
    f.call("bind", [sfd, sa, 16])
    f.call("listen", [sfd, 64])
    lfd_p = f.addr_global("g_listen_fd")
    f.store(lfd_p, sfd)
    f.call("setsid", [], void=True)
    f.label("accept_loop")
    csa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    conn = f.call("accept", [sfd, csa, salen])
    bad = f.lt(conn, 0)
    f.branch(bad, "shutdown", "serve")
    f.label("serve")
    f.call("vsftpd_handle_session", [conn], void=True)
    f.jump("accept_loop")
    f.label("shutdown")
    f.ret(0)
