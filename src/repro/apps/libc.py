"""The IR C-library layer.

Syscall wrappers are tiny ``is_wrapper`` functions — one ``Syscall``
instruction passing the parameters straight through, mirroring glibc's thin
syscall stubs.  The BASTION compiler treats *calls to these wrappers* as the
protected syscall callsites (§6.1), so an application never needs raw
``Syscall`` instructions.

Also provides the helpers real C programs lean on (strlen/strcpy/strcmp,
word-wise memcpy/memset, a bump-allocating malloc) so applications read like
their C originals.
"""

from repro.ir.builder import ModuleBuilder
from repro.syscalls.table import SYSCALL_BY_NAME
from repro.vm.loader import HEAP_BASE
from repro.vm.memory import WORD

#: wrappers linked into every application (name -> arity)
LIBC_WRAPPERS = {
    "read": 3,
    "write": 3,
    "open": 3,
    "openat": 4,
    "close": 1,
    "stat": 2,
    "fstat": 2,
    "lseek": 3,
    "sendfile": 4,
    "pread64": 4,
    "pwrite64": 4,
    "access": 2,
    "mmap": 6,
    "mprotect": 3,
    "munmap": 2,
    "mremap": 5,
    "brk": 1,
    "socket": 3,
    "bind": 3,
    "listen": 2,
    "accept": 3,
    "accept4": 4,
    "connect": 3,
    "setsockopt": 5,
    "shutdown": 2,
    "sendto": 6,
    "recvfrom": 6,
    "clone": 5,
    "fork": 0,
    "vfork": 0,
    "execve": 3,
    "execveat": 5,
    "exit": 1,
    "wait4": 4,
    "getpid": 0,
    "getuid": 0,
    "setuid": 1,
    "setgid": 1,
    "setreuid": 2,
    "chmod": 2,
    "dup": 1,
    "dup2": 2,
    "pipe": 1,
    "readv": 3,
    "getdents": 3,
    "writev": 3,
    "unlink": 1,
    "rename": 2,
    "mkdir": 2,
    "nanosleep": 2,
    "getrandom": 3,
    "fsync": 1,
    "fcntl": 3,
    "umask": 1,
    "setsid": 0,
}

#: extra wrappers for event-driven apps.  Kept *out* of LIBC_WRAPPERS on
#: purpose: linking them unconditionally would shift every blocking-mode
#: app image (and the pinned parity fixtures); event-loop builds pass
#: ``wrappers=dict(LIBC_WRAPPERS, **EVENT_WRAPPERS)`` explicitly.
EVENT_WRAPPERS = {
    "epoll_create1": 1,
    "epoll_ctl": 4,
    "epoll_wait": 4,
}


def _add_wrapper(mb, name, arity):
    params = ["a%d" % i for i in range(arity)]
    fb = mb.function(name, params=params)
    result = fb.syscall(name, [fb.p(p) for p in params])
    fb.ret(result)
    fb.func.is_wrapper = True


def build_libc(wrappers=None):
    """Build the libc module; ``extend`` it into an application module."""
    mb = ModuleBuilder("libc", entry="strlen")  # entry unused; libc is linked
    chosen = wrappers if wrappers is not None else LIBC_WRAPPERS
    for name, arity in chosen.items():
        if name not in SYSCALL_BY_NAME:
            raise ValueError("unknown syscall for wrapper: %r" % name)
        _add_wrapper(mb, name, arity)

    _add_string_helpers(mb)
    _add_memory_helpers(mb)
    _add_allocator(mb)
    _add_system(mb)
    return mb.build()


def _add_system(mb):
    """``system(cmd)``: fork + execve, as in glibc.

    Linked into every binary whether or not the application calls it — the
    classic ret2libc surface.  Its *direct* calls to the fork/execve
    wrappers are what make those syscalls directly-callable even in
    programs that never spawn anything (why Table 6's ROP rows show the
    call-type context bypassed).
    """
    f = mb.function("system", params=["cmd"])
    pid = f.call("fork", [])
    child = f.eq(pid, 0)

    def in_child():
        rc = f.call("execve", [f.p("cmd"), 0, 0])
        f.call("exit", [rc], void=True)

    f.if_then(child, in_child)
    f.call("wait4", [pid, 0, 0, 0], void=True)
    f.ret(0)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _add_string_helpers(mb):
    # strlen(s): slots until NUL
    f = mb.function("strlen", params=["s"])
    n = f.const(0, dst="n")
    f.label("loop")
    p = f.index(f.p("s"), n)
    ch = f.load(p)
    done = f.eq(ch, 0)
    f.branch(done, "end", "next")
    f.label("next")
    n2 = f.add(n, 1)
    f.move(n2, dst="n")
    f.jump("loop")
    f.label("end")
    f.ret(n)

    # strcpy(dst, src): returns dst
    f = mb.function("strcpy", params=["dst", "src"])
    i = f.const(0, dst="i")
    f.label("loop")
    sp = f.index(f.p("src"), i)
    ch = f.load(sp)
    dp = f.index(f.p("dst"), i)
    f.store(dp, ch)
    done = f.eq(ch, 0)
    f.branch(done, "end", "next")
    f.label("next")
    i2 = f.add(i, 1)
    f.move(i2, dst="i")
    f.jump("loop")
    f.label("end")
    f.ret(f.p("dst"))

    # strcmp(a, b): 0 if equal, else difference at first mismatch
    f = mb.function("strcmp", params=["a", "b"])
    i = f.const(0, dst="i")
    f.label("loop")
    pa = f.index(f.p("a"), i)
    ca = f.load(pa)
    pb = f.index(f.p("b"), i)
    cb = f.load(pb)
    diff = f.sub(ca, cb)
    neq = f.ne(diff, 0)
    f.branch(neq, "end", "check_nul")
    f.label("check_nul")
    nul = f.eq(ca, 0)
    f.branch(nul, "end", "next")
    f.label("next")
    i2 = f.add(i, 1)
    f.move(i2, dst="i")
    f.jump("loop")
    f.label("end")
    f.ret(diff)

    # strncmp-ish prefix test: starts_with(s, prefix) -> 1/0
    f = mb.function("starts_with", params=["s", "prefix"])
    i = f.const(0, dst="i")
    f.label("loop")
    pp = f.index(f.p("prefix"), i)
    pc = f.load(pp)
    done = f.eq(pc, 0)
    f.branch(done, "yes", "cmp")
    f.label("cmp")
    sp = f.index(f.p("s"), i)
    sc = f.load(sp)
    neq = f.ne(sc, pc)
    f.branch(neq, "no", "next")
    f.label("next")
    i2 = f.add(i, 1)
    f.move(i2, dst="i")
    f.jump("loop")
    f.label("yes")
    one = f.const(1)
    f.ret(one)
    f.label("no")
    zero = f.const(0)
    f.ret(zero)


def _add_memory_helpers(mb):
    # memcpy_w(dst, src, nwords)
    f = mb.function("memcpy_w", params=["dst", "src", "n"])

    def body(i):
        sp = f.index(f.p("src"), i)
        v = f.load(sp)
        dp = f.index(f.p("dst"), i)
        f.store(dp, v)

    f.loop_range(f.p("n"), body)
    f.ret(f.p("dst"))

    # memset_w(dst, value, nwords)
    f = mb.function("memset_w", params=["dst", "value", "n"])

    def body(i):
        dp = f.index(f.p("dst"), i)
        f.store(dp, f.p("value"))

    f.loop_range(f.p("n"), body)
    f.ret(f.p("dst"))


def _add_allocator(mb):
    """A bump allocator: ``malloc(nwords)`` returning a heap pointer."""
    mb.global_var("__heap_next", init=HEAP_BASE)

    f = mb.function("malloc", params=["nwords"])
    hp = f.addr_global("__heap_next")
    cur = f.load(hp)
    span = f.mul(f.p("nwords"), WORD)
    nxt = f.add(cur, span)
    pad = f.add(nxt, WORD)  # one-slot red zone between allocations
    f.store(hp, pad)
    f.ret(cur)

    f = mb.function("free", params=["ptr"])
    zero = f.const(0)
    f.ret(zero)
