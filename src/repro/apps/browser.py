"""mini-browser: a C++-flavoured renderer host — the COOP attack target.

Models the pieces Counterfeit Object-Oriented Programming needs (§10.3):

- objects carry a vptr; *every* virtual call loads the vtable and dispatches
  indirectly with the same type signature (``virt1``), so COOP's
  vtable-entry reuse is invisible to type-based CFI;
- one virtual method (``renderer_spawn``) legitimately reaches ``execve``
  (spawning a sandboxed renderer process, as Chrome does), so the syscall
  is directly-callable and reached through sanctioned control flow —
  Table 6's COOP row: CT ×, CF ×, AI ✓ (only the counterfeit object's
  fields give the attack away).
"""

from dataclasses import dataclass

from repro.apps.libc import build_libc
from repro.ir.builder import ModuleBuilder

RENDERER_BINARY = "/opt/browser/renderer"


@dataclass(frozen=True)
class BrowserConfig:
    """Build-time constants for the IR program."""

    events: int = 12
    render_burn: int = 2_000


def build_browser(config=BrowserConfig()):
    """Build the mini-browser module (libc linked in)."""
    mb = ModuleBuilder("browser")
    mb.extend(build_libc())

    mb.struct("blink_object", ["vptr", "path", "flags"])

    mb.global_string("g_renderer_path", RENDERER_BINARY)
    #: vtable: slot 0 = render, slot 1 = spawn
    mb.global_var("g_vt_document", size=2)
    mb.global_var("g_document", size=3, struct="blink_object")
    mb.global_var("g_frame_count", init=0)

    f = mb.function("doc_render", params=["obj"], sig="virt1")
    f.burn(config.render_burn)
    count_p = f.addr_global("g_frame_count")
    count = f.load(count_p)
    count2 = f.add(count, 1)
    f.store(count_p, count2)
    f.ret(0)

    # the legitimate execve user: spawn a sandboxed renderer process.
    # (posix_spawn-style direct exec: the simulated kernel records the exec
    # and the caller continues — child scheduling is elided, DESIGN.md §2.)
    f = mb.function("renderer_spawn", params=["obj"], sig="virt1")
    path_p = f.gep(f.p("obj"), "blink_object", "path")
    path = f.load(path_p)
    rc = f.call("execve", [path, 0, 0])
    f.ret(rc)

    # virtual dispatch: obj->vptr[slot](obj)
    f = mb.function("vcall", params=["obj", "slot"])
    vptr_p = f.gep(f.p("obj"), "blink_object", "vptr")
    vtable = f.load(vptr_p)
    entry = f.index(vtable, f.p("slot"))
    method = f.load(entry)
    rc = f.icall(method, [f.p("obj")], sig="virt1")
    f.ret(rc)

    f = mb.function("event_loop", params=["obj"])

    def tick(i):
        f.hook("browser_event")
        f.call("vcall", [f.p("obj"), 0], void=True)

    f.loop_range(f.const(config.events), tick)
    # spawn one renderer at the end of the event loop
    f.call("vcall", [f.p("obj"), 1], void=True)
    f.ret(0)

    f = mb.function("main", params=[])
    vt = f.addr_global("g_vt_document")
    render = f.funcaddr("doc_render")
    f.store(vt, render)
    vt1 = f.add(vt, 8)
    spawn = f.funcaddr("renderer_spawn")
    f.store(vt1, spawn)

    doc = f.addr_global("g_document")
    vptr_p = f.gep(doc, "blink_object", "vptr")
    f.store(vptr_p, vt)
    path_p = f.gep(doc, "blink_object", "path")
    rpath = f.addr_global("g_renderer_path")
    f.store(path_p, rpath)

    f.call("event_loop", [doc], void=True)
    f.ret(0)
    return mb.build()
