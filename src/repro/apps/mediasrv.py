"""mini-mediaserver: the synthesized CVE attack target.

A small streaming daemon with the memory-corruption surface the Table 6
CVE exploits rely on: a heap parse buffer that overflows into an adjacent
handler structure holding a function pointer and argument fields.  The
program legitimately uses ``mmap`` (frame pool), ``setuid``/``setgid``
(privilege drop, direct only), ``open``/``read``/``write``, and ``socket``
— and never uses ``execve``/``execveat``/``vfork``/``mremap``/``chmod``/
``connect``, the syscalls the CVE payloads try to reach.
"""

from dataclasses import dataclass

from repro.apps.libc import build_libc
from repro.ir.builder import ModuleBuilder

MEDIA_PORT = 8554
MEDIA_FILE = "/srv/media/stream.ts"


@dataclass(frozen=True)
class MediaConfig:
    """Build-time constants for the IR program."""

    frames: int = 8
    frame_burn: int = 3_000


def build_mediasrv(config=MediaConfig()):
    """Build the mini-mediaserver module (libc linked in)."""
    mb = ModuleBuilder("mediasrv")
    mb.extend(build_libc())

    mb.struct("frame_handler_t", ["on_frame", "arg0", "arg1", "arg2"])

    mb.global_string("g_media_path", MEDIA_FILE)
    #: the overflow-adjacent layout: parse buffer, then the handler struct
    mb.global_var("g_parse_buf", size=64)
    mb.global_var("g_handler", size=4, struct="frame_handler_t")
    mb.global_var("g_frame_pool", init=0)
    mb.global_var("g_statbuf", size=8)
    mb.global_var("g_frames_done", init=0)

    # the legitimate frame callback (address-taken)
    f = mb.function("ms_decode_frame", params=["arg0", "arg1", "arg2"], sig="fn3")
    f.burn(config.frame_burn)
    count_p = f.addr_global("g_frames_done")
    count = f.load(count_p)
    count2 = f.add(count, 1)
    f.store(count_p, count2)
    f.ret(0)

    # parse one frame record into the buffer; benign frames fit, but the
    # record length is attacker-controlled in the real CVEs — the hook is
    # where the oversized record lands and runs off the end of the buffer
    f = mb.function("ms_parse_frame", params=["fd", "seq"])
    buf = f.addr_global("g_parse_buf")
    n = f.call("read", [f.p("fd"), buf, 48])
    f.hook("ms_parse_frame")  # heap-overflow trigger point
    f.ret(n)

    # dispatch through the (possibly clobbered) handler struct
    f = mb.function("ms_on_frame", params=[])
    handler = f.addr_global("g_handler")
    fn_p = f.gep(handler, "frame_handler_t", "on_frame")
    fn = f.load(fn_p)
    a0_p = f.gep(handler, "frame_handler_t", "arg0")
    a0 = f.load(a0_p)
    a1_p = f.gep(handler, "frame_handler_t", "arg1")
    a1 = f.load(a1_p)
    a2_p = f.gep(handler, "frame_handler_t", "arg2")
    a2 = f.load(a2_p)
    rc = f.icall(fn, [a0, a1, a2], sig="fn3")
    f.ret(rc)

    f = mb.function("main", params=[])
    # privilege drop (the only legitimate setuid/setgid, direct calls)
    f.call("setuid", [99], void=True)
    f.call("setgid", [99], void=True)
    # frame pool
    pool = f.call("mmap", [0, 1 << 20, 3, 0x22, -1, 0])
    pool_p = f.addr_global("g_frame_pool")
    f.store(pool_p, pool)
    # streaming socket (bound, never connected anywhere)
    f.call("socket", [2, 2, 0], void=True)
    # register the frame handler
    handler = f.addr_global("g_handler")
    fn_p = f.gep(handler, "frame_handler_t", "on_frame")
    cb = f.funcaddr("ms_decode_frame")
    f.store(fn_p, cb)

    path = f.addr_global("g_media_path")
    fd = f.call("open", [path, 0, 0])

    def per_frame(i):
        f.call("ms_parse_frame", [fd, i], void=True)
        f.call("ms_on_frame", [], void=True)

    f.loop_range(f.const(config.frames), per_frame)
    f.call("close", [fd], void=True)
    f.ret(0)
    return mb.build()
