"""mini-SQLite: pager + journal over VFS-style indirect dispatch.

Mirrors the pieces of SQLite that matter to the paper's experiments:

- an ``sqlite3_vfs``-style method table (``xOpen``/``xRead``/``xWrite``/
  ``xSync``) — every page operation goes through an *indirect call*, which is
  why LLVM CFI's per-icall checks cost more here than BASTION does (§9.2);
- a pager with a rollback journal: each new-order transaction writes the
  journal, reads pages via ``pread64``, commits via ``pwrite64`` + ``fsync``
  — the Table 7 filesystem-syscall profile;
- page-cache setup via ``mmap`` and guard-page management via ``mprotect``,
  both at initialization and periodically at runtime ("SQLite relies more on
  mprotect compared to NGINX or vsftpd", §9.2 / Table 4);
- worker-thread spawn via ``clone``;
- a DBT2-style terminal server: the workload connects terminals over a
  socket and paces NEWORDER requests (NOTPM is derived from the cycle count).
"""

from dataclasses import dataclass

from repro.apps.libc import build_libc
from repro.ir.builder import ModuleBuilder

SQLITE_PORT = 5432
DB_PATH = "/data/test.db"
JOURNAL_PATH = "/data/test.db-journal"
PAGE_SIZE = 512


@dataclass(frozen=True)
class SqliteConfig:
    """Build-time constants for the IR program."""

    threads: int = 16  # clone count = threads * 3 (thread + bookkeeping)
    init_mmaps: int = 42
    init_mprotects: int = 60
    runtime_mprotect_every: int = 64  # cache-pressure mprotect cadence (txns)
    items_per_order: int = 10  # DBT2 new-order line items
    btree_seed_keys: int = 64  # index entries planted at startup
    btree_key_mask: int = 0x3FF  # key space (collisions keep depth realistic)
    txn_burn: int = 60_000
    init_burn: int = 30_000


def build_sqlite(config=SqliteConfig()):
    """Build the mini-SQLite module (libc linked in)."""
    mb = ModuleBuilder("sqlite")
    mb.extend(build_libc())

    mb.struct("sqlite3_vfs", ["xOpen", "xRead", "xWrite", "xSync"])
    mb.struct("sqlite3_pager", ["db_fd", "journal_fd", "page_count"])
    mb.struct("btree_node", ["key", "left", "right"])

    mb.global_string("g_db_path", DB_PATH)
    mb.global_string("g_journal_path", JOURNAL_PATH)
    mb.global_string("g_result", "NEWORDER OK 00000000000000000000000000000000")
    mb.global_var("g_vfs", size=4, struct="sqlite3_vfs")
    mb.global_var("g_pager", size=3, struct="sqlite3_pager")
    mb.global_var("g_cache", size=max(config.init_mmaps, 1))
    mb.global_var("g_page_buf", size=520)  # holds one 512-byte page
    mb.global_var("g_journal_buf", size=40)
    mb.global_var("g_req_buf", size=40)
    mb.global_var("g_sockaddr", size=4)
    mb.global_var("g_client_sa", size=4)
    mb.global_var("g_salen", init=3)
    mb.global_var("g_listen_fd", init=-1)
    mb.global_var("g_txn_count", init=0)
    mb.global_var("g_lcg_state", init=88172645463325252)
    mb.global_var("g_btree_root", init=0)

    _build_vfs(mb)
    _build_btree(mb, config)
    _build_pager(mb, config)
    _build_new_order(mb, config)
    _build_server(mb, config)
    _build_main(mb, config)
    return mb.build()


# ---------------------------------------------------------------------------
# the VFS method table (indirect-call surface)
# ---------------------------------------------------------------------------


def _build_vfs(mb):
    f = mb.function("sqlite_x_open", params=["path", "flags", "mode", "unused"], sig="os4")
    fd = f.call("open", [f.p("path"), f.p("flags"), f.p("mode")])
    f.ret(fd)

    f = mb.function("sqlite_x_read", params=["fd", "buf", "n", "off"], sig="os4")
    rc = f.call("pread64", [f.p("fd"), f.p("buf"), f.p("n"), f.p("off")])
    f.ret(rc)

    f = mb.function("sqlite_x_write", params=["fd", "buf", "n", "off"], sig="os4")
    rc = f.call("pwrite64", [f.p("fd"), f.p("buf"), f.p("n"), f.p("off")])
    f.ret(rc)

    f = mb.function("sqlite_x_sync", params=["fd", "unused1", "unused2", "unused3"], sig="os4")
    rc = f.call("fsync", [f.p("fd")])
    f.ret(rc)

    f = mb.function("sqlite_install_vfs", params=[])
    vfs = f.addr_global("g_vfs")
    for i, impl in enumerate(
        ("sqlite_x_open", "sqlite_x_read", "sqlite_x_write", "sqlite_x_sync")
    ):
        slot = f.add(vfs, i * 8)
        addr = f.funcaddr(impl)
        f.store(slot, addr)
    f.ret(0)

    # sqlite3OsX(...): dispatch through the method table (1 icall each)
    for name, field_offset in (
        ("sqlite_os_read", 1),
        ("sqlite_os_write", 2),
        ("sqlite_os_sync", 3),
    ):
        f = mb.function(name, params=["fd", "buf", "n", "off"])
        vfs = f.addr_global("g_vfs")
        slot = f.add(vfs, field_offset * 8)
        method = f.load(slot)
        rc = f.icall(method, [f.p("fd"), f.p("buf"), f.p("n"), f.p("off")], sig="os4")
        f.ret(rc)


# ---------------------------------------------------------------------------
# btree with an indirect comparator
# ---------------------------------------------------------------------------


def _build_btree(mb, config):
    f = mb.function("sqlite_key_cmp", params=["a", "b"], sig="cmp2")
    f.burn(25)
    d = f.sub(f.p("a"), f.p("b"))
    f.ret(d)

    # node allocation: {key, left, right}
    f = mb.function("sqlite_btree_new_node", params=["key"])
    node = f.call("malloc", [3])
    key_p = f.gep(node, "btree_node", "key")
    f.store(key_p, f.p("key"))
    left_p = f.gep(node, "btree_node", "left")
    f.store(left_p, 0)
    right_p = f.gep(node, "btree_node", "right")
    f.store(right_p, 0)
    f.ret(node)

    # insert(key): standard unbalanced BST insert; every comparison goes
    # through the collation function pointer, as in real SQLite
    f = mb.function("sqlite_btree_insert", params=["key"])
    cmp_fn = f.funcaddr("sqlite_key_cmp")
    root_p = f.addr_global("g_btree_root")
    root = f.load(root_p)
    empty = f.eq(root, 0)

    def plant_root():
        node = f.call("sqlite_btree_new_node", [f.p("key")])
        f.store(root_p, node)
        f.ret(node)

    f.if_then(empty, plant_root)
    f.move(root, dst="cur")
    f.label("walk")
    cur_key_p = f.gep(f.var("cur"), "btree_node", "key")
    cur_key = f.load(cur_key_p)
    d = f.icall(cmp_fn, [f.p("key"), cur_key], sig="cmp2")
    f.branch(f.eq(d, 0), "found", "descend")
    f.label("descend")
    f.branch(f.lt(d, 0), "go_left", "go_right")
    f.label("go_left")
    left_p2 = f.gep(f.var("cur"), "btree_node", "left")
    f.move(left_p2, dst="slot")
    f.jump("step")
    f.label("go_right")
    right_p2 = f.gep(f.var("cur"), "btree_node", "right")
    f.move(right_p2, dst="slot")
    f.label("step")
    nxt = f.load(f.var("slot"))
    f.branch(f.eq(nxt, 0), "attach", "advance")
    f.label("advance")
    f.move(nxt, dst="cur")
    f.jump("walk")
    f.label("attach")
    node = f.call("sqlite_btree_new_node", [f.p("key")])
    f.store(f.var("slot"), node)
    f.ret(node)
    f.label("found")
    f.ret(f.var("cur"))

    # search(key) -> node | 0
    f = mb.function("sqlite_btree_search", params=["key"])
    cmp_fn = f.funcaddr("sqlite_key_cmp")
    root_p = f.addr_global("g_btree_root")
    root = f.load(root_p)
    f.move(root, dst="cur")
    f.label("walk")
    f.branch(f.eq(f.var("cur"), 0), "missing", "compare")
    f.label("compare")
    key_p2 = f.gep(f.var("cur"), "btree_node", "key")
    cur_key = f.load(key_p2)
    d = f.icall(cmp_fn, [f.p("key"), cur_key], sig="cmp2")
    f.branch(f.eq(d, 0), "hit", "descend")
    f.label("descend")
    f.branch(f.lt(d, 0), "go_left", "go_right")
    f.label("go_left")
    lp = f.gep(f.var("cur"), "btree_node", "left")
    f.move(f.load(lp), dst="cur")
    f.jump("walk")
    f.label("go_right")
    rp = f.gep(f.var("cur"), "btree_node", "right")
    f.move(f.load(rp), dst="cur")
    f.jump("walk")
    f.label("hit")
    f.ret(f.var("cur"))
    f.label("missing")
    zero = f.const(0)
    f.ret(zero)

    # seed the index at startup
    f = mb.function("sqlite_btree_seed", params=[])

    def plant(i):
        key = f.call("sqlite_lcg_next", [])
        masked = f.binop("&", key, config.btree_key_mask)
        f.call("sqlite_btree_insert", [masked], void=True)

    f.loop_range(f.const(config.btree_seed_keys), plant)
    f.ret(0)


# ---------------------------------------------------------------------------
# pager
# ---------------------------------------------------------------------------


def _build_pager(mb, config):
    f = mb.function("sqlite_open_database", params=[])
    pager = f.addr_global("g_pager")
    path = f.addr_global("g_db_path")
    db_fd = f.call("open", [path, 0o102, 0o644])  # O_CREAT | O_RDWR
    db_p = f.gep(pager, "sqlite3_pager", "db_fd")
    f.store(db_p, db_fd)
    jpath = f.addr_global("g_journal_path")
    j_fd = f.call("open", [jpath, 0o102, 0o644])
    j_p = f.gep(pager, "sqlite3_pager", "journal_fd")
    f.store(j_p, j_fd)
    f.ret(0)

    f = mb.function("sqlite_init_cache", params=[])
    cache = f.addr_global("g_cache")

    def alloc(i):
        p = f.call("mmap", [0, 65536, 3, 0x22, -1, 0])
        slot = f.index(cache, i)
        f.store(slot, p)

    f.loop_range(f.const(config.init_mmaps), alloc)

    def guard(i):
        wrapped = f.binop("%", i, config.init_mmaps)
        slot = f.index(cache, wrapped)
        p = f.load(slot)
        f.call("mprotect", [p, 4096, 1], void=True)

    f.loop_range(f.const(config.init_mprotects), guard)
    f.burn(config.init_burn)
    f.ret(0)

    f = mb.function("sqlite_worker_main", params=["arg"])
    f.burn(500)
    f.ret(0)

    f = mb.function("sqlite_spawn_threads", params=[])

    def spawn(i):
        fn = f.funcaddr("sqlite_worker_main")
        f.call("clone", [0, 0, fn, 0, 0], void=True)

    f.loop_range(f.const(config.threads * 3), spawn)
    f.ret(0)

    # periodic cache pressure: mprotect a cache page (runtime mprotect usage)
    f = mb.function("sqlite_cache_pressure", params=["txn"])
    cache = f.addr_global("g_cache")
    slot_i = f.binop("%", f.p("txn"), config.init_mmaps)
    slot = f.index(cache, slot_i)
    p = f.load(slot)
    f.call("mprotect", [p, 4096, 3], void=True)
    f.ret(0)


# ---------------------------------------------------------------------------
# DBT2 new-order transaction
# ---------------------------------------------------------------------------


def _build_new_order(mb, config):
    f = mb.function("sqlite_lcg_next", params=[])
    state_p = f.addr_global("g_lcg_state")
    s = f.load(state_p)
    s2 = f.mul(s, 6364136223846793005)
    s3 = f.add(s2, 1442695040888963407)
    f.store(state_p, s3)
    h = f.binop(">>", s3, 33)
    f.ret(h)

    f = mb.function("sqlite_new_order", params=["warehouse"])
    pager = f.addr_global("g_pager")
    db_p = f.gep(pager, "sqlite3_pager", "db_fd")
    db_fd = f.load(db_p)
    j_p = f.gep(pager, "sqlite3_pager", "journal_fd")
    j_fd = f.load(j_p)
    jbuf = f.addr_global("g_journal_buf")
    pbuf = f.addr_global("g_page_buf")

    # BEGIN: journal header
    f.call("sqlite_os_write", [j_fd, jbuf, 64, 0], void=True)

    def line_item(i):
        key = f.call("sqlite_lcg_next", [])
        masked = f.binop("&", key, 0x3FF)
        node = f.call("sqlite_btree_search", [masked])
        miss = f.eq(node, 0)
        f.if_then(miss, lambda: f.call("sqlite_btree_insert", [masked], void=True))
        pageno = f.binop("&", masked, 0xFF)
        off = f.mul(pageno, PAGE_SIZE)
        f.call("sqlite_os_read", [db_fd, pbuf, PAGE_SIZE, off], void=True)
        f.burn(500)

    f.loop_range(f.const(config.items_per_order), line_item)

    # COMMIT: write back two pages, sync, truncate journal
    f.call("sqlite_os_write", [db_fd, pbuf, PAGE_SIZE, 0], void=True)
    f.call("sqlite_os_write", [db_fd, pbuf, PAGE_SIZE, PAGE_SIZE], void=True)
    f.call("sqlite_os_sync", [db_fd, 0, 0, 0], void=True)

    count_p = f.addr_global("g_txn_count")
    count = f.load(count_p)
    count2 = f.add(count, 1)
    f.store(count_p, count2)
    pressure = f.binop("%", count2, config.runtime_mprotect_every)
    hit = f.eq(pressure, 0)
    f.if_then(hit, lambda: f.call("sqlite_cache_pressure", [count2], void=True))

    f.burn(config.txn_burn)
    f.ret(count2)


# ---------------------------------------------------------------------------
# the terminal server loop (DBT2 drives this over a socket)
# ---------------------------------------------------------------------------


def _build_server(mb, config):
    f = mb.function("sqlite_handle_terminal", params=["conn"])
    buf = f.addr_global("g_req_buf")
    f.label("next_txn")
    n = f.call("read", [f.p("conn"), buf, 128])
    done = f.binop("<=", n, 0)
    f.branch(done, "finish", "run")
    f.label("run")
    f.hook("sqlite_txn")
    f.call("sqlite_new_order", [1], void=True)
    result = f.addr_global("g_result")
    f.call("write", [f.p("conn"), result, 44], void=True)
    f.jump("next_txn")
    f.label("finish")
    f.call("close", [f.p("conn")], void=True)
    f.ret(0)

    f = mb.function("sqlite_server_loop", params=[])
    sfd = f.call("socket", [2, 1, 0])
    sa = f.addr_global("g_sockaddr")
    f.store(sa, 2)
    sa_port = f.add(sa, 8)
    f.store(sa_port, SQLITE_PORT)
    f.call("bind", [sfd, sa, 16])
    f.call("listen", [sfd, 64])
    lfd_p = f.addr_global("g_listen_fd")
    f.store(lfd_p, sfd)
    f.label("accept_loop")
    csa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    conn = f.call("accept", [sfd, csa, salen])
    bad = f.lt(conn, 0)
    f.branch(bad, "shutdown", "serve")
    f.label("serve")
    f.call("sqlite_handle_terminal", [conn], void=True)
    f.jump("accept_loop")
    f.label("shutdown")
    f.ret(0)


def _build_main(mb, config):
    f = mb.function("main", params=[])
    f.call("sqlite_open_database", [], void=True)
    f.call("sqlite_install_vfs", [], void=True)
    f.call("sqlite_btree_seed", [], void=True)
    f.call("sqlite_init_cache", [], void=True)
    f.call("sqlite_spawn_threads", [], void=True)
    f.call("sqlite_server_loop", [], void=True)
    f.ret(0)
