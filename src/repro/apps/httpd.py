"""mini-Apache (httpd): the AOCR and NEWTON CsCFI attack target.

Deliberate properties, mirroring what those attacks exploit in real Apache:

- ``exec_cmd`` is **legitimately called through a function pointer** (module
  cleanup hooks), so ``execve`` has a sanctioned indirect path — the reason
  the AOCR Apache attack bypasses the call-type context (Table 6: CT ×);
- ``ap_get_exec_line`` reaches ``exec_cmd`` but is itself **never
  address-taken** — hijacking a function pointer onto it is exactly what
  the control-flow context catches (Table 6: CF ✓);
- the program **never uses mprotect** (no pools, plain buffers), so the
  NEWTON CsCFI attack's target syscall is *not-callable* here and the
  call-type context (via the seccomp filter) kills it outright.
"""

from dataclasses import dataclass

from repro.apps.libc import build_libc
from repro.ir.builder import ModuleBuilder

HTTPD_PORT = 8080
HTDOCS = "/var/apache/htdocs/index.html"
CGI_LINE = "/usr/lib/cgi-bin/rotatelogs"
PAGE_BYTES = 512


@dataclass(frozen=True)
class HttpdConfig:
    """Build-time constants for the IR program."""

    request_burn: int = 8_000
    handlers: int = 2


def build_httpd(config=HttpdConfig()):
    """Build the mini-Apache module (libc linked in)."""
    mb = ModuleBuilder("httpd")
    mb.extend(build_libc())

    mb.struct("cmd_ctx_t", ["line", "args"])

    mb.global_string("g_doc_path", HTDOCS)
    mb.global_string("g_cgi_line", CGI_LINE)
    mb.global_string("g_hdr_200", "HTTP/1.1 200 OK\r\n\r\n")
    mb.global_var("g_cmd_ctx", size=2, struct="cmd_ctx_t")
    mb.global_var("g_exec_hook", size=1)  # cleanup hook: -> exec_cmd
    mb.global_var("g_handlers", size=4)  # module handler table
    mb.global_var("g_req_buf", size=600)
    mb.global_var("g_statbuf", size=8)
    mb.global_var("g_sockaddr", size=4)
    mb.global_var("g_client_sa", size=4)
    mb.global_var("g_salen", init=3)
    mb.global_var("g_listen_fd", init=-1)
    mb.global_var("g_shutdown_requested", init=0)

    # exec_cmd(path): the exec primitive, invoked directly AND via the hook
    f = mb.function("exec_cmd", params=["path"], sig="fn1")
    rc = f.call("execve", [f.p("path"), 0, 0])
    f.ret(rc)

    # ap_get_exec_line: loads the configured CGI line and execs it.
    # NEVER address-taken — the AOCR Apache attack hijacks a pointer here.
    # (Its C type matches the handler signature, so coarse CFI lets the
    # hijack through — §10.3.)
    f = mb.function("ap_get_exec_line", params=["r"], sig="fn3")
    line_p = f.gep(f.addr_global("g_cmd_ctx"), "cmd_ctx_t", "line")
    line = f.load(line_p)
    rc = f.call("exec_cmd", [line])
    f.ret(rc)

    # the legitimate module handler (address-taken, lives in g_handlers)
    f = mb.function("ap_static_handler", params=["r", "buf", "n"], sig="fn3")
    f.burn(200)
    path = f.addr_global("g_doc_path")
    fd = f.call("open", [path, 0, 0])
    st = f.addr_global("g_statbuf")
    f.call("fstat", [fd, st], void=True)
    size_p = f.add(st, 8)
    size = f.load(size_p)
    hdr = f.addr_global("g_hdr_200")
    f.call("write", [f.p("r"), hdr, 19], void=True)
    f.call("sendfile", [f.p("r"), fd, 0, size], void=True)
    f.call("close", [fd], void=True)
    f.ret(0)

    # ap_run_handler: dispatch through the module table — the
    # corruptible indirect callsite the attacks lean on
    f = mb.function("ap_run_handler", params=["r", "idx", "n"])
    f.hook("ap_run_handler")
    table = f.addr_global("g_handlers")
    slot = f.index(table, f.p("idx"))
    handler = f.load(slot)
    buf = f.addr_global("g_req_buf")
    rc = f.icall(handler, [f.p("r"), buf, f.p("n")], sig="fn3")
    f.ret(rc)

    # ap_cleanup_run: the LEGITIMATE indirect path to exec (log rotation)
    f = mb.function("ap_cleanup_run", params=[])
    flag_p = f.addr_global("g_shutdown_requested")
    flag = f.load(flag_p)

    def rotate():
        hook_p = f.addr_global("g_exec_hook")
        hook = f.load(hook_p)
        line_p = f.gep(f.addr_global("g_cmd_ctx"), "cmd_ctx_t", "line")
        line = f.load(line_p)
        f.icall(hook, [line], sig="fn1", void=True)

    f.if_then(flag, rotate)
    f.ret(0)

    f = mb.function("ap_mpm_run", params=[])
    f.label("accept_loop")
    lfd_p = f.addr_global("g_listen_fd")
    lfd = f.load(lfd_p)
    sa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    conn = f.call("accept", [lfd, sa, salen])
    bad = f.lt(conn, 0)
    f.branch(bad, "shutdown", "serve")
    f.label("serve")
    buf = f.addr_global("g_req_buf")
    f.label("next_request")
    n = f.call("read", [conn, buf, 2048])
    done = f.binop("<=", n, 0)
    f.branch(done, "conn_done", "handle")
    f.label("handle")
    f.burn(config.request_burn)
    f.call("ap_run_handler", [conn, 0, n], void=True)
    f.jump("next_request")
    f.label("conn_done")
    f.call("close", [conn], void=True)
    f.jump("accept_loop")
    f.label("shutdown")
    f.call("ap_cleanup_run", [], void=True)
    f.ret(0)

    f = mb.function("main", params=[])
    # module registration: handler table + cleanup exec hook
    table = f.addr_global("g_handlers")
    h = f.funcaddr("ap_static_handler")
    f.store(table, h)
    hook_p = f.addr_global("g_exec_hook")
    e = f.funcaddr("exec_cmd")
    f.store(hook_p, e)
    ctx = f.addr_global("g_cmd_ctx")
    line_p = f.gep(ctx, "cmd_ctx_t", "line")
    cgi = f.addr_global("g_cgi_line")
    f.store(line_p, cgi)

    sfd = f.call("socket", [2, 1, 0])
    sa = f.addr_global("g_sockaddr")
    f.store(sa, 2)
    sa_port = f.add(sa, 8)
    f.store(sa_port, HTTPD_PORT)
    f.call("bind", [sfd, sa, 16])
    f.call("listen", [sfd, 128])
    lfd_p = f.addr_global("g_listen_fd")
    f.store(lfd_p, sfd)
    f.call("ap_mpm_run", [], void=True)
    f.ret(0)
    return mb.build()
