"""mini-NGINX: an IR web server mirroring the paper's running examples.

Structure follows real NGINX closely enough that every experiment has its
anchor:

- ``ngx_execute_proc`` — Listing 1: the legitimate (binary-upgrade) use of
  ``execve`` with arguments loaded from an ``ngx_exec_ctx_t``;
- ``ngx_output_chain`` — Listing 1's argument-corruptible indirect callsite
  ``ctx->output_filter(ctx->filter_ctx, in)``;
- ``ngx_http_get_indexed_variable`` — Listing 2: the
  ``v[index].get_handler(r, &r->variables[index], v[index].data)`` indexed
  dispatch the NEWTON-style attack bends out of bounds;
- master/worker initialization (pools via ``mmap``, guards via ``mprotect``,
  ``clone`` + ``setuid``/``setgid`` per worker) producing the Table 4 usage
  profile, then a keep-alive ``accept4`` serving loop.

Heavy C work that the IR does not model instruction-by-instruction (header
parsing, filter chains, logging formatters) is charged through ``burn``
cycle costs so the performance shape stays realistic.
"""

from dataclasses import dataclass

from repro.apps.libc import EVENT_WRAPPERS, LIBC_WRAPPERS, build_libc
from repro.ir.builder import ModuleBuilder
from repro.kernel import errno
from repro.kernel.kernel import F_SETFL
from repro.kernel.net import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLLIN,
    SOCK_NONBLOCK,
)
from repro.kernel.vfs import O_APPEND, O_CREAT, O_NONBLOCK

#: HTTP port the server listens on.
NGINX_PORT = 80

#: VFS paths the harness provisions before launch.
CONF_PATH = "/etc/nginx/nginx.conf"
DOC_ROOT = "/var/www/html/index.html"
LOG_PATH = "/var/log/nginx/access.log"
UPGRADE_BINARY = "/usr/sbin/nginx-new"

#: size of the static page served (the paper's 6,745-byte webpage)
PAGE_BYTES = 6745


@dataclass(frozen=True)
class NginxConfig:
    """Build-time constants for the IR program.

    ``workers``/``pools``/``guards`` shape the Table 4 init profile;
    ``request_burn`` models the per-request C work not expressed in IR.

    ``master_serves`` selects the process model: True (default, the seed's
    paper-faithful single-process shape) has the master run the accept
    loop itself; False is the real master+workers deployment — the master
    only spawns workers and reaps them with ``wait4`` while the clone()d
    workers serve, which requires a :class:`repro.sched.Scheduler` to
    interleave them.

    ``event_loop`` selects the worker's serving model: False (default)
    is the historical one-blocking-task-per-connection loop; True builds
    the C10k worker instead — a nonblocking listener plus an epoll set,
    one task multiplexing every in-flight keep-alive connection
    (``max_events`` bounds one ``epoll_wait`` harvest).  The extra
    epoll wrappers and globals are only linked in event mode, so
    blocking-mode images are byte-identical to pre-event builds.
    """

    workers: int = 4
    pools: int = 16
    guards: int = 10
    http_vars: int = 4  # entries actually initialized in the v[] array
    var_slots: int = 8  # allocated entries (OOB space for Listing 2 attack)
    request_burn: int = 60_000
    init_burn: int = 20_000
    master_serves: bool = True
    event_loop: bool = False
    max_events: int = 64


def build_nginx(config=NginxConfig()):
    """Build the mini-NGINX module (libc linked in)."""
    mb = ModuleBuilder("nginx")
    if config.event_loop:
        mb.extend(build_libc(wrappers=dict(LIBC_WRAPPERS, **EVENT_WRAPPERS)))
    else:
        mb.extend(build_libc())

    # -- types ----------------------------------------------------------
    mb.struct("ngx_exec_ctx_t", ["path", "argv", "envp"])
    mb.struct("ngx_http_variable_t", ["get_handler", "data", "flags"])
    mb.struct("ngx_output_chain_ctx_t", ["output_filter", "filter_ctx"])
    mb.struct(
        "ngx_request_t", ["fd", "uri", "status", "var_value", "var_index"]
    )

    # -- globals -----------------------------------------------------------
    mb.global_string("g_conf_path", CONF_PATH)
    mb.global_string("g_doc_root", DOC_ROOT)
    mb.global_string("g_log_path", LOG_PATH)
    mb.global_string("g_upgrade_path", UPGRADE_BINARY)
    mb.global_string("g_get_prefix", "GET ")
    mb.global_string("g_hdr_200", "HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n")
    mb.global_string("g_hdr_404", "HTTP/1.1 404 Not Found\r\n\r\n")
    mb.global_string("g_logline", "127.0.0.1 GET / 200\n")
    mb.global_string("g_uri_root", "/")
    mb.global_string("g_uri_index", "/index.html")
    mb.global_var("g_uri_buf", size=64)
    mb.global_var("g_exec_ctx", size=3, struct="ngx_exec_ctx_t")
    mb.global_var("g_exec_argv", size=2)
    mb.global_var("g_upgrade_flag", init=0)
    mb.global_var("g_http_vars", size=config.var_slots * 3)
    mb.global_var("g_output_ctx", size=2, struct="ngx_output_chain_ctx_t")
    mb.global_var("g_request", size=5, struct="ngx_request_t")
    mb.global_var("g_listen_fd", init=-1)
    mb.global_var("g_log_fd", init=-1)
    mb.global_var("g_pools", size=max(config.pools, 1))
    mb.global_var("g_sockaddr", size=4)
    mb.global_var("g_client_sa", size=4)
    mb.global_var("g_salen", init=3)
    mb.global_var("g_statbuf", size=8)
    mb.global_var("g_req_buf", size=600)
    mb.global_var("g_var_depth", init=0)
    if config.event_loop:
        # one epoll_event for epoll_ctl plus the epoll_wait harvest array
        # (two slots per event: mask, data)
        mb.global_var("g_ep_event", size=2)
        mb.global_var("g_ep_events", size=2 * config.max_events)

    _build_handlers(mb)
    _build_listing1(mb, config)
    _build_listing2(mb, config)
    _build_init(mb, config)
    _build_serving(mb, config)
    if config.event_loop:
        _build_event_serving(mb, config)
    _build_main(mb, config)
    return mb.build()


# ---------------------------------------------------------------------------
# indexed-variable handlers (targets stored in the v[] array)
# ---------------------------------------------------------------------------


def _build_handlers(mb):
    for name in ("host", "uri", "status", "args"):
        f = mb.function("ngx_http_var_%s" % name, params=["r", "v", "data"], sig="fn3")
        f.burn(60)
        f.store(f.p("v"), f.p("data"))
        one = f.const(1)
        f.ret(one)


# ---------------------------------------------------------------------------
# Listing 1: ngx_execute_proc + ngx_output_chain
# ---------------------------------------------------------------------------


def _build_listing1(mb, config):
    # static void ngx_execute_proc(ngx_cycle_t *cycle, void *data)
    f = mb.function("ngx_execute_proc", params=["cycle", "data"])
    path_p = f.gep(f.p("data"), "ngx_exec_ctx_t", "path")
    path = f.load(path_p)
    argv_p = f.gep(f.p("data"), "ngx_exec_ctx_t", "argv")
    argv = f.load(argv_p)
    envp_p = f.gep(f.p("data"), "ngx_exec_ctx_t", "envp")
    envp = f.load(envp_p)
    rc = f.call("execve", [path, argv, envp])
    failed = f.eq(rc, -1)
    f.if_then(failed, lambda: f.call("ngx_log_error", [f.const(1)], void=True))
    f.call("exit", [1], void=True)
    f.ret(0)

    # ngx_spawn_process: real NGINX invokes process bodies through a
    # function-pointer argument — ngx_execute_proc is address-taken, which
    # is exactly what lets Control Jujutsu's full-function reuse pass
    # coarse CFI (and BASTION's CF context) legitimately.
    f = mb.function("ngx_spawn_process", params=["proc_fn", "data"])
    rc = f.icall(f.p("proc_fn"), [0, f.p("data")], sig="fn2")
    f.ret(rc)

    # binary-upgrade path: the only legitimate route to execve
    f = mb.function("ngx_upgrade_binary", params=["cycle"])
    ctx = f.addr_global("g_exec_ctx")
    h = f.funcaddr("ngx_execute_proc")
    f.call("ngx_spawn_process", [h, ctx], void=True)
    f.ret(0)

    # ngx_int_t ngx_output_chain(ctx, in) — the corruptible indirect callsite
    f = mb.function("ngx_output_chain", params=["ctx", "in_"])
    flt_p = f.gep(f.p("ctx"), "ngx_output_chain_ctx_t", "output_filter")
    flt = f.load(flt_p, dst="flt")
    fctx_p = f.gep(f.p("ctx"), "ngx_output_chain_ctx_t", "filter_ctx")
    fctx = f.load(fctx_p, dst="fctx")
    f.hook("ngx_output_chain_icall")
    rc = f.icall(flt, [fctx, f.p("in_")], sig="fn2")
    f.ret(rc)

    # the legitimate filter installed in g_output_ctx
    f = mb.function("ngx_chain_writer", params=["ctx", "in_"], sig="fn2")
    f.burn(120)
    f.ret(0)

    f = mb.function("ngx_log_error", params=["code"])
    msg = f.addr_global("g_hdr_404")
    f.call("write", [2, msg, 16], void=True)
    f.ret(0)


# ---------------------------------------------------------------------------
# Listing 2: ngx_http_get_indexed_variable
# ---------------------------------------------------------------------------


def _build_listing2(mb, config):
    f = mb.function("ngx_http_get_indexed_variable", params=["r", "index"])
    f.hook("ngx_indexed_variable_entry")
    base = f.addr_global("g_http_vars")
    entry = f.index(base, f.p("index"), scale=3)
    handler = f.load(entry)  # v[index].get_handler
    data_p = f.add(entry, 8)  # v[index].data
    data = f.load(data_p)
    vaddr = f.gep(f.p("r"), "ngx_request_t", "var_value")
    rc = f.icall(handler, [f.p("r"), vaddr, data], sig="fn3")
    ok = f.eq(rc, 1)

    def cache():
        depth_p = f.addr_global("g_var_depth")
        depth = f.load(depth_p)
        depth2 = f.add(depth, 1)
        f.store(depth_p, depth2)

    f.if_then(ok, cache)
    f.ret(rc)


# ---------------------------------------------------------------------------
# initialization (Table 4's mmap/mprotect/clone/setuid profile)
# ---------------------------------------------------------------------------


def _build_init(mb, config):
    f = mb.function("ngx_parse_config", params=[])
    path = f.addr_global("g_conf_path")
    fd = f.call("open", [path, 0, 0])
    buf = f.addr_global("g_req_buf")
    f.call("read", [fd, buf, 256])
    f.call("close", [fd])
    f.burn(config.init_burn)
    f.ret(0)

    f = mb.function("ngx_create_pool", params=["size"])
    addr = f.call("mmap", [0, f.p("size"), 3, 0x22, -1, 0])
    f.ret(addr)

    f = mb.function("ngx_guard_pool", params=["addr"])
    rc = f.call("mprotect", [f.p("addr"), 4096, 1])
    f.ret(rc)

    f = mb.function("ngx_init_cycle", params=[])
    pools = f.addr_global("g_pools")

    def make_pool(i):
        p = f.call("ngx_create_pool", [16384])
        slot = f.index(pools, i)
        f.store(slot, p)

    f.loop_range(f.const(config.pools), make_pool)

    def guard(i):
        wrapped = f.binop("%", i, config.pools)
        slot = f.index(pools, wrapped)
        p = f.load(slot)
        f.call("ngx_guard_pool", [p], void=True)

    f.loop_range(f.const(config.guards), guard)

    # exec context for the upgrade path (Listing 1 data)
    ctx = f.addr_global("g_exec_ctx")
    path_p = f.gep(ctx, "ngx_exec_ctx_t", "path")
    upath = f.addr_global("g_upgrade_path")
    f.store(path_p, upath)
    argv = f.addr_global("g_exec_argv")
    f.store(argv, upath)
    argv1 = f.add(argv, 8)
    f.store(argv1, 0)
    argv_p = f.gep(ctx, "ngx_exec_ctx_t", "argv")
    f.store(argv_p, argv)
    envp_p = f.gep(ctx, "ngx_exec_ctx_t", "envp")
    f.store(envp_p, 0)

    # indexed-variable table (Listing 2 data)
    vars_base = f.addr_global("g_http_vars")
    for i, name in enumerate(("host", "uri", "status", "args")):
        if i >= config.http_vars:
            break
        h = f.funcaddr("ngx_http_var_%s" % name)
        slot = f.index(vars_base, f.const(i), scale=3)
        f.store(slot, h)
        data_slot = f.add(slot, 8)
        f.store(data_slot, 200 + i)

    # output chain context (Listing 1 icall target)
    octx = f.addr_global("g_output_ctx")
    writer = f.funcaddr("ngx_chain_writer")
    f.store(octx, writer)
    octx1 = f.add(octx, 8)
    f.store(octx1, 0)

    # listening socket
    sfd = f.call("socket", [2, 1, 0])
    sa = f.addr_global("g_sockaddr")
    f.store(sa, 2)  # AF_INET
    sa_port = f.add(sa, 8)
    f.store(sa_port, NGINX_PORT)
    f.call("bind", [sfd, sa, 16])
    f.call("listen", [sfd, 1024])
    lfd_p = f.addr_global("g_listen_fd")
    f.store(lfd_p, sfd)

    # persistent access log
    lpath = f.addr_global("g_log_path")
    lfd = f.call("open", [lpath, O_CREAT | O_APPEND, 0o644])
    logfd_p = f.addr_global("g_log_fd")
    f.store(logfd_p, lfd)

    f.call("ngx_spawn_workers", [], void=True)
    f.ret(0)

    f = mb.function("ngx_spawn_workers", params=[])
    worker_fn = (
        "ngx_event_worker_cycle" if config.event_loop else "ngx_worker_cycle"
    )

    def spawn(i):
        fn = f.funcaddr(worker_fn)
        f.call("clone", [0, 0, fn, 0, 0], void=True)
        f.call("setuid", [33], void=True)
        f.call("setgid", [33], void=True)
        s = f.call("socket", [2, 2, 0])
        sa = f.addr_global("g_sockaddr")
        f.call("connect", [s, sa, 16], void=True)

    f.loop_range(f.const(config.workers), spawn)
    f.ret(0)


# ---------------------------------------------------------------------------
# serving loop
# ---------------------------------------------------------------------------


def _build_serving(mb, config):
    # ngx_parse_request_line: real parsing — verify the method, extract the
    # URI between the spaces into g_uri_buf, map "/" and "/index.html" to
    # the document root, everything else to 0 (404).
    f = mb.function("ngx_parse_uri", params=["buf"])
    prefix = f.addr_global("g_get_prefix")
    is_get = f.call("starts_with", [f.p("buf"), prefix])
    f.branch(is_get, "copy_uri", "bad_request")

    f.label("copy_uri")
    ubuf = f.addr_global("g_uri_buf")
    f.const(4, dst="src_i")  # skip "GET "
    f.const(0, dst="dst_i")
    f.label("copy_loop")
    sp = f.index(f.p("buf"), f.var("src_i"))
    ch = f.load(sp)
    is_space = f.eq(ch, 0x20)
    f.branch(is_space, "copied", "check_end")
    f.label("check_end")
    is_nul = f.eq(ch, 0)
    f.branch(is_nul, "copied", "copy_char")
    f.label("copy_char")
    dp = f.index(ubuf, f.var("dst_i"))
    f.store(dp, ch)
    f.move(f.add(f.var("src_i"), 1), dst="src_i")
    f.move(f.add(f.var("dst_i"), 1), dst="dst_i")
    too_long = f.binop(">=", f.var("dst_i"), 60)
    f.branch(too_long, "copied", "copy_loop")
    f.label("copied")
    endp = f.index(ubuf, f.var("dst_i"))
    f.store(endp, 0)

    # route: "/" or "/index.html" -> the static page, else 404
    root = f.addr_global("g_uri_root")
    is_root = f.call("strcmp", [ubuf, root])
    f.branch(f.eq(is_root, 0), "serve_index", "check_index")
    f.label("check_index")
    index_uri = f.addr_global("g_uri_index")
    is_index = f.call("strcmp", [ubuf, index_uri])
    f.branch(f.eq(is_index, 0), "serve_index", "not_found")
    f.label("serve_index")
    doc = f.addr_global("g_doc_root")
    f.ret(doc)
    f.label("bad_request")
    f.label("not_found")
    zero = f.const(0)
    f.ret(zero)

    f = mb.function("ngx_hash_uri", params=["buf"])
    h = f.const(5381, dst="h")

    def mix(i):
        p = f.index(f.p("buf"), i)
        c = f.load(p)
        h33 = f.mul(f.var("h"), 33)
        hx = f.binop("^", h33, c)
        f.move(hx, dst="h")

    f.loop_range(f.const(8), mix)
    f.ret(f.var("h"))

    # serve one static file over fd
    f = mb.function("ngx_static_handler", params=["fd", "uri"])
    st = f.addr_global("g_statbuf")
    f.call("stat", [f.p("uri"), st])
    filefd = f.call("open", [f.p("uri"), 0, 0])
    bad = f.lt(filefd, 0)

    def not_found():
        h404 = f.addr_global("g_hdr_404")
        f.call("write", [f.p("fd"), h404, 26], void=True)

    def serve():
        f.call("fstat", [filefd, st], void=True)
        size_p = f.add(st, 8)
        size = f.load(size_p)
        f.call("lseek", [filefd, 0, 0], void=True)
        hdr = f.addr_global("g_hdr_200")
        f.call("write", [f.p("fd"), hdr, 33], void=True)
        f.call("sendfile", [f.p("fd"), filefd, 0, size], void=True)
        f.call("close", [filefd], void=True)
        octx = f.addr_global("g_output_ctx")
        f.call("ngx_output_chain", [octx, f.p("fd")], void=True)

    f.if_then(bad, not_found, serve)
    f.ret(0)

    f = mb.function("ngx_log_access", params=["fd"])
    logfd_p = f.addr_global("g_log_fd")
    logfd = f.load(logfd_p)
    line = f.addr_global("g_logline")
    f.call("write", [logfd, line, 20], void=True)
    f.ret(0)

    f = mb.function("ngx_handle_request", params=["fd", "buf", "n"])
    f.burn(config.request_burn)
    f.hook("ngx_request")
    uri = f.call("ngx_parse_uri", [f.p("buf")])
    unresolved = f.eq(uri, 0)

    def not_found():
        h404 = f.addr_global("g_hdr_404")
        f.call("write", [f.p("fd"), h404, 26], void=True)

    f.if_then(unresolved, not_found)
    h = f.call("ngx_hash_uri", [f.p("buf")])
    idx = f.binop("&", h, config.http_vars - 1)
    r = f.addr_global("g_request")
    fd_p = f.gep(r, "ngx_request_t", "fd")
    f.store(fd_p, f.p("fd"))
    idx_p = f.gep(r, "ngx_request_t", "var_index")
    f.store(idx_p, idx)
    f.call("ngx_http_get_indexed_variable", [r, idx], void=True)

    def serve_static():
        f.call("ngx_static_handler", [f.p("fd"), uri], void=True)

    f.if_then(f.ne(uri, 0), serve_static)
    f.call("ngx_log_access", [f.p("fd")], void=True)
    f.ret(0)

    f = mb.function("ngx_handle_connection", params=["fd"])
    f.label("next_request")
    buf = f.addr_global("g_req_buf")
    n = f.call("read", [f.p("fd"), buf, 4096])
    done = f.binop("<=", n, 0)
    f.branch(done, "finish", "handle")
    f.label("handle")
    f.call("ngx_handle_request", [f.p("fd"), buf, n], void=True)
    f.jump("next_request")
    f.label("finish")
    f.call("close", [f.p("fd")], void=True)
    f.ret(0)

    f = mb.function("ngx_worker_cycle", params=[])
    f.label("accept_loop")
    lfd_p = f.addr_global("g_listen_fd")
    lfd = f.load(lfd_p)
    sa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    conn = f.call("accept4", [lfd, sa, salen, 0])
    bad = f.lt(conn, 0)
    f.branch(bad, "shutdown", "serve")
    f.label("serve")
    f.call("ngx_handle_connection", [conn], void=True)
    f.jump("accept_loop")
    f.label("shutdown")
    f.ret(0)


# ---------------------------------------------------------------------------
# event-loop serving (the C10k worker: epoll + nonblocking sockets)
# ---------------------------------------------------------------------------


def _build_event_serving(mb, config):
    """One task multiplexing every connection, real-NGINX event-module shape.

    ``ngx_event_worker_cycle`` registers the nonblocking listener in an
    epoll set and loops on ``epoll_wait``: listener events trigger an
    accept *burst* (drain the backlog until EAGAIN, registering each new
    connection), connection events trigger a read loop that serves every
    pipelined request until the socket is drained (EAGAIN) or closed.
    The worker exits when ``epoll_wait`` reports nothing at all — only
    possible once the workload is exhausted and every connection has
    hung up.
    """
    # register one fd: g_ep_event = {mask, fd-as-data}; EPOLL_CTL_ADD
    f = mb.function("ngx_event_add", params=["epfd", "fd", "mask"])
    ev = f.addr_global("g_ep_event")
    f.store(ev, f.p("mask"))
    data_slot = f.add(ev, 8)
    f.store(data_slot, f.p("fd"))
    rc = f.call(
        "epoll_ctl", [f.p("epfd"), EPOLL_CTL_ADD, f.p("fd"), ev]
    )
    f.ret(rc)

    f = mb.function("ngx_event_close", params=["epfd", "fd"])
    f.call("epoll_ctl", [f.p("epfd"), EPOLL_CTL_DEL, f.p("fd"), 0], void=True)
    f.call("close", [f.p("fd")], void=True)
    f.ret(0)

    # accept burst: pull the whole backlog, nonblocking, register each conn
    f = mb.function("ngx_event_accept", params=["epfd", "lfd"])
    f.label("burst")
    sa = f.addr_global("g_client_sa")
    salen = f.addr_global("g_salen")
    c = f.call("accept4", [f.p("lfd"), sa, salen, SOCK_NONBLOCK])
    drained = f.lt(c, 0)
    f.branch(drained, "burst_done", "register")
    f.label("register")
    f.call("ngx_event_add", [f.p("epfd"), c, EPOLLIN], void=True)
    f.jump("burst")
    f.label("burst_done")
    f.ret(0)

    # connection I/O: serve pipelined requests until EAGAIN or hangup
    f = mb.function("ngx_event_io", params=["epfd", "fd"])
    f.label("read_more")
    buf = f.addr_global("g_req_buf")
    n = f.call("read", [f.p("fd"), buf, 4096])
    parked = f.eq(n, -errno.EAGAIN)
    f.branch(parked, "drained", "check_eof")
    f.label("check_eof")
    eof = f.binop("<=", n, 0)
    f.branch(eof, "hangup", "handle")
    f.label("handle")
    f.call("ngx_handle_request", [f.p("fd"), buf, n], void=True)
    f.jump("read_more")
    f.label("hangup")
    f.call("ngx_event_close", [f.p("epfd"), f.p("fd")], void=True)
    f.label("drained")
    f.ret(0)

    f = mb.function("ngx_event_worker_cycle", params=[])
    lfd_p = f.addr_global("g_listen_fd")
    lfd = f.load(lfd_p, dst="lfd")
    epfd = f.call("epoll_create1", [0], dst="epfd")
    f.call("fcntl", [lfd, F_SETFL, O_NONBLOCK], void=True)
    f.call("ngx_event_add", [epfd, lfd, EPOLLIN], void=True)
    f.label("wait_loop")
    evs = f.addr_global("g_ep_events")
    n = f.call("epoll_wait", [epfd, evs, config.max_events, -1], dst="nev")
    idle = f.binop("<=", n, 0)
    f.branch(idle, "ev_shutdown", "dispatch")
    f.label("dispatch")
    f.const(0, dst="ev_i")
    f.label("ev_loop")
    more = f.binop("<", f.var("ev_i"), n)
    f.branch(more, "ev_body", "wait_loop")
    f.label("ev_body")
    slot = f.index(evs, f.var("ev_i"), scale=2)
    data = f.load(f.add(slot, 8))
    f.move(f.add(f.var("ev_i"), 1), dst="ev_i")
    is_listener = f.eq(data, lfd)
    f.branch(is_listener, "do_accept", "do_io")
    f.label("do_accept")
    f.call("ngx_event_accept", [epfd, lfd], void=True)
    f.jump("ev_loop")
    f.label("do_io")
    f.call("ngx_event_io", [epfd, data], void=True)
    f.jump("ev_loop")
    f.label("ev_shutdown")
    f.call("ngx_event_close", [epfd, lfd], void=True)
    f.call("close", [epfd], void=True)
    f.ret(0)


def _build_main(mb, config):
    f = mb.function("ngx_master_cycle", params=[])
    f.hook("ngx_master_cycle")
    flag_p = f.addr_global("g_upgrade_flag")
    flag = f.load(flag_p)
    f.if_then(flag, lambda: f.call("ngx_upgrade_binary", [0], void=True))
    if config.master_serves:
        worker = (
            "ngx_event_worker_cycle"
            if config.event_loop
            else "ngx_worker_cycle"
        )
        f.call(worker, [], void=True)
    else:
        # master+workers mode: the clone()d workers (scheduled by
        # repro.sched) run the accept loop; the master sits in the real
        # NGINX master posture — blocked in wait4 reaping each worker.
        f.loop_range(
            f.const(config.workers),
            lambda i: f.call("wait4", [-1, 0, 0, 0], void=True),
        )
    f.ret(0)

    f = mb.function("main", params=[])
    f.call("ngx_parse_config", [], void=True)
    f.call("ngx_init_cycle", [], void=True)
    f.call("ngx_master_cycle", [], void=True)
    f.ret(0)
