"""Workload applications, written in the IR, plus their load generators.

- :mod:`repro.apps.libc` — the C-library layer: one wrapper function per
  syscall (the functions whose callsites BASTION classifies and protects),
  string/memory helpers, and a bump allocator;
- :mod:`repro.apps.nginx` — mini-NGINX: master/worker init, keep-alive HTTP
  serving, and the paper's two running examples (Listing 1's
  ``ngx_execute_proc``/``ngx_output_chain`` and Listing 2's
  ``ngx_http_get_indexed_variable``);
- :mod:`repro.apps.sqlite` — mini-SQLite: pager + journal over the VFS-style
  indirect dispatch table, driven by a DBT2-style new-order mix;
- :mod:`repro.apps.vsftpd` — mini-vsftpd: control/data-channel FTP with
  per-session privilege drop and PASV downloads;
- :mod:`repro.apps.workloads` — the wrk / DBT2 / dkftpbench stand-ins that
  inject connections and pace requests.
"""

from repro.apps.libc import build_libc, LIBC_WRAPPERS
from repro.apps.nginx import build_nginx, NginxConfig
from repro.apps.sqlite import build_sqlite, SqliteConfig
from repro.apps.vsftpd import build_vsftpd, VsftpdConfig
from repro.apps.workloads import (
    WrkWorkload,
    Dbt2Workload,
    DkftpbenchWorkload,
)

__all__ = [
    "build_libc",
    "LIBC_WRAPPERS",
    "build_nginx",
    "NginxConfig",
    "build_sqlite",
    "SqliteConfig",
    "build_vsftpd",
    "VsftpdConfig",
    "WrkWorkload",
    "Dbt2Workload",
    "DkftpbenchWorkload",
]
