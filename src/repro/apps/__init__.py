"""Workload applications, written in the IR, plus their load generators.

- :mod:`repro.apps.libc` — the C-library layer: one wrapper function per
  syscall (the functions whose callsites BASTION classifies and protects),
  string/memory helpers, and a bump allocator;
- :mod:`repro.apps.nginx` — mini-NGINX: master/worker init, keep-alive HTTP
  serving, and the paper's two running examples (Listing 1's
  ``ngx_execute_proc``/``ngx_output_chain`` and Listing 2's
  ``ngx_http_get_indexed_variable``);
- :mod:`repro.apps.sqlite` — mini-SQLite: pager + journal over the VFS-style
  indirect dispatch table, driven by a DBT2-style new-order mix;
- :mod:`repro.apps.vsftpd` — mini-vsftpd: control/data-channel FTP with
  per-session privilege drop and PASV downloads;
- :mod:`repro.apps.workloads` — the wrk / DBT2 / dkftpbench stand-ins that
  inject connections and pace requests.
"""

from repro.apps.browser import build_browser, BrowserConfig
from repro.apps.httpd import build_httpd, HttpdConfig
from repro.apps.libc import build_libc, LIBC_WRAPPERS
from repro.apps.mediasrv import build_mediasrv, MediaConfig
from repro.apps.nginx import build_nginx, NginxConfig
from repro.apps.sqlite import build_sqlite, SqliteConfig
from repro.apps.vsftpd import build_vsftpd, VsftpdConfig
from repro.apps.workloads import (
    WrkWorkload,
    Dbt2Workload,
    DkftpbenchWorkload,
)

#: Every shipped IR program, name -> zero-argument builder.  This is the
#: registry the static analyzer (``python -m repro.analyze --all``) and the
#: compiler CLI iterate: each entry must lint clean under the full pass
#: suite or carry a documented waiver (docs/analyze.md).
SYNTHETIC_APPS = {
    "nginx": build_nginx,
    "sqlite": build_sqlite,
    "vsftpd": build_vsftpd,
    "httpd": build_httpd,
    "browser": build_browser,
    "mediasrv": build_mediasrv,
    "libc": build_libc,
}


def build_app_module(name):
    """Build the registered app ``name``; raises ``KeyError`` when unknown."""
    return SYNTHETIC_APPS[name]()


__all__ = [
    "SYNTHETIC_APPS",
    "build_app_module",
    "build_browser",
    "BrowserConfig",
    "build_httpd",
    "HttpdConfig",
    "build_mediasrv",
    "MediaConfig",
    "build_libc",
    "LIBC_WRAPPERS",
    "build_nginx",
    "NginxConfig",
    "build_sqlite",
    "SqliteConfig",
    "build_vsftpd",
    "VsftpdConfig",
    "WrkWorkload",
    "Dbt2Workload",
    "DkftpbenchWorkload",
]
