"""Diagnostic and report types shared by every analysis pass.

A :class:`Diagnostic` is one finding: which pass produced it, a stable
machine-readable code, a severity, and (when known) the IR location it
anchors to.  A :class:`AnalysisReport` is the result of running the full
pass suite over one compiled artifact, after waivers are applied.
"""

import json
from dataclasses import dataclass, field

#: diagnostic severities, in increasing order of badness
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one analysis pass."""

    pass_name: str  # 'completeness' | 'call-type' | 'flow' | 'consistency'
    code: str  # stable slug, e.g. 'missing-bind'
    severity: str  # 'info' | 'warning' | 'error'
    message: str
    func: str = None  # IR location, when the finding anchors to one
    index: int = None
    syscall: str = None

    def location(self):
        if self.func is None:
            return "<module>"
        if self.index is None:
            return self.func
        return "%s[%d]" % (self.func, self.index)

    def render(self):
        parts = [
            "%s: %s/%s" % (self.severity, self.pass_name, self.code),
            self.location(),
        ]
        if self.syscall:
            parts.append("(%s)" % self.syscall)
        return " ".join(parts) + ": " + self.message

    def to_dict(self):
        return {
            "pass": self.pass_name,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "func": self.func,
            "index": self.index,
            "syscall": self.syscall,
        }


@dataclass
class AnalysisReport:
    """The pass suite's verdict on one program."""

    program: str
    #: findings that survived waiver filtering, in pass order
    diagnostics: list = field(default_factory=list)
    #: (diagnostic, waiver) pairs suppressed by the waiver table
    waived: list = field(default_factory=list)
    #: per-pass metrics (the flow pass's precision numbers live here)
    metrics: dict = field(default_factory=dict)

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self):
        """No unwaived errors (warnings tolerated)."""
        return not self.errors

    @property
    def clean(self):
        """No unwaived findings of any severity (what ``--strict`` demands)."""
        return not self.diagnostics

    def counts_by_pass(self):
        """Unwaived finding counts keyed by pass name (zero-filled)."""
        counts = {name: 0 for name in ("completeness", "call-type", "flow", "consistency")}
        for diag in self.diagnostics:
            counts[diag.pass_name] = counts.get(diag.pass_name, 0) + 1
        return counts

    # -- rendering ---------------------------------------------------------

    def render_text(self):
        lines = ["repro.analyze: %s" % self.program]
        for diag in self.diagnostics:
            lines.append("  " + diag.render())
        for diag, waiver in self.waived:
            lines.append("  waived: %s [%s]" % (diag.render(), waiver.reason))
        counts = self.counts_by_pass()
        summary = ", ".join("%s=%d" % (name, counts[name]) for name in sorted(counts))
        flow = self.metrics.get("flow", {})
        lines.append(
            "  %d finding(s) (%s), %d waived" % (len(self.diagnostics), summary, len(self.waived))
        )
        if flow:
            lines.append(
                "  precision: %d sensitive site(s), %d chain(s), attack surface %d"
                % (
                    flow.get("sensitive_sites", 0),
                    flow.get("chains", 0),
                    flow.get("attack_surface", 0),
                )
            )
        lines.append("  verdict: %s" % ("clean" if self.clean else ("ok" if self.ok else "FAIL")))
        return "\n".join(lines)

    def to_dict(self):
        return {
            "program": self.program,
            "ok": self.ok,
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "waived": [
                {"diagnostic": d.to_dict(), "reason": w.reason}
                for d, w in self.waived
            ],
            "counts_by_pass": self.counts_by_pass(),
            "metrics": self.metrics,
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
