"""Static-analysis pass suite over compiled BASTION artifacts.

Four passes audit the compiler's three contexts from the outside, in the
spirit of the binary-level syscall-policy extractors the paper compares
against (B-Side, SFIP):

1. :mod:`repro.analyze.completeness` — instrumentation completeness: an
   independent backward taint proves every sensitive-variable store is
   shadowed by ``ctx_write_mem`` and every metadata binding has its
   ``ctx_bind_*`` intrinsic;
2. :mod:`repro.analyze.calltypes` — call-type audit: re-derives the §6.1
   directly/indirectly/not-callable table and diffs it against the
   metadata, flagging over-permissive entries;
3. :mod:`repro.analyze.flowgraph` — syscall-flow precision: per-syscall
   legitimate-chain counts and the chains×args attack-surface metric;
4. :mod:`repro.analyze.consistency` — metadata ↔ IR cross-check: the
   chains the monitor would accept are exactly the derivable ones.

Entry points: ``python -m repro.analyze``, :func:`repro.api.analyze`, and
:func:`analyze_artifact`/:func:`analyze_app` here.
"""

from repro.analyze.diagnostics import AnalysisReport, Diagnostic, SEVERITIES
from repro.analyze.runner import (
    PASS_ORDER,
    analyze_app,
    analyze_artifact,
    analyze_module,
)
from repro.analyze.waivers import SHIPPED_WAIVERS, Waiver, apply_waivers

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "SEVERITIES",
    "PASS_ORDER",
    "analyze_app",
    "analyze_artifact",
    "analyze_module",
    "SHIPPED_WAIVERS",
    "Waiver",
    "apply_waivers",
]
