"""Binary-level static analysis over a loaded image (B-Side style).

Everything in this module consumes only what a stripped binary ships: the
text segment :class:`repro.vm.loader.Image` lays out — code addresses,
decodable instructions, and the relocated targets call/funcaddr operands
carry.  It never touches ``module.metadata``, compiler provenance, or the
builder's ``is_wrapper`` hints.  Four recovery passes:

1. **Function partition** (code scanning).  A linear sweep decodes every
   text address; inter-function alignment padding faults on fetch (the
   image's DEP/NX behavior), so maximal decodable runs bound the
   partition, and every address referenced as a direct-call or
   address-taken target (plus the program entry) refines it.  Two
   adjacent functions whose padding gap vanishes *and* whose boundary is
   never referenced may merge — a classic binary-analysis coarsening
   that only ever widens the recovered tables (soundness is preserved;
   precision is what the report measures).
2. **Wrapper partition**.  Purely structural: a recovered function whose
   run starts with a ``Syscall`` and is stub-sized is a syscall wrapper
   (:func:`repro.analyze.common.is_structural_wrapper`).
3. **Call types + reachable syscall set**.  A fixpoint reachability walk
   from the entry point: taking a function's address is itself an act of
   *reachable* code, so address-taken targets join the root set only
   once some reachable function takes them — and every address-taken
   function is assumed indirectly callable from any indirect callsite
   (the sound over-approximation for indirect flow).  Call types are
   then derived exactly like the IR pass, but restricted to reachable
   code: statically present *dead* surface (libc's never-called
   ``system()`` and every unused wrapper) drops out of the tables.
4. **Flow graph**.  Recovered caller edges feed the same memoized chain
   counting as :mod:`repro.analyze.flowgraph`, yielding comparable
   chains / attack-surface numbers for the recovered control-flow
   context.

The recovered tables are *load-bearing*: the ``binary_only`` mechanism
(:mod:`repro.mechanisms.binary`) synthesizes its seccomp allowlist and
call-type checks from a :class:`BinaryRecovery`, and
:func:`binary_precision` diffs recovery against the compiler metadata per
app (the ``analysis-precision`` CI gate pins that payload).
"""

import bisect
from dataclasses import dataclass

from repro.analyze.common import (
    is_structural_wrapper,
    wrapped_syscalls,
    wrapper_map,
)
from repro.analyze.diagnostics import Diagnostic
from repro.errors import ExecutionFault
from repro.ir.instructions import Call, CallIndirect, FuncAddr, Syscall
from repro.policy import CompiledPolicy, FlowFunction, build_transition_graph
from repro.syscalls import argspec_for
from repro.syscalls.sensitive import SENSITIVE_SYSCALLS
from repro.vm.loader import INSTR_STRIDE, TEXT_BASE, Image

PASS_NAME = "binary"
_KINDS = ("direct", "indirect")

#: chain counts saturate here (same cap as the metadata-driven flow pass)
CHAIN_CAP = 1_000_000


@dataclass(frozen=True)
class RecoveredFunction:
    """One function recovered by the code scan, identified by address."""

    base: int
    instrs: tuple

    @property
    def end(self):
        """First address past the recovered run."""
        return self.base + len(self.instrs) * INSTR_STRIDE

    def contains(self, addr):
        return self.base <= addr < self.end


@dataclass
class BinaryRecovery:
    """Everything the binary-level passes recovered from one image."""

    image: object
    entry: int
    #: base address -> :class:`RecoveredFunction` (the partition)
    functions: dict
    #: wrapper base -> wrapped syscall names (structural detection only)
    wrappers: dict
    #: callee base -> [(caller base, callsite addr), ...] (whole image)
    direct_callers: dict
    #: callsite addresses of every CallIndirect (whole image)
    indirect_sites: tuple
    #: function base -> address-taken target bases (whole image)
    funcaddr_targets: dict
    #: bases reachable from the entry under the fixpoint walk
    reachable: set
    #: bases whose address reachable code takes (the indirect root set)
    address_taken: set
    #: presence-based tables (what a filter synthesized from *statically
    #: present* code admits — comparable to the IR re-derivation)
    present_syscalls: set
    present_call_types: dict
    #: reachability-tightened tables (what the binary_only mechanism
    #: actually enforces)
    reachable_syscalls: set
    call_types: dict

    # -- runtime lookups (the binary_only mechanism's hot path) ---------

    def function_at(self, addr):
        """Base of the recovered function containing ``addr`` (or None)."""
        bases = self._sorted_bases
        pos = bisect.bisect_right(bases, addr) - 1
        if pos < 0:
            return None
        base = bases[pos]
        if self.functions[base].contains(addr):
            return base
        return None

    def wrapper_at(self, addr):
        """Wrapped syscall names when ``addr`` sits in a recovered
        wrapper, else None."""
        base = self.function_at(addr)
        if base is None:
            return None
        return self.wrappers.get(base)

    @property
    def _sorted_bases(self):
        bases = getattr(self, "_bases_cache", None)
        if bases is None:
            bases = sorted(self.functions)
            self._bases_cache = bases
        return bases

    def symbolize(self, base):
        """Presentation-only symbol for a recovered base (``sub_<hex>``
        when the image carries no covering symbol)."""
        name = self.image.func_containing(base)
        return name if name is not None else "sub_%x" % base


# ---------------------------------------------------------------------------
# pass 1: code scan + function partition
# ---------------------------------------------------------------------------


def _scan_text(image):
    """Linear sweep: ``{addr: instruction}`` for every decodable address."""
    code = {}
    addr = TEXT_BASE
    while addr < image.text_end:
        try:
            code[addr] = image.instruction_at(addr)
        except ExecutionFault:
            pass  # alignment padding between functions
        addr += INSTR_STRIDE
    return code


def _resolve_target(image, name):
    """A call/funcaddr operand is a relocated immediate: resolve it the
    way the loader's relocation records do (no metadata involved)."""
    return image.func_base.get(name)


def _partition(image, code):
    """Split the decodable runs into functions.

    Starts = run boundaries (an address whose predecessor is padding)
    plus every referenced target: the program entry, direct-call targets,
    and address-taken targets.
    """
    starts = {image.entry_addr}
    for addr in code:
        if addr - INSTR_STRIDE not in code:
            starts.add(addr)
    for instr in code.values():
        if isinstance(instr, Call):
            target = _resolve_target(image, instr.callee)
        elif isinstance(instr, FuncAddr):
            target = _resolve_target(image, instr.func)
        else:
            continue
        if target is not None:
            starts.add(target)

    ordered = sorted(starts)
    functions = {}
    for i, base in enumerate(ordered):
        stop = ordered[i + 1] if i + 1 < len(ordered) else None
        instrs = []
        addr = base
        while addr in code and (stop is None or addr < stop):
            instrs.append(code[addr])
            addr += INSTR_STRIDE
        if instrs:
            functions[base] = RecoveredFunction(base=base, instrs=tuple(instrs))
    return functions


# ---------------------------------------------------------------------------
# passes 2+3: wrappers, call graph, fixpoint reachability, call types
# ---------------------------------------------------------------------------


def recover_image(image):
    """Run all four recovery passes; returns a :class:`BinaryRecovery`."""
    code = _scan_text(image)
    functions = _partition(image, code)

    wrappers = {}
    for base, func in functions.items():
        if is_structural_wrapper(func.instrs):
            names = wrapped_syscalls(func.instrs)
            if names:
                wrappers[base] = names

    direct_callers = {}  # callee base -> [(caller base, site addr)]
    direct_targets = {}  # caller base -> set of callee bases
    funcaddr_targets = {}  # holder base -> set of taken bases
    indirect_sites = []
    inline_sites = {}  # (holder base, site addr) -> syscall name
    syscalls_in = {}  # holder base -> [syscall names]
    for base, func in functions.items():
        addr = base
        for instr in func.instrs:
            if isinstance(instr, Call):
                target = _resolve_target(image, instr.callee)
                if target is not None:
                    direct_targets.setdefault(base, set()).add(target)
                    direct_callers.setdefault(target, []).append((base, addr))
            elif isinstance(instr, FuncAddr):
                target = _resolve_target(image, instr.func)
                if target is not None:
                    funcaddr_targets.setdefault(base, set()).add(target)
            elif isinstance(instr, CallIndirect):
                indirect_sites.append(addr)
            elif isinstance(instr, Syscall):
                syscalls_in.setdefault(base, []).append(instr.name)
                if base not in wrappers:
                    inline_sites[(base, addr)] = instr.name
            addr += INSTR_STRIDE

    # fixpoint reachability: address-taken roots join only once reachable
    # code takes the address (taking an address is an act of execution).
    reachable = set()
    address_taken = set()
    queue = [image.entry_addr]
    while queue:
        base = queue.pop()
        if base in reachable:
            continue
        reachable.add(base)
        queue.extend(direct_targets.get(base, ()))
        for target in funcaddr_targets.get(base, ()):
            if target not in address_taken:
                address_taken.add(target)
                queue.append(target)

    present_address_taken = set()
    for targets in funcaddr_targets.values():
        present_address_taken.update(targets)

    def _mark(table, syscall, kind):
        entry = table.setdefault(
            syscall, {"direct": False, "indirect": False}
        )
        entry[kind] = True

    present_call_types = {}
    call_types = {}
    for base, names in wrappers.items():
        callers = direct_callers.get(base, ())
        if callers:
            for name in names:
                _mark(present_call_types, name, "direct")
        if any(caller in reachable for caller, _site in callers):
            for name in names:
                _mark(call_types, name, "direct")
        if base in present_address_taken:
            for name in names:
                _mark(present_call_types, name, "indirect")
        if base in address_taken:
            for name in names:
                _mark(call_types, name, "indirect")
    for (holder, _site), name in inline_sites.items():
        _mark(present_call_types, name, "direct")
        if holder in reachable:
            _mark(call_types, name, "direct")

    present_syscalls = set()
    reachable_syscalls = set()
    for base, names in syscalls_in.items():
        present_syscalls.update(names)
        if base in reachable:
            reachable_syscalls.update(names)

    return BinaryRecovery(
        image=image,
        entry=image.entry_addr,
        functions=functions,
        wrappers=wrappers,
        direct_callers=direct_callers,
        indirect_sites=tuple(indirect_sites),
        funcaddr_targets=funcaddr_targets,
        reachable=reachable,
        address_taken=address_taken,
        present_syscalls=present_syscalls,
        present_call_types=present_call_types,
        reachable_syscalls=reachable_syscalls,
        call_types=call_types,
    )


# ---------------------------------------------------------------------------
# the binary policy producer
# ---------------------------------------------------------------------------


def compile_policy(recovery, program=None):
    """Compile a :class:`~repro.policy.CompiledPolicy` from recovery alone.

    The *binary producer*: the same transition-flow engine the metadata
    pass runs (:mod:`repro.policy.flow`), over recovered instruction runs
    instead of IR functions.  Differences forced by the missing metadata:

    - fids are recovered base addresses; origins are ``symbolize``d;
    - no thread-entry records exist, so every address-taken function is
      conservatively treated as a potential clone() start routine;
    - presence and call kinds come from the reachability passes verbatim
      (``reachable_syscalls`` / ``call_types``) — exactly the tables the
      ``binary_only`` mechanism has always enforced, now carried by the
      artifact instead of reached into.
    """
    image = recovery.image
    functions = {
        base: FlowFunction(
            fid=base, symbol=recovery.symbolize(base), instrs=func.instrs
        )
        for base, func in recovery.functions.items()
    }
    graph = build_transition_graph(
        functions,
        entry=recovery.entry,
        resolve_callee=lambda name: _resolve_target(image, name),
        indirect_targets=tuple(sorted(recovery.address_taken)),
        thread_entries=tuple(sorted(recovery.address_taken)),
    )
    return CompiledPolicy(
        producer="binary",
        program=program if program is not None else image.module.name,
        entry=recovery.symbolize(recovery.entry),
        presence=tuple(sorted(recovery.reachable_syscalls)),
        call_kinds={
            syscall: tuple(kinds)
            for syscall, kinds in _table_as_lists(recovery.call_types).items()
        },
        transitions=graph.transitions,
        provenance={
            "source": "binary-recovery",
            "functions": len(recovery.functions),
            "reachable_functions": len(graph.reachable),
            "indirect_targets": len(recovery.address_taken),
            "thread_entries": "address-taken (conservative)",
        },
    )


_policy_cache = {}


def policy_for_image(module):
    """Compile (and cache) the binary-produced policy for a module."""
    key = id(module)
    cached = _policy_cache.get(key)
    if cached is None or cached[0] is not module:
        recovery = recover_image_for(module)
        cached = (module, compile_policy(recovery))
        _policy_cache[key] = cached
    return cached[1]


# ---------------------------------------------------------------------------
# pass 4: recovered flow graph (chains / attack surface)
# ---------------------------------------------------------------------------


class RecoveredChainCounter:
    """Memoized backward chain counter over *recovered* caller edges.

    Mirrors :class:`repro.analyze.flowgraph.ChainCounter`, with the
    metadata tables swapped for their recovered counterparts: roots are
    the entry point, address-taken functions terminate partial chains at
    each recovered indirect callsite, and recursion is cut at the first
    repeated function.
    """

    def __init__(self, recovery):
        self.recovery = recovery
        self.roots = {recovery.entry}
        reachable_indirect = [
            site
            for site in recovery.indirect_sites
            if recovery.function_at(site) in recovery.reachable
        ]
        self.indirect_site_count = len(reachable_indirect)
        self._memo = {}

    def chains_to(self, base):
        return self._count(base, ())

    def _count(self, base, path):
        if base in path:
            return 0  # recursion: cut the cycle
        memoized = self._memo.get(base)
        if memoized is not None:
            return memoized
        total = 1 if base in self.roots else 0
        path = path + (base,)
        for caller, _site in self.recovery.direct_callers.get(base, ()):
            if caller not in self.recovery.reachable:
                continue
            total += self._count(caller, path)
            if total >= CHAIN_CAP:
                total = CHAIN_CAP
                break
        if total < CHAIN_CAP and base in self.recovery.address_taken:
            total = min(CHAIN_CAP, total + self.indirect_site_count)
        self._memo[base] = total
        return total


def recovered_flow_metrics(recovery):
    """Chains / attack-surface statistics over the recovered flow graph,
    shaped like the metadata-driven flow pass's metrics."""
    sensitive = set(SENSITIVE_SYSCALLS)
    hot_wrappers = {
        base: [s for s in names if s in sensitive][0]
        for base, names in recovery.wrappers.items()
        if any(s in sensitive for s in names)
    }

    sites = {}  # (holder base, site addr) -> syscall
    for base, func in recovery.functions.items():
        if base in recovery.wrappers or base not in recovery.reachable:
            continue
        addr = base
        for instr in func.instrs:
            if isinstance(instr, Call):
                target = _resolve_target(recovery.image, instr.callee)
                if target in hot_wrappers:
                    sites[(base, addr)] = hot_wrappers[target]
            elif isinstance(instr, Syscall) and instr.name in sensitive:
                sites[(base, addr)] = instr.name
            addr += INSTR_STRIDE

    counter = RecoveredChainCounter(recovery)
    per_syscall = {}
    total_chains = 0
    attack_surface = 0
    for (base, _addr), syscall in sorted(sites.items()):
        chains = counter.chains_to(base)
        args = len(argspec_for(syscall).kinds)
        entry = per_syscall.setdefault(
            syscall, {"sites": 0, "chains": 0, "args": args, "surface": 0}
        )
        entry["sites"] += 1
        entry["chains"] = min(CHAIN_CAP, entry["chains"] + chains)
        entry["surface"] = min(CHAIN_CAP, entry["surface"] + chains * args)
        total_chains = min(CHAIN_CAP, total_chains + chains)
        attack_surface = min(CHAIN_CAP, attack_surface + chains * args)

    return {
        "sensitive_sites": len(sites),
        "chains": total_chains,
        "attack_surface": attack_surface,
        "per_syscall": {
            name: dict(v) for name, v in sorted(per_syscall.items())
        },
    }


# ---------------------------------------------------------------------------
# audit: recovered tables vs compiler metadata
# ---------------------------------------------------------------------------


def _dead_justifier(recovery, syscall, kind):
    """Symbol of an *unreachable* function that justifies the metadata's
    claim — the evidence the diagnostic anchors to (e.g. ``system``)."""
    candidates = set()
    for base, names in recovery.wrappers.items():
        if syscall not in names:
            continue
        if kind == "direct":
            for caller, _site in recovery.direct_callers.get(base, ()):
                if caller not in recovery.reachable:
                    candidates.add(recovery.symbolize(caller))
        else:
            for holder, targets in recovery.funcaddr_targets.items():
                if base in targets and holder not in recovery.reachable:
                    candidates.add(recovery.symbolize(holder))
    if kind == "direct":
        # inline sites: a dead non-wrapper function issuing the syscall
        for base, func in recovery.functions.items():
            if base in recovery.wrappers or base in recovery.reachable:
                continue
            if syscall in wrapped_syscalls(func.instrs):
                candidates.add(recovery.symbolize(base))
    return min(candidates) if candidates else None


def audit_binary(artifact):
    """Diff binary recovery against the compiler metadata.

    Returns ``(diagnostics, metrics)`` in the pass-suite currency.  Three
    failure directions:

    - ``over-permissive`` (error): the metadata allows a call type not
      even *statically present* code can produce — the same gap the IR
      call-type audit hunts, confirmed here without reading the IR.
    - ``missing-call-type`` (error): the binary can produce a call type
      the metadata forbids; the monitor would kill a legitimate run.
    - ``unreachable-call-type`` (error): the metadata's claim is
      justified *only* by provably-unreachable code.  The IR-level
      passes cannot flag this — the call edge genuinely exists — so the
      recovered tables are strictly tighter.  Shipped apps hit this on
      libc's deliberately-dead ``system()`` surface (waived, see
      :mod:`repro.analyze.waivers`).
    """
    recovery = recover_image_for(artifact.module)
    published = artifact.metadata.call_types
    diagnostics = []

    every = sorted(
        set(published)
        | set(recovery.present_call_types)
        | set(recovery.call_types)
    )
    for syscall in every:
        have = published.get(syscall, {})
        present = recovery.present_call_types.get(
            syscall, {"direct": False, "indirect": False}
        )
        tight = recovery.call_types.get(
            syscall, {"direct": False, "indirect": False}
        )
        for kind in _KINDS:
            if have.get(kind) and not present[kind]:
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "over-permissive",
                        "error",
                        "metadata classifies %s as %sly-callable but no "
                        "recovered code construct can issue it that way"
                        % (syscall, kind),
                        syscall=syscall,
                    )
                )
            elif present[kind] and not have.get(kind):
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "missing-call-type",
                        "error",
                        "the binary can issue %s %sly but the metadata "
                        "would have the monitor kill it" % (syscall, kind),
                        syscall=syscall,
                    )
                )
            elif have.get(kind) and present[kind] and not tight[kind]:
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "unreachable-call-type",
                        "error",
                        "metadata allows %s %sly but every justifying "
                        "construct is unreachable from the entry point — "
                        "the recovered policy drops it" % (syscall, kind),
                        func=_dead_justifier(recovery, syscall, kind),
                        syscall=syscall,
                    )
                )

    metrics = _precision_metrics(recovery, artifact)
    return diagnostics, metrics


# ---------------------------------------------------------------------------
# precision report
# ---------------------------------------------------------------------------

_recovery_cache = {}


def recover_image_for(module):
    """Recover (and cache) the binary tables for a module's image."""
    key = id(module)
    cached = _recovery_cache.get(key)
    if cached is None or cached.image.module is not module:
        cached = recover_image(Image(module))
        _recovery_cache[key] = cached
    return cached


def _kind_list(entry):
    return [k for k in _KINDS if entry.get(k)]


def _table_as_lists(table):
    return {
        syscall: _kind_list(entry)
        for syscall, entry in sorted(table.items())
        if _kind_list(entry)
    }


def _precision_metrics(recovery, artifact):
    """The per-app recovered-vs-metadata payload (byte-stable under
    ``json.dumps(..., sort_keys=True)``: plain dicts/lists/ints only)."""
    module = artifact.module
    metadata = artifact.metadata
    image = recovery.image

    recovered_types = _table_as_lists(recovery.call_types)
    metadata_types = _table_as_lists(metadata.call_types)
    tightened_types = {}
    matches = 0
    for syscall in sorted(set(metadata_types) | set(recovered_types)):
        meta_kinds = set(metadata_types.get(syscall, ()))
        tight_kinds = set(recovered_types.get(syscall, ()))
        matches += len(meta_kinds & tight_kinds)
        dropped = sorted(meta_kinds - tight_kinds)
        if dropped:
            tightened_types[syscall] = dropped

    aligned = sum(
        1 for base in recovery.functions if base in image.func_base.values()
    )
    return {
        "functions": {
            "symbols": len(module.functions),
            "recovered": len(recovery.functions),
            "aligned": aligned,
            "reachable": len(recovery.reachable),
            "wrappers_recovered": len(recovery.wrappers),
            "wrappers_ir": len(wrapper_map(module)),
        },
        "syscalls": {
            "present": len(recovery.present_syscalls),
            "reachable": sorted(recovery.reachable_syscalls),
            "tightened": sorted(
                recovery.present_syscalls - recovery.reachable_syscalls
            ),
        },
        "call_types": {
            "recovered": recovered_types,
            "metadata": metadata_types,
            "tightened": tightened_types,
            "matching_kinds": matches,
        },
        "flow": {
            "binary": {
                key: value
                for key, value in recovered_flow_metrics(recovery).items()
                if key != "per_syscall"
            },
        },
    }


def binary_report(app):
    """Analyze one registered app: ``(diagnostics, precision_payload)``.

    Compiles the app with the BASTION pipeline (the metadata side of the
    diff), recovers tables from the *instrumented* image the metadata
    describes, and attaches the metadata-driven flow metrics so the
    precision table can compare both flow graphs.
    """
    from repro.analyze.flowgraph import analyze_flow
    from repro.apps import build_app_module
    from repro.compiler.pipeline import BastionCompiler

    artifact = BastionCompiler().compile(build_app_module(app))
    diagnostics, metrics = audit_binary(artifact)
    _flow_diags, flow_metrics = analyze_flow(artifact)
    metrics["flow"]["metadata"] = {
        key: value
        for key, value in flow_metrics.items()
        if key != "per_syscall"
    }
    metrics["program"] = artifact.metadata.program
    return diagnostics, metrics


def precision_payload_json(payload):
    """The canonical byte-stable serialization of an ``{app: metrics}``
    payload — what ``--json`` prints, ``--write`` pins, and the CI gate
    diffs.  Plain dicts/lists/ints/strings only, fully sorted."""
    import json

    return json.dumps(payload, indent=2, sort_keys=True)


def check_precision_regressions(baseline, current):
    """Directional regression check for the ``analysis-precision`` gate.

    Returns a list of human-readable regression descriptions (empty =
    pass).  Two directions fail, matching the soundness/precision split:

    - a syscall in the current *reachable* set the baseline excluded —
      the recovered filter got looser (a new false syscall admitted);
    - a (syscall, kind) in the baseline's *recovered* call-type table
      missing from the current one — a legitimate call type was lost
      (the mechanism would kill a benign execution the baseline allowed).
    """
    regressions = []
    for app in sorted(baseline):
        if app not in current:
            regressions.append("%s: app missing from current payload" % app)
            continue
        base = baseline[app]
        cur = current[app]
        base_reach = set(base["syscalls"]["reachable"])
        cur_reach = set(cur["syscalls"]["reachable"])
        for syscall in sorted(cur_reach - base_reach):
            regressions.append(
                "%s: recovered allowlist admits %s (baseline excluded it)"
                % (app, syscall)
            )
        base_types = base["call_types"]["recovered"]
        cur_types = cur["call_types"]["recovered"]
        for syscall in sorted(base_types):
            for kind in base_types[syscall]:
                if kind not in cur_types.get(syscall, ()):
                    regressions.append(
                        "%s: legitimate call type %s/%s lost from the "
                        "recovered table" % (app, syscall, kind)
                    )
    return regressions
