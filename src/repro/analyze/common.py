"""Wrapper detection shared by the IR-level and binary-level passes.

A libc syscall wrapper is structurally tiny: a leading ``Syscall``
instruction forwarding the parameters, then a return (glibc's thin
syscall stubs — see ``repro.apps.libc``).  Both analysis levels need to
find them, but they see different evidence:

- the **IR level** (:mod:`repro.analyze.completeness`,
  :mod:`repro.analyze.calltypes`) holds real
  :class:`~repro.ir.function.Function` objects and may honor the
  builder's ``is_wrapper`` hint *in addition to* the structural shape;
- the **binary level** (:mod:`repro.analyze.binary`) sees only decoded
  instruction runs — no hints — so it relies on
  :func:`is_structural_wrapper` alone.

Keeping one definition here guarantees the two levels can never drift on
what counts as a wrapper (the partition every call-type table builds on).
"""

from repro.ir.instructions import Syscall

#: longest instruction run still considered a syscall stub
_WRAPPER_MAX_INSTRS = 3


def wrapped_syscalls(body):
    """Syscall names issued by ``body`` (a function body or decoded run)."""
    return tuple(
        instr.name for instr in body if isinstance(instr, Syscall)
    )


def is_structural_wrapper(body):
    """Does ``body`` have the stub shape: lead ``Syscall``, at most three
    instructions?  This is the hint-free test binary recovery relies on."""
    return (
        0 < len(body) <= _WRAPPER_MAX_INSTRS
        and isinstance(body[0], Syscall)
    )


def wrapper_map(module):
    """Function -> wrapped syscall names (independent of the compiler).

    The ``is_wrapper`` hint is honored alongside the structural shape —
    the IR level should not miss a wrapper the builder declared even if
    it grew past the stub size.
    """
    wrappers = {}
    for func in module.functions.values():
        names = wrapped_syscalls(func.body)
        if not names:
            continue
        if func.is_wrapper or is_structural_wrapper(func.body):
            wrappers[func.name] = names
    return wrappers
