"""CLI: ``python -m repro.analyze <app> [--format text|json] [--strict]``.

Exit status: 0 when every analyzed program passes (no unwaived errors; with
``--strict``, no unwaived findings at all), 1 otherwise.

``python -m repro.analyze binary [apps|--all]`` runs the metadata-free
binary-level analyzer instead (:mod:`repro.analyze.binary`) and reports
recovered-vs-metadata precision per app.  ``--json`` emits the byte-stable
precision payload; ``--write PATH`` pins it; ``--check PATH`` fails on any
recovered-table regression against a pinned baseline (a syscall admitted
that the baseline excluded, or a legitimate call type lost).

``python -m repro.analyze sfip [apps|--all]`` reports syscall-transition
precision (:mod:`repro.analyze.sfip`): the CompiledPolicy both producers
emit, with the same ``--json`` / ``--write`` / ``--check`` contract over
``tests/fixtures/sfip_precision.json`` (a transition or origin admitted
that the baseline excluded, or a legitimate one lost).
"""

import argparse
import json
import sys

from repro.analyze.runner import analyze_app
from repro.apps import SYNTHETIC_APPS


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "binary":
        return _binary_main(argv[1:])
    if argv and argv[0] == "sfip":
        return _sfip_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Run the BASTION static-analysis pass suite over "
        "compiled synthetic apps.",
    )
    parser.add_argument(
        "apps",
        nargs="*",
        metavar="app",
        help="registered app name(s): %s" % ", ".join(sorted(SYNTHETIC_APPS)),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="analyze every registered app",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unwaived finding, not just errors",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore the shipped waiver table and show raw findings",
    )
    args = parser.parse_args(argv)

    if args.all:
        names = sorted(SYNTHETIC_APPS)
    else:
        names = args.apps
    if not names:
        parser.error("name at least one app, or pass --all")
    unknown = [n for n in names if n not in SYNTHETIC_APPS]
    if unknown:
        parser.error("unknown app(s): %s" % ", ".join(unknown))

    waivers = () if args.no_waivers else None
    reports = []
    for name in names:
        if waivers is None:
            reports.append(analyze_app(name))
        else:
            reports.append(analyze_app(name, waivers=waivers))

    if args.format == "json":
        payload = {r.program: r.to_dict() for r in reports}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render_text())

    failed = any(
        not (r.clean if args.strict else r.ok) for r in reports
    )
    return 1 if failed else 0


def _binary_main(argv):
    from repro.analyze.binary import (
        binary_report,
        check_precision_regressions,
        precision_payload_json,
    )
    from repro.analyze.waivers import SHIPPED_WAIVERS, apply_waivers

    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze binary",
        description="Run the metadata-free binary-level analyzer and "
        "report recovered-vs-metadata precision per app.",
    )
    parser.add_argument(
        "apps",
        nargs="*",
        metavar="app",
        help="registered app name(s): %s" % ", ".join(sorted(SYNTHETIC_APPS)),
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered app"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-stable precision payload instead of text",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the precision payload to PATH (pins the CI baseline)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="diff the precision payload against the baseline at PATH; "
        "fail on any recovered-table regression",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unwaived finding, not just errors",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore the shipped waiver table and show raw findings",
    )
    args = parser.parse_args(argv)

    names = sorted(SYNTHETIC_APPS) if args.all else args.apps
    if not names:
        parser.error("name at least one app, or pass --all")
    unknown = [n for n in names if n not in SYNTHETIC_APPS]
    if unknown:
        parser.error("unknown app(s): %s" % ", ".join(unknown))

    waivers = () if args.no_waivers else SHIPPED_WAIVERS
    payload = {}
    failed = False
    text_lines = []
    for name in sorted(names):
        diagnostics, metrics = binary_report(name)
        kept, waived = apply_waivers(name, diagnostics, waivers)
        payload[name] = metrics
        errors = [d for d in kept if d.severity == "error"]
        if errors or (args.strict and kept):
            failed = True
        if not args.json:
            text_lines.extend(_binary_text(name, metrics, kept, waived))

    if args.json:
        print(precision_payload_json(payload))
    else:
        print("\n".join(text_lines))

    if args.write:
        with open(args.write, "w") as fh:
            fh.write(precision_payload_json(payload) + "\n")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        regressions = check_precision_regressions(baseline, payload)
        for line in regressions:
            print("REGRESSION: %s" % line, file=sys.stderr)
        if regressions:
            failed = True
    return 1 if failed else 0


def _sfip_main(argv):
    from repro.analyze.sfip import (
        check_sfip_regressions,
        sfip_payload_json,
        sfip_report,
        sfip_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze sfip",
        description="Report syscall-transition precision: the "
        "CompiledPolicy emitted by the flowgraph and binary producers.",
    )
    parser.add_argument(
        "apps",
        nargs="*",
        metavar="app",
        help="registered app name(s): %s" % ", ".join(sorted(SYNTHETIC_APPS)),
    )
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered app"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-stable transition-precision payload",
    )
    parser.add_argument(
        "--write",
        metavar="PATH",
        help="write the payload to PATH (pins the CI baseline)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        help="diff the payload against the baseline at PATH; fail on any "
        "transition-graph regression",
    )
    args = parser.parse_args(argv)

    names = sorted(SYNTHETIC_APPS) if args.all else args.apps
    if not names:
        parser.error("name at least one app, or pass --all")
    unknown = [n for n in names if n not in SYNTHETIC_APPS]
    if unknown:
        parser.error("unknown app(s): %s" % ", ".join(unknown))

    payload = {}
    text_lines = []
    for name in sorted(names):
        report = sfip_report(name)
        payload[name] = report
        if not args.json:
            text_lines.extend(sfip_text(name, report))

    if args.json:
        print(sfip_payload_json(payload))
    else:
        print("\n".join(text_lines))

    failed = False
    if args.write:
        with open(args.write, "w") as fh:
            fh.write(sfip_payload_json(payload) + "\n")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        regressions = check_sfip_regressions(baseline, payload)
        for line in regressions:
            print("REGRESSION: %s" % line, file=sys.stderr)
        if regressions:
            failed = True
    return 1 if failed else 0


def _binary_text(name, metrics, kept, waived):
    """Human-readable per-app precision summary + findings."""
    funcs = metrics["functions"]
    syscalls = metrics["syscalls"]
    types = metrics["call_types"]
    flow = metrics["flow"]
    lines = [
        "=== %s (binary-level analysis) ===" % name,
        "functions: %d symbols, %d recovered (%d reachable, "
        "%d wrappers vs %d in IR)"
        % (
            funcs["symbols"],
            funcs["recovered"],
            funcs["reachable"],
            funcs["wrappers_recovered"],
            funcs["wrappers_ir"],
        ),
        "syscalls: %d present, %d reachable (%d tightened away)"
        % (
            syscalls["present"],
            len(syscalls["reachable"]),
            len(syscalls["tightened"]),
        ),
        "call types: %d recovered, %d in metadata, %d kinds tightened"
        % (
            len(types["recovered"]),
            len(types["metadata"]),
            sum(len(kinds) for kinds in types["tightened"].values()),
        ),
        "flow: %d sensitive sites / %d chains (binary) vs %d / %d (metadata)"
        % (
            flow["binary"]["sensitive_sites"],
            flow["binary"]["chains"],
            flow["metadata"]["sensitive_sites"],
            flow["metadata"]["chains"],
        ),
    ]
    for diag in kept:
        lines.append(
            "  [%s] %s: %s" % (diag.severity.upper(), diag.code, diag.message)
        )
    for diag, waiver in waived:
        lines.append(
            "  [waived] %s: %s (%s)" % (diag.code, diag.message, waiver.reason)
        )
    lines.append("")
    return lines


if __name__ == "__main__":
    sys.exit(main())
