"""CLI: ``python -m repro.analyze <app> [--format text|json] [--strict]``.

Exit status: 0 when every analyzed program passes (no unwaived errors; with
``--strict``, no unwaived findings at all), 1 otherwise.
"""

import argparse
import json
import sys

from repro.analyze.runner import analyze_app
from repro.apps import SYNTHETIC_APPS


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Run the BASTION static-analysis pass suite over "
        "compiled synthetic apps.",
    )
    parser.add_argument(
        "apps",
        nargs="*",
        metavar="app",
        help="registered app name(s): %s" % ", ".join(sorted(SYNTHETIC_APPS)),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="analyze every registered app",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any unwaived finding, not just errors",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore the shipped waiver table and show raw findings",
    )
    args = parser.parse_args(argv)

    if args.all:
        names = sorted(SYNTHETIC_APPS)
    else:
        names = args.apps
    if not names:
        parser.error("name at least one app, or pass --all")
    unknown = [n for n in names if n not in SYNTHETIC_APPS]
    if unknown:
        parser.error("unknown app(s): %s" % ", ".join(unknown))

    waivers = () if args.no_waivers else None
    reports = []
    for name in names:
        if waivers is None:
            reports.append(analyze_app(name))
        else:
            reports.append(analyze_app(name, waivers=waivers))

    if args.format == "json":
        payload = {r.program: r.to_dict() for r in reports}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render_text())

    failed = any(
        not (r.clean if args.strict else r.ok) for r in reports
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
