"""Instrumentation-completeness pass.

Soundness claim being checked: *every* store to a variable that can reach a
sensitive syscall argument is shadowed by a ``ctx_write_mem`` intrinsic,
and every argument binding recorded in the metadata is actually established
by a ``ctx_bind_mem``/``ctx_bind_const`` intrinsic ahead of the callsite.
If either is missing, the monitor compares registers against a stale (or
absent) shadow copy and the argument-integrity context silently weakens.

The pass re-derives the sensitive-variable set *independently* of the
compiler's §6.3 analysis: a backward taint over def-use chains
(:mod:`repro.ir.dataflow`) seeded at sensitive syscall callsite arguments,
propagated through move/arithmetic chains, loads (to their origin lvalues),
call parameters, and return values.  The re-derivation deliberately mirrors
the use-def character of the compiler pass (no alias analysis — see
DESIGN.md) so a clean program produces zero findings; any divergence
between what the taint demands and what the instrumenter emitted is a
finding with an IR location.
"""

from repro.analyze.common import wrapper_map as _wrapper_map
from repro.analyze.diagnostics import Diagnostic
from repro.ir.dataflow import def_use_chains
from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Call,
    Gep,
    Index,
    Intrinsic,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
)

PASS_NAME = "completeness"
MAX_TAINT_POSITION = 6
_ADDR_DEPTH = 4


def find_sensitive_sites(module, sensitive_names):
    """``{(func, index): syscall}`` for the instrumented module's own IR."""
    sensitive = set(sensitive_names)
    wrappers = _wrapper_map(module)
    hot_wrappers = {
        name: [s for s in syscalls if s in sensitive][0]
        for name, syscalls in wrappers.items()
        if any(s in sensitive for s in syscalls)
    }
    sites = {}
    for func in module.functions.values():
        if func.name in wrappers:
            continue
        for idx, instr in enumerate(func.body):
            if isinstance(instr, Call) and instr.callee in hot_wrappers:
                sites[(func.name, idx)] = hot_wrappers[instr.callee]
            elif isinstance(instr, Syscall) and instr.name in sensitive:
                sites[(func.name, idx)] = instr.name
    return sites


class _Taint:
    """Independent backward taint from sensitive syscall arguments."""

    def __init__(self, module):
        self.module = module
        self.wrappers = _wrapper_map(module)
        self.locals = set()  # (func, var)
        self.fields = set()  # (struct, field)
        self.globals = set()  # global name
        self._queue = []
        self._defs = {}  # func -> var -> [(idx, instr)]
        self._call_sites = {}  # callee -> [(func, idx, instr)] lazily built

    # -- def lookup ------------------------------------------------------

    def defs_of(self, func_name, var_name):
        per_func = self._defs.get(func_name)
        if per_func is None:
            func = self.module.functions[func_name]
            defs, _uses = def_use_chains(func)
            per_func = {
                name: [(i, func.body[i]) for i in positions]
                for name, positions in defs.items()
            }
            self._defs[func_name] = per_func
        return per_func.get(var_name, ())

    def callers_of(self, callee):
        if not self._call_sites:
            for func in self.module.functions.values():
                for idx, instr in enumerate(func.body):
                    if isinstance(instr, Call):
                        self._call_sites.setdefault(instr.callee, []).append(
                            (func.name, idx, instr)
                        )
        return self._call_sites.get(callee, ())

    # -- marking ---------------------------------------------------------

    def taint_local(self, func_name, var_name):
        if func_name in self.wrappers:
            return
        key = (func_name, var_name)
        if key not in self.locals:
            self.locals.add(key)
            self._queue.append(("local", key))

    def taint_operand(self, func_name, operand):
        if isinstance(operand, Var):
            self.taint_local(func_name, operand.name)

    def taint_field(self, struct, field_name):
        key = (struct, field_name)
        if key not in self.fields:
            self.fields.add(key)
            self._queue.append(("field", key))

    def taint_global(self, name):
        if name not in self.globals:
            self.globals.add(name)
            self._queue.append(("global", name))

    # -- propagation ------------------------------------------------------

    def run(self, seeds):
        for func_name, operand in seeds:
            self.taint_operand(func_name, operand)
        while self._queue:
            kind, key = self._queue.pop()
            if kind == "local":
                self._spread_local(*key)
            elif kind == "field":
                self._spread_field(*key)
            else:
                self._spread_global(key)
        return self

    def _spread_local(self, func_name, var_name):
        func = self.module.functions[func_name]
        if var_name in func.params:
            position = func.params.index(var_name) + 1
            if position <= MAX_TAINT_POSITION:
                for caller, _idx, call in self.callers_of(func_name):
                    if position - 1 < len(call.args):
                        self.taint_operand(caller, call.args[position - 1])
        for _idx, instr in self.defs_of(func_name, var_name):
            if isinstance(instr, Move):
                self.taint_operand(func_name, instr.src)
            elif isinstance(instr, BinOp):
                self.taint_operand(func_name, instr.a)
                self.taint_operand(func_name, instr.b)
            elif isinstance(instr, Load):
                if isinstance(instr.addr, Var):
                    self._trace_address(func_name, instr.addr.name)
            elif isinstance(instr, (Gep, Index)):
                for op in instr.uses():
                    self.taint_operand(func_name, op)
            elif isinstance(instr, Call):
                self._taint_return_values(instr.callee)
            elif isinstance(instr, AddrGlobal):
                self.taint_global(instr.name)

    def _trace_address(self, func_name, addr_var):
        """The value behind ``addr_var`` is sensitive: find what it names."""
        self.taint_local(func_name, addr_var)
        for _idx, instr in self.defs_of(func_name, addr_var):
            if isinstance(instr, Gep):
                self.taint_field(instr.struct, instr.field_name)
                self.taint_operand(func_name, instr.base)
            elif isinstance(instr, AddrGlobal):
                self.taint_global(instr.name)
            elif isinstance(instr, AddrLocal):
                self.taint_local(func_name, instr.var)
            elif isinstance(instr, Index):
                self.taint_operand(func_name, instr.index)
                if isinstance(instr.base, Var):
                    self._trace_address(func_name, instr.base.name)
            elif isinstance(instr, BinOp):
                if isinstance(instr.a, Var):
                    self._trace_address(func_name, instr.a.name)
                self.taint_operand(func_name, instr.b)

    def _taint_return_values(self, callee_name):
        callee = self.module.functions.get(callee_name)
        if callee is None or callee.name in self.wrappers:
            return
        for instr in callee.body:
            if isinstance(instr, Ret) and instr.value is not None:
                self.taint_operand(callee_name, instr.value)

    def _spread_field(self, struct, field_name):
        for func in self.module.functions.values():
            if func.name in self.wrappers:
                continue
            for idx, instr in enumerate(func.body):
                if not isinstance(instr, Store) or not isinstance(instr.addr, Var):
                    continue
                for _di, d in self.defs_of(func.name, instr.addr.name):
                    if (
                        isinstance(d, Gep)
                        and d.struct == struct
                        and d.field_name == field_name
                    ):
                        self.taint_operand(func.name, instr.value)
                        self.taint_operand(func.name, d.base)

    def _spread_global(self, name):
        for func in self.module.functions.values():
            if func.name in self.wrappers:
                continue
            for idx, instr in enumerate(func.body):
                if not isinstance(instr, Store) or not isinstance(instr.addr, Var):
                    continue
                if self._addr_names_global(func.name, instr.addr.name, name, 0):
                    self.taint_operand(func.name, instr.value)

    def _addr_names_global(self, func_name, var_name, global_name, depth):
        if depth > _ADDR_DEPTH:
            return False
        for _idx, d in self.defs_of(func_name, var_name):
            if isinstance(d, AddrGlobal) and d.name == global_name:
                return True
            if isinstance(d, (Index, Gep)) and isinstance(d.base, Var):
                if self._addr_names_global(
                    func_name, d.base.name, global_name, depth + 1
                ):
                    return True
            if isinstance(d, BinOp) and isinstance(d.a, Var):
                if self._addr_names_global(
                    func_name, d.a.name, global_name, depth + 1
                ):
                    return True
        return False

    def sensitive_store_sites(self):
        """``(func, index)`` of every store to a tainted field or global."""
        sites = set()
        for func in self.module.functions.values():
            if func.name in self.wrappers:
                continue
            for idx, instr in enumerate(func.body):
                if not isinstance(instr, Store) or not isinstance(instr.addr, Var):
                    continue
                hit = False
                for _di, d in self.defs_of(func.name, instr.addr.name):
                    if isinstance(d, Gep) and (d.struct, d.field_name) in self.fields:
                        hit = True
                if not hit:
                    hit = any(
                        self._addr_names_global(func.name, instr.addr.name, g, 0)
                        for g in self.globals
                    )
                if hit:
                    sites.add((func.name, idx))
        return sites


# ---------------------------------------------------------------------------
# instrumentation scanning
# ---------------------------------------------------------------------------


def _is_ctx_write(instr):
    return isinstance(instr, Intrinsic) and instr.name == CTX_WRITE_MEM


def _is_ctx_bind(instr):
    return isinstance(instr, Intrinsic) and instr.name in (
        CTX_BIND_MEM,
        CTX_BIND_CONST,
    )


def _instrumentation_window(body, start):
    """Indices of the instrumentation block following body position ``start``.

    The instrumenter only inserts ``AddrLocal`` temporaries and intrinsics,
    so the window extends while those are the only instruction kinds seen.
    """
    idx = start + 1
    while idx < len(body) and isinstance(body[idx], (AddrLocal, Intrinsic)):
        yield idx
        idx += 1


def _write_covered(body, def_index, var_name):
    """Is the definition at ``def_index`` followed by ctx_write_mem(&var)?"""
    addr_temps = set()
    for j in _instrumentation_window(body, def_index):
        instr = body[j]
        if isinstance(instr, AddrLocal) and instr.var == var_name:
            addr_temps.add(instr.dst)
        elif (
            _is_ctx_write(instr)
            and instr.args
            and isinstance(instr.args[0], Var)
            and instr.args[0].name in addr_temps
        ):
            return True
    return False


def _store_covered(body, store_index):
    """Is the store at ``store_index`` followed by ctx_write_mem(addr)?"""
    store = body[store_index]
    for j in _instrumentation_window(body, store_index):
        instr = body[j]
        if _is_ctx_write(instr) and instr.args and instr.args[0] == store.addr:
            return True
    return False


def _entry_refreshes(func):
    """Parameter names refreshed by the function-entry instrumentation."""
    refreshed = set()
    addr_of = {}
    for instr in func.body:
        if isinstance(instr, AddrLocal):
            addr_of[instr.dst] = instr.var
        elif _is_ctx_write(instr):
            if instr.args and isinstance(instr.args[0], Var):
                var = addr_of.get(instr.args[0].name)
                if var in func.params:
                    refreshed.add(var)
        elif not isinstance(instr, Intrinsic):
            break  # past the entry instrumentation block
    return refreshed


def _bind_records(func):
    """``{(callsite_index, position): intrinsic name}`` for one function."""
    records = {}
    for instr in func.body:
        if _is_ctx_bind(instr):
            key = (instr.meta.get("callsite_index"), instr.meta.get("pos"))
            records[key] = instr.name
    return records


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


def check_completeness(artifact):
    """Run the completeness pass over a compiled artifact.

    Returns ``(diagnostics, metrics)``.
    """
    module = artifact.module
    metadata = artifact.metadata
    diagnostics = []

    sites = find_sensitive_sites(module, metadata.sensitive_set)

    # 1. Every sensitive callsite derivable from the IR has metadata.
    for (func_name, idx), syscall in sorted(sites.items()):
        meta = metadata.callsites.get(_site_key(metadata, func_name, idx))
        if meta is None or meta.syscall is None:
            diagnostics.append(
                Diagnostic(
                    PASS_NAME,
                    "unprotected-site",
                    "error",
                    "sensitive syscall callsite has no argument-integrity "
                    "metadata",
                    func=func_name,
                    index=idx,
                    syscall=syscall,
                )
            )

    # 2. Every metadata binding is established by a bind intrinsic in the IR.
    for site_key, meta in sorted(
        metadata.callsites.items(), key=lambda kv: kv[0]
    ):
        func = module.functions.get(site_key.func)
        if func is None:
            continue  # the consistency pass reports dangling sites
        records = _bind_records(func)
        for binding in meta.binds:
            recorded = records.get((site_key.index, binding.position))
            if recorded is None:
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "missing-bind",
                        "error",
                        "metadata expects a %s binding for arg%d but no "
                        "ctx_bind intrinsic targets this callsite"
                        % (binding.kind, binding.position),
                        func=site_key.func,
                        index=site_key.index,
                        syscall=meta.syscall,
                    )
                )
            else:
                expected = (
                    CTX_BIND_CONST if binding.kind == "const" else CTX_BIND_MEM
                )
                if recorded != expected:
                    diagnostics.append(
                        Diagnostic(
                            PASS_NAME,
                            "bind-kind-mismatch",
                            "error",
                            "arg%d bound with %s but metadata records a %s "
                            "binding"
                            % (binding.position, recorded, binding.kind),
                            func=site_key.func,
                            index=site_key.index,
                            syscall=meta.syscall,
                        )
                    )

    # 3. Independent taint: every store of a sensitive variable is shadowed.
    taint = _Taint(module)
    seeds = []
    for (func_name, idx), _syscall in sites.items():
        instr = module.functions[func_name].body[idx]
        for arg in instr.args[:MAX_TAINT_POSITION]:
            seeds.append((func_name, arg))
    taint.run(seeds)

    covered_defs = 0
    for func_name, var_name in sorted(taint.locals):
        func = module.functions[func_name]
        if var_name in func.params and not _defined_before_use(func, var_name):
            if var_name not in _entry_refreshes(func):
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "missing-param-refresh",
                        "error",
                        "sensitive parameter %%%s is never refreshed at "
                        "function entry" % var_name,
                        func=func_name,
                        index=0,
                    )
                )
            else:
                covered_defs += 1
        for idx, instr in taint.defs_of(func_name, var_name):
            if isinstance(instr, Load):
                continue  # loads are deliberately not refresh points
            if _write_covered(func.body, idx, var_name):
                covered_defs += 1
            else:
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "missing-write-shadow",
                        "error",
                        "definition of sensitive %%%s is not followed by "
                        "ctx_write_mem" % var_name,
                        func=func_name,
                        index=idx,
                    )
                )

    for func_name, idx in sorted(taint.sensitive_store_sites()):
        func = module.functions[func_name]
        if _store_covered(func.body, idx):
            covered_defs += 1
        else:
            diagnostics.append(
                Diagnostic(
                    PASS_NAME,
                    "missing-store-shadow",
                    "error",
                    "store to a sensitive field/global is not followed by "
                    "ctx_write_mem",
                    func=func_name,
                    index=idx,
                )
            )

    metrics = {
        "sensitive_sites": len(sites),
        "tainted_locals": len(taint.locals),
        "tainted_fields": len(taint.fields),
        "tainted_globals": len(taint.globals),
        "covered_writes": covered_defs,
    }
    return diagnostics, metrics


def _site_key(metadata, func_name, index):
    for key in metadata.callsites:
        if key.func == func_name and key.index == index:
            return key
    # SiteKey is a frozen dataclass; build one for the lookup miss path
    from repro.compiler.metadata import SiteKey

    return SiteKey(func_name, index)


def _defined_before_use(func, param):
    """True when the parameter is shadowed by an explicit definition."""
    for instr in func.body:
        if param in instr.defs():
            return True
        for op in instr.uses():
            if isinstance(op, Var) and op.name == param:
                return False
    return False
