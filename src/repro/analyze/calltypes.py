"""Call-type audit pass (B-Side style, §6.1 cross-check).

Re-derives the directly-/indirectly-/not-callable classification for every
syscall straight from the shipped IR — its own wrapper detection, its own
call-edge and address-taken scan — and diffs the result against the
``call_types`` table the compiler emitted into the metadata.

Two failure directions, both errors:

- **over-permissive**: the metadata allows a call type the IR cannot
  produce.  The monitor's seccomp filter would accept a syscall the program
  can never legitimately make — exactly the gap B-Side hunts for in
  binary-only policy generators.
- **missing**: the IR can produce a call type the metadata forbids.  The
  monitor would kill a legitimate execution.
"""

from repro.analyze.common import wrapper_map as _wrapper_map
from repro.analyze.diagnostics import Diagnostic
from repro.ir.instructions import Call, FuncAddr, Syscall
from repro.syscalls import SYSCALL_BY_NAME

PASS_NAME = "call-type"
_KINDS = ("direct", "indirect")


def recompute_call_types(module):
    """``{syscall: {"direct": bool, "indirect": bool}}`` from the IR alone."""
    wrappers = _wrapper_map(module)
    called = set()  # function names targeted by a direct Call
    address_taken = set()
    inline = {}  # syscall -> True for raw Syscall in non-wrapper code
    for func in module.functions.values():
        for instr in func.body:
            if isinstance(instr, Call):
                called.add(instr.callee)
            elif isinstance(instr, FuncAddr):
                address_taken.add(instr.func)
            elif isinstance(instr, Syscall) and func.name not in wrappers:
                inline[instr.name] = True

    table = {}

    def mark(syscall, kind):
        entry = table.setdefault(syscall, {"direct": False, "indirect": False})
        entry[kind] = True

    for wrapper_name, syscall_names in wrappers.items():
        if wrapper_name in called:
            for name in syscall_names:
                mark(name, "direct")
        if wrapper_name in address_taken:
            for name in syscall_names:
                mark(name, "indirect")
    for name in inline:
        mark(name, "direct")
    return table


def audit_call_types(module, metadata):
    """Diff the metadata's call-type table against a fresh recomputation.

    Returns ``(diagnostics, metrics)``.
    """
    recomputed = recompute_call_types(module)
    published = metadata.call_types
    diagnostics = []

    for syscall in sorted(set(published) | set(recomputed)):
        want = recomputed.get(syscall, {"direct": False, "indirect": False})
        have = published.get(syscall, {"direct": False, "indirect": False})
        for kind in _KINDS:
            if have.get(kind) and not want[kind]:
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "over-permissive",
                        "error",
                        "metadata classifies %s as %sly-callable but no IR "
                        "construct can issue it that way" % (syscall, kind),
                        syscall=syscall,
                    )
                )
            elif want[kind] and not have.get(kind):
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "missing-call-type",
                        "error",
                        "the IR can issue %s %sly but the metadata would have "
                        "the monitor kill it" % (syscall, kind),
                        syscall=syscall,
                    )
                )

    direct = sum(1 for entry in recomputed.values() if entry["direct"])
    indirect = sum(1 for entry in recomputed.values() if entry["indirect"])
    metrics = {
        "table_size": len(SYSCALL_BY_NAME),
        "used_syscalls": len(recomputed),
        "directly_callable": direct,
        "indirectly_callable": indirect,
        "not_callable": len(SYSCALL_BY_NAME) - len(recomputed),
    }
    return diagnostics, metrics
