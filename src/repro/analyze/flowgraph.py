"""Syscall-flow precision pass (SFIP-style, §6.2 cross-check).

Builds the *syscall-flow graph*: for each sensitive syscall callsite, the
set of legitimate call chains that can reach it under the control-flow
context the compiler emitted (``valid_callers`` + ``indirect_sites`` +
``address_taken``).  From it we compute the precision metrics SFIP reports
for static syscall-flow extraction:

- **chains per syscall** — how many distinct legitimate paths from the
  program entry (or a thread entry) end at a callsite of that syscall.
  Fewer chains = a tighter control-flow context = less room for an
  attacker to mimic a legitimate stack.
- **attack surface** — ``sum(chains(site) * reachable_args(syscall))``
  over all sensitive sites: the number of (path, argument) pairs an
  attacker could try to abuse while staying within policy.

Chain counting walks caller edges backward with memoization; recursive
cycles are cut at the first repeated function on the current path (a
recursive frame adds no *new* stack shape the monitor could distinguish),
and counts saturate at :data:`CHAIN_CAP` so pathological graphs stay
finite.  Sites whose function no legitimate chain reaches are reported as
``unreachable-site`` warnings — protected code the control-flow context
says can never run is a precision loss, not a soundness hole.
"""

from repro.analyze.completeness import find_sensitive_sites
from repro.analyze.diagnostics import Diagnostic
from repro.policy import CompiledPolicy, FlowFunction, build_transition_graph
from repro.syscalls import argspec_for

PASS_NAME = "flow"

#: chain counts saturate here; beyond this precision differences are noise
CHAIN_CAP = 1_000_000


class ChainCounter:
    """Memoized backward chain counter over the metadata's caller edges."""

    def __init__(self, metadata):
        self.metadata = metadata
        self.roots = {metadata.entry} | set(metadata.thread_entries)
        self.address_taken = set(metadata.address_taken)
        self.indirect_site_count = len(metadata.indirect_sites)
        self._memo = {}

    def chains_to(self, func_name):
        """Number of legitimate call chains from a root to ``func_name``."""
        return self._count(func_name, ())

    def _count(self, func_name, path):
        if func_name in path:
            return 0  # recursion: cut the cycle
        memoized = self._memo.get(func_name)
        if memoized is not None:
            return memoized
        total = 1 if func_name in self.roots else 0
        path = path + (func_name,)
        for site in self.metadata.valid_callers.get(func_name, ()):
            total += self._count(site.func, path)
            if total >= CHAIN_CAP:
                total = CHAIN_CAP
                break
        if total < CHAIN_CAP and func_name in self.address_taken:
            # §6.2: a partial stack ending at a legitimate indirect callsite
            # is valid when the callee there is address-taken — each indirect
            # callsite is therefore a chain terminus of its own.
            total = min(CHAIN_CAP, total + self.indirect_site_count)
        self._memo[func_name] = total
        return total


def reachable_args(syscall):
    """Argument positions the monitor verifies for ``syscall``."""
    return len(argspec_for(syscall).kinds)


def analyze_flow(artifact):
    """Compute syscall-flow precision metrics for a compiled artifact.

    Returns ``(diagnostics, metrics)``.
    """
    module = artifact.module
    metadata = artifact.metadata
    counter = ChainCounter(metadata)
    sites = find_sensitive_sites(module, metadata.sensitive_set)

    diagnostics = []
    per_syscall = {}
    total_chains = 0
    attack_surface = 0
    for (func_name, index), syscall in sorted(sites.items()):
        chains = counter.chains_to(func_name)
        if chains == 0:
            diagnostics.append(
                Diagnostic(
                    PASS_NAME,
                    "unreachable-site",
                    "warning",
                    "no legitimate call chain reaches this %s callsite under "
                    "the emitted control-flow context" % syscall,
                    func=func_name,
                    index=index,
                    syscall=syscall,
                )
            )
        args = reachable_args(syscall)
        entry = per_syscall.setdefault(
            syscall, {"sites": 0, "chains": 0, "args": args, "surface": 0}
        )
        entry["sites"] += 1
        entry["chains"] = min(CHAIN_CAP, entry["chains"] + chains)
        entry["surface"] = min(CHAIN_CAP, entry["surface"] + chains * args)
        total_chains = min(CHAIN_CAP, total_chains + chains)
        attack_surface = min(CHAIN_CAP, attack_surface + chains * args)

    metrics = {
        "sensitive_sites": len(sites),
        "chains": total_chains,
        "attack_surface": attack_surface,
        "per_syscall": {name: dict(v) for name, v in sorted(per_syscall.items())},
    }
    return diagnostics, metrics


def compile_policy(artifact, module=None):
    """Compile a :class:`~repro.policy.CompiledPolicy` from the metadata.

    The *flowgraph producer*: runs the shared transition-flow engine
    (:mod:`repro.policy.flow`) over the module IR, rooted at the
    metadata's entry point and thread entries, with the metadata's
    address-taken set as the indirect fan-out.  Pass ``module`` to
    analyze a different build of the same program (the ``sfip``
    mechanisms run the *vanilla* module — function names and call
    structure are identical across instrumentation, so the policy is
    interchangeable; the zero-false-kill tests pin that).
    """
    module = module if module is not None else artifact.module
    metadata = artifact.metadata
    functions = {
        name: FlowFunction(fid=name, symbol=name, instrs=tuple(fn.body))
        for name, fn in module.functions.items()
    }
    graph = build_transition_graph(
        functions,
        entry=metadata.entry,
        resolve_callee=lambda name: name if name in functions else None,
        indirect_targets=tuple(metadata.address_taken),
        thread_entries=tuple(metadata.thread_entries),
    )
    call_kinds = {
        syscall: tuple(k for k in ("direct", "indirect") if entry.get(k))
        for syscall, entry in sorted(metadata.call_types.items())
        if any(entry.get(k) for k in ("direct", "indirect"))
    }
    return CompiledPolicy(
        producer="flowgraph",
        program=metadata.program,
        entry=metadata.entry,
        presence=graph.nodes,
        call_kinds=call_kinds,
        transitions=graph.transitions,
        provenance={
            "source": "compiler-metadata",
            "functions": len(functions),
            "reachable_functions": len(graph.reachable),
            "indirect_targets": len(metadata.address_taken),
            "thread_entries": sorted(metadata.thread_entries),
        },
    )
