"""Metadata/monitor consistency pass.

The monitor trusts the metadata blindly: it resolves every ``SiteKey`` to a
code address and enforces whatever the tables say.  This pass closes the
loop — it checks, in both directions, that the chains and sites the monitor
would accept are exactly the ones derivable from the shipped IR:

- every ``SiteKey`` resolves to a real instruction of the right kind
  (a dangling or mistyped key makes the monitor compare against garbage);
- every call edge the metadata accepts exists in the IR, and every edge
  the IR contains for a tracked callee is accepted (a missing edge kills
  legitimate executions, an extra edge admits forged stacks);
- the indirect-callsite and address-taken tables match the IR's
  ``CallIndirect``/``FuncAddr`` instructions exactly;
- sensitive globals and global field slots name real globals;
- the provenance block matches the module the metadata shipped with.
"""

from repro.analyze.diagnostics import Diagnostic
from repro.ir.instructions import Call, CallIndirect, FuncAddr, Syscall

PASS_NAME = "consistency"


def _resolve(module, site):
    func = module.functions.get(site.func)
    if func is None or not (0 <= site.index < len(func.body)):
        return None
    return func.body[site.index]


def check_consistency(module, metadata):
    """Cross-check ``metadata`` against ``module``.

    Returns ``(diagnostics, metrics)``.
    """
    diagnostics = []

    def bad(code, message, **kw):
        diagnostics.append(
            Diagnostic(PASS_NAME, code, "error", message, **kw)
        )

    # --- SiteKey resolution + instruction kinds ------------------------
    checked_sites = 0
    for callee, sites in sorted(metadata.valid_callers.items()):
        for site in sites:
            checked_sites += 1
            instr = _resolve(module, site)
            if instr is None:
                bad(
                    "dangling-site",
                    "valid-caller site for %s does not resolve to an "
                    "instruction" % callee,
                    func=site.func,
                    index=site.index,
                )
            elif not isinstance(instr, Call) or instr.callee != callee:
                bad(
                    "edge-not-derivable",
                    "metadata accepts a call edge to %s here but the "
                    "instruction is %s" % (callee, type(instr).__name__),
                    func=site.func,
                    index=site.index,
                )

    for site in metadata.indirect_sites:
        checked_sites += 1
        instr = _resolve(module, site)
        if not isinstance(instr, CallIndirect):
            bad(
                "dangling-site",
                "indirect-site entry does not resolve to a CallIndirect",
                func=site.func,
                index=site.index,
            )

    for site, meta in sorted(metadata.callsites.items()):
        checked_sites += 1
        instr = _resolve(module, site)
        if not isinstance(instr, (Call, CallIndirect, Syscall)):
            bad(
                "dangling-site",
                "argument-integrity site does not resolve to a call",
                func=site.func,
                index=site.index,
                syscall=meta.syscall,
            )

    # --- reverse direction: IR constructs the tables must cover --------
    tracked = set(metadata.valid_callers)
    ir_indirect = set()
    ir_address_taken = set()
    for func in module.functions.values():
        for idx, instr in enumerate(func.body):
            if isinstance(instr, Call) and instr.callee in tracked:
                sites = metadata.valid_callers[instr.callee]
                if not any(
                    s.func == func.name and s.index == idx for s in sites
                ):
                    bad(
                        "edge-not-accepted",
                        "the IR calls %s here but the monitor would reject "
                        "the stack edge" % instr.callee,
                        func=func.name,
                        index=idx,
                    )
            elif isinstance(instr, CallIndirect):
                ir_indirect.add((func.name, idx))
            elif isinstance(instr, FuncAddr):
                ir_address_taken.add(instr.func)

    meta_indirect = {(s.func, s.index) for s in metadata.indirect_sites}
    for func_name, idx in sorted(ir_indirect - meta_indirect):
        bad(
            "indirect-site-missing",
            "CallIndirect instruction absent from the indirect-site table — "
            "the monitor would reject this legitimate dispatch",
            func=func_name,
            index=idx,
        )

    meta_taken = set(metadata.address_taken)
    for name in sorted(meta_taken - ir_address_taken):
        bad(
            "address-taken-extra",
            "%s is listed address-taken but no FuncAddr targets it" % name,
            func=name,
        )
    for name in sorted(ir_address_taken - meta_taken):
        bad(
            "address-taken-missing",
            "FuncAddr targets %s but it is absent from the address-taken "
            "table" % name,
            func=name,
        )

    # --- named entities ------------------------------------------------
    for name in metadata.sensitive_globals:
        if name not in module.globals:
            bad(
                "unknown-global",
                "sensitive global %s does not exist in the module" % name,
            )
    for name, _offset in metadata.global_field_slots:
        if name not in module.globals:
            bad(
                "unknown-global",
                "global field slot names missing global %s" % name,
            )

    for func_name, syscalls in sorted(metadata.syscall_functions.items()):
        func = module.functions.get(func_name)
        if func is None:
            bad(
                "unknown-function",
                "syscall_functions names missing function %s" % func_name,
                func=func_name,
            )
            continue
        present = {i.name for i in func.body if isinstance(i, Syscall)}
        for syscall in syscalls:
            if syscall not in present:
                bad(
                    "syscall-function-mismatch",
                    "%s is recorded as containing syscall %s but has no such "
                    "Syscall instruction" % (func_name, syscall),
                    func=func_name,
                    syscall=syscall,
                )

    # --- provenance ----------------------------------------------------
    provenance = metadata.provenance
    if provenance:
        recorded = provenance.get("instrumented_instructions")
        actual = module.instruction_count()
        if recorded is not None and recorded != actual:
            bad(
                "provenance-mismatch",
                "metadata was produced for a module with %s instructions but "
                "this one has %d — artifact and metadata do not match"
                % (recorded, actual),
            )
    else:
        diagnostics.append(
            Diagnostic(
                PASS_NAME,
                "no-provenance",
                "warning",
                "metadata carries no provenance block; cannot confirm it was "
                "produced for this module",
            )
        )

    metrics = {
        "checked_sites": checked_sites,
        "tracked_callees": len(tracked),
        "indirect_sites": len(meta_indirect),
        "address_taken": len(meta_taken),
    }
    return diagnostics, metrics
