"""Pass-suite driver: compile (when needed), run every pass, build a report."""

from repro.analyze.calltypes import audit_call_types
from repro.analyze.completeness import check_completeness
from repro.analyze.consistency import check_consistency
from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.flowgraph import analyze_flow
from repro.analyze.waivers import SHIPPED_WAIVERS, apply_waivers

#: pass name -> runner(artifact) -> (diagnostics, metrics), in report order
PASS_ORDER = ("completeness", "call-type", "flow", "consistency")


def analyze_artifact(artifact, waivers=SHIPPED_WAIVERS, program=None):
    """Run the full pass suite over a compiled :class:`BastionArtifact`."""
    if program is None:
        program = artifact.metadata.program
    runners = {
        "completeness": lambda: check_completeness(artifact),
        "call-type": lambda: audit_call_types(artifact.module, artifact.metadata),
        "flow": lambda: analyze_flow(artifact),
        "consistency": lambda: check_consistency(
            artifact.module, artifact.metadata
        ),
    }
    diagnostics = []
    metrics = {}
    for name in PASS_ORDER:
        found, pass_metrics = runners[name]()
        diagnostics.extend(found)
        metrics[name] = pass_metrics
    kept, waived = apply_waivers(program, diagnostics, waivers or ())
    return AnalysisReport(
        program=program, diagnostics=kept, waived=waived, metrics=metrics
    )


def analyze_module(module, sensitive=None, waivers=SHIPPED_WAIVERS):
    """Compile ``module`` with the BASTION pipeline, then analyze it."""
    from repro.compiler.pipeline import BastionCompiler

    artifact = BastionCompiler(sensitive=sensitive).compile(module)
    return analyze_artifact(artifact, waivers=waivers)


def analyze_app(name, waivers=SHIPPED_WAIVERS):
    """Build + compile + analyze one registered synthetic app."""
    from repro.apps import build_app_module

    return analyze_module(build_app_module(name), waivers=waivers)
