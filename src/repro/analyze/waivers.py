"""Waivers: documented, reviewed exceptions to analyzer findings.

A waiver suppresses findings matching a (app, pass, code[, func][, syscall])
pattern.  Every waiver must carry a human-readable ``reason`` — the waiver
table is the audit trail for why a finding is tolerated, and docs/analyze.md
documents the format.  ``--no-waivers`` on the CLI disables the table so the
raw findings are always recoverable.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Waiver:
    """One documented exception."""

    app: str  # program name the waiver applies to ('*' = any)
    pass_name: str  # pass the finding comes from ('*' = any)
    code: str  # diagnostic code ('*' = any)
    reason: str  # mandatory justification, shown in reports
    func: str = None  # optionally narrow to one function
    syscall: str = None  # optionally narrow to one syscall

    def matches(self, program, diag):
        if self.app not in ("*", program):
            return False
        if self.pass_name not in ("*", diag.pass_name):
            return False
        if self.code not in ("*", diag.code):
            return False
        if self.func is not None and self.func != diag.func:
            return False
        if self.syscall is not None and self.syscall != diag.syscall:
            return False
        return True


def apply_waivers(program, diagnostics, waivers):
    """Split ``diagnostics`` into (kept, [(diagnostic, waiver), ...])."""
    kept = []
    waived = []
    for diag in diagnostics:
        hit = next(
            (w for w in waivers if w.matches(program, diag)), None
        )
        if hit is None:
            kept.append(diag)
        else:
            waived.append((diag, hit))
    return kept, waived


#: Waivers for the shipped synthetic apps.  Entries added here must explain
#: *why* the finding is a non-issue, not just silence it.
SHIPPED_WAIVERS = (
    # libc's system() is linked into every binary but deliberately never
    # called — it exists as the classic ret2libc surface (Table 6's ROP
    # rows).  Its fork/execve callsites are unreachable under the emitted
    # control-flow context *by design*: that is the property the paper's
    # CF context exploits to stop ret2libc payloads, not a precision loss.
    Waiver(
        app="*",
        pass_name="flow",
        code="unreachable-site",
        func="system",
        reason="system() is the intentionally-uncalled ret2libc surface; "
        "unreachable under the CF context by design (Table 6)",
    ),
    # The binary-level audit flags the same surface from the other side:
    # the metadata's direct call types for fork/execve/wait4/exit are
    # justified *only* by system()'s dead body, so the recovered policy
    # drops them.  That tightening is the binary-only mechanism's win
    # (it is what kills ret2system) — not a recovery defect.
    Waiver(
        app="*",
        pass_name="binary",
        code="unreachable-call-type",
        func="system",
        reason="system()'s dead fork/execve/wait4/exit callsites are the "
        "intentional ret2libc surface; dropping them from the recovered "
        "tables is the binary-only mechanism's point (blocks ret2system)",
    ),
)
