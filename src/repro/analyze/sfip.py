"""SFIP transition-precision report: both policy producers, side by side.

``python -m repro.analyze sfip`` compiles every requested app's
:class:`~repro.policy.CompiledPolicy` twice — the metadata-driven
flowgraph producer (what the ``sfip`` mechanisms enforce) and the
metadata-free binary producer (the B-Side contrast) — and reports the
transition-graph precision of each: node count, edge count, origin
annotations, graph density, and the start row.

The payload embeds the *full* transition graphs, byte-stably serialized,
so the ``sfip-precision`` CI gate pins the exact policy the mechanisms
enforce (``tests/fixtures/sfip_precision.json``).  The regression check
is directional both ways:

- an edge (or origin) in the current graph the baseline lacked — the
  enforced state machine got looser (new attacker room admitted);
- an edge (or origin) in the baseline missing from the current graph —
  a legitimate adjacency was lost (the mechanism would false-kill a
  benign execution the baseline allowed).
"""

from repro.analyze.binary import recover_image_for
from repro.analyze.binary import compile_policy as compile_binary_policy
from repro.analyze.flowgraph import compile_policy as compile_flow_policy
from repro.apps import build_app_module
from repro.compiler.pipeline import BastionCompiler


def _summary(policy):
    return {
        "syscalls": len(policy.presence),
        "edges": policy.edge_count(),
        "origins": policy.origin_count(),
        "density_pct": policy.density_pct(),
        "start": list(policy.start_syscalls),
    }


def sfip_report(app):
    """One app's transition-precision payload (both producers)."""
    module = build_app_module(app)
    artifact = BastionCompiler().compile(module)
    flow_policy = compile_flow_policy(artifact)
    binary_policy = compile_binary_policy(
        recover_image_for(artifact.module), program=artifact.metadata.program
    )
    return {
        "program": artifact.metadata.program,
        "flowgraph": {
            "summary": _summary(flow_policy),
            "policy": flow_policy.to_payload(),
        },
        "binary": {
            "summary": _summary(binary_policy),
            "policy": binary_policy.to_payload(),
        },
    }


def sfip_payload_json(payload):
    """Canonical byte-stable serialization of an ``{app: report}`` payload."""
    import json

    return json.dumps(payload, indent=2, sort_keys=True)


def _edge_set(policy_payload):
    """{(prev, next): set(origins)} from a serialized policy."""
    return {
        (prev, nxt): set(origins)
        for prev, nexts in policy_payload["transitions"].items()
        for nxt, origins in nexts.items()
    }


def check_sfip_regressions(baseline, current):
    """Directional transition-graph diff for the ``sfip-precision`` gate.

    Returns human-readable regression lines (empty = pass).  Checked per
    app and per producer; see the module docstring for the directions.
    """
    regressions = []
    for app in sorted(baseline):
        if app not in current:
            regressions.append("%s: app missing from current payload" % app)
            continue
        for producer in ("flowgraph", "binary"):
            base = _edge_set(baseline[app][producer]["policy"])
            cur = _edge_set(current[app][producer]["policy"])
            for prev, nxt in sorted(set(cur) - set(base)):
                regressions.append(
                    "%s[%s]: admits new transition %s -> %s "
                    "(baseline excluded it)" % (app, producer, prev, nxt)
                )
            for prev, nxt in sorted(set(base) - set(cur)):
                regressions.append(
                    "%s[%s]: legitimate transition %s -> %s lost "
                    "(false-kill risk)" % (app, producer, prev, nxt)
                )
            for edge in sorted(set(base) & set(cur)):
                added = cur[edge] - base[edge]
                lost = base[edge] - cur[edge]
                if added:
                    regressions.append(
                        "%s[%s]: %s -> %s admits new origins %s"
                        % (app, producer, edge[0], edge[1], sorted(added))
                    )
                if lost:
                    regressions.append(
                        "%s[%s]: %s -> %s lost origins %s (false-kill risk)"
                        % (app, producer, edge[0], edge[1], sorted(lost))
                    )
    return regressions


def sfip_text(name, report):
    """Human-readable per-app precision summary."""
    flow = report["flowgraph"]["summary"]
    binary = report["binary"]["summary"]
    return [
        "=== %s (sfip transition precision) ===" % name,
        "flowgraph: %d syscalls, %d edges (%d origins), %.2f%% density, "
        "start=%s"
        % (
            flow["syscalls"],
            flow["edges"],
            flow["origins"],
            flow["density_pct"],
            ",".join(flow["start"]) or "-",
        ),
        "binary:    %d syscalls, %d edges (%d origins), %.2f%% density, "
        "start=%s"
        % (
            binary["syscalls"],
            binary["edges"],
            binary["origins"],
            binary["density_pct"],
            ",".join(binary["start"]) or "-",
        ),
        "binary coarsening: %+d edges vs flowgraph"
        % (binary["edges"] - flow["edges"]),
        "",
    ]
