"""The measurement harness: one function to run (app, workload, defense).

Measurement methodology mirrors §9.1: workloads run to completion under a
deterministic cycle model; throughput is computed over the *steady state*
(cycles after the first accepted connection), so initialization — where the
paper notes BASTION's cost is "on the order of ten to twenty milliseconds" —
is reported separately rather than polluting the steady-state overheads.
"""

from dataclasses import dataclass, field

from repro.apps.nginx import (
    CONF_PATH,
    DOC_ROOT,
    LOG_PATH,
    NginxConfig,
    PAGE_BYTES,
    UPGRADE_BINARY,
    build_nginx,
)
from repro.apps.sqlite import DB_PATH, JOURNAL_PATH, SqliteConfig, build_sqlite
from repro.apps.vsftpd import FILE_PATH, VsftpdConfig, build_vsftpd
from repro.apps.workloads import Dbt2Workload, DkftpbenchWorkload, WrkWorkload
from repro.kernel.kernel import Kernel
from repro.monitor.policy import ContextPolicy
from repro.vm.cpu import CPUOptions

#: simulated clock used to convert cycles into seconds for display
SIM_HZ = 3_000_000_000

#: size of the file dkftpbench downloads (paper: 100 MB; scaled for sim time)
FTP_FILE_BYTES = 5 * 1024 * 1024

#: prepopulated database size for mini-SQLite (256 pages x 512 B)
DB_BYTES = 256 * 512


@dataclass(frozen=True)
class DefenseConfig:
    """One column of Figure 3 / row of Table 7."""

    name: str
    cet: bool = False
    llvm_cfi: bool = False
    dfi: bool = False
    #: None = no monitor; otherwise the ContextPolicy to enforce
    policy: object = None
    #: run the BASTION-instrumented binary (vs the vanilla one)
    instrumented: bool = False
    #: compile/monitor with the §11.2 filesystem extension set
    extend_filesystem: bool = False
    #: non-BASTION software baseline: 'seccomp_allowlist' | 'temporal'
    #: | 'debloat' | 'binary_only' (None = static CPU flags only)
    baseline: str = None

    def cpu_options(self):
        return CPUOptions(cet=self.cet, llvm_cfi=self.llvm_cfi, dfi=self.dfi)

    def mechanism(self):
        """The :class:`ProtectionMechanism` implementing this config."""
        from repro.mechanisms import mechanism_for

        return mechanism_for(self)


def _full():
    """The paper's monitor re-verifies every stop: verdict caching off.

    The Figure 3 / Table 3 / Table 7 configs reproduce the published
    numbers, so they run the exact re-verify-everything monitor; the fast
    path is exposed separately through ``cache_on`` / ``cache_off``.
    """
    return ContextPolicy.full().without("cache")


CONFIGS = {
    "vanilla": DefenseConfig("vanilla"),
    "cet": DefenseConfig("cet", cet=True),
    "cet_ct": DefenseConfig(
        "cet_ct",
        cet=True,
        policy=ContextPolicy.ct_only().without("cache"),
        instrumented=True,
    ),
    "cet_ct_cf": DefenseConfig(
        "cet_ct_cf",
        cet=True,
        policy=ContextPolicy.ct_cf().without("cache"),
        instrumented=True,
    ),
    "cet_ct_cf_ai": DefenseConfig(
        "cet_ct_cf_ai", cet=True, policy=_full(), instrumented=True
    ),
    # Table 7: filesystem-syscall extension, decomposed
    "fs_hook_only": DefenseConfig(
        "fs_hook_only",
        cet=True,
        policy=_full().as_hook_only(),
        instrumented=True,
        extend_filesystem=True,
    ),
    "fs_fetch_state": DefenseConfig(
        "fs_fetch_state",
        cet=True,
        policy=_full().as_fetch_state(),
        instrumented=True,
        extend_filesystem=True,
    ),
    "fs_full": DefenseConfig(
        "fs_full", cet=True, policy=_full(), instrumented=True, extend_filesystem=True
    ),
    # §11.2 ablation: monitor inside the kernel
    "fs_full_inkernel": DefenseConfig(
        "fs_full_inkernel",
        cet=True,
        policy=_full().as_inkernel(),
        instrumented=True,
        extend_filesystem=True,
    ),
    "bastion_inkernel": DefenseConfig(
        "bastion_inkernel", cet=True, policy=_full().as_inkernel(), instrumented=True
    ),
    # monitor fast path: full BASTION with the verdict cache on/off
    "cache_on": DefenseConfig(
        "cache_on", cet=True, policy=ContextPolicy.full(), instrumented=True
    ),
    "cache_off": DefenseConfig(
        "cache_off", cet=True, policy=_full(), instrumented=True
    ),
}

# Every *named* non-BASTION mechanism (llvm_cfi, dfi, the filtering
# baselines, binary_only, sfip, sfip_origin) gets its config from the
# one registry — repro.mechanisms.registry is the source of truth, so a
# newly registered mechanism is benchmarkable and fuzzable without
# touching this dict (tests/baselines/test_registry.py pins that).


def _named_configs():
    from repro.mechanisms.registry import named_defense_configs

    return named_defense_configs()


CONFIGS.update(_named_configs())

#: the Figure 3 x-axis, in order
FIGURE3_LADDER = ("llvm_cfi", "cet", "cet_ct", "cet_ct_cf", "cet_ct_cf_ai")


@dataclass
class RunResult:
    """Everything a bench needs from one run."""

    app: str
    config: str
    status: object
    total_cycles: int = 0
    steady_cycles: int = 0
    init_cycles: int = 0
    work_units: int = 0
    bytes_sent: int = 0
    syscall_counts: dict = field(default_factory=dict)
    hook_counts: dict = field(default_factory=dict)
    hook_total: int = 0
    violations: list = field(default_factory=list)
    ledger_breakdown: dict = field(default_factory=dict)
    avg_unwind_depth: float = 0.0
    max_unwind_depth: int = 0
    metadata_stats: dict = field(default_factory=dict)
    #: MonitorStats.as_dict() plus seccomp action-cache counters
    monitor_stats: dict = field(default_factory=dict)
    #: scheduled runs only: LatencyStats.summary() (p50/p95/p99 in cycles)
    latency: dict = field(default_factory=dict)
    #: scheduled runs only: SchedStats.as_dict()
    sched_stats: dict = field(default_factory=dict)
    #: scheduled runs only: pid -> ExitStatus.kind for every task
    statuses: dict = field(default_factory=dict)
    #: telemetry-bus per-stage cycle attribution ('seccomp', 'trace_stop',
    #: 'verify.unwind', ... — see docs/telemetry.md)
    stage_cycles: dict = field(default_factory=dict)

    def latency_ms(self, which):
        """A latency percentile ('p50'|'p95'|'p99'|'mean') in milliseconds."""
        return 1000.0 * self.latency.get(which, 0) / SIM_HZ

    @property
    def ok(self):
        return self.status.ok

    @property
    def steady_seconds(self):
        return self.steady_cycles / SIM_HZ

    def throughput_mbps(self):
        """NGINX-style MB/s over the steady state."""
        if self.steady_cycles <= 0:
            return 0.0
        return (self.bytes_sent / 1e6) / self.steady_seconds

    def notpm(self):
        """SQLite-style new-order transactions per minute."""
        if self.steady_cycles <= 0:
            return 0.0
        return self.work_units / (self.steady_seconds / 60.0)

    def transfer_seconds(self):
        """vsftpd-style seconds per download."""
        if self.work_units <= 0:
            return 0.0
        return self.steady_seconds / self.work_units

    def overhead_pct(self, baseline):
        """Percent more steady-state cycles than ``baseline``."""
        if baseline.steady_cycles <= 0:
            return 0.0
        return (
            100.0
            * (self.steady_cycles - baseline.steady_cycles)
            / baseline.steady_cycles
        )

    def summary(self):
        return (
            "%s/%s: %s, %d work units, %.2f Mcycles steady, %d hooks, %d violations"
            % (
                self.app,
                self.config,
                self.status.kind,
                self.work_units,
                self.steady_cycles / 1e6,
                self.hook_total,
                len(self.violations),
            )
        )


# ---------------------------------------------------------------------------
# app environments
# ---------------------------------------------------------------------------


def _setup_nginx_env(kernel):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/etc/nginx")
    kernel.vfs.makedirs("/var/www/html")
    kernel.vfs.makedirs("/var/log/nginx")
    kernel.vfs.makedirs("/usr/sbin")
    kernel.vfs.write_file(CONF_PATH, b"worker_processes 4;\n" * 8)
    kernel.vfs.write_file(DOC_ROOT, b"<html>" + b"x" * (PAGE_BYTES - 13) + b"</html>")
    kernel.vfs.write_file(LOG_PATH, b"")
    kernel.vfs.write_file(UPGRADE_BINARY, b"\x7fELF-new-nginx", mode=0o755)
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


def _setup_sqlite_env(kernel):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/data")
    kernel.vfs.write_file(DB_PATH, b"\x00" * DB_BYTES)
    kernel.vfs.write_file(JOURNAL_PATH, b"")
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


def _setup_vsftpd_env(kernel, file_bytes=FTP_FILE_BYTES):
    kernel.vfs.makedirs("/bin")
    kernel.vfs.makedirs("/srv/ftp")
    kernel.vfs.write_file(FILE_PATH, b"\xabdata" * (file_bytes // 5 + 1))
    kernel.vfs.write_file("/bin/sh", b"\x7fELF-shell", mode=0o755)


#: app registry: builders, environment setup, default workloads
_APPS = {
    "nginx": {
        "build": build_nginx,
        "config_cls": NginxConfig,
        "env": _setup_nginx_env,
        "workload": lambda scale: WrkWorkload(
            connections=max(4, int(40 * scale)),
            requests_per_connection=max(6, int(58 * scale)),
        ),
        "work_units": lambda wl: wl.stats.responses,
    },
    "sqlite": {
        "build": build_sqlite,
        "config_cls": SqliteConfig,
        "env": _setup_sqlite_env,
        "workload": lambda scale: Dbt2Workload(
            terminals=max(2, int(8 * scale)),
            transactions_per_terminal=max(4, int(100 * scale)),
        ),
        "work_units": lambda wl: wl.stats.transactions,
    },
    "vsftpd": {
        "build": build_vsftpd,
        "config_cls": VsftpdConfig,
        "env": _setup_vsftpd_env,
        "workload": lambda scale: DkftpbenchWorkload(
            sessions=max(2, int(12 * scale)),
            files_per_session=max(2, int(6 * scale)),
        ),
        "work_units": lambda wl: wl.stats.transfers,
    },
}

_module_cache = {}


def build_app(app, app_config=None):
    """Build (and cache) an application module."""
    entry = _APPS[app]
    config = app_config or entry["config_cls"]()
    key = (app, config)
    if key not in _module_cache:
        _module_cache[key] = entry["build"](config)
    return _module_cache[key]


def _warn_deprecated(message):
    """The harness's single deprecation-warning emission point.

    Every deprecated harness surface funnels through here so the message
    format, category, and stacklevel stay consistent (and tests can pin
    "exactly one emission site").  ``stacklevel=3`` attributes the warning
    to the caller of the deprecated entry point, not to this helper.
    Removal horizons are documented in docs/fastpath.md.
    """
    import warnings

    warnings.warn(message, DeprecationWarning, stacklevel=3)


def run_app(app, config="vanilla", scale=1.0, app_config=None, workload=None):
    """Run one (application, defense configuration) pair to completion.

    Args:
        app: 'nginx' | 'sqlite' | 'vsftpd'.
        config: a name from :data:`CONFIGS` or a :class:`DefenseConfig`.
        scale: workload size multiplier (tests use ~0.1, benches 1.0+).
        app_config: deprecated here — use :func:`repro.api.run`.
        workload: deprecated here — use :func:`repro.api.run`.

    Returns:
        :class:`RunResult`
    """
    if app_config is not None or workload is not None:
        _warn_deprecated(
            "run_app(app_config=..., workload=...) is deprecated; "
            "use repro.api.run(app, workload=..., app_config=...) instead"
        )
    return _run_app(
        app, config=config, scale=scale, app_config=app_config, workload=workload
    )


def _prepare(app, defense, app_config):
    """Shared launch plumbing: kernel + env + mechanism + root proc/cpu.

    Defense-agnostic by construction: every config — BASTION and all the
    baselines — launches through its :class:`ProtectionMechanism`.
    """
    entry = _APPS[app]
    module = build_app(app, app_config)

    kernel = Kernel()
    entry["env"](kernel)

    mechanism = defense.mechanism()
    proc, cpu = mechanism.launch(kernel, app, module)
    return entry, kernel, mechanism.monitor, proc, cpu


def _attach_monitor_stats(result, monitor, proc):
    result.hook_counts = dict(monitor.hook_counts)
    result.hook_total = monitor.hook_count
    result.violations = list(monitor.violations)
    result.avg_unwind_depth = monitor.average_unwind_depth
    result.max_unwind_depth = monitor.max_unwind_depth
    result.metadata_stats = dict(monitor.metadata.stats)
    result.monitor_stats = monitor.stats.as_dict()
    result.monitor_stats["seccomp_cache_hits"] = proc.seccomp_cache_hits
    result.monitor_stats["seccomp_cache_misses"] = proc.seccomp_cache_misses


def _run_app(app, config="vanilla", scale=1.0, app_config=None, workload=None):
    """Internal, warning-free implementation behind :func:`run_app`."""
    defense = CONFIGS[config] if isinstance(config, str) else config
    entry, kernel, monitor, proc, cpu = _prepare(app, defense, app_config)

    wl = workload or entry["workload"](scale)
    wl.attach(kernel, proc)

    status = cpu.run()

    steady_start = wl.steady_start_cycles or 0
    result = RunResult(
        app=app,
        config=defense.name,
        status=status,
        total_cycles=proc.ledger.cycles,
        steady_cycles=proc.ledger.cycles - steady_start,
        init_cycles=steady_start,
        work_units=entry["work_units"](wl),
        bytes_sent=kernel.net.bytes_sent,
        syscall_counts=dict(proc.syscall_counts),
        ledger_breakdown=dict(proc.ledger.by_category),
        stage_cycles=kernel.telemetry.stage_cycles(),
    )
    if monitor is not None:
        _attach_monitor_stats(result, monitor, proc)
    return result


def run_app_scheduled(
    app,
    config="vanilla",
    scale=1.0,
    app_config=None,
    workload=None,
    quantum=None,
):
    """Run one (app, defense) pair under the preemptive scheduler.

    The root process is enqueued on a :class:`repro.sched.Scheduler`;
    clone()d children run interleaved with it, blocking syscalls park
    their task, and time is the scheduler's global cycle clock.  Use a
    concurrent workload (e.g. ``ConcurrentWrkWorkload``) plus a
    ``master_serves=False`` app config to exercise a real worker pool.

    Returns a :class:`RunResult` whose ``latency`` (when the workload
    samples it), ``sched_stats``, and per-pid ``statuses`` are filled in;
    cycle totals are global-clock based and syscall counts / ledger
    breakdowns aggregate over the whole process tree.
    """
    from repro.sched import DEFAULT_QUANTUM, Scheduler

    defense = CONFIGS[config] if isinstance(config, str) else config
    entry, kernel, monitor, proc, cpu = _prepare(app, defense, app_config)

    wl = workload or entry["workload"](scale)
    wl.attach(kernel, proc)

    sched = Scheduler(kernel, quantum=quantum or DEFAULT_QUANTUM)
    sched.add(proc, cpu)
    statuses = sched.run()
    status = statuses[proc.pid]

    total = sched.now()
    steady_start = wl.steady_start_cycles or 0
    syscall_counts = {}
    breakdown = {}
    for p in kernel.processes.values():
        for name, count in p.syscall_counts.items():
            syscall_counts[name] = syscall_counts.get(name, 0) + count
        for category, cycles in p.ledger.by_category.items():
            breakdown[category] = breakdown.get(category, 0) + cycles
    result = RunResult(
        app=app,
        config=defense.name,
        status=status,
        total_cycles=total,
        steady_cycles=total - steady_start,
        init_cycles=steady_start,
        work_units=entry["work_units"](wl),
        bytes_sent=kernel.net.bytes_sent,
        syscall_counts=syscall_counts,
        ledger_breakdown=breakdown,
        sched_stats=sched.stats.as_dict(),
        statuses={pid: st.kind for pid, st in statuses.items()},
        stage_cycles=kernel.telemetry.stage_cycles(),
    )
    if getattr(wl, "latency", None) is not None:
        result.latency = wl.latency.summary()
    if monitor is not None:
        _attach_monitor_stats(result, monitor, proc)
    return result
