"""Text rendering of the experiment results, mirroring the paper's tables."""

from repro.bench.experiments import (
    APPS,
    _TABLE5_ROWS,
    SCHEDULER_CONFIGS,
    TABLE7_ROWS,
    ablation_cache,
    ablation_dfi,
    figure3,
    perf_sweep,
    scheduler_sweep,
    security_baseline_comparison,
    stages,
    table4,
    table5,
    table6,
    table7,
)
from repro.bench.harness import FIGURE3_LADDER
from repro.syscalls.sensitive import SENSITIVE_SYSCALLS

_CONFIG_LABELS = {
    "vanilla": "Unprotected",
    "llvm_cfi": "LLVM CFI",
    "cet": "CET",
    "cet_ct": "CET+CT",
    "cet_ct_cf": "CET+CT+CF",
    "cet_ct_cf_ai": "CET+CT+CF+AI",
    "fs_hook_only": "+fs syscalls (seccomp hook only)",
    "fs_fetch_state": "+fs syscalls (fetch process state)",
    "fs_full": "+fs syscalls (full context checking)",
    "fs_full_inkernel": "+fs syscalls (in-kernel monitor, §11.2)",
    "cache_on": "BASTION + verdict cache",
    "cache_off": "BASTION (re-verify every stop)",
    "seccomp_allowlist": "seccomp allowlist",
    "temporal": "temporal filter",
    "debloat": "debloated binary",
    "binary_only": "binary-only (recovered)",
}


def _rule(width=76):
    return "-" * width


def render_figure3(scale=1.0):
    """Figure 3: performance overhead of each configuration (with bars)."""
    data, _sweeps = figure3(scale)
    peak = max(
        data[app][config] for app in APPS for config in FIGURE3_LADDER
    )
    peak = max(peak, 0.01)
    lines = [
        "Figure 3: Performance overhead vs unprotected baseline (%)",
        _rule(),
        "%-16s %10s %10s %10s" % ("config", *APPS),
        _rule(),
    ]
    for config in FIGURE3_LADDER:
        lines.append(
            "%-16s %10.2f %10.2f %10.2f"
            % (
                _CONFIG_LABELS[config],
                data["nginx"][config],
                data["sqlite"][config],
                data["vsftpd"][config],
            )
        )
    lines.append(_rule())
    lines.append("")
    for app in APPS:
        lines.append("%s:" % app)
        for config in FIGURE3_LADDER:
            value = data[app][config]
            bar = "#" * max(int(round(40 * value / peak)), 0)
            lines.append("  %-16s %6.2f%% |%s" % (_CONFIG_LABELS[config], value, bar))
    return "\n".join(lines)


def render_table3(scale=1.0):
    """Table 3: raw benchmark metrics per configuration."""
    sweeps = perf_sweep(scale)
    lines = [
        "Table 3: Raw benchmark numbers (simulated units)",
        _rule(),
        "%-16s %14s %14s %14s"
        % (
            "config",
            "NGINX (MB/s)",
            "SQLite (NOTPM)",
            "vsftpd (sec)",
        ),
        _rule(),
    ]
    lines.append(
        "%-16s %14.2f %14.1f %14.4f"
        % (
            "Unprotected",
            sweeps["nginx"].raw_metric(),
            sweeps["sqlite"].raw_metric(),
            sweeps["vsftpd"].raw_metric(),
        )
    )
    for config in FIGURE3_LADDER:
        lines.append(
            "%-16s %14.2f %14.1f %14.4f"
            % (
                _CONFIG_LABELS[config],
                sweeps["nginx"].raw_metric(config),
                sweeps["sqlite"].raw_metric(config),
                sweeps["vsftpd"].raw_metric(config),
            )
        )
    lines.append(_rule())
    return "\n".join(lines)


def render_table4(scale=1.0):
    """Table 4: sensitive syscall usage during benchmarking."""
    columns, depth_stats = table4(scale)
    lines = [
        "Table 4: Sensitive system call usage during benchmarking",
        _rule(),
        "%-18s %10s %10s %10s" % ("syscall", *APPS),
        _rule(),
    ]
    for name in SENSITIVE_SYSCALLS:
        lines.append(
            "%-18s %10d %10d %10d"
            % (name, *(columns[app][name] for app in APPS))
        )
    lines.append(_rule())
    lines.append(
        "%-18s %10d %10d %10d"
        % ("monitor hooks", *(columns[app]["total_hooks"] for app in APPS))
    )
    lines.append(_rule())
    lines.append("Call-depth at syscall stops (§9.2):")
    for app in APPS:
        lines.append(
            "  %-8s avg %.1f frames, max %d frames"
            % (app, depth_stats[app]["avg_depth"], depth_stats[app]["max_depth"])
        )
    return "\n".join(lines)


def render_table5():
    """Table 5: instrumentation statistics."""
    stats = table5()
    lines = [
        "Table 5: Instrumentation statistics",
        _rule(),
        "%-44s %9s %9s %9s" % ("", *APPS),
        _rule(),
    ]
    for key, label in _TABLE5_ROWS:
        lines.append(
            "%-44s %9d %9d %9d" % (label, *(stats[app][key] for app in APPS))
        )
    lines.append(_rule())
    return "\n".join(lines)


def render_table6():
    """Table 6: the attack matrix."""
    evaluations = table6()
    lines = [
        "Table 6: Exploits blocked by BASTION (Y = context blocks it)",
        _rule(88),
        "%-28s %-8s %3s %3s %3s  %-10s %s"
        % ("attack", "works?", "CT", "CF", "AI", "full", "matches paper"),
        _rule(88),
    ]
    category = None
    for ev in evaluations:
        if ev.spec.category != category:
            category = ev.spec.category
            lines.append("-- %s" % category)
        lines.append(
            "%-28s %-8s %3s %3s %3s  %-10s %s"
            % (
                ev.spec.name,
                "yes" if ev.valid else "NO",
                "Y" if ev.blocks("CT") else ".",
                "Y" if ev.blocks("CF") else ".",
                "Y" if ev.blocks("AI") else ".",
                "blocked" if ev.blocked_by_full else "BYPASSED",
                "yes" if ev.matches_paper() else "NO",
            )
        )
    lines.append(_rule(88))
    matched = sum(1 for ev in evaluations if ev.valid and ev.matches_paper())
    lines.append("%d/%d rows match the paper's Table 6" % (matched, len(evaluations)))
    return "\n".join(lines)


def render_table7(scale=1.0):
    """Table 7: the filesystem-extension decomposition."""
    table = table7(scale)
    lines = [
        "Table 7: Overhead when filesystem syscalls are protected",
        "(throughput degradation vs unprotected baseline)",
        _rule(86),
        "%-40s %13s %13s %13s" % ("configuration", *APPS),
        _rule(86),
    ]
    for config in TABLE7_ROWS + ("fs_full_inkernel",):
        cells = []
        for app in APPS:
            row = table[app]["rows"][config]
            cells.append("%6.2f%% (%4.1fx)" % (row["degradation_pct"], row["slowdown"]))
        lines.append("%-40s %13s %13s %13s" % (_CONFIG_LABELS[config], *cells))
    lines.append(_rule(86))
    return "\n".join(lines)


def render_security_baselines():
    """§10: LLVM CFI / CET / filtering family alone vs the attack catalog."""
    rows = security_baseline_comparison()
    lines = [
        "Baseline defenses vs the attack catalog (blocked / bypassed)",
        _rule(104),
        "%-28s %12s %12s %12s %12s %12s %12s"
        % ("attack", "LLVM CFI", "CET", "seccomp", "binary-only", "sfip",
           "sfip-origin"),
        _rule(104),
    ]
    for row in rows:
        def cell(blocked, bypassed):
            if blocked:
                return "blocked"
            return "BYPASSED" if bypassed else "fizzled"

        lines.append(
            "%-28s %12s %12s %12s %12s %12s %12s"
            % (
                row["attack"],
                cell(row["cfi_blocked"], row["cfi_bypassed"]),
                cell(row["cet_blocked"], row["cet_bypassed"]),
                cell(row["seccomp_blocked"], row["seccomp_bypassed"]),
                cell(row["binary_blocked"], row["binary_bypassed"]),
                cell(row["sfip_blocked"], row["sfip_bypassed"]),
                cell(row["sfip_origin_blocked"], row["sfip_origin_bypassed"]),
            )
        )
    lines.append(_rule(104))
    return "\n".join(lines)


def render_ablation_dfi(scale=0.5):
    """DESIGN.md §5: narrow argument integrity vs application-wide DFI."""
    rows = ablation_dfi(scale)
    lines = [
        "Ablation: application-wide DFI vs BASTION (overhead %)",
        _rule(),
        "%-10s %14s %20s" % ("app", "DFI", "BASTION (full)"),
        _rule(),
    ]
    for app in APPS:
        lines.append(
            "%-10s %13.2f%% %19.2f%%"
            % (app, rows[app]["dfi_overhead_pct"], rows[app]["bastion_overhead_pct"])
        )
    lines.append(_rule())
    return "\n".join(lines)


def render_adaptive():
    """§11.1: the adaptive-attacker study."""
    from repro.bench.experiments import adaptive_study_rows

    rows = adaptive_study_rows()
    lines = [
        "Adaptive attacker study (§11.1): arbitrary R/W vs BASTION",
        _rule(),
        "%-20s %-10s %-16s %8s  %s"
        % ("adversary", "goal", "blocked by", "writes", "notes"),
        _rule(),
    ]
    for outcome in rows:
        lines.append(
            "%-20s %-10s %-16s %8d  %s"
            % (
                outcome.name,
                "REACHED" if outcome.succeeded else "blocked",
                outcome.blocked_by or "-",
                outcome.attacker_writes,
                outcome.detail,
            )
        )
    lines.append(_rule())
    lines.append(
        "Matches §11.1: only an attacker with full shadow-layout knowledge\n"
        "and many consistent forgeries bypasses; static constraints and\n"
        "region hiding stop the rest."
    )
    return "\n".join(lines)


def render_ablation_cache(scale=0.5):
    """Monitor fast path: verdict cache on vs off, per app."""
    rows = ablation_cache(scale)
    lines = [
        "Ablation: monitor verdict cache (overhead % vs unprotected)",
        _rule(86),
        "%-10s %14s %14s %10s %12s %14s"
        % ("app", "cache off", "cache on", "hit rate", "invalidated", "seccomp hits"),
        _rule(86),
    ]
    for app in APPS:
        row = rows[app]
        lines.append(
            "%-10s %13.2f%% %13.2f%% %9.1f%% %12d %14d"
            % (
                app,
                row["cache_off_overhead_pct"],
                row["cache_on_overhead_pct"],
                100.0 * row["hit_rate"],
                row["invalidations"],
                row["seccomp_cache_hits"],
            )
        )
    lines.append(_rule(86))
    return "\n".join(lines)


def render_scheduler(scale=1.0):
    """Multi-worker NGINX latency/throughput under the preemptive scheduler."""
    sweep = scheduler_sweep(scale)
    lines = [
        "Scheduler: multi-worker NGINX under concurrent wrk",
        "(master + N clone()d workers, preemptive round-robin)",
        _rule(92),
        "%-8s %-16s %9s %9s %9s %9s %11s %6s"
        % ("workers", "config", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean", "MB/s", "resp"),
        _rule(92),
    ]
    for count in sorted(sweep):
        for config in SCHEDULER_CONFIGS:
            result = sweep[count][config]
            lines.append(
                "%-8d %-16s %9.3f %9.3f %9.3f %9.3f %11.2f %6d"
                % (
                    count,
                    _CONFIG_LABELS.get(config, config),
                    result.latency_ms("p50"),
                    result.latency_ms("p95"),
                    result.latency_ms("p99"),
                    result.latency_ms("mean"),
                    result.throughput_mbps(),
                    result.work_units,
                )
            )
        vanilla = sweep[count]["vanilla"]
        bastion = sweep[count]["cet_ct_cf_ai"]
        lines.append(
            "         -> full BASTION: %+.2f%% p99 latency, %.2fx throughput"
            % (
                100.0
                * (bastion.latency_ms("p99") - vanilla.latency_ms("p99"))
                / max(vanilla.latency_ms("p99"), 1e-9),
                bastion.throughput_mbps() / max(vanilla.throughput_mbps(), 1e-9),
            )
        )
    lines.append(_rule(92))
    return "\n".join(lines)


def analysis_data(apps=APPS):
    """Static-analyzer reports for the bench apps: ``{app: AnalysisReport}``."""
    from repro.analyze import analyze_app

    return {app: analyze_app(app) for app in apps}


def analysis_json(apps=APPS):
    """JSON-ready analyzer summary: per-pass finding counts + precision.

    This is the payload ``python -m repro.bench analysis --json`` prints and
    what dashboards should consume; the full per-diagnostic detail lives in
    ``python -m repro.analyze --format json``.
    """
    payload = {}
    for app, report in analysis_data(apps).items():
        flow = report.metrics.get("flow", {})
        payload[app] = {
            "program": report.program,
            "ok": report.ok,
            "clean": report.clean,
            "findings_by_pass": report.counts_by_pass(),
            "waived": len(report.waived),
            "precision": {
                "sensitive_sites": flow.get("sensitive_sites", 0),
                "chains": flow.get("chains", 0),
                "attack_surface": flow.get("attack_surface", 0),
            },
            "per_syscall_chains": {
                name: row["chains"]
                for name, row in flow.get("per_syscall", {}).items()
            },
        }
    return payload


def binary_precision_data(apps=APPS):
    """Binary-recovery precision payload for the bench apps (per-app
    ``{app: metrics}``, the ``repro.analyze.binary`` report shape)."""
    from repro.analyze.binary import binary_report

    return {app: binary_report(app)[1] for app in apps}


def binary_precision_json(apps=APPS):
    """JSON-ready recovered-vs-metadata summary — what
    ``python -m repro.bench binary --json`` prints."""
    return binary_precision_data(apps)


def render_binary_precision():
    """Recovered-vs-metadata precision for the bench apps."""
    data = binary_precision_data()
    lines = [
        "Binary-level recovery vs compiler metadata (precision per app)",
        _rule(86),
        "%-10s %7s %7s %8s %8s %7s %8s %9s %9s"
        % (
            "app",
            "funcs",
            "reach",
            "present",
            "allowed",
            "tight",
            "ctypes",
            "ct-tight",
            "chains",
        ),
        _rule(86),
    ]
    for app, metrics in data.items():
        funcs = metrics["functions"]
        syscalls = metrics["syscalls"]
        types = metrics["call_types"]
        flow = metrics["flow"]
        lines.append(
            "%-10s %7d %7d %8d %8d %7d %8d %9d %9d"
            % (
                app,
                funcs["recovered"],
                funcs["reachable"],
                syscalls["present"],
                len(syscalls["reachable"]),
                len(syscalls["tightened"]),
                len(types["recovered"]),
                sum(len(kinds) for kinds in types["tightened"].values()),
                flow["binary"]["chains"],
            )
        )
    lines.append(_rule(86))
    lines.append(
        "allowed = recovered-reachable syscalls (the binary_only filter); "
        "tight = present-but-dead syscalls dropped"
    )
    return "\n".join(lines)


def render_analysis():
    """Static-analysis soundness + precision columns for the bench apps."""
    data = analysis_data()
    lines = [
        "Static analysis: soundness findings and syscall-flow precision",
        _rule(86),
        "%-10s %6s %6s %6s %6s %7s %8s %8s %9s %8s"
        % (
            "app",
            "compl",
            "ctype",
            "flow",
            "consis",
            "waived",
            "sites",
            "chains",
            "surface",
            "verdict",
        ),
        _rule(86),
    ]
    for app in data:
        report = data[app]
        counts = report.counts_by_pass()
        flow = report.metrics.get("flow", {})
        verdict = "clean" if report.clean else ("ok" if report.ok else "FAIL")
        lines.append(
            "%-10s %6d %6d %6d %6d %7d %8d %8d %9d %8s"
            % (
                app,
                counts["completeness"],
                counts["call-type"],
                counts["flow"],
                counts["consistency"],
                len(report.waived),
                flow.get("sensitive_sites", 0),
                flow.get("chains", 0),
                flow.get("attack_surface", 0),
                verdict,
            )
        )
    lines.append(_rule(86))
    lines.append(
        "surface = sum over sensitive sites of legitimate chains x verified "
        "argument positions\n(smaller = tighter contexts; see docs/analyze.md)"
    )
    return "\n".join(lines)


#: stages-table display order: pipeline order, with the monitor's verify.*
#: drill-down (charged inside its trace stop) indented beneath it
_STAGE_DISPLAY = (
    ("block", "block"),
    ("count", "count"),
    ("seccomp", "seccomp (BPF filter)"),
    ("trace_stop", "trace_stop (monitor)"),
    ("verify.cache", "  > verdict cache"),
    ("verify.unwind", "  > stack unwind"),
    ("verify.call_type", "  > call-type check"),
    ("verify.control_flow", "  > control-flow check"),
    ("verify.arg_integrity", "  > arg-integrity check"),
    ("verify", "verify (kill verdicts)"),
    ("execute", "execute (handler)"),
    ("account", "account"),
)

#: top-level pipeline stages (the verify.* rows are subsets of trace_stop)
_TOP_STAGES = ("block", "count", "seccomp", "trace_stop", "verify", "execute", "account")


def stages_json(scale=1.0):
    """JSON-ready payload of :func:`repro.bench.experiments.stages`.

    ``{config: {work_units, total_cycles, stage_cycles}}`` — exactly the
    ``stage.cycles.*`` counters each run's telemetry bus accumulated.
    """
    return stages(scale)


def render_stages(scale=1.0):
    """Where the cycles go: per-stage attribution for nginx + wrk."""
    data = stages(scale)
    configs = list(data)
    width = 24 + 19 * len(configs)

    def row(label, values):
        return "%-24s" % label + "".join("%19s" % v for v in values)

    def mcyc(cycles):
        return "%.1f" % (cycles / 1e3)

    lines = [
        "Dispatch-stage cycle attribution: nginx + wrk (telemetry-bus data, kcycles)",
        _rule(width),
        row("stage", configs),
        _rule(width),
    ]
    for key, label in _STAGE_DISPLAY:
        values = [data[c]["stage_cycles"].get(key, 0) for c in configs]
        if not any(values):
            continue
        lines.append(row(label, [mcyc(v) for v in values]))
    lines.append(_rule(width))
    pipeline_totals = {
        c: sum(data[c]["stage_cycles"].get(s, 0) for s in _TOP_STAGES)
        for c in configs
    }
    lines.append(
        row("pipeline total", [mcyc(pipeline_totals[c]) for c in configs])
    )
    lines.append(row("run total", [mcyc(data[c]["total_cycles"]) for c in configs]))
    lines.append(
        row(
            "pipeline share",
            [
                "%.1f%%" % (100.0 * pipeline_totals[c] / data[c]["total_cycles"])
                if data[c]["total_cycles"]
                else "0.0%"
                for c in configs
            ],
        )
    )
    lines.append(row("work units", [data[c]["work_units"] for c in configs]))
    lines.append(_rule(width))
    lines.append(
        "'>' rows break down the monitor's trace stop (they are included in\n"
        "the trace_stop row): BASTION's overhead = BPF filtering + stack\n"
        "unwinding + the three context checks; the verdict cache trades the\n"
        "unwind+check columns for one cache probe per stop."
    )
    return "\n".join(lines)


def fuzz_data(corpus_path=None):
    """The fuzz subsystem's bench payload: divergence counts by mechanism
    pair from the pinned corpus, plus the live fault-detection matrix."""
    from repro.fuzz.engine import load_corpus
    from repro.fuzz.faults import run_fault_campaign

    corpus = load_corpus(corpus_path)
    pair_counts = {}
    for entry in corpus["divergences"]:
        for allowing, killing in entry["pairs"]:
            key = "%s>%s" % (allowing, killing)
            pair_counts[key] = pair_counts.get(key, 0) + 1
    return {
        "corpus": {
            "seed": corpus["seed"],
            "budget": corpus["budget"],
            "executed": corpus["executed"],
            "coverage_tokens": corpus["coverage_tokens"],
            "kept": len(corpus["kept"]),
            "divergences": len(corpus["divergences"]),
        },
        "divergence_pairs": pair_counts,
        "faults": run_fault_campaign(),
    }


def fuzz_json(corpus_path=None):
    return fuzz_data(corpus_path)


def render_fuzz():
    """ISSUE 9: the differential fuzzing + fault-injection summary."""
    data = fuzz_data()
    corpus = data["corpus"]
    lines = [
        "Coverage-guided differential fuzzing (pinned corpus, seed=%d)"
        % corpus["seed"],
        _rule(),
        "budget=%d executed=%d coverage_tokens=%d kept=%d divergences=%d"
        % (
            corpus["budget"],
            corpus["executed"],
            corpus["coverage_tokens"],
            corpus["kept"],
            corpus["divergences"],
        ),
        "",
        "Divergences by mechanism pair (allowing > killing):",
    ]
    for pair, count in sorted(
        data["divergence_pairs"].items(), key=lambda kv: (-kv[1], kv[0])
    ):
        lines.append("  %-36s %3d" % (pair, count))
    faults = data["faults"]
    mechanisms = faults["matrix"]
    width = max(len(m) for m in mechanisms) + 2
    lines += [
        "",
        "Dispatch-time fault detection (site@stage x mechanism):",
        _rule(),
        "%-28s" % "fault" + "".join("%-*s" % (width, m) for m in mechanisms),
        _rule(),
    ]
    for label in sorted(faults["cells"]):
        row = faults["cells"][label]
        lines.append(
            "%-28s" % label
            + "".join("%-*s" % (width, row[m]["class"]) for m in mechanisms)
        )
    lines += [
        _rule(),
        "caught = mechanism killed the process; crashed = the fault itself",
        "faulted the VM; missed = run completed but observably diverged from",
        "the clean reference; masked = bit-identical to the reference;",
        "not-reached = the injector had nothing to corrupt (no filter).",
        "Register-only argument flips are missed by every mechanism: the",
        "monitor verifies memory-resident shadow variables, not registers —",
        "the gap SFP-style hardware protection targets.",
    ]
    return "\n".join(lines)


RENDERERS = {
    "figure3": render_figure3,
    "fuzz": render_fuzz,
    "table3": render_table3,
    "table4": render_table4,
    "table5": render_table5,
    "table6": render_table6,
    "table7": render_table7,
    "security_baselines": render_security_baselines,
    "ablation_cache": render_ablation_cache,
    "ablation_dfi": render_ablation_dfi,
    "adaptive": render_adaptive,
    "analysis": render_analysis,
    "binary": render_binary_precision,
    "scheduler": render_scheduler,
    "stages": render_stages,
}
