"""The persisted performance trajectory (``BENCH_<pr>.json``).

Every PR that touches a hot path lands a ``BENCH_<pr>.json`` at the repo
root: one byte-stable snapshot of wall-time and cycles-per-request over a
pinned workload matrix (nginx + concurrent wrk, steady state, workers
1/2/4, vanilla vs full BASTION vs the three filtering software baselines).
CI diffs the fresh measurement against the newest committed snapshot, so
wall-clock regressions and wins stay visible across the PR sequence.

Since PR 7 the snapshot carries a second, event-driven matrix: one
NGINX worker multiplexing 100 / 1k / 10k keep-alive connections through
``epoll_wait`` (``NginxConfig(event_loop=True)``), the C10k cell set.
Event cells are keyed by connection count rather than worker count and
additionally record p50/p95 latency, MB/s, and the peak in-flight
connection level actually sustained.  Two extra 10k cells pin the
verdict-cache economics (cache_on vs cache_off) at full pressure.

Since PR 10 the blocking matrix also carries the ``sfip`` and
``sfip_origin`` rows, so BASTION vs SFIP vs the filtering baselines is
one overhead table.

Byte-stability is the hard part — wall clocks are noisy.  Three
mechanisms make the file reproducible:

- **CPU-time clock.**  The default clock is ``time.process_time`` — this
  process's CPU seconds — so other tenants of a shared machine cannot
  perturb the measurement; garbage is collected before every repeat so
  GC pauses from earlier work are not charged to a cell.
- **Calibrated wall index.**  Cell time is stored as a ratio against a
  pure-Python spin loop timed on the same interpreter and machine
  (``wall_index = cell_time / spin_time``, min-of-repeats for both, the
  spin timed both before and after the matrix).  The spin is
  deliberately *not* VM-based: interpreter-level wins in the VM must
  show up in the index, not cancel out.  The ratio is machine-speed
  invariant to first order, so snapshots written on different hardware
  stay comparable.
- **Sticky rewrite.**  ``--write`` keeps the previously-committed
  ``wall_index`` for any cell whose deterministic fields are unchanged
  and whose fresh index is within ``STICKY_PCT`` — measurement noise
  never dirties the file, so two consecutive writes are byte-identical.
  ``--check`` always compares the *raw* fresh index, so stickiness can
  not mask a regression beyond the check tolerance.

Everything else in a cell (cycles, work units, latency percentiles) comes
from the deterministic cost model and is exact by construction.
"""

import gc
import json
import math
import os
import time

#: this PR's snapshot number (bump per hot-path PR, one file each)
PR_NUMBER = 10

SCHEMA = "repro-bench-trajectory/v1"

#: the pinned matrix — changing any of these starts a new trajectory
TRAJECTORY_APP = "nginx"
TRAJECTORY_SCALE = 0.3
MATRIX_WORKERS = (1, 2, 4)
MATRIX_CONFIGS = (
    "vanilla",
    "cet_ct_cf_ai",
    "seccomp_allowlist",
    "temporal",
    "debloat",
    "sfip",
    "sfip_origin",
)

#: the event-loop (C10k) matrix: concurrent keep-alive connections
#: multiplexed by ONE epoll-driven worker, crossed with the configs that
#: exercise distinct fast-path regimes.  The two extra 10k cells pin the
#: verdict-cache claim (cache_on must beat cache_off under pressure).
EVENT_CONNECTIONS = (100, 1000, 10000)
EVENT_CONFIGS = ("vanilla", "cet_ct_cf_ai", "seccomp_allowlist")
EVENT_MATRIX = tuple(
    (count, config) for count in EVENT_CONNECTIONS for config in EVENT_CONFIGS
) + ((10000, "cache_on"), (10000, "cache_off"))
#: the CI gate only re-measures the cheap cells; 1k/10k stay write-only
EVENT_SMOKE_MATRIX = tuple((100, config) for config in EVENT_CONFIGS)
#: requests each connection pipelines before closing
EVENT_REQUESTS = 2
#: wall repeats per event cell — the 10k cells run tens of seconds each,
#: so repeats taper with pressure (stickiness absorbs the extra noise)
EVENT_REPEATS = {100: 5, 1000: 3, 10000: 2}

#: the fuzz-throughput cell: one pinned campaign (genomes/sec at the CI
#: smoke budget); write-only like the 1k/10k event cells — the --check
#: gate skips it, so it diffs as a "cell removed" note and never fails
FUZZ_BUDGET = 200

#: the trajectory clock: CPU seconds of this process (contention-immune)
DEFAULT_CLOCK = time.process_time

#: wall repeats per cell / per calibration (min is taken)
REPEATS = 5
#: pure-Python calibration spin iterations (~50ms on current interpreters;
#: long enough that a scheduling hiccup cannot dominate the min-of-repeats)
SPIN_ITERATIONS = 1_000_000
#: --write keeps the committed wall_index when the fresh one is this close.
#: Wide on purpose: the wins worth recording are multiples, residual
#: measurement noise is tens of percent, and the --check gate always uses
#: the raw (un-sticky) measurement anyway.
STICKY_PCT = 35.0
#: --check fails on a wall_index regression beyond this (percent)
DEFAULT_TOLERANCE = 5.0
#: --check re-measures regressed cells this many times before failing.
#: The wall estimator is a min, so retries only converge it downward —
#: a genuine regression cannot be retried away, a noise spike can.
CHECK_RETRIES = 2


def _spin(iterations=SPIN_ITERATIONS):
    """The calibration workload: pure interpreter, no VM, no allocation."""
    acc = 0
    for i in range(iterations):
        acc += i & 7
    return acc


def calibrate(clock=DEFAULT_CLOCK, repeats=REPEATS):
    """Seconds per calibration spin (min over ``repeats`` runs)."""
    best = None
    for _ in range(repeats):
        gc.collect()
        start = clock()
        _spin()
        elapsed = clock() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _round_sig(value, digits=2):
    """Round to ``digits`` significant digits (the wall_index precision)."""
    if value <= 0:
        return 0.0
    return float("%.*g" % (digits, value))


def _measure_cell(workers, config, scale, clock):
    """One matrix cell: deterministic run fields + min-of-repeats wall."""
    from repro.apps.nginx import NginxConfig
    from repro.apps.workloads import ConcurrentWrkWorkload
    from repro.bench.harness import run_app_scheduled

    connections = max(int(round(40 * scale)), 4)
    best_wall = None
    result = None
    for _ in range(REPEATS):
        workload = ConcurrentWrkWorkload(connections=connections)
        gc.collect()
        start = clock()
        result = run_app_scheduled(
            TRAJECTORY_APP,
            config=config,
            app_config=NginxConfig(workers=workers, master_serves=False),
            workload=workload,
        )
        elapsed = clock() - start
        if best_wall is None or elapsed < best_wall:
            best_wall = elapsed
    return result, best_wall


#: per-cell fields that must be exactly reproducible run-to-run.
#: Compared with ``.get`` so blocking cells (which lack the event-only
#: fields) and pre-PR-7 snapshots (which lack ``mode``) stay comparable.
_DETERMINISTIC_FIELDS = (
    "config",
    "mode",
    "workers",
    "connections",
    "status",
    "work_units",
    "total_cycles",
    "steady_cycles",
    "cycles_per_request",
    "p50_latency_cycles",
    "p95_latency_cycles",
    "p99_latency_cycles",
    "mbps",
    "peak_inflight",
    "syscalls",
)


def measure_cells(
    workers=MATRIX_WORKERS,
    configs=MATRIX_CONFIGS,
    scale=TRAJECTORY_SCALE,
    clock=DEFAULT_CLOCK,
    calibration=None,
):
    """The trajectory records: one dict per (workers, config) cell.

    This is also the data surface behind :func:`repro.api.bench` — the
    returned dicts are exactly what ``BENCH_<pr>.json`` serializes.
    ``calibration`` (seconds per spin) is injectable for tests; ``clock``
    likewise.  ``configs`` entries may be names from
    ``bench.harness.CONFIGS`` or DefenseConfig objects.
    """
    fixed_calibration = calibration is not None
    if not fixed_calibration:
        calibration = calibrate(clock=clock)
    raw = []
    for count in workers:
        for config in configs:
            result, wall = _measure_cell(count, config, scale, clock)
            raw.append((count, config, result, wall))
    if not fixed_calibration:
        # the spin drifts with machine state; bracket the matrix and keep
        # the fastest observation on either side
        calibration = min(calibration, calibrate(clock=clock))
    cells = []
    for count, config, result, wall in raw:
        work = result.work_units
        cells.append(
            {
                "config": config if isinstance(config, str) else config.name,
                "workers": count,
                "status": result.status.kind,
                "work_units": work,
                "total_cycles": result.total_cycles,
                "steady_cycles": result.steady_cycles,
                "cycles_per_request": (
                    round(result.steady_cycles / work, 1) if work else 0.0
                ),
                "p99_latency_cycles": result.latency.get("p99", 0),
                "syscalls": sum(result.syscall_counts.values()),
                "wall_index": _round_sig(wall / calibration),
            }
        )
    return cells


def _measure_event_cell(connections, config, clock):
    """One C10k cell: a single event-loop worker at ``connections`` load.

    The workload churns 25% more connections than the in-flight cap, so
    the cell exercises accept bursts and connection teardown at pressure,
    not just a static connection set.
    """
    from repro.apps.nginx import NginxConfig
    from repro.apps.workloads import ConcurrentWrkWorkload
    from repro.bench.harness import run_app_scheduled

    repeats = EVENT_REPEATS.get(connections, 1)
    best_wall = None
    result = workload = None
    for _ in range(repeats):
        workload = ConcurrentWrkWorkload(
            connections=connections + connections // 4,
            requests_per_connection=EVENT_REQUESTS,
            max_inflight=connections,
        )
        gc.collect()
        start = clock()
        result = run_app_scheduled(
            TRAJECTORY_APP,
            config=config,
            app_config=NginxConfig(
                workers=1, master_serves=False, event_loop=True
            ),
            workload=workload,
        )
        elapsed = clock() - start
        if best_wall is None or elapsed < best_wall:
            best_wall = elapsed
    return result, workload, best_wall


def measure_event_cells(
    specs=EVENT_MATRIX,
    clock=DEFAULT_CLOCK,
    calibration=None,
):
    """Event-loop trajectory records: one dict per (connections, config).

    Same calibration discipline as :func:`measure_cells` (bracketed spin
    when no calibration is injected); cells carry ``mode: "event"`` plus
    the C10k-specific fields (latency tail, MB/s, peak in-flight).
    """
    fixed_calibration = calibration is not None
    if not fixed_calibration:
        calibration = calibrate(clock=clock)
    raw = []
    for connections, config in specs:
        result, workload, wall = _measure_event_cell(
            connections, config, clock
        )
        raw.append((connections, config, result, workload, wall))
    if not fixed_calibration:
        calibration = min(calibration, calibrate(clock=clock))
    cells = []
    for connections, config, result, workload, wall in raw:
        work = result.work_units
        latency = result.latency
        cells.append(
            {
                "config": config if isinstance(config, str) else config.name,
                "mode": "event",
                "workers": 1,
                "connections": connections,
                "status": result.status.kind,
                "work_units": work,
                "total_cycles": result.total_cycles,
                "steady_cycles": result.steady_cycles,
                "cycles_per_request": (
                    round(result.steady_cycles / work, 1) if work else 0.0
                ),
                "p50_latency_cycles": latency.get("p50", 0),
                "p95_latency_cycles": latency.get("p95", 0),
                "p99_latency_cycles": latency.get("p99", 0),
                "mbps": round(result.throughput_mbps(), 3),
                "peak_inflight": workload.peak_inflight,
                "syscalls": sum(result.syscall_counts.values()),
                "wall_index": _round_sig(wall / calibration),
            }
        )
    return cells


def measure_fuzz_cells(clock=DEFAULT_CLOCK, calibration=None, budget=FUZZ_BUDGET):
    """The fuzz-throughput cell: one pinned campaign, wall-timed.

    The campaign itself is fully deterministic (seed-pinned SplitMix64),
    so executed/kept/divergences/coverage are exact; only the wall-derived
    ``wall_index``/``genomes_per_sec`` fields are measurements.
    """
    from repro.fuzz.engine import DEFAULT_SEED, FuzzCampaign

    fixed_calibration = calibration is not None
    if not fixed_calibration:
        calibration = calibrate(clock=clock)
    gc.collect()
    start = clock()
    campaign = FuzzCampaign(seed=DEFAULT_SEED, budget=budget).run()
    wall = clock() - start
    if not fixed_calibration:
        calibration = min(calibration, calibrate(clock=clock))
    return [
        {
            "config": "fuzz",
            "mode": "fuzz",
            "workers": 0,
            "seed": campaign.seed,
            "budget": campaign.budget,
            "status": "done",
            "work_units": campaign.executed,
            "kept": len(campaign.kept),
            "divergences": len(campaign.divergences),
            "coverage_tokens": len(campaign.coverage),
            "total_cycles": 0,
            "steady_cycles": 0,
            "cycles_per_request": 0.0,
            "genomes_per_sec": _round_sig(campaign.executed / wall),
            "wall_index": _round_sig(wall / calibration),
        }
    ]


def trajectory_payload(
    scale=TRAJECTORY_SCALE,
    clock=DEFAULT_CLOCK,
    calibration=None,
    previous=None,
    sticky_pct=STICKY_PCT,
    event_specs=EVENT_MATRIX,
    include_fuzz=True,
):
    """The full snapshot payload, optionally sticky against ``previous``.

    ``event_specs`` selects the event-loop cells ((connections, config)
    pairs); the CI gate passes :data:`EVENT_SMOKE_MATRIX` to skip the
    expensive 1k/10k cells, ``()`` disables the event matrix entirely.
    ``include_fuzz=False`` likewise skips the fuzz-throughput cell.
    """
    cells = measure_cells(scale=scale, clock=clock, calibration=calibration)
    if event_specs:
        cells = cells + measure_event_cells(
            specs=event_specs, clock=clock, calibration=calibration
        )
    if include_fuzz:
        cells = cells + measure_fuzz_cells(clock=clock, calibration=calibration)
    if previous is not None:
        cells = _apply_sticky(cells, previous.get("cells", []), sticky_pct)
    return {
        "schema": SCHEMA,
        "pr": PR_NUMBER,
        "app": TRAJECTORY_APP,
        "workload": {
            "kind": "wrk_concurrent",
            "scale": scale,
            "connections": max(int(round(40 * scale)), 4),
        },
        "matrix": {
            "workers": list(MATRIX_WORKERS),
            "configs": list(MATRIX_CONFIGS),
            "event": [list(spec) for spec in event_specs],
            "fuzz_budget": FUZZ_BUDGET if include_fuzz else None,
        },
        "event_workload": {
            "kind": "wrk_concurrent_event",
            "requests_per_connection": EVENT_REQUESTS,
            "churn_pct": 25,
        },
        "calibration": {
            "spin_iterations": SPIN_ITERATIONS,
            "repeats": REPEATS,
        },
        "cells": cells,
    }


def _cell_key(cell):
    """Mode-aware identity: blocking cells by workers, event by load.

    Pre-PR-7 snapshots have no ``mode`` field; their cells fall into the
    ``blocking`` namespace, which is exactly where the (unchanged)
    blocking matrix still lives — shared cells keep diffing across PRs.
    """
    if cell.get("mode") == "event":
        return ("event", cell.get("connections", 0), cell["config"])
    if cell.get("mode") == "fuzz":
        return ("fuzz", cell.get("budget", 0), cell["config"])
    return ("blocking", cell.get("workers", 0), cell["config"])


def _normalize_key(key):
    """Accept legacy 2-tuple ``(workers, config)`` keys as blocking."""
    if len(key) == 2:
        return ("blocking",) + tuple(key)
    return tuple(key)


def _apply_sticky(cells, previous_cells, sticky_pct):
    """Keep the committed wall_index for unchanged, within-noise cells."""
    by_key = {_cell_key(cell): cell for cell in previous_cells}
    out = []
    for cell in cells:
        old = by_key.get(_cell_key(cell))
        if old is not None and _deterministic_match(cell, old):
            old_wall = old.get("wall_index", 0.0)
            new_wall = cell["wall_index"]
            if old_wall > 0 and _pct_change(old_wall, new_wall) <= sticky_pct:
                cell = dict(cell, wall_index=old_wall)
                if "genomes_per_sec" in old and "genomes_per_sec" in cell:
                    cell["genomes_per_sec"] = old["genomes_per_sec"]
        out.append(cell)
    return out


def _deterministic_match(cell, old):
    return all(cell.get(f) == old.get(f) for f in _DETERMINISTIC_FIELDS)


def _pct_change(old, new):
    return abs(new - old) / old * 100.0


def serialize(payload):
    """The canonical byte-stable encoding."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# committed snapshots
# ---------------------------------------------------------------------------


def repo_root():
    """The repository root (three levels above this file's package)."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )


def snapshot_path(pr=PR_NUMBER, root=None):
    return os.path.join(root or repo_root(), "BENCH_%d.json" % pr)


def find_snapshots(root=None):
    """``[(pr, path)]`` for every committed BENCH_*.json, oldest first."""
    root = root or repo_root()
    found = []
    try:
        names = os.listdir(root)
    except OSError:
        return []
    for name in names:
        if name.startswith("BENCH_") and name.endswith(".json"):
            middle = name[len("BENCH_") : -len(".json")]
            if middle.isdigit():
                found.append((int(middle), os.path.join(root, name)))
    return sorted(found)


def load_previous(root=None, before=None):
    """The newest committed snapshot (optionally with ``pr < before``)."""
    candidates = find_snapshots(root)
    if before is not None:
        candidates = [(pr, path) for pr, path in candidates if pr < before]
    if not candidates:
        return None
    _pr, path = candidates[-1]
    with open(path) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# diff / check
# ---------------------------------------------------------------------------


def diff_payloads(old, new):
    """Per-cell comparison rows between two snapshots.

    Each row: ``{workers, config, wall_old, wall_new, wall_pct,
    cycles_old, cycles_new, note}`` — ``wall_pct`` positive means the new
    snapshot is *slower*.  Cells present on only one side get a note.
    """
    old_by_key = {_cell_key(c): c for c in old.get("cells", [])}
    rows = []
    for cell in new.get("cells", []):
        key = _cell_key(cell)
        prior = old_by_key.pop(key, None)
        row = {
            "key": key,
            "mode": cell.get("mode", "blocking"),
            "workers": cell.get("workers", 0),
            "connections": cell.get("connections"),
            "config": cell["config"],
            "wall_new": cell.get("wall_index", 0.0),
            "cycles_new": cell.get("cycles_per_request", 0.0),
            "wall_old": None,
            "cycles_old": None,
            "wall_pct": None,
            "note": "",
        }
        if prior is None:
            row["note"] = "new cell"
        else:
            row["wall_old"] = prior.get("wall_index", 0.0)
            row["cycles_old"] = prior.get("cycles_per_request", 0.0)
            if row["wall_old"]:
                row["wall_pct"] = (
                    (row["wall_new"] - row["wall_old"]) / row["wall_old"] * 100.0
                )
        rows.append(row)
    for key, prior in sorted(old_by_key.items()):
        rows.append(
            {
                "key": key,
                "mode": prior.get("mode", "blocking"),
                "workers": prior.get("workers", 0),
                "connections": prior.get("connections"),
                "config": prior["config"],
                "wall_new": None,
                "cycles_new": None,
                "wall_old": prior.get("wall_index", 0.0),
                "cycles_old": prior.get("cycles_per_request", 0.0),
                "wall_pct": None,
                "note": "cell removed",
            }
        )
    return rows


def _wall_ulp(value, digits=2):
    """One unit in the last place of the ``digits``-sig-digit rounding.

    ``wall_index`` is stored at two significant digits, so committed
    values near a rounding boundary (14 vs 15) differ by ~7% on pure
    quantization.  The gate must never fail on a step the stored
    precision cannot resolve.
    """
    if value <= 0:
        return 0.0
    return 10.0 ** (math.floor(math.log10(value)) - (digits - 1))


def check_rows(rows, tolerance=DEFAULT_TOLERANCE):
    """The rows failing the regression gate.

    A cell fails when it is more than ``tolerance`` percent slower AND
    the slowdown exceeds one ulp of the committed value's two-sig-digit
    precision — for small indices (one ulp ≈ 7–10%) quantization sets
    the floor, for large ones the percentage does.
    """
    return [
        row
        for row in rows
        if row["wall_pct"] is not None
        and row["wall_pct"] > tolerance
        and row["wall_new"] > row["wall_old"] + _wall_ulp(row["wall_old"])
    ]


def remeasure_cells(cells, keys, scale=TRAJECTORY_SCALE, clock=DEFAULT_CLOCK):
    """Fresh measurement for the cells in ``keys``, keeping the minimum.

    The wall estimator is a *minimum* over repeats, so extra samples can
    only move it down, toward the true cost — a genuine regression
    survives any number of retries, while a one-off scheduler/noise
    spike does not.  Cells whose deterministic fields changed between
    runs are replaced outright (something real moved; the old wall is
    not comparable).
    """
    by_key = {_cell_key(cell): cell for cell in cells}
    for key in sorted(_normalize_key(key) for key in keys):
        cell = by_key.get(key)
        if cell is None:
            continue
        mode, count, config = key
        if mode == "fuzz":
            fresh = measure_fuzz_cells(clock=clock, budget=count)[0]
        elif mode == "event":
            fresh = measure_event_cells(
                specs=((count, config),), clock=clock
            )[0]
        else:
            fresh = measure_cells(
                workers=(count,), configs=(config,), scale=scale, clock=clock
            )[0]
        if _deterministic_match(fresh, cell):
            cell["wall_index"] = min(cell["wall_index"], fresh["wall_index"])
        else:
            cell.clear()
            cell.update(fresh)
    return cells


def _fmt(value, spec="%s"):
    return "-" if value is None else spec % value


def _cell_label(mode, workers, connections):
    """The 'load' column: worker count (blocking) or connections (event)."""
    if mode == "event":
        return "%dc" % (connections or 0)
    if mode == "fuzz":
        return "fz"
    return "w%d" % workers


def render_diff(rows, old_pr=None, new_pr=PR_NUMBER):
    """A per-cell text table of the trajectory diff."""
    lines = []
    title = "trajectory diff"
    if old_pr is not None:
        title += ": BENCH_%s.json -> BENCH_%s.json" % (old_pr, new_pr)
    lines.append(title)
    lines.append(
        "%-18s %6s  %10s %10s %8s  %12s %12s  %s"
        % (
            "config",
            "load",
            "wall(old)",
            "wall(new)",
            "wall%",
            "cyc/req(old)",
            "cyc/req(new)",
            "note",
        )
    )
    lines.append("-" * 95)
    for row in rows:
        lines.append(
            "%-18s %6s  %10s %10s %8s  %12s %12s  %s"
            % (
                row["config"],
                _cell_label(
                    row.get("mode", "blocking"),
                    row.get("workers", 0),
                    row.get("connections"),
                ),
                _fmt(row["wall_old"], "%.4g"),
                _fmt(row["wall_new"], "%.4g"),
                _fmt(row["wall_pct"], "%+.1f"),
                _fmt(row["cycles_old"], "%.1f"),
                _fmt(row["cycles_new"], "%.1f"),
                row["note"],
            )
        )
    return "\n".join(lines)


def render_payload(payload):
    """A human-readable snapshot table (the no-flag CLI output)."""
    lines = [
        "trajectory snapshot (PR %d): %s, scale %s, workers %s"
        % (
            payload["pr"],
            payload["app"],
            payload["workload"]["scale"],
            "/".join(str(w) for w in payload["matrix"]["workers"]),
        ),
        "%-18s %6s  %10s  %12s  %10s  %8s"
        % ("config", "load", "wall_index", "cyc/req", "cycles(M)", "requests"),
        "-" * 75,
    ]
    for cell in payload["cells"]:
        lines.append(
            "%-18s %6s  %10.4g  %12.1f  %10.2f  %8d"
            % (
                cell["config"],
                _cell_label(
                    cell.get("mode", "blocking"),
                    cell.get("workers", 0),
                    cell.get("connections"),
                ),
                cell["wall_index"],
                cell["cycles_per_request"],
                cell["steady_cycles"] / 1e6,
                cell["work_units"],
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI driver (``python -m repro.bench trajectory``)
# ---------------------------------------------------------------------------


def run_cli(args):
    """Drive the trajectory subcommand; returns the process exit code."""
    scale = args.scale if args.scale is not None else TRAJECTORY_SCALE

    if args.check:
        previous = load_previous()
        if previous is None:
            print(
                "trajectory check: no committed BENCH_*.json yet; "
                "nothing to gate against."
            )
            return 0
        # the gate measures the full blocking matrix but only the cheap
        # 100-connection event cells; missing 1k/10k/fuzz cells diff as
        # "cell removed" notes, which never fail the check
        payload = trajectory_payload(
            scale=scale, event_specs=EVENT_SMOKE_MATRIX, include_fuzz=False
        )
        rows = diff_payloads(previous, payload)
        failures = check_rows(rows, tolerance=args.tolerance)
        for retry in range(CHECK_RETRIES):
            if not failures:
                break
            keys = {row["key"] for row in failures}
            print(
                "re-measuring %d regressed cell(s) (retry %d/%d) -- the "
                "wall estimator is a min, so a real regression survives"
                % (len(keys), retry + 1, CHECK_RETRIES)
            )
            payload["cells"] = remeasure_cells(
                payload["cells"], keys, scale=scale
            )
            rows = diff_payloads(previous, payload)
            failures = check_rows(rows, tolerance=args.tolerance)
        print(render_diff(rows, old_pr=previous.get("pr"), new_pr=PR_NUMBER))
        if failures:
            print(
                "\ntrajectory check FAILED: %d cell(s) regressed more than "
                "%.1f%% wall-clock." % (len(failures), args.tolerance)
            )
            return 1
        print(
            "\ntrajectory check OK: no cell regressed more than %.1f%% "
            "wall-clock." % args.tolerance
        )
        return 0

    previous = None
    path = snapshot_path()
    if args.write and os.path.exists(path):
        with open(path) as fh:
            previous = json.load(fh)
    payload = trajectory_payload(scale=scale, previous=previous)

    if args.write:
        with open(path, "w") as fh:
            fh.write(serialize(payload))
        print("wrote %s" % path)
        baseline = load_previous(before=PR_NUMBER)
        if baseline is not None:
            rows = diff_payloads(baseline, payload)
            print(render_diff(rows, old_pr=baseline.get("pr")))
        return 0

    if args.json:
        print(serialize(payload), end="")
        return 0

    print(render_payload(payload))
    return 0
