"""Experiment harnesses regenerating every table and figure of §9–§10.

- :mod:`repro.bench.harness` — run (app, workload, defense-config), collect
  cycles / throughput / syscall traces;
- :mod:`repro.bench.experiments` — the per-table/figure generators
  (Figure 3, Tables 3, 4, 5, 6, 7) plus the §11 ablations;
- :mod:`repro.bench.report` — text rendering of the tables;
- ``python -m repro.bench <experiment>`` — CLI entry point.
"""

from repro.bench.harness import (
    DefenseConfig,
    RunResult,
    CONFIGS,
    FIGURE3_LADDER,
    run_app,
    build_app,
    SIM_HZ,
)

__all__ = [
    "DefenseConfig",
    "RunResult",
    "CONFIGS",
    "FIGURE3_LADDER",
    "run_app",
    "build_app",
    "SIM_HZ",
]
