"""CLI entry point: ``python -m repro.bench <experiment> [--scale S]``.

Experiments: figure3, table3, table4, table5, table6, table7,
security_baselines, ablation_dfi, all.
"""

import argparse
import sys
import time

from repro.bench.report import RENDERERS

_SCALED = {"figure3", "table3", "table4", "table7", "ablation_dfi"}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the BASTION paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RENDERERS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale multiplier (smaller = faster, noisier)",
    )
    args = parser.parse_args(argv)

    names = sorted(RENDERERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        renderer = RENDERERS[name]
        start = time.time()
        if name in _SCALED:
            print(renderer(args.scale))
        else:
            print(renderer())
        print("[%s finished in %.1fs]\n" % (name, time.time() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
