"""CLI entry point: ``python -m repro.bench <experiment> [--scale S]``.

Experiments: figure3, table3, table4, table5, table6, table7,
security_baselines, ablation_cache, ablation_dfi, scheduler, fuzz, all.
Ablations can also be selected with ``--ablate cache`` / ``--ablate dfi``.

``trajectory`` is the persisted-performance subcommand (see
``docs/perf.md``): it measures the pinned nginx+wrk matrix and either
prints it, emits it as JSON (``--json``), rewrites the committed
``BENCH_<pr>.json`` (``--write``), or gates against the newest committed
snapshot (``--check``, the CI regression job).
"""

import argparse
import json
import sys
import time

from repro.bench.report import (
    RENDERERS,
    analysis_json,
    binary_precision_json,
    fuzz_json,
    stages_json,
)

_SCALED = {
    "figure3",
    "table3",
    "table4",
    "table7",
    "ablation_cache",
    "ablation_dfi",
    "scheduler",
    "stages",
}

#: experiments with a machine-readable payload; keys sorted + stable
#: formatting make the output byte-stable for a given run
_JSON_PAYLOADS = {
    "analysis": lambda args: analysis_json(),
    "binary": lambda args: binary_precision_json(),
    "fuzz": lambda args: fuzz_json(),
    "stages": lambda args: stages_json(args.scale),
}

#: short names accepted by ``--ablate``
_ABLATIONS = {"cache": "ablation_cache", "dfi": "ablation_dfi"}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the BASTION paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(RENDERERS) + ["all", "trajectory"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--ablate",
        choices=sorted(_ABLATIONS),
        help="run an ablation by short name (e.g. --ablate cache)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale multiplier (smaller = faster, noisier; "
        "trajectory pins its own default)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (experiments: %s, trajectory)"
        % ", ".join(sorted(_JSON_PAYLOADS)),
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="trajectory only: rewrite the committed BENCH_<pr>.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="trajectory only: diff against the newest committed "
        "BENCH_*.json and fail on wall-clock regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=5.0,
        help="trajectory --check: max tolerated wall regression (percent)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "trajectory":
        from repro.bench.trajectory import run_cli

        return run_cli(args)
    if args.write or args.check:
        parser.error("--write/--check are only for the trajectory subcommand")
    if args.scale is None:
        args.scale = 1.0

    if args.json:
        payload = _JSON_PAYLOADS.get(args.experiment)
        if payload is None:
            parser.error(
                "--json is only supported for: %s"
                % ", ".join(sorted(_JSON_PAYLOADS))
            )
        print(json.dumps(payload(args), indent=2, sort_keys=True))
        return 0

    names = []
    if args.experiment == "all":
        names = sorted(RENDERERS)
    elif args.experiment is not None:
        names = [args.experiment]
    if args.ablate is not None:
        ablation = _ABLATIONS[args.ablate]
        if ablation not in names:
            names.append(ablation)
    if not names:
        parser.error("specify an experiment or --ablate")

    for name in names:
        renderer = RENDERERS[name]
        start = time.time()
        if name in _SCALED:
            print(renderer(args.scale))
        else:
            print(renderer())
        print("[%s finished in %.1fs]\n" % (name, time.time() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
