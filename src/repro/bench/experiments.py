"""Per-table/figure experiment generators.

Each function returns plain data structures; :mod:`repro.bench.report`
renders them as text tables mirroring the paper's layout, and the
``benchmarks/`` pytest-benchmark suite asserts their shapes.
"""

from dataclasses import dataclass, field

from repro.attacks.catalog import CATALOG
from repro.attacks.runner import run_attack, table6_matrix
from repro.bench.harness import (
    FIGURE3_LADDER,
    build_app,
    run_app,
    run_app_scheduled,
)
from repro.compiler.pipeline import BastionCompiler
from repro.syscalls.sensitive import SENSITIVE_SYSCALLS
from repro.vm.cpu import CPUOptions

APPS = ("nginx", "sqlite", "vsftpd")

#: per-app workload scales used by the full benchmark runs (vsftpd's unit
#: of work is large, so it runs at full scale even in quicker sweeps)
DEFAULT_SCALES = {"nginx": 0.6, "sqlite": 0.6, "vsftpd": 1.0}


def _scales(scale):
    if isinstance(scale, dict):
        return scale
    return {app: DEFAULT_SCALES[app] * scale for app in APPS}


# ---------------------------------------------------------------------------
# Figure 3 + Table 3
# ---------------------------------------------------------------------------


@dataclass
class PerfSweep:
    """One app's run across the Figure 3 ladder."""

    app: str
    baseline: object
    runs: dict = field(default_factory=dict)  # config -> RunResult

    def overhead(self, config):
        return self.runs[config].overhead_pct(self.baseline)

    def raw_metric(self, config=None):
        result = self.baseline if config is None else self.runs[config]
        if self.app == "nginx":
            return result.throughput_mbps()
        if self.app == "sqlite":
            return result.notpm()
        return result.transfer_seconds()

    @property
    def metric_name(self):
        return {
            "nginx": "MB/sec",
            "sqlite": "NOTPM",
            "vsftpd": "sec/transfer",
        }[self.app]


def perf_sweep(scale=1.0, configs=FIGURE3_LADDER, apps=APPS):
    """Run every app across the config ladder (Figure 3 / Table 3 data)."""
    scales = _scales(scale)
    sweeps = {}
    for app in apps:
        baseline = run_app(app, "vanilla", scale=scales[app])
        sweep = PerfSweep(app=app, baseline=baseline)
        for config in configs:
            sweep.runs[config] = run_app(app, config, scale=scales[app])
        sweeps[app] = sweep
    return sweeps


def figure3(scale=1.0):
    """Overhead percentages for the Figure 3 ladder."""
    sweeps = perf_sweep(scale)
    return {
        app: {config: sweep.overhead(config) for config in FIGURE3_LADDER}
        for app, sweep in sweeps.items()
    }, sweeps


def table3(scale=1.0):
    """Raw benchmark metrics (Table 3) for vanilla + the ladder."""
    sweeps = perf_sweep(scale)
    rows = {}
    for app, sweep in sweeps.items():
        rows[app] = {"vanilla": sweep.raw_metric()}
        for config in FIGURE3_LADDER:
            rows[app][config] = sweep.raw_metric(config)
    return rows, sweeps


# ---------------------------------------------------------------------------
# Scheduler sweep: multi-worker NGINX under concurrent load
# ---------------------------------------------------------------------------

SCHEDULER_WORKERS = (1, 2, 4)
SCHEDULER_CONFIGS = ("vanilla", "cet_ct_cf_ai")


def scheduler_sweep(scale=1.0, workers=SCHEDULER_WORKERS, configs=SCHEDULER_CONFIGS):
    """Multi-worker NGINX (master + N clone()d workers) under concurrent wrk.

    For each worker count, runs the unprotected and full-BASTION builds on
    the preemptive scheduler with a fresh :class:`ConcurrentWrkWorkload`
    (workloads are stateful, so each run gets its own instance).  Returns
    ``{workers: {config: RunResult}}`` with latency percentiles populated.
    """
    from repro.apps.nginx import NginxConfig
    from repro.apps.workloads import ConcurrentWrkWorkload

    connections = max(int(round(40 * scale)), 4)
    sweep = {}
    for count in workers:
        sweep[count] = {}
        for config in configs:
            workload = ConcurrentWrkWorkload(connections=connections)
            sweep[count][config] = run_app_scheduled(
                "nginx",
                config=config,
                app_config=NginxConfig(workers=count, master_serves=False),
                workload=workload,
            )
    return sweep


# ---------------------------------------------------------------------------
# Table 4: sensitive syscall usage + call-depth statistics
# ---------------------------------------------------------------------------


def table4(scale=1.0):
    """Sensitive-syscall invocation counts under full BASTION (Table 4)."""
    scales = _scales(scale)
    columns = {}
    depth_stats = {}
    for app in APPS:
        result = run_app(app, "cet_ct_cf_ai", scale=scales[app])
        counts = {
            name: result.syscall_counts.get(name, 0)
            for name in SENSITIVE_SYSCALLS
        }
        counts["total_hooks"] = result.hook_total
        columns[app] = counts
        depth_stats[app] = {
            "avg_depth": result.avg_unwind_depth,
            "max_depth": result.max_unwind_depth,
        }
    return columns, depth_stats


# ---------------------------------------------------------------------------
# Table 5: instrumentation statistics (static)
# ---------------------------------------------------------------------------

_TABLE5_ROWS = (
    ("total_callsites", "Total # application callsites"),
    ("direct_callsites", "Total # arbitrary direct callsites"),
    ("indirect_callsites", "Total # arbitrary in-direct callsites"),
    ("sensitive_callsites", "Total # sensitive callsites"),
    ("sensitive_indirect_syscalls", "# sensitive system calls called indirectly"),
    ("ctx_write_mem", "ctx_write_mem()"),
    ("ctx_bind_mem", "ctx_bind_mem()"),
    ("ctx_bind_const", "ctx_bind_const()"),
    ("total_instrumentation", "Total instrumentation sites"),
)


def table5():
    """Static instrumentation statistics per application (Table 5)."""
    stats = {}
    for app in APPS:
        module = build_app(app)
        artifact = BastionCompiler().compile(module)
        stats[app] = dict(artifact.metadata.stats)
    return stats


# ---------------------------------------------------------------------------
# Table 6: the security case study
# ---------------------------------------------------------------------------


def table6():
    """Run the full attack matrix (Table 6)."""
    return table6_matrix()


def security_baseline_comparison(catalog=None):
    """§10.2/§10.3 claims: LLVM CFI fails where BASTION succeeds.

    Runs every attack under (a) LLVM CFI alone, (b) CET alone, (c) the
    presence-based seccomp allowlist, (d) the binary-only mechanism
    (recovered allowlist + call-type checks), and (e) the two SFIP
    variants (syscall-flow transition graph, without and with origin
    checks), recording whether each baseline stopped it — BASTION vs
    binary-only vs SFIP is the filtering-family ladder in one table.
    """
    from repro.bench.harness import CONFIGS

    rows = []
    for spec in catalog or CATALOG:
        cfi = run_attack(
            spec, None, "llvm_cfi", cpu_options=CPUOptions(llvm_cfi=True)
        )
        cet = run_attack(spec, None, "cet", cpu_options=CPUOptions(cet=True))
        seccomp = run_attack(
            spec, None, "seccomp_allowlist",
            defense=CONFIGS["seccomp_allowlist"],
        )
        binary = run_attack(
            spec, None, "binary_only", defense=CONFIGS["binary_only"]
        )
        sfip = run_attack(spec, None, "sfip", defense=CONFIGS["sfip"])
        sfip_origin = run_attack(
            spec, None, "sfip_origin", defense=CONFIGS["sfip_origin"]
        )
        rows.append(
            {
                "attack": spec.name,
                "cfi_blocked": cfi.blocked and not cfi.succeeded,
                "cfi_bypassed": cfi.succeeded,
                "cet_blocked": cet.blocked and not cet.succeeded,
                "cet_bypassed": cet.succeeded,
                "seccomp_blocked": seccomp.blocked and not seccomp.succeeded,
                "seccomp_bypassed": seccomp.succeeded,
                "binary_blocked": binary.blocked and not binary.succeeded,
                "binary_bypassed": binary.succeeded,
                "sfip_blocked": sfip.blocked and not sfip.succeeded,
                "sfip_bypassed": sfip.succeeded,
                "sfip_origin_blocked": sfip_origin.blocked
                and not sfip_origin.succeeded,
                "sfip_origin_bypassed": sfip_origin.succeeded,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 7: filesystem-syscall extension decomposition
# ---------------------------------------------------------------------------

TABLE7_ROWS = ("fs_hook_only", "fs_fetch_state", "fs_full")


def table7(scale=1.0, include_inkernel=True):
    """The §11.2 extension: per-step cost of protecting filesystem syscalls.

    Returns, per app, the paper's three rows (seccomp hook only / fetch
    process state / full context checking) as throughput-degradation
    percentages plus raw metrics, optionally with the in-kernel ablation.
    """
    scales = _scales(scale)
    rows = TABLE7_ROWS + (("fs_full_inkernel",) if include_inkernel else ())
    table = {}
    for app in APPS:
        baseline = run_app(app, "vanilla", scale=scales[app])
        table[app] = {"baseline": baseline, "rows": {}}
        for config in rows:
            result = run_app(app, config, scale=scales[app])
            slowdown = result.steady_cycles / max(baseline.steady_cycles, 1)
            table[app]["rows"][config] = {
                "result": result,
                "slowdown": slowdown,
                "degradation_pct": 100.0 * (1 - 1 / slowdown),
                "overhead_pct": result.overhead_pct(baseline),
            }
    return table


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------


def ablation_dfi(scale=0.5):
    """Argument-integrity scope vs application-wide DFI (§2.2 / §3.3)."""
    scales = _scales(scale)
    rows = {}
    for app in APPS:
        baseline = run_app(app, "vanilla", scale=scales[app])
        dfi = run_app(app, "dfi", scale=scales[app])
        bastion = run_app(app, "cet_ct_cf_ai", scale=scales[app])
        rows[app] = {
            "dfi_overhead_pct": dfi.overhead_pct(baseline),
            "bastion_overhead_pct": bastion.overhead_pct(baseline),
        }
    return rows


def ablation_cache(scale=0.5):
    """Monitor fast path: full BASTION with the verdict cache on vs off.

    Returns, per app, the steady-state overhead of ``cache_off`` (the
    paper's re-verify-everything monitor) and ``cache_on`` (memoized ALLOW
    verdicts + batched trace stops), plus the cache's own counters.
    """
    scales = _scales(scale)
    rows = {}
    for app in APPS:
        baseline = run_app(app, "vanilla", scale=scales[app])
        off = run_app(app, "cache_off", scale=scales[app])
        on = run_app(app, "cache_on", scale=scales[app])
        stats = on.monitor_stats
        rows[app] = {
            "cache_off_overhead_pct": off.overhead_pct(baseline),
            "cache_on_overhead_pct": on.overhead_pct(baseline),
            "hit_rate": stats.get("hit_rate", 0.0),
            "cache_hits": stats.get("cache_hits", 0),
            "cache_misses": stats.get("cache_misses", 0),
            "invalidations": stats.get("invalidations", 0),
            "seccomp_cache_hits": stats.get("seccomp_cache_hits", 0),
        }
    return rows


def adaptive_study_rows():
    """§11.1: BASTION under arbitrary read/write (oracle vs blind forger)."""
    from repro.attacks.adaptive import adaptive_study

    return adaptive_study()


def extended_table6():
    """Table 6 plus the extension scenarios (extra ROP variants)."""
    return table6_matrix(include_extra=True)


def ablation_unwind_depth(scale=0.5):
    """Stack-depth statistics for the §9.2 call-depth observation."""
    _columns, depth_stats = table4(scale)
    return depth_stats


# ---------------------------------------------------------------------------
# dispatch-stage cycle attribution (telemetry bus)
# ---------------------------------------------------------------------------

#: the configs whose contrast shows where BASTION's overhead goes:
#: plain seccomp filtering, the full monitor (re-verify everything), and
#: the monitor fast path
STAGES_CONFIGS = ("vanilla", "seccomp_allowlist", "cet_ct_cf_ai", "cache_on")


def stages(scale=1.0, app="nginx", configs=STAGES_CONFIGS):
    """Per-stage cycle attribution for one app, from the telemetry bus.

    Every run's dispatch pipeline attributes each stage's ledger delta to
    ``stage.cycles.*`` counters on the kernel's bus (the monitor adds the
    ``verify.*`` drill-down inside its trace stop); this experiment
    snapshots those counters per config, decomposing where a defense's
    cycles go — seccomp filtering vs stack unwinding vs argument
    integrity.

    Returns ``{config: {'work_units', 'total_cycles', 'stage_cycles'}}``.
    """
    app_scale = DEFAULT_SCALES[app] * scale
    rows = {}
    for config in configs:
        result = run_app(app, config, scale=app_scale)
        rows[config] = {
            "work_units": result.work_units,
            "total_cycles": result.total_cycles,
            "stage_cycles": dict(result.stage_cycles),
        }
    return rows
