"""repro — a reproduction of BASTION (ASPLOS '23): System Call Integrity.

BASTION enforces the correct use of (sensitive) system calls through three
contexts — Call-Type, Control-Flow, and Argument Integrity — implemented as a
compiler pass plus an out-of-process runtime monitor built on seccomp-BPF and
ptrace.

This package rebuilds the whole stack on a simulated substrate:

- :mod:`repro.ir` — a small typed IR in which the workload applications are
  written (the stand-in for C + LLVM IR).
- :mod:`repro.vm` — an interpreter CPU with corruptible simulated memory,
  frame pointers and return addresses on a simulated stack, and an optional
  CET-style shadow stack.
- :mod:`repro.kernel` — a simulated Linux kernel: VFS, sockets, memory
  regions, credentials, a classic-BPF engine, seccomp, and ptrace.
- :mod:`repro.compiler` — the BASTION compiler pass: call-type analysis,
  control-flow context analysis, argument-integrity analysis, and
  instrumentation.
- :mod:`repro.runtime` — the BASTION runtime library (shadow memory table,
  ``ctx_write_mem`` / ``ctx_bind_*`` intrinsics).
- :mod:`repro.monitor` — the BASTION runtime monitor process.
- :mod:`repro.baselines` — LLVM CFI, DFI, seccomp allowlisting, debloating.
- :mod:`repro.apps` — mini-NGINX, mini-SQLite, mini-vsftpd and their
  workload generators (wrk / DBT2 / dkftpbench stand-ins).
- :mod:`repro.attacks` — the Table 6 attack catalog.
- :mod:`repro.bench` — harnesses regenerating every table and figure in the
  paper's evaluation.

Quickstart::

    from repro import ProtectConfig, run

    result = run("nginx", scale=0.5)      # full BASTION, fast path on
    print("overhead: %.2f%%" % result.overhead_pct)
    print("cache hit rate: %.0f%%" % (100 * result.monitor_stats["hit_rate"]))

Compiling a module directly::

    from repro import protect
    from repro.apps.nginx import build_nginx

    artifact = protect(build_nginx())     # compile + instrument + metadata
    artifact.metadata.stats               # Table 5's static statistics
"""

from repro.api import (
    AnalysisFailure,
    ProtectConfig,
    RunResult,
    analyze,
    protect,
    run,
)
from repro.compiler.pipeline import BastionCompiler, BastionArtifact
from repro.monitor.cache import MonitorStats, VerdictCache
from repro.monitor.policy import ContextPolicy
from repro.monitor.monitor import BastionMonitor, SyscallIntegrityViolation

__version__ = "1.1.0"

__all__ = [
    "BastionCompiler",
    "BastionArtifact",
    "ProtectConfig",
    "RunResult",
    "analyze",
    "AnalysisFailure",
    "protect",
    "run",
    "ContextPolicy",
    "BastionMonitor",
    "MonitorStats",
    "VerdictCache",
    "SyscallIntegrityViolation",
    "__version__",
]
