"""BASTION as a :class:`ProtectionMechanism`.

The monitor owns the launch sequence — shadow-global initialization, the
generated seccomp filter, and tracer registration all happen inside
:meth:`BastionMonitor.attach` — so this mechanism compiles the artifact,
constructs the monitor, and delegates.
"""

from repro.mechanisms.base import ProtectionMechanism, artifact_for
from repro.monitor.monitor import BastionMonitor


class BastionMechanism(ProtectionMechanism):
    """Full BASTION: instrumented binary + ptrace monitor + policy."""

    def launch(self, kernel, app, module):
        artifact = artifact_for(app, module, self.defense.extend_filesystem)
        self.monitor = BastionMonitor(artifact, policy=self.defense.policy)
        return self.monitor.launch(kernel, cpu_options=self.cpu_options())
