"""The five baseline defenses as :class:`ProtectionMechanism` subclasses.

Each wraps an analysis from :mod:`repro.baselines` and installs it through
the kernel's public surfaces — no harness branches, no kernel special
cases.  The hardware/compiler baselines (CET, LLVM-CFI, DFI) are purely
``CPUOptions`` flags carried by the DefenseConfig, so they share
:class:`StaticMechanism`.
"""

from repro.baselines.debloat import debloat_module
from repro.baselines.seccomp_filter import build_allowlist_filter
from repro.baselines.temporal import build_serving_phase_filter
from repro.mechanisms.base import ProtectionMechanism

#: app entry functions reachable only after the serving phase begins.
#: vsftpd's accept loop lives in ``main`` itself, so its "serving" phase
#: degenerates to the whole program (the temporal baseline adds nothing
#: over the allowlist there — a faithful limitation of the technique).
SERVING_ROOTS = {
    "nginx": ("ngx_master_cycle", "ngx_worker_cycle"),
    "sqlite": ("sqlite_server_loop",),
    "vsftpd": ("main",),
}


class StaticMechanism(ProtectionMechanism):
    """CPU-flag-only defenses: vanilla, CET, LLVM-CFI, DFI."""


class SeccompAllowlistMechanism(ProtectionMechanism):
    """Static syscall allowlist: KILL anything the program never calls."""

    def install(self, kernel, proc, app, module):
        kernel.install_seccomp(proc, build_allowlist_filter(module))


class TemporalMechanism(ProtectionMechanism):
    """Two-phase specialization: allowlist at launch, a stricter filter
    once the server enters its accept loop (TSP/temporal debloating).

    The phase switch is a dispatch-pipeline hook: at the first
    ``accept``/``accept4`` the serving-phase filter is appended to the
    calling process *before* the seccomp stage evaluates that syscall, so
    the strictest-action-wins composition applies from the switch point on.
    """

    def __init__(self, defense):
        super().__init__(defense)
        self.switched = False
        self.serving_filter = None
        self.init_only = frozenset()

    def install(self, kernel, proc, app, module):
        kernel.install_seccomp(proc, build_allowlist_filter(module))
        roots = SERVING_ROOTS.get(app)
        if roots is None:
            return
        serving, init_only, _serving_set = build_serving_phase_filter(
            module, roots
        )
        self.serving_filter = serving
        self.init_only = frozenset(init_only)

        def phase_switch(ctx):
            if not self.switched and ctx.name in ("accept", "accept4"):
                self.switched = True
                kernel.install_seccomp(ctx.proc, serving)

        kernel.pipeline.insert("count", phase_switch)


class DebloatMechanism(ProtectionMechanism):
    """Static debloating: unreachable functions removed from the binary."""

    def __init__(self, defense):
        super().__init__(defense)
        self.report = None

    def target_module(self, app, module):
        debloated, self.report = debloat_module(module)
        return debloated
