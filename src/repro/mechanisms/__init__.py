"""Protection mechanisms behind one interface (see ``docs/mechanisms.md``).

``mechanism_for(defense)`` maps a :class:`~repro.bench.harness.
DefenseConfig` to the :class:`ProtectionMechanism` that implements it;
``mechanism.launch(kernel, app, module)`` is the entire launch path the
bench harness uses, for BASTION and every baseline alike.

All named-mechanism registration lives in
:mod:`repro.mechanisms.registry` — one :class:`~repro.mechanisms.
registry.MechanismSpec` row per mechanism, from which
:data:`MECHANISM_NAMES`, :func:`defense_for_mechanism`,
``bench.harness.CONFIGS``'s baseline slice, ``mechanism_for``, and the
fuzz oracle's matrix are all derived.  This module re-exports the
registry surface (and the historical ``_MECHANISM_DEFENSES`` dict, now
derived) so existing imports keep working.
"""

from repro.mechanisms.base import (
    ProtectionMechanism,
    artifact_for,
    mechanism_for,
)
from repro.mechanisms.registry import (
    FUZZ_MATRIX,
    MECHANISM_NAMES,
    MechanismSpec,
    defense_for_mechanism,
    named_defense_configs,
)

from repro.mechanisms.registry import _ORDER as _REGISTRY_ORDER
from repro.mechanisms.registry import _REGISTRY

#: deprecated: DefenseConfig kwargs per named non-BASTION mechanism.
#: Kept as a registry-derived view for old importers; register a
#: MechanismSpec in repro.mechanisms.registry instead of editing this.
_MECHANISM_DEFENSES = {
    name: dict(_REGISTRY[name].defense_kwargs)
    for name in _REGISTRY_ORDER
    if _REGISTRY[name].defense_kwargs is not None
}

from repro.mechanisms.bastion import BastionMechanism
from repro.mechanisms.baselines import (
    SERVING_ROOTS,
    DebloatMechanism,
    SeccompAllowlistMechanism,
    StaticMechanism,
    TemporalMechanism,
)
from repro.mechanisms.binary import BinaryOnlyMechanism
from repro.mechanisms.sfip import SfipMechanism, SfipOriginMechanism

__all__ = [
    "ProtectionMechanism",
    "artifact_for",
    "mechanism_for",
    "MECHANISM_NAMES",
    "FUZZ_MATRIX",
    "MechanismSpec",
    "defense_for_mechanism",
    "named_defense_configs",
    "BastionMechanism",
    "StaticMechanism",
    "SeccompAllowlistMechanism",
    "TemporalMechanism",
    "DebloatMechanism",
    "BinaryOnlyMechanism",
    "SfipMechanism",
    "SfipOriginMechanism",
    "SERVING_ROOTS",
]
