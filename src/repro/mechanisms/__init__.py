"""Protection mechanisms behind one interface (see ``docs/architecture.md``).

``mechanism_for(defense)`` maps a :class:`~repro.bench.harness.
DefenseConfig` to the :class:`ProtectionMechanism` that implements it;
``mechanism.launch(kernel, app, module)`` is the entire launch path the
bench harness uses, for BASTION and every baseline alike.
"""

from repro.mechanisms.base import (
    ProtectionMechanism,
    artifact_for,
    mechanism_for,
)
from repro.mechanisms.bastion import BastionMechanism
from repro.mechanisms.baselines import (
    SERVING_ROOTS,
    DebloatMechanism,
    SeccompAllowlistMechanism,
    StaticMechanism,
    TemporalMechanism,
)

__all__ = [
    "ProtectionMechanism",
    "artifact_for",
    "mechanism_for",
    "BastionMechanism",
    "StaticMechanism",
    "SeccompAllowlistMechanism",
    "TemporalMechanism",
    "DebloatMechanism",
    "SERVING_ROOTS",
]
