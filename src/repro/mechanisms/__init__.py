"""Protection mechanisms behind one interface (see ``docs/architecture.md``).

``mechanism_for(defense)`` maps a :class:`~repro.bench.harness.
DefenseConfig` to the :class:`ProtectionMechanism` that implements it;
``mechanism.launch(kernel, app, module)`` is the entire launch path the
bench harness uses, for BASTION and every baseline alike.

:data:`MECHANISM_NAMES` / :func:`defense_for_mechanism` are the *named*
registry behind ``repro.api.ProtectConfig(mechanism=...)`` — the stable
way to pick a baseline without reaching into ``bench.harness.CONFIGS``.
"""

from repro.mechanisms.base import (
    ProtectionMechanism,
    artifact_for,
    mechanism_for,
)

#: DefenseConfig kwargs for each named non-BASTION mechanism
_MECHANISM_DEFENSES = {
    "seccomp_allowlist": {"baseline": "seccomp_allowlist"},
    "temporal": {"baseline": "temporal"},
    "debloat": {"baseline": "debloat"},
    "binary_only": {"baseline": "binary_only"},
    "llvm_cfi": {"llvm_cfi": True},
    "dfi": {"dfi": True},
}

#: every name ``ProtectConfig(mechanism=...)`` accepts
MECHANISM_NAMES = ("bastion",) + tuple(sorted(_MECHANISM_DEFENSES))


def defense_for_mechanism(name, label=None):
    """The DefenseConfig for a *named* non-BASTION mechanism.

    ``bastion`` is deliberately not served here: it carries a policy, so
    :meth:`repro.api.ProtectConfig.defense` builds it from the full
    config.  Unknown names raise ``ValueError`` listing the registry.
    """
    from repro.bench.harness import DefenseConfig

    kwargs = _MECHANISM_DEFENSES.get(name)
    if kwargs is None:
        raise ValueError(
            "unknown mechanism %r (expected one of %s)"
            % (name, ", ".join(MECHANISM_NAMES))
        )
    return DefenseConfig(label or name, **kwargs)
from repro.mechanisms.bastion import BastionMechanism
from repro.mechanisms.baselines import (
    SERVING_ROOTS,
    DebloatMechanism,
    SeccompAllowlistMechanism,
    StaticMechanism,
    TemporalMechanism,
)
from repro.mechanisms.binary import BinaryOnlyMechanism

__all__ = [
    "ProtectionMechanism",
    "artifact_for",
    "mechanism_for",
    "MECHANISM_NAMES",
    "defense_for_mechanism",
    "BastionMechanism",
    "StaticMechanism",
    "SeccompAllowlistMechanism",
    "TemporalMechanism",
    "DebloatMechanism",
    "BinaryOnlyMechanism",
    "SERVING_ROOTS",
]
