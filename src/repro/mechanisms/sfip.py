"""SFIP: syscall-flow-integrity protection as a dispatch-pipeline hook.

The strongest filtering-family rival BASTION is compared against
(Canella et al., "SFIP: Coarse-Grained Syscall-Flow-Integrity
Protection"): instead of asking *"may this program ever issue this
syscall?"* (the allowlist baselines), SFIP asks *"may this syscall
follow the previous one?"* — a per-process state machine over the
statically extracted syscall-transition graph, enforced in-kernel.

Both variants consume the **flowgraph-produced**
:class:`~repro.policy.CompiledPolicy` (metadata entry/thread-entry/
address-taken roots; the binary producer's coarser graph is the
precision contrast, not the enforced artifact) and install two things:

- the policy's KILL-by-default **presence filter** at the seccomp stage
  (the filtering half — dead-surface syscalls never reach the hook);
- a **transition check** hook inserted at the ``seccomp`` stage (after
  the kernel's own filter evaluation, fused-head preserved): look up the
  process's last-observed syscall, kill unless ``last -> current`` is in
  the graph.  ``sfip_origin`` additionally requires the *origin* — the
  function containing the trapped syscall instruction
  (``image.func_containing(rip)``) — to be one the analysis recorded for
  that edge, closing the "replay a legal adjacency from injected code"
  gap at one extra table probe per dispatch.

Scheduler correctness: per-pid state lives in a plain dict keyed by pid;
a clone()/fork() child *snapshots its parent's state at the spawn
dispatch* — the mechanism subscribes to the kernel telemetry bus and
copies state when the spawn event fires, which happens at the same
dispatch instant under the cooperative runner and the preemptive
scheduler, so verdicts are quantum-independent (the parent's state is
already ``clone`` when the hook advanced it at the seccomp stage, hence
the engine's ``clone -> first(thread_entry)`` edges line up).

Cycle attribution: the check charges ``costs.sfip_check`` (or
``sfip_origin_check``) to the ``sfip`` ledger category, and — like every
pipeline hook — its cycles land on the ``stage.cycles.seccomp`` bus
counter, so ``bench stages`` attributes SFIP's dispatch cost per stage.

What SFIP gives up relative to BASTION (and what the differential
fuzzer hunts): no argument integrity and no caller-chain context — any
corruption that stays on a *legal adjacency* of the transition graph
(data-only attacks, mimicry within one state) is admitted.  Table 6 and
the pinned fuzz corpus carry the SFIP-allows/BASTION-kills witnesses.
"""

from repro.errors import ProcessKilled
from repro.mechanisms.base import ProtectionMechanism, artifact_for
from repro.policy import START, build_presence_filter

_sfip_policy_cache = {}


def sfip_policy_for(app, module):
    """The flowgraph-produced policy for the *vanilla* module (cached).

    SFIP needs no instrumentation: the state machine only observes
    dispatches.  The metadata comes from the cached BASTION compile; the
    flow engine runs over the vanilla module the mechanism actually
    loads (names and call structure are identical either way).
    """
    from repro.analyze.flowgraph import compile_policy

    key = (app, id(module))
    cached = _sfip_policy_cache.get(key)
    if cached is None or cached[0] is not module:
        artifact = artifact_for(app, module)
        cached = (module, compile_policy(artifact, module=module))
        _sfip_policy_cache[key] = cached
    return cached[1]


class SfipMechanism(ProtectionMechanism):
    """Presence filter + per-process syscall-transition state machine."""

    #: sfip_origin overrides: also check the issuing function per edge
    check_origin = False
    #: kill-reason prefix (classify_blocking keys on it)
    reason = "sfip"

    def __init__(self, defense):
        super().__init__(defense)
        self.policy = None
        #: transition checks run / kills issued by the hook
        self.checks = 0
        self.kills = 0

    def install(self, kernel, proc, app, module):
        policy = sfip_policy_for(app, module)
        self.policy = policy
        kernel.install_seccomp(
            proc, build_presence_filter(policy, label=self.reason)
        )

        # precomputed {prev: {next: frozenset(origins)}} probe table
        table = {
            prev: dict(nexts) for prev, nexts in policy.transitions.items()
        }
        state = {proc.pid: START}
        self._state = state
        costs = kernel.costs
        check_cost = (
            costs.sfip_origin_check if self.check_origin else costs.sfip_check
        )
        check_origin = self.check_origin
        image = self.image
        variant = self.reason

        def snapshot_child(event):
            # A spawned child inherits its parent's flow state at the
            # spawn dispatch — the one bus event both the cooperative
            # runner and the preemptive scheduler emit at the same
            # dispatch instant (Kernel._spawn_child).
            if event.kind != "kernel" or event.event not in ("clone", "fork"):
                return
            child_pid = (event.data or {}).get("child_pid")
            if child_pid is not None and event.pid in state:
                state[child_pid] = state[event.pid]

        kernel.telemetry.subscribe(snapshot_child)

        def transition_check(ctx):
            # Runs after the kernel's seccomp stage: anything outside the
            # presence table is already dead.  A short-circuited dispatch
            # (ctx.done) was still *issued* by the program, so it both
            # gets checked and advances the state — skipping it would
            # make the next observed adjacency skip a graph node.
            target = ctx.proc
            self.checks += 1
            target.ledger.charge(check_cost, "sfip")
            prev = state.get(target.pid, START)
            origins = table.get(prev, {}).get(ctx.name)
            ok = origins is not None
            if ok and check_origin:
                issuer = image.func_containing(target.regs.rip)
                ok = issuer in origins
            if ok:
                state[target.pid] = ctx.name
                return
            self.kills += 1
            ctx.verdict = "kill"
            kernel.telemetry.count("dispatch.verdict.kill")
            target.kill(
                "%s: transition %s -> %s not in the flow graph"
                % (variant, prev, ctx.name)
                if origins is None
                else "%s: %s -> %s issued from %s, not a recorded origin"
                % (variant, prev, ctx.name, issuer or "no-function")
            )
            kernel.record(
                "sfip_kill",
                target,
                syscall=ctx.name,
                prev=prev,
                variant=variant,
            )
            raise ProcessKilled(
                "%s transition check killed pid %d on %s -> %s"
                % (variant, target.pid, prev, ctx.name),
                reason=variant,
            )

        kernel.pipeline.insert("seccomp", transition_check)


class SfipOriginMechanism(SfipMechanism):
    """SFIP with per-transition origin checks (rip-resolved issuer)."""

    check_origin = True
    reason = "sfip-origin"
