"""The one registry of named protection mechanisms.

Before this module the registration glue was duplicated four ways: the
``_MECHANISM_DEFENSES`` dict in ``repro.mechanisms.__init__``, the
if-chain in ``mechanism_for``, hand-written ``DefenseConfig`` literals in
``bench.harness.CONFIGS``, and the fuzz oracle's hand-written mechanism
tuple.  A mechanism added to one list and forgotten in another silently
escaped fuzzing or the API.  Now every named mechanism is one
:class:`MechanismSpec` row here, and

- :data:`MECHANISM_NAMES` (the ``repro.api`` surface),
- :func:`defense_for_mechanism` / :func:`named_defense_configs`
  (``bench.harness.CONFIGS``),
- :func:`mechanism_for` (the DefenseConfig -> ProtectionMechanism map),
- :data:`FUZZ_MATRIX` (the differential oracle's mechanism matrix)

are all derived from it.  ``tests/baselines/test_registry.py`` asserts
the derivations stay consistent, so a forgotten registration fails a
test instead of silently narrowing coverage.

Ordering: :data:`FUZZ_MATRIX` follows *registration order* because the
fuzz-corpus format pins it (append-only — see ``repro.fuzz.oracle``).
New mechanisms must be registered after existing ones.
"""

import importlib
from dataclasses import dataclass, field

#: registration order (append-only: the fuzz corpus embeds this order)
_ORDER = []
_REGISTRY = {}


@dataclass(frozen=True)
class MechanismSpec:
    """One named mechanism: its DefenseConfig shape and implementation."""

    name: str
    #: ("module", "ClassName") resolved lazily (mechanism modules import
    #: this package's base class, so eager imports would cycle)
    runner: tuple
    #: kwargs for the DefenseConfig serving this mechanism by name
    defense_kwargs: dict = field(default_factory=dict)
    #: part of the differential fuzz matrix (all current mechanisms are)
    fuzzed: bool = True

    def mechanism_class(self):
        module, attr = self.runner
        return getattr(importlib.import_module(module), attr)


def register(spec):
    if spec.name in _REGISTRY:
        raise ValueError("mechanism %r already registered" % spec.name)
    _REGISTRY[spec.name] = spec
    _ORDER.append(spec.name)
    return spec


register(
    MechanismSpec(
        name="bastion",
        runner=("repro.mechanisms.bastion", "BastionMechanism"),
        # bastion carries a ContextPolicy: repro.api.ProtectConfig.defense
        # builds its DefenseConfig from the full config, not from here.
        defense_kwargs=None,
    )
)
register(
    MechanismSpec(
        name="seccomp_allowlist",
        runner=("repro.mechanisms.baselines", "SeccompAllowlistMechanism"),
        defense_kwargs={"baseline": "seccomp_allowlist"},
    )
)
register(
    MechanismSpec(
        name="temporal",
        runner=("repro.mechanisms.baselines", "TemporalMechanism"),
        defense_kwargs={"baseline": "temporal"},
    )
)
register(
    MechanismSpec(
        name="debloat",
        runner=("repro.mechanisms.baselines", "DebloatMechanism"),
        defense_kwargs={"baseline": "debloat"},
    )
)
register(
    MechanismSpec(
        name="binary_only",
        runner=("repro.mechanisms.binary", "BinaryOnlyMechanism"),
        defense_kwargs={"baseline": "binary_only"},
    )
)
register(
    MechanismSpec(
        name="llvm_cfi",
        runner=("repro.mechanisms.baselines", "StaticMechanism"),
        defense_kwargs={"llvm_cfi": True},
    )
)
register(
    MechanismSpec(
        name="dfi",
        runner=("repro.mechanisms.baselines", "StaticMechanism"),
        defense_kwargs={"dfi": True},
    )
)
register(
    MechanismSpec(
        name="sfip",
        runner=("repro.mechanisms.sfip", "SfipMechanism"),
        defense_kwargs={"baseline": "sfip"},
    )
)
register(
    MechanismSpec(
        name="sfip_origin",
        runner=("repro.mechanisms.sfip", "SfipOriginMechanism"),
        defense_kwargs={"baseline": "sfip_origin"},
    )
)


def spec_for(name):
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            "unknown mechanism %r (expected one of %s)"
            % (name, ", ".join(MECHANISM_NAMES))
        )
    return spec


#: every name ``ProtectConfig(mechanism=...)`` accepts (bastion first,
#: then the baselines sorted — the pre-registry surface, preserved)
MECHANISM_NAMES = ("bastion",) + tuple(
    sorted(n for n in _ORDER if n != "bastion")
)

#: the differential fuzz oracle's mechanism matrix, in registration
#: order — part of the corpus format, append only
FUZZ_MATRIX = tuple(n for n in _ORDER if _REGISTRY[n].fuzzed)


def defense_for_mechanism(name, label=None):
    """The DefenseConfig for a *named* non-BASTION mechanism.

    ``bastion`` is deliberately not served here: it carries a policy, so
    :meth:`repro.api.ProtectConfig.defense` builds it from the full
    config.  Unknown names raise ``ValueError`` listing the registry.
    """
    from repro.bench.harness import DefenseConfig

    spec = spec_for(name)
    if spec.defense_kwargs is None:
        raise ValueError(
            "unknown mechanism %r (expected one of %s)"
            % (name, ", ".join(n for n in MECHANISM_NAMES if n != "bastion"))
        )
    return DefenseConfig(label or name, **spec.defense_kwargs)


def named_defense_configs():
    """``{name: DefenseConfig}`` for every named non-BASTION mechanism —
    the registry-derived slice of ``bench.harness.CONFIGS``."""
    return {
        name: defense_for_mechanism(name)
        for name in _ORDER
        if _REGISTRY[name].defense_kwargs is not None
    }


def mechanism_for(defense):
    """The :class:`ProtectionMechanism` implementing a DefenseConfig."""
    if defense.policy is not None:
        return spec_for("bastion").mechanism_class()(defense)
    baseline = getattr(defense, "baseline", None)
    if baseline is not None:
        spec = _REGISTRY.get(baseline)
        if spec is None:
            raise ValueError("unknown baseline mechanism %r" % (baseline,))
        return spec.mechanism_class()(defense)
    from repro.mechanisms.baselines import StaticMechanism

    return StaticMechanism(defense)
