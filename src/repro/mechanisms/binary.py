"""Binary-only protection: BASTION's checks driven by recovered tables.

The legacy-binary scenario (B-Side, sysfilter): no compiler metadata ships
with the program, so the policy is synthesized entirely from what
:mod:`repro.analyze.binary` recovers off the loaded image —

- a **KILL-by-default seccomp allowlist** over the *reachable* syscall
  set (tighter than the plain ``seccomp_allowlist`` baseline, whose
  presence-based set admits every syscall any linked-but-dead wrapper
  could issue, ``system()``'s fork/execve/wait4 included);
- a **call-type check** on sensitive syscalls: at dispatch time the hook
  classifies how the trapped wrapper was invoked — decode the call
  instruction at ``[rbp+8] - 4``, exactly the monitor's unwinder hop
  (:mod:`repro.monitor.unwind`) — and kills on any call type the
  recovered table forbids.

What it gives up relative to full BASTION: no CF context (no caller-chain
walk beyond the first hop) and no AI context (no argument bindings — those
need compiler-observed value provenance).  That is the degraded-but-sound
middle row between ``seccomp_allowlist`` and ``bastion`` in Table 6.
"""

from repro.analyze.binary import recover_image_for
from repro.errors import ProcessKilled, SegmentationFault
from repro.kernel.seccomp import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL_PROCESS,
    build_action_filter,
)
from repro.mechanisms.base import ProtectionMechanism
from repro.syscalls.sensitive import is_sensitive
from repro.syscalls.table import SYSCALLS
from repro.vm.loader import INSTR_STRIDE
from repro.vm.memory import WORD


def build_recovered_filter(recovery):
    """KILL-by-default filter allowing only recovered-reachable syscalls."""
    allowed = recovery.reachable_syscalls
    actions = {
        entry.nr: SECCOMP_RET_KILL_PROCESS
        for entry in SYSCALLS
        if entry.name not in allowed
    }
    return build_action_filter(
        actions, default_action=SECCOMP_RET_ALLOW, label="binary_only"
    )


class BinaryOnlyMechanism(ProtectionMechanism):
    """Seccomp allowlist + call-type checks from binary recovery alone."""

    def __init__(self, defense):
        super().__init__(defense)
        self.recovery = None
        #: sensitive syscalls checked / killed by the call-type hook
        self.checks = 0
        self.kills = 0

    def install(self, kernel, proc, app, module):
        # ``launch`` stashed the image it loaded — recover from exactly
        # the bytes the process runs, nothing else.
        recovery = recover_image_for(self.image.module)
        self.recovery = recovery
        kernel.install_seccomp(proc, build_recovered_filter(recovery))

        costs = kernel.costs

        def call_type_check(ctx):
            # Runs after the kernel's seccomp stage: anything outside the
            # recovered allowlist is already dead by now.
            if ctx.done or not is_sensitive(ctx.name):
                return
            target = ctx.proc
            self.checks += 1
            target.ledger.charge(costs.monitor_check, "binary_calltype")
            kind = self._classify(recovery, target)
            allowed = recovery.call_types.get(ctx.name, {})
            if kind is not None and allowed.get(kind):
                return
            self.kills += 1
            ctx.verdict = "kill"
            kernel.telemetry.count("dispatch.verdict.kill")
            target.kill(
                "binary-calltype: %s via %s not in recovered table"
                % (ctx.name, kind or "no-callsite")
            )
            kernel.record(
                "binary_calltype_kill", target, syscall=ctx.name,
                call_kind=kind,
            )
            raise ProcessKilled(
                "binary-only call-type check killed pid %d on %s"
                % (target.pid, ctx.name),
                reason="binary-calltype",
            )

        kernel.pipeline.insert("seccomp", call_type_check)

    @staticmethod
    def _classify(recovery, proc):
        """Call type of the trapped syscall: 'direct' | 'indirect' | None.

        A syscall instruction outside any recovered wrapper is an inline
        (direct) issue.  Inside a wrapper, decode the call instruction one
        stride above the saved return address — the monitor unwinder's
        first hop — so a ROP return into the wrapper (no call instruction
        at the "callsite") classifies as None and dies.
        """
        regs = proc.regs
        if recovery.wrapper_at(regs.rip) is None:
            return "direct"
        try:
            return_addr = proc.memory.read(regs.rbp + WORD)
        except SegmentationFault:
            return None  # pivoted frame pointer: unreadable chain
        if return_addr == 0:
            return None  # bottom sentinel: nothing legitimately called us
        return recovery.image.call_kind_at(return_addr - INSTR_STRIDE)
