"""Binary-only protection: BASTION's checks driven by a compiled policy.

The legacy-binary scenario (B-Side, sysfilter): no compiler metadata ships
with the program, so the policy is synthesized entirely from what
:mod:`repro.analyze.binary` recovers off the loaded image — and since the
repro.policy refactor the mechanism consumes the recovered tables as a
:class:`~repro.policy.CompiledPolicy` (the *binary producer*'s artifact)
instead of reaching into ``BinaryRecovery`` internals:

- the policy's **presence table** (the reachability-tightened syscall
  set) becomes a KILL-by-default seccomp allowlist — tighter than the
  plain ``seccomp_allowlist`` baseline, whose presence-based set admits
  every syscall any linked-but-dead wrapper could issue, ``system()``'s
  fork/execve/wait4 included;
- the policy's **call kinds** back a dispatch-time check on sensitive
  syscalls: the hook classifies how the trapped wrapper was invoked —
  decode the call instruction at ``[rbp+8] - 4``, exactly the monitor's
  unwinder hop (:mod:`repro.monitor.unwind`) — and kills on any call
  kind the policy forbids.

The :class:`~repro.analyze.binary.BinaryRecovery` is still consulted at
dispatch time, but only for its *runtime lookups* (``wrapper_at``, the
image's ``call_kind_at``) — the classification machinery, not the policy
tables.

What it gives up relative to full BASTION: no CF context (no caller-chain
walk beyond the first hop) and no AI context (no argument bindings — those
need compiler-observed value provenance).  That is the degraded-but-sound
middle row between ``seccomp_allowlist`` and ``bastion`` in Table 6.
"""

from repro.analyze.binary import policy_for_image, recover_image_for
from repro.errors import ProcessKilled, SegmentationFault
from repro.mechanisms.base import ProtectionMechanism
from repro.policy import build_presence_filter
from repro.syscalls.sensitive import is_sensitive
from repro.vm.loader import INSTR_STRIDE
from repro.vm.memory import WORD


def build_recovered_filter(source):
    """KILL-by-default filter over a binary-produced policy's presence.

    Accepts a :class:`~repro.policy.CompiledPolicy`; a raw
    :class:`~repro.analyze.binary.BinaryRecovery` is still accepted for
    old callers and compiled on the fly.
    """
    if hasattr(source, "reachable_syscalls"):  # a BinaryRecovery
        from repro.analyze.binary import compile_policy

        source = compile_policy(source)
    return build_presence_filter(source, label="binary_only")


class BinaryOnlyMechanism(ProtectionMechanism):
    """Seccomp allowlist + call-kind checks from binary recovery alone."""

    def __init__(self, defense):
        super().__init__(defense)
        self.policy = None
        self.recovery = None
        #: sensitive syscalls checked / killed by the call-type hook
        self.checks = 0
        self.kills = 0

    def install(self, kernel, proc, app, module):
        # ``launch`` stashed the image it loaded — recover from exactly
        # the bytes the process runs, nothing else.
        recovery = recover_image_for(self.image.module)
        policy = policy_for_image(self.image.module)
        self.recovery = recovery
        self.policy = policy
        kernel.install_seccomp(proc, build_recovered_filter(policy))

        costs = kernel.costs
        call_kinds = policy.call_kinds

        def call_type_check(ctx):
            # Runs after the kernel's seccomp stage: anything outside the
            # policy's presence table is already dead by now.
            if ctx.done or not is_sensitive(ctx.name):
                return
            target = ctx.proc
            self.checks += 1
            target.ledger.charge(costs.monitor_check, "binary_calltype")
            kind = self._classify(recovery, target)
            if kind is not None and kind in call_kinds.get(ctx.name, ()):
                return
            self.kills += 1
            ctx.verdict = "kill"
            kernel.telemetry.count("dispatch.verdict.kill")
            target.kill(
                "binary-calltype: %s via %s not in recovered table"
                % (ctx.name, kind or "no-callsite")
            )
            kernel.record(
                "binary_calltype_kill", target, syscall=ctx.name,
                call_kind=kind,
            )
            raise ProcessKilled(
                "binary-only call-type check killed pid %d on %s"
                % (target.pid, ctx.name),
                reason="binary-calltype",
            )

        kernel.pipeline.insert("seccomp", call_type_check)

    @staticmethod
    def _classify(recovery, proc):
        """Call type of the trapped syscall: 'direct' | 'indirect' | None.

        A syscall instruction outside any recovered wrapper is an inline
        (direct) issue.  Inside a wrapper, decode the call instruction one
        stride above the saved return address — the monitor unwinder's
        first hop — so a ROP return into the wrapper (no call instruction
        at the "callsite") classifies as None and dies.
        """
        regs = proc.regs
        if recovery.wrapper_at(regs.rip) is None:
            return "direct"
        try:
            return_addr = proc.memory.read(regs.rbp + WORD)
        except SegmentationFault:
            return None  # pivoted frame pointer: unreadable chain
        if return_addr == 0:
            return None  # bottom sentinel: nothing legitimately called us
        return recovery.image.call_kind_at(return_addr - INSTR_STRIDE)
