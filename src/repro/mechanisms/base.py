"""The common protection-mechanism interface.

BASTION and every baseline defense (seccomp allowlists, temporal
specialization, debloating, LLVM-CFI, DFI, CET) reach the application
through exactly one seam: a :class:`ProtectionMechanism` builds the target
module, launches the root process, and installs whatever it enforces —
seccomp filters, a ptrace monitor, dispatch-pipeline hooks — via the
kernel's public surfaces (``kernel.install_seccomp``,
``kernel.pipeline.insert``, ``proc.tracer``).  The bench harness holds no
per-defense branches: ``mechanism_for(defense).launch(kernel, app, module)``
is the whole launch path.
"""

from repro.compiler.pipeline import BastionCompiler
from repro.vm.cpu import CPU
from repro.vm.loader import Image

_artifact_cache = {}


def artifact_for(app, module, extend_filesystem=False):
    """Compile (and cache) the BASTION artifact for an app module."""
    key = (app, id(module), extend_filesystem)
    if key not in _artifact_cache:
        _artifact_cache[key] = BastionCompiler(
            extend_filesystem=extend_filesystem
        ).compile(module)
    return _artifact_cache[key]


class ProtectionMechanism:
    """One defense, expressed against the kernel's public surfaces.

    Subclasses override any of:

    - :meth:`target_module` — swap the module the image loads (debloating,
      BASTION instrumentation);
    - :meth:`install` — attach filters / pipeline hooks / a tracer to the
      launched root process;
    - :meth:`launch` — wholesale replacement when the defense owns the
      launch sequence (BASTION's monitor does).
    """

    def __init__(self, defense):
        self.defense = defense
        #: the BastionMonitor when this mechanism runs one, else None
        self.monitor = None

    def cpu_options(self):
        return self.defense.cpu_options()

    def target_module(self, app, module):
        """The module the process image loads."""
        if self.defense.instrumented:
            return artifact_for(
                app, module, self.defense.extend_filesystem
            ).module
        return module

    def install(self, kernel, proc, app, module):
        """Attach this mechanism to a launched root process (default: none)."""

    def launch(self, kernel, app, module):
        """Create the protected root process; returns ``(proc, cpu)``."""
        image = Image(self.target_module(app, module))
        #: the loaded image, for mechanisms that analyze the binary itself
        self.image = image
        proc = kernel.create_process(app, image)
        cpu = CPU(image, proc, kernel, self.cpu_options())
        self.install(kernel, proc, app, module)
        return proc, cpu


def mechanism_for(defense):
    """The :class:`ProtectionMechanism` implementing a DefenseConfig.

    Registry-driven since the repro.policy refactor: every named
    mechanism is a :class:`~repro.mechanisms.registry.MechanismSpec` row
    in :mod:`repro.mechanisms.registry`; this is a thin re-export kept
    for its historical import path.
    """
    # imported here: registry resolves mechanism classes lazily, and
    # bastion.py/baselines.py import this module's base class
    from repro.mechanisms.registry import mechanism_for as _registry_lookup

    return _registry_lookup(defense)
