"""Argument-integrity context analysis (§6.3).

Implements the paper's three-step, field-sensitive, inter-procedural
backward use-def analysis:

1. every variable used as a sensitive-syscall argument is sensitive;
2. backward data-flow over use-def chains adds every variable used to
   define a sensitive variable (crossing call boundaries through parameters
   — the ``b2 <- flags`` case of Figure 2 — and through return values);
3. writes to a struct *field* that feeds a sensitive variable make that
   field sensitive program-wide (``gshm->size``), likewise for globals.

**Binding anchors at the origin lvalue.**  Figure 2 binds
``ctx_bind_mem_2(&gshm->size)`` — the *field address*, not a load
temporary.  Accordingly, when an argument is the result of a load, the bind
plan records the address variable (``mem_at``), so the monitor compares the
argument register against the shadow copy of the *origin* memory.  Shadow
copies are refreshed only at genuine writes (constant/computed definitions,
parameter entry, stores) — never at loads, which would otherwise launder a
corrupted read into a "legitimate" shadow value.

Known approximation (documented in DESIGN.md): no alias analysis — writes
through arbitrary pointers that happen to alias a sensitive slot are not
instrumented.  The paper's LLVM pass has the same character (it follows
use-def chains, not a points-to closure).
"""

from dataclasses import dataclass, field

from repro.ir.callgraph import CallSite
from repro.ir.instructions import (
    AddrGlobal,
    AddrLocal,
    BinOp,
    Call,
    Const,
    Gep,
    Imm,
    Index,
    Load,
    Move,
    Ret,
    Store,
    Syscall,
    Var,
)

MAX_BIND_POSITION = 6


@dataclass
class BindPlan:
    """Instrumentation plan for one callsite."""

    site: CallSite
    syscall: str = None  # set when the site is a sensitive syscall callsite
    #: list of (position, kind, payload):
    #:   ('const', value)      — expected constant
    #:   ('mem', var_name)     — bind &var (its frame slot)
    #:   ('mem_at', addr_var)  — bind the address held in addr_var (origin)
    binds: list = field(default_factory=list)

    def has_position(self, pos):
        return any(b[0] == pos for b in self.binds)


@dataclass
class ArgIntInfo:
    """Result of the argument-integrity analysis."""

    plans: dict = field(default_factory=dict)  # CallSite -> BindPlan
    sensitive_locals: set = field(default_factory=set)  # (func, var)
    sensitive_fields: set = field(default_factory=set)  # (struct, field)
    sensitive_globals: set = field(default_factory=set)  # global name
    sensitive_stores: set = field(default_factory=set)  # CallSite of Stores
    #: (func, var) whose shadow copy must NOT be refreshed at loads — kept
    #: for documentation; loads never refresh shadows at all.
    load_defined: set = field(default_factory=set)


class _Analyzer:
    def __init__(self, module, callgraph, sensitive_sites):
        self.module = module
        self.callgraph = callgraph
        self.sensitive_sites = sensitive_sites
        self.info = ArgIntInfo()
        self._def_maps = {}
        self._local_queue = []
        self._field_queue = []
        self._global_queue = []

    # -- def lookup -------------------------------------------------------

    def _defs(self, func_name, var_name):
        def_map = self._def_maps.get(func_name)
        if def_map is None:
            def_map = {}
            for idx, instr in enumerate(self.module.functions[func_name].body):
                for dname in instr.defs():
                    def_map.setdefault(dname, []).append((idx, instr))
            self._def_maps[func_name] = def_map
        return def_map.get(var_name, ())

    def _last_def_before(self, func_name, var_name, site_index):
        """The textually closest definition of ``var`` before ``site_index``."""
        best = None
        for idx, instr in self._defs(func_name, var_name):
            if idx < site_index:
                best = instr
        return best

    # -- marking ------------------------------------------------------------

    def mark_local(self, func_name, var_name):
        key = (func_name, var_name)
        if key not in self.info.sensitive_locals:
            self.info.sensitive_locals.add(key)
            self._local_queue.append(key)

    def mark_operand(self, func_name, operand):
        if isinstance(operand, Var):
            self.mark_local(func_name, operand.name)

    def mark_field(self, struct, field_name):
        key = (struct, field_name)
        if key not in self.info.sensitive_fields:
            self.info.sensitive_fields.add(key)
            self._field_queue.append(key)

    def mark_global(self, name):
        if name not in self.info.sensitive_globals:
            self.info.sensitive_globals.add(name)
            self._global_queue.append(name)

    # -- bind-origin resolution -------------------------------------------

    def resolve_bind(self, func_name, site_index, operand, depth=0):
        """Resolve one callsite argument to its bind anchor.

        Follows Move chains; a Load anchors at the loaded address (the
        origin lvalue); a Const anchors as a constant; anything else (BinOp,
        call result, address materialization, parameter) anchors at the
        variable's own frame slot.
        """
        if isinstance(operand, Imm):
            return ("const", operand.value)
        var_name = operand.name
        self.mark_local(func_name, var_name)
        if depth > 6:
            return ("mem", var_name)
        d = self._last_def_before(func_name, var_name, site_index)
        if d is None:
            return ("mem", var_name)  # parameter or loop-carried
        if isinstance(d, Const):
            return ("const", d.value)
        if isinstance(d, Move):
            if isinstance(d.src, Imm):
                return ("const", d.src.value)
            return self.resolve_bind(func_name, site_index, d.src, depth + 1)
        if isinstance(d, Load) and isinstance(d.addr, Var):
            self._trace_address(func_name, d.addr.name)
            self.mark_local(func_name, d.addr.name)
            return ("mem_at", d.addr.name)
        return ("mem", var_name)

    # -- seeding from sensitive syscall callsites ------------------------------

    def seed(self):
        for site, syscall_name in self.sensitive_sites.items():
            func = self.module.functions[site.caller]
            instr = func.body[site.index]
            plan = BindPlan(site, syscall=syscall_name)
            self.info.plans[site] = plan
            for pos, arg in enumerate(instr.args[:MAX_BIND_POSITION], start=1):
                plan.binds.append(
                    (pos,) + self.resolve_bind(site.caller, site.index, arg)
                )

    # -- propagation ------------------------------------------------------------

    def run(self):
        self.seed()
        while self._local_queue or self._field_queue or self._global_queue:
            while self._local_queue:
                self._propagate_local(*self._local_queue.pop())
            while self._field_queue:
                self._propagate_field(*self._field_queue.pop())
            while self._global_queue:
                self._propagate_global(self._global_queue.pop())
        return self.info

    def _propagate_local(self, func_name, var_name):
        func = self.module.functions[func_name]

        # Inter-procedural step: a sensitive parameter pulls in the matching
        # argument at every direct callsite of this function (Figure 2's
        # caller-parameter case), and that callsite gets a bind.
        if var_name in func.params:
            position = func.params.index(var_name) + 1
            if position <= MAX_BIND_POSITION:
                for site in self.callgraph.callers_of(func_name):
                    self._bind_passthrough(site, position)

        for _idx, instr in self._defs(func_name, var_name):
            if isinstance(instr, Const):
                continue
            if isinstance(instr, Move):
                self.mark_operand(func_name, instr.src)
            elif isinstance(instr, BinOp):
                self.mark_operand(func_name, instr.a)
                self.mark_operand(func_name, instr.b)
            elif isinstance(instr, Load):
                self._trace_address(func_name, instr.addr.name) if isinstance(
                    instr.addr, Var
                ) else None
            elif isinstance(instr, (Gep, Index)):
                for op in instr.uses():
                    self.mark_operand(func_name, op)
            elif isinstance(instr, Call):
                self._mark_return_values(instr.callee)
            elif isinstance(instr, AddrGlobal):
                # A pointer to a global flowing into sensitive data means the
                # global's contents may be dereferenced as an (extended)
                # argument — track the whole buffer.
                self.mark_global(instr.name)
            elif isinstance(instr, (AddrLocal, Syscall)):
                pass  # addresses/return codes originate here

    def _bind_passthrough(self, site, position):
        func = self.module.functions[site.caller]
        instr = func.body[site.index]
        plan = self.info.plans.get(site)
        if plan is None:
            plan = BindPlan(site)
            self.info.plans[site] = plan
        if plan.has_position(position):
            return
        if position - 1 >= len(instr.args):
            return
        arg = instr.args[position - 1]
        plan.binds.append(
            (position,) + self.resolve_bind(site.caller, site.index, arg)
        )

    def _trace_address(self, func_name, addr_var_name):
        """A sensitive value lives behind ``addr_var``: find what it names."""
        self.mark_local(func_name, addr_var_name)
        for _idx, instr in self._defs(func_name, addr_var_name):
            if isinstance(instr, Gep):
                self.mark_field(instr.struct, instr.field_name)
                self.mark_operand(func_name, instr.base)
            elif isinstance(instr, AddrGlobal):
                self.mark_global(instr.name)
            elif isinstance(instr, AddrLocal):
                self.mark_local(func_name, instr.var)
            elif isinstance(instr, Index):
                self.mark_operand(func_name, instr.index)
                if isinstance(instr.base, Var):
                    self._trace_address(func_name, instr.base.name)
            elif isinstance(instr, BinOp):
                # pointer arithmetic (e.g. entry+8): trace the base pointer
                if isinstance(instr.a, Var):
                    self._trace_address(func_name, instr.a.name)
                self.mark_operand(func_name, instr.b)

    def _mark_return_values(self, callee_name):
        callee = self.module.functions.get(callee_name)
        if callee is None or callee.is_wrapper:
            return
        for instr in callee.body:
            if isinstance(instr, Ret) and instr.value is not None:
                self.mark_operand(callee_name, instr.value)

    # -- field / global write discovery -------------------------------------

    def _propagate_field(self, struct, field_name):
        for func in self.module.functions.values():
            if func.is_wrapper:
                continue
            for idx, instr in enumerate(func.body):
                if not isinstance(instr, Store) or not isinstance(instr.addr, Var):
                    continue
                for _didx, def_instr in self._defs(func.name, instr.addr.name):
                    if (
                        isinstance(def_instr, Gep)
                        and def_instr.struct == struct
                        and def_instr.field_name == field_name
                    ):
                        self.info.sensitive_stores.add(CallSite(func.name, idx))
                        self.mark_operand(func.name, instr.value)
                        self.mark_operand(func.name, def_instr.base)

    def _propagate_global(self, global_name):
        for func in self.module.functions.values():
            if func.is_wrapper:
                continue
            for idx, instr in enumerate(func.body):
                if not isinstance(instr, Store) or not isinstance(instr.addr, Var):
                    continue
                if self._addr_names_global(func.name, instr.addr.name, global_name, 0):
                    self.info.sensitive_stores.add(CallSite(func.name, idx))
                    self.mark_operand(func.name, instr.value)

    def _addr_names_global(self, func_name, var_name, global_name, depth):
        if depth > 4:
            return False
        for _idx, def_instr in self._defs(func_name, var_name):
            if isinstance(def_instr, AddrGlobal) and def_instr.name == global_name:
                return True
            if isinstance(def_instr, (Index, Gep)):
                base = def_instr.base
                if isinstance(base, Var) and self._addr_names_global(
                    func_name, base.name, global_name, depth + 1
                ):
                    return True
            if isinstance(def_instr, BinOp) and isinstance(def_instr.a, Var):
                if self._addr_names_global(
                    func_name, def_instr.a.name, global_name, depth + 1
                ):
                    return True
        return False


def analyze_argument_integrity(module, callgraph, sensitive_sites):
    """Run the §6.3 analysis; returns an :class:`ArgIntInfo`.

    ``sensitive_sites`` maps each sensitive syscall callsite to its syscall
    name (from :func:`repro.compiler.cfg.find_sensitive_sites`).
    """
    return _Analyzer(module, callgraph, sensitive_sites).run()
