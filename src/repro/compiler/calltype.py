"""Call-type context analysis (§6.1).

Classifies every system call in the (simulated) syscall table:

- **directly-callable** — some direct ``Call`` instruction targets a wrapper
  of the syscall (or a raw ``Syscall`` instruction sits inline in
  application code);
- **indirectly-callable** — a wrapper's address is taken (``FuncAddr``), so
  it may be the target of an indirect call;
- **not-callable** — everything else; the monitor's seccomp filter answers
  these with ``SECCOMP_RET_KILL``.

A syscall can be both directly- and indirectly-callable.
"""

from dataclasses import dataclass, field

from repro.ir.instructions import Syscall


def wrapper_map(module):
    """Map each function to the syscall names it wraps.

    A *wrapper* is a function explicitly flagged ``is_wrapper`` (our libc) or
    whose body is essentially just a ``Syscall`` (it opens with the syscall
    instruction and has at most three instructions).  Raw ``Syscall``
    instructions inside other functions are inline direct invocations, not
    wrappers.
    """
    wrappers = {}
    for func in module.functions.values():
        names = tuple(
            instr.name for instr in func.body if isinstance(instr, Syscall)
        )
        if not names:
            continue
        looks_like_stub = len(func.body) <= 3 and isinstance(func.body[0], Syscall)
        if func.is_wrapper or looks_like_stub:
            wrappers[func.name] = names
    return wrappers


@dataclass
class CallTypeInfo:
    """Result of the call-type analysis."""

    #: syscall name -> {"direct": bool, "indirect": bool}; names absent from
    #: the dict are not-callable.
    call_types: dict = field(default_factory=dict)
    #: wrapper function -> syscall names it wraps
    wrappers: dict = field(default_factory=dict)
    #: syscall name -> set of wrapper function names
    syscall_wrappers: dict = field(default_factory=dict)
    #: functions with inline (non-wrapper) Syscall instructions -> names
    inline_sites: dict = field(default_factory=dict)

    def allows(self, syscall_name, kind):
        entry = self.call_types.get(syscall_name)
        return bool(entry and entry.get(kind))

    def is_used(self, syscall_name):
        return syscall_name in self.call_types

    def _mark(self, syscall_name, kind):
        entry = self.call_types.setdefault(
            syscall_name, {"direct": False, "indirect": False}
        )
        entry[kind] = True


def analyze_call_types(module, callgraph):
    """Run the §6.1 classification over ``module``."""
    info = CallTypeInfo()
    info.wrappers = wrapper_map(module)
    for func_name, syscall_names in info.wrappers.items():
        for syscall_name in syscall_names:
            info.syscall_wrappers.setdefault(syscall_name, set()).add(func_name)

    # Direct calls targeting wrappers.
    for wrapper_name, syscall_names in info.wrappers.items():
        callers = callgraph.callers_of(wrapper_name)
        if callers:
            for syscall_name in syscall_names:
                info._mark(syscall_name, "direct")
        if callgraph.is_address_taken(wrapper_name):
            for syscall_name in syscall_names:
                info._mark(syscall_name, "indirect")

    # Inline Syscall instructions in non-wrapper functions count as direct.
    for syscall_name, sites in callgraph.syscall_sites.items():
        for site in sites:
            if site.caller not in info.wrappers:
                info._mark(syscall_name, "direct")
                info.inline_sites.setdefault(site.caller, set()).add(syscall_name)

    return info
