"""Instrumentation pass (§6.3.3).

Rewrites a *clone* of the module:

- before every callsite in a bind plan: ``ctx_bind_const_X(c)`` for constant
  arguments, ``&var; ctx_bind_mem_X(&var)`` for memory-backed ones;
- after every definition of a sensitive local: ``&var; ctx_write_mem(&var, 1)``;
- after every store to a sensitive struct field or global:
  ``ctx_write_mem(addr, 1)`` reusing the store's address operand.

Argument integrity is the only context requiring instrumentation (§6.3);
wrapper bodies are never instrumented — the call *into* the wrapper is the
protected callsite.

Returns the instrumented module, a per-function map from original to new
instruction indices (so the other analyses' site references can be
translated into final binary offsets), and instrumentation counts for
Table 5.
"""

from dataclasses import dataclass, field

from repro.ir.callgraph import CallSite
from repro.ir.instructions import (
    AddrLocal,
    Imm,
    Intrinsic,
    Load,
    Store,
    Var,
    CTX_BIND_CONST,
    CTX_BIND_MEM,
    CTX_WRITE_MEM,
)


@dataclass
class InstrumentationResult:
    """Output of :func:`instrument_module`."""

    module: object
    #: (func_name, original_index) -> new_index
    site_map: dict = field(default_factory=dict)
    ctx_write_mem_count: int = 0
    ctx_bind_mem_count: int = 0
    ctx_bind_const_count: int = 0

    @property
    def total_sites(self):
        return (
            self.ctx_write_mem_count
            + self.ctx_bind_mem_count
            + self.ctx_bind_const_count
        )


def instrument_module(module, arg_info):
    """Apply the §6.3.3 instrumentation plan; the input module is untouched."""
    new_module = module.clone()
    result = InstrumentationResult(module=new_module)

    plans_by_site = arg_info.plans
    sensitive_locals = arg_info.sensitive_locals
    sensitive_stores = arg_info.sensitive_stores

    for func in new_module.functions.values():
        if func.is_wrapper:
            for idx in range(len(func.body)):
                result.site_map[(func.name, idx)] = idx
            continue

        new_body = []
        pending_meta = []  # (bind intrinsic, original callsite index)
        new_index_of = {}
        temp_counter = [0]

        def fresh_temp():
            temp_counter[0] += 1
            return "__bst%d" % temp_counter[0]

        # Sensitive parameters get their shadow copy refreshed at function
        # entry — the call that wrote the parameter slot is a legitimate
        # update (Figure 2, line 11: ``ctx_write_mem(&b2, sizeof(int))``).
        for param in func.params:
            if (func.name, param) in sensitive_locals:
                tmp = fresh_temp()
                new_body.append(AddrLocal(tmp, param))
                new_body.append(
                    Intrinsic(CTX_WRITE_MEM, [Var(tmp), Imm(1)], None, {})
                )
                result.ctx_write_mem_count += 1

        for idx, instr in enumerate(func.body):
            site = CallSite(func.name, idx)

            plan = plans_by_site.get(site)
            if plan is not None:
                for position, kind, payload in sorted(plan.binds):
                    if kind == "const":
                        bind = Intrinsic(
                            CTX_BIND_CONST, [Imm(payload)], None, {"pos": position}
                        )
                        result.ctx_bind_const_count += 1
                    elif kind == "mem_at":
                        # the argument's origin lvalue: bind the address held
                        # in the (still-live) address variable — Figure 2's
                        # ``ctx_bind_mem_2(&gshm->size)``
                        bind = Intrinsic(
                            CTX_BIND_MEM, [Var(payload)], None, {"pos": position}
                        )
                        result.ctx_bind_mem_count += 1
                    else:  # 'mem': the variable's own frame slot
                        tmp = fresh_temp()
                        new_body.append(AddrLocal(tmp, payload))
                        bind = Intrinsic(
                            CTX_BIND_MEM, [Var(tmp)], None, {"pos": position}
                        )
                        result.ctx_bind_mem_count += 1
                    pending_meta.append((bind, idx))
                    new_body.append(bind)

            new_index_of[idx] = len(new_body)
            result.site_map[(func.name, idx)] = len(new_body)
            new_body.append(instr)

            # Shadow-copy refresh after legitimate updates (Table 2's
            # ctx_write_mem): sensitive locals.  Loads are deliberately NOT
            # refresh points — a load's value is only as trustworthy as its
            # origin, whose own shadow copy (bound via 'mem_at') is the
            # ground truth; refreshing here would launder a corrupted read.
            if not isinstance(instr, Load):
                for dname in instr.defs():
                    if (func.name, dname) in sensitive_locals:
                        tmp = fresh_temp()
                        new_body.append(AddrLocal(tmp, dname))
                        new_body.append(
                            Intrinsic(CTX_WRITE_MEM, [Var(tmp), Imm(1)], None, {})
                        )
                        result.ctx_write_mem_count += 1
            # ... and stores to sensitive fields/globals.
            if site in sensitive_stores and isinstance(instr, Store):
                new_body.append(
                    Intrinsic(CTX_WRITE_MEM, [instr.addr, Imm(1)], None, {})
                )
                result.ctx_write_mem_count += 1

        func.body = new_body
        func.invalidate()
        for bind, orig_idx in pending_meta:
            bind.meta["callsite_index"] = new_index_of[orig_idx]

    return result
