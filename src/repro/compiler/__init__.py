"""The BASTION compiler pass (the paper's §6, an LLVM module pass).

Stages, mirroring Figure 1:

1. :mod:`repro.compiler.calltype` — classify every syscall as not-callable /
   directly-callable / indirectly-callable (§6.1);
2. :mod:`repro.compiler.cfg` — record callee→valid-caller relations on every
   path reaching a sensitive syscall callsite (§6.2);
3. :mod:`repro.compiler.argint` — field-sensitive, inter-procedural backward
   use-def analysis identifying sensitive variables and planning the
   argument bindings per callsite (§6.3);
4. :mod:`repro.compiler.instrument` — insert ``ctx_write_mem`` /
   ``ctx_bind_mem_X`` / ``ctx_bind_const_X`` intrinsics into a *clone* of
   the module (§6.3.3);
5. :mod:`repro.compiler.metadata` — the serialized context metadata the
   runtime monitor loads (§6.3.4);
6. :mod:`repro.compiler.pipeline` — the ``BastionCompiler`` facade tying it
   all together and computing the Table 5 instrumentation statistics.
"""

from repro.compiler.calltype import CallTypeInfo, analyze_call_types, wrapper_map
from repro.compiler.cfg import ControlFlowInfo, analyze_control_flow
from repro.compiler.argint import ArgIntInfo, BindPlan, analyze_argument_integrity
from repro.compiler.instrument import instrument_module
from repro.compiler.metadata import (
    BastionMetadata,
    CallsiteMeta,
    ArgBindingMeta,
    SiteKey,
)
from repro.compiler.pipeline import BastionCompiler, BastionArtifact, protect

__all__ = [
    "CallTypeInfo",
    "analyze_call_types",
    "wrapper_map",
    "ControlFlowInfo",
    "analyze_control_flow",
    "ArgIntInfo",
    "BindPlan",
    "analyze_argument_integrity",
    "instrument_module",
    "BastionMetadata",
    "CallsiteMeta",
    "ArgBindingMeta",
    "SiteKey",
    "BastionCompiler",
    "BastionArtifact",
    "protect",
]
