"""The ``BastionCompiler`` facade: analyses → instrumentation → metadata.

Usage::

    artifact = BastionCompiler().compile(module)
    artifact.module     # the instrumented program
    artifact.metadata   # the context metadata the monitor loads
    artifact.image()    # loadable Image of the instrumented program
"""

from dataclasses import dataclass, field

from repro.ir.callgraph import build_callgraph
from repro.ir.instructions import Call, CallIndirect
from repro.ir.validate import validate_module
from repro.compiler.argint import analyze_argument_integrity
from repro.compiler.calltype import analyze_call_types
from repro.compiler.cfg import analyze_control_flow
from repro.compiler.instrument import instrument_module
from repro.compiler.metadata import (
    ArgBindingMeta,
    BastionMetadata,
    CallsiteMeta,
    SiteKey,
)
from repro.syscalls.sensitive import FILESYSTEM_EXTENSION, SENSITIVE_SYSCALLS
from repro.vm.loader import Image


#: pass-hook stage names, in execution order
PASS_STAGES = (
    "validate",
    "callgraph",
    "calltype",
    "cfg",
    "argint",
    "instrument",
    "metadata",
)


@dataclass
class BastionArtifact:
    """A compiled, instrumented, metadata-equipped program."""

    original: object  # the input Module (untouched)
    module: object  # the instrumented Module
    metadata: BastionMetadata
    _image: object = field(default=None, repr=False)

    def image(self):
        """The loadable image of the instrumented program (cached)."""
        if self._image is None:
            self._image = Image(self.module)
        return self._image


class BastionCompiler:
    """The compiler pass of Figure 1.

    Args:
        sensitive: iterable of protected syscall names.  Defaults to the
            paper's 20-entry Table 1 set.
        extend_filesystem: add the §11.2 filesystem extension set (Table 7).
        hooks: optional callable (or iterable of callables) invoked as
            ``hook(stage, payload)`` after every pass, where ``stage`` is a
            name from :data:`PASS_STAGES` and ``payload`` that pass's result
            object.  The analysis tooling (:mod:`repro.analyze`) uses this to
            observe intermediate pass products without re-running them.
    """

    def __init__(self, sensitive=None, extend_filesystem=False, hooks=None):
        names = tuple(sensitive if sensitive is not None else SENSITIVE_SYSCALLS)
        if extend_filesystem:
            names = names + tuple(
                n for n in FILESYSTEM_EXTENSION if n not in names
            )
        self.sensitive_names = names
        if hooks is None:
            hooks = ()
        elif callable(hooks):
            hooks = (hooks,)
        self.hooks = tuple(hooks)

    def _emit(self, stage, payload):
        for hook in self.hooks:
            hook(stage, payload)

    def compile(self, module):
        """Run all analyses + instrumentation; returns a :class:`BastionArtifact`."""
        validate_module(module)
        self._emit("validate", module)
        callgraph = build_callgraph(module)
        self._emit("callgraph", callgraph)
        calltype_info = analyze_call_types(module, callgraph)
        self._emit("calltype", calltype_info)
        cf_info = analyze_control_flow(
            module, callgraph, calltype_info, self.sensitive_names
        )
        self._emit("cfg", cf_info)
        sensitive_sites = cf_info.sensitive_sites
        arg_info = analyze_argument_integrity(module, callgraph, sensitive_sites)
        self._emit("argint", arg_info)
        result = instrument_module(module, arg_info)
        self._emit("instrument", result)

        metadata = self._build_metadata(
            module, callgraph, calltype_info, cf_info, arg_info, result
        )
        self._emit("metadata", metadata)
        return BastionArtifact(
            original=module, module=result.module, metadata=metadata
        )

    # ------------------------------------------------------------------

    def _build_metadata(
        self, module, callgraph, calltype_info, cf_info, arg_info, result
    ):
        site_map = result.site_map

        def translate(site):
            return SiteKey(site.caller, site_map[(site.caller, site.index)])

        metadata = BastionMetadata(program=module.name, entry=module.entry)
        metadata.sensitive_set = self.sensitive_names
        metadata.call_types = {
            name: dict(flags) for name, flags in calltype_info.call_types.items()
        }
        metadata.valid_callers = {
            callee: tuple(sorted(translate(s) for s in sites))
            for callee, sites in cf_info.valid_callers.items()
        }
        metadata.indirect_sites = tuple(
            sorted(translate(s) for s in cf_info.indirect_sites)
        )
        metadata.address_taken = tuple(sorted(cf_info.address_taken))
        metadata.thread_entries = tuple(sorted(cf_info.thread_entries))

        syscall_functions = {
            func: tuple(names) for func, names in calltype_info.wrappers.items()
        }
        for func, names in calltype_info.inline_sites.items():
            merged = set(syscall_functions.get(func, ())) | set(names)
            syscall_functions[func] = tuple(sorted(merged))
        metadata.syscall_functions = syscall_functions

        for site, plan in arg_info.plans.items():
            key = translate(site)
            metadata.callsites[key] = CallsiteMeta(
                site=key,
                syscall=plan.syscall,
                binds=tuple(
                    ArgBindingMeta(
                        pos,
                        "const" if kind == "const" else "mem",
                        payload if kind == "const" else None,
                    )
                    for pos, kind, payload in sorted(plan.binds)
                ),
            )
        metadata.sensitive_globals = tuple(sorted(arg_info.sensitive_globals))

        # Sensitive struct fields of global instances: the monitor verifies
        # these slots directly at every stop ("verifies integrity of all
        # sensitive variables", §7.4) — this is what catches data-only
        # attacks that corrupt e.g. ngx_exec_ctx_t.path in place.
        field_slots = []
        for struct_name, field_name in sorted(arg_info.sensitive_fields):
            if struct_name not in module.types:
                continue
            offset = module.types.get(struct_name).offset(field_name)
            for gvar in module.globals.values():
                if gvar.struct == struct_name:
                    field_slots.append((gvar.name, offset))
        metadata.global_field_slots = tuple(field_slots)
        metadata.stats = self._table5_stats(
            module, callgraph, calltype_info, cf_info, result
        )
        # Provenance: which passes produced this artifact and the shape of
        # the module they saw, so downstream consumers (the static analyzer,
        # the monitor's consistency check) can detect metadata that was not
        # produced by this compiler for this program.
        metadata.provenance = {
            "tool": "repro.compiler",
            "version": 1,
            "passes": list(PASS_STAGES[:-1]),
            "source_functions": len(module.functions),
            "source_instructions": module.instruction_count(),
            "instrumented_instructions": result.module.instruction_count(),
            "sensitive_set_size": len(self.sensitive_names),
        }
        return metadata

    def _table5_stats(self, module, callgraph, calltype_info, cf_info, result):
        """The instrumentation statistics of the paper's Table 5."""
        direct_sites = sum(
            1
            for func in module.functions.values()
            for instr in func.body
            if isinstance(instr, Call)
        )
        indirect_sites = sum(
            1
            for func in module.functions.values()
            for instr in func.body
            if isinstance(instr, CallIndirect)
        )
        sensitive_indirect = sum(
            1
            for name in self.sensitive_names
            if calltype_info.call_types.get(name, {}).get("indirect")
        )
        return {
            "total_callsites": direct_sites + indirect_sites,
            "direct_callsites": direct_sites,
            "indirect_callsites": indirect_sites,
            "sensitive_callsites": len(cf_info.sensitive_sites),
            "sensitive_indirect_syscalls": sensitive_indirect,
            "ctx_write_mem": result.ctx_write_mem_count,
            "ctx_bind_mem": result.ctx_bind_mem_count,
            "ctx_bind_const": result.ctx_bind_const_count,
            "total_instrumentation": result.total_sites,
        }


def protect(module, sensitive=None, extend_filesystem=False):
    """One-call convenience: compile ``module`` with BASTION protection."""
    return BastionCompiler(sensitive, extend_filesystem).compile(module)
