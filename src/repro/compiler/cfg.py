"""Control-flow context analysis (§6.2).

For each *sensitive* syscall callsite, BASTION records all callee→caller
relations on paths from the callsite back toward ``main``, stopping at
indirect callsites.  At runtime the monitor unwinds the stack and checks
each (callee, caller-callsite) pair against this metadata — a scope-reduced
CFI covering only code that actually reaches sensitive syscalls.

The metadata is deliberately *edge-based* ("pairs of callee and caller
addresses", §6.2): a stack is valid iff every unwound edge is valid, and a
partial stack ending at a legitimate indirect callsite is valid iff the
unwound callee there is address-taken.
"""

from dataclasses import dataclass, field

from repro.ir.callgraph import CallSite
from repro.ir.instructions import Call, FuncAddr, Syscall, Var
from repro.syscalls.sensitive import SENSITIVE_SYSCALLS


@dataclass
class ControlFlowInfo:
    """Result of the control-flow context analysis."""

    #: function name -> set of CallSite (direct callsites allowed to call it)
    valid_callers: dict = field(default_factory=dict)
    #: all legitimate indirect callsites in the program
    indirect_sites: tuple = ()
    #: address-taken functions (may legitimately sit below an indirect call)
    address_taken: frozenset = frozenset()
    #: functions on some path to a sensitive syscall (incl. the wrappers)
    relevant_functions: frozenset = frozenset()
    #: sensitive syscall callsites: CallSite -> syscall name
    sensitive_sites: dict = field(default_factory=dict)
    #: clone()-start routines: a thread's stack legitimately bottoms here
    thread_entries: frozenset = frozenset()
    entry: str = "main"


def find_thread_entries(module, calltype_info):
    """Functions whose address flows into a ``clone`` callsite.

    A thread's stack bottoms out at its start routine rather than ``main``;
    the compiler records those routines so the runtime monitor accepts them
    as valid stack bottoms (§7.1's child-protection semantics).
    """
    clone_wrappers = {
        name
        for name, syscalls in calltype_info.wrappers.items()
        if "clone" in syscalls
    }
    entries = set()
    for func in module.functions.values():
        funcaddr_defs = {}
        for instr in func.body:
            if isinstance(instr, FuncAddr):
                funcaddr_defs[instr.dst] = instr.func
            elif isinstance(instr, (Call, Syscall)):
                is_clone = (
                    isinstance(instr, Syscall) and instr.name == "clone"
                ) or (isinstance(instr, Call) and instr.callee in clone_wrappers)
                if not is_clone:
                    continue
                for arg in instr.args:
                    if isinstance(arg, Var) and arg.name in funcaddr_defs:
                        entries.add(funcaddr_defs[arg.name])
    return frozenset(entries)


def find_sensitive_sites(module, callgraph, calltype_info, sensitive_names):
    """Sensitive callsites: direct calls to sensitive wrappers + inline sites.

    Returns ``{CallSite: syscall_name}``.
    """
    sensitive = set(sensitive_names)
    sites = {}
    for wrapper_name, syscall_names in calltype_info.wrappers.items():
        hot = [s for s in syscall_names if s in sensitive]
        if not hot:
            continue
        for site in callgraph.callers_of(wrapper_name):
            sites[site] = hot[0]
    for func in module.functions.values():
        if func.name in calltype_info.wrappers:
            continue
        for idx, instr in enumerate(func.body):
            if isinstance(instr, Syscall) and instr.name in sensitive:
                sites[CallSite(func.name, idx)] = instr.name
    return sites


def analyze_control_flow(
    module, callgraph, calltype_info, sensitive_names=SENSITIVE_SYSCALLS
):
    """Build the §6.2 callee→valid-callers metadata."""
    info = ControlFlowInfo(entry=module.entry)
    info.sensitive_sites = find_sensitive_sites(
        module, callgraph, calltype_info, sensitive_names
    )
    info.indirect_sites = tuple(callgraph.indirect_sites)
    info.address_taken = frozenset(callgraph.address_taken)
    info.thread_entries = find_thread_entries(module, calltype_info)

    # Functions from which a sensitive callsite is reachable: walk caller
    # edges upward from the functions containing sensitive sites, and from
    # the sensitive wrappers themselves.
    relevant = set()
    worklist = [site.caller for site in info.sensitive_sites]
    sensitive = set(sensitive_names)
    for wrapper_name, syscall_names in calltype_info.wrappers.items():
        if any(s in sensitive for s in syscall_names):
            relevant.add(wrapper_name)
    while worklist:
        name = worklist.pop()
        if name in relevant:
            continue
        relevant.add(name)
        for site in callgraph.callers_of(name):
            if site.caller not in relevant:
                worklist.append(site.caller)
    info.relevant_functions = frozenset(relevant)

    # Edge metadata: every relevant function's legitimate direct callers.
    for name in relevant:
        info.valid_callers[name] = set(callgraph.callers_of(name))
    return info
