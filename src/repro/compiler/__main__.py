"""CLI: compile a program with the BASTION pass and inspect the results.

Usage::

    python -m repro.compiler nginx --stats
    python -m repro.compiler sqlite --metadata sqlite.bastion.json
    python -m repro.compiler myprog.ir --dump-ir --extend-fs

The positional argument is either a built-in application name or a path to
a textual-IR file (the format produced by ``repro.ir.format_module``).
"""

import argparse
import sys

from repro.compiler.pipeline import BastionCompiler
from repro.ir.parser import parse_module
from repro.ir.printer import format_module

_BUILTIN_APPS = {
    "nginx": "repro.apps.nginx:build_nginx",
    "sqlite": "repro.apps.sqlite:build_sqlite",
    "vsftpd": "repro.apps.vsftpd:build_vsftpd",
    "httpd": "repro.apps.httpd:build_httpd",
    "browser": "repro.apps.browser:build_browser",
    "mediasrv": "repro.apps.mediasrv:build_mediasrv",
}


def load_target(target):
    """Resolve a CLI target to a Module: builtin app name or .ir file."""
    if target in _BUILTIN_APPS:
        module_path, func_name = _BUILTIN_APPS[target].split(":")
        mod = __import__(module_path, fromlist=[func_name])
        return getattr(mod, func_name)()
    with open(target, "r") as handle:
        return parse_module(handle.read())


def render_stats(metadata):
    rows = (
        ("total_callsites", "application callsites"),
        ("direct_callsites", "  direct"),
        ("indirect_callsites", "  indirect"),
        ("sensitive_callsites", "sensitive syscall callsites"),
        ("sensitive_indirect_syscalls", "sensitive syscalls callable indirectly"),
        ("ctx_write_mem", "ctx_write_mem sites"),
        ("ctx_bind_mem", "ctx_bind_mem sites"),
        ("ctx_bind_const", "ctx_bind_const sites"),
        ("total_instrumentation", "total instrumentation sites"),
    )
    lines = ["BASTION compile of %s" % metadata.program, "-" * 48]
    for key, label in rows:
        lines.append("%-40s %6d" % (label, metadata.stats[key]))
    lines.append("-" * 48)
    used = sorted(metadata.call_types)
    lines.append("syscalls used (%d): %s" % (len(used), ", ".join(used)))
    sensitive_used = [n for n in used if n in metadata.sensitive_set]
    lines.append("sensitive & used (%d): %s" % (len(sensitive_used), ", ".join(sensitive_used)))
    lines.append("sensitive globals tracked: %d" % len(metadata.sensitive_globals))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Run the BASTION compiler pass and inspect its output.",
    )
    parser.add_argument(
        "target",
        help="builtin app (%s) or a textual-IR file" % "|".join(_BUILTIN_APPS),
    )
    parser.add_argument(
        "--extend-fs",
        action="store_true",
        help="protect the §11.2 filesystem extension set too",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print Table 5-style statistics"
    )
    parser.add_argument(
        "--metadata",
        metavar="FILE",
        help="write the context metadata JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--dump-ir",
        action="store_true",
        help="print the instrumented module's textual IR",
    )
    args = parser.parse_args(argv)

    module = load_target(args.target)
    artifact = BastionCompiler(extend_filesystem=args.extend_fs).compile(module)

    shown_anything = False
    if args.stats or not (args.metadata or args.dump_ir):
        print(render_stats(artifact.metadata))
        shown_anything = True
    if args.metadata:
        text = artifact.metadata.to_json()
        if args.metadata == "-":
            print(text)
        else:
            with open(args.metadata, "w") as handle:
                handle.write(text)
            print("metadata written to %s" % args.metadata)
        shown_anything = True
    if args.dump_ir:
        print(format_module(artifact.module))
        shown_anything = True
    return 0 if shown_anything else 1


if __name__ == "__main__":
    sys.exit(main())
