"""Counter-backed attribute views over a :class:`TelemetryBus`.

``MonitorStats``, ``SchedStats``, and friends keep their historical
attribute surface (``stats.cache_hits += 1`` keeps working, tests may even
assign tuples into them) but store nothing themselves: every read and
write goes to the owning bus's counter table, so one bus holds the whole
run's telemetry and the stats objects are disposable fronts.
"""

from repro.telemetry.bus import TelemetryBus


class BusCounter:
    """A data descriptor mapping one attribute to one bus counter."""

    def __init__(self, key):
        self.key = key

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._bus.counters.get(self.key, 0)

    def __set__(self, obj, value):
        obj._bus.counters[self.key] = value


class BusMax:
    """A data descriptor mapping one attribute to one max-merged gauge."""

    def __init__(self, key):
        self.key = key

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._bus.maxima.get(self.key, 0)

    def __set__(self, obj, value):
        obj._bus.maxima[self.key] = value


class BusView:
    """Base for stats views: owns (or borrows) a bus and can be rebound.

    A view constructed standalone gets a small private bus; when its
    subsystem attaches to a kernel the view is :meth:`rebind`-ed onto the
    kernel's bus, carrying any counters accumulated so far with it.
    """

    def __init__(self, bus=None):
        self._bus = bus if bus is not None else TelemetryBus(capacity=1024)

    @property
    def bus(self):
        return self._bus

    def rebind(self, bus):
        """Move this view onto ``bus``, merging accumulated state into it."""
        if bus is not self._bus:
            bus.absorb(self._bus)
            self._bus = bus
        return self
