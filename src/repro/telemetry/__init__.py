"""One telemetry spine for the whole system (see ``docs/telemetry.md``).

Public surface:

- :class:`TelemetryBus` — bounded event ring + aggregate counters;
- :class:`TelemetryEvent` — the structured record every stage emits;
- :class:`BusView` / :class:`BusCounter` / :class:`BusMax` — the
  descriptor toolkit that turns legacy stats objects into bus views.
"""

from repro.telemetry.bus import STAGE_CYCLES_PREFIX, TelemetryBus, TelemetryEvent
from repro.telemetry.views import BusCounter, BusMax, BusView

__all__ = [
    "STAGE_CYCLES_PREFIX",
    "TelemetryBus",
    "TelemetryEvent",
    "BusCounter",
    "BusMax",
    "BusView",
]
