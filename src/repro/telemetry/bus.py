"""The telemetry spine: one bounded, subscribable event bus per kernel.

Every observability surface in the system — the kernel event log, the
monitor's counters, scheduler statistics, per-request latency, and the
dispatch pipeline's per-stage cycle attribution — feeds a single
:class:`TelemetryBus` instead of keeping its own collector.  Consumers
(`KernelEventLog`, `MonitorStats`, `SchedStats`, `LatencyStats`, the bench
reports) are *views* over the bus; adding a new metric is one
``bus.count``/``bus.emit`` call plus a query, not a cross-cutting edit.

Two paths, two costs:

- **counters** (:meth:`count` / :meth:`record_max`) are plain dict
  updates.  They are what the hot paths use — a scheduler at ``quantum=1``
  ticks millions of slices and must not allocate an event object per tick.
  Counter increments charge **no simulated cycles**: telemetry is free in
  the cost model, which is what lets the parity fixtures pin
  ``total_cycles`` across the pipeline refactor.
- **events** (:meth:`emit`) are structured :class:`TelemetryEvent` records
  kept in a bounded ring (newest ``capacity`` retained, sheds counted in
  ``dropped``) and pushed synchronously to subscribers.  Subscribers see
  every event regardless of ring eviction.

Stage cycle attribution uses the reserved counter prefix
``stage.cycles.<stage>`` (see :meth:`charge_stage` / :meth:`stage_cycles`);
the dispatch pipeline fills the top-level stages and the monitor adds
``verify.*`` sub-stages (unwind / call-type / control-flow / arg-integrity).
"""

from collections import deque
from dataclasses import dataclass, field

#: counter-key prefix reserved for per-stage cycle attribution
STAGE_CYCLES_PREFIX = "stage.cycles."


@dataclass
class TelemetryEvent:
    """One structured record on the bus.

    Attributes:
        kind: the emitting subsystem ('kernel' | 'dispatch' | 'monitor' |
            'sched' | 'latency' | ...).
        event: what happened ('mmap_exec', 'syscall', 'violation',
            'request', ...).
        pid: the process the event concerns (0 when not process-scoped).
        syscall: syscall name when the event is syscall-scoped.
        stage: dispatch-pipeline stage when stage-scoped.
        verdict: dispatch outcome ('allow' | 'errno' | 'kill' |
            'violation') when verdict-scoped.
        cycles: cycle cost attributed to the event (0 when not timed).
        data: free-form payload (the kernel event ``details`` dict).
    """

    kind: str
    event: str
    pid: int = 0
    syscall: str = None
    stage: str = None
    verdict: str = None
    cycles: int = 0
    data: dict = field(default_factory=dict)


class TelemetryBus:
    """Bounded ring of :class:`TelemetryEvent` + cheap aggregate counters."""

    def __init__(self, capacity=65536):
        if capacity < 1:
            raise ValueError("telemetry bus capacity must be >= 1")
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        #: events evicted by the cap (total emitted = len(ring) + dropped)
        self.dropped = 0
        self.total = 0
        #: additive counters — the hot-path (allocation-free) telemetry
        self.counters = {}
        #: max-merged gauges (e.g. deepest unwind seen)
        self.maxima = {}
        self._subscribers = []
        #: interned "stage.cycles.<stage>" keys — charge_stage runs on the
        #: monitor's per-hook path, so skip the string concat after the
        #: first attribution of each stage
        self._stage_keys = {}

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def emit(
        self,
        kind,
        event,
        pid=0,
        syscall=None,
        stage=None,
        verdict=None,
        cycles=0,
        data=None,
    ):
        """Publish one structured event; returns it."""
        record = TelemetryEvent(
            kind=kind,
            event=event,
            pid=pid,
            syscall=syscall,
            stage=stage,
            verdict=verdict,
            cycles=cycles,
            data=data if data is not None else {},
        )
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        self.total += 1
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback):
        """Register ``callback(event)``; called synchronously on every emit."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def events(self):
        """The retained event window, oldest first."""
        return list(self._ring)

    def query(self, kind=None, event=None, pid=None, syscall=None):
        """Filter the retained window by any combination of fields."""
        out = []
        for record in self._ring:
            if kind is not None and record.kind != kind:
                continue
            if event is not None and record.event != event:
                continue
            if pid is not None and record.pid != pid:
                continue
            if syscall is not None and record.syscall != syscall:
                continue
            out.append(record)
        return out

    def __len__(self):
        return len(self._ring)

    # ------------------------------------------------------------------
    # counters (the allocation-free hot path)
    # ------------------------------------------------------------------

    def count(self, key, amount=1):
        """Add ``amount`` to counter ``key`` (creates it at 0)."""
        counters = self.counters
        counters[key] = counters.get(key, 0) + amount

    def get(self, key, default=0):
        return self.counters.get(key, default)

    def set_count(self, key, value):
        self.counters[key] = value

    def record_max(self, key, value):
        maxima = self.maxima
        if value > maxima.get(key, 0):
            maxima[key] = value

    def max_of(self, key, default=0):
        return self.maxima.get(key, default)

    def counters_with_prefix(self, prefix):
        """``{suffix: value}`` for every counter starting with ``prefix``."""
        start = len(prefix)
        return {
            key[start:]: value
            for key, value in self.counters.items()
            if key.startswith(prefix)
        }

    # ------------------------------------------------------------------
    # stage cycle attribution
    # ------------------------------------------------------------------

    def charge_stage(self, stage, cycles):
        """Attribute ``cycles`` of simulated time to a pipeline stage.

        Telemetry-only: nothing is charged to any ledger — the caller has
        already done that; this records *where* those cycles went.
        """
        if cycles:
            keys = self._stage_keys
            key = keys.get(stage)
            if key is None:
                key = keys[stage] = STAGE_CYCLES_PREFIX + stage
            counters = self.counters
            counters[key] = counters.get(key, 0) + cycles

    def stage_cycles(self):
        """``{stage: cycles}`` for every attributed stage and sub-stage."""
        return self.counters_with_prefix(STAGE_CYCLES_PREFIX)

    # ------------------------------------------------------------------
    # rebinding
    # ------------------------------------------------------------------

    def absorb(self, other):
        """Merge another bus's state into this one (counter add, maxima
        max, ring append) — used when a stats view created standalone is
        rebound to a kernel's bus at attach time."""
        if other is self:
            return self
        for key, value in other.counters.items():
            self.count(key, value)
        for key, value in other.maxima.items():
            self.record_max(key, value)
        for record in other._ring:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
        self.total += other.total
        self.dropped += other.dropped
        return self
