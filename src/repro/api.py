"""The stable public API: ``repro.api`` (also re-exported from ``repro``).

Two entry points cover the library's workflow:

- :func:`protect` compiles a module with BASTION protection, configured by
  a :class:`ProtectConfig` (or plain keyword arguments);
- :func:`run` measures an application under a configuration and returns a
  :class:`RunResult` with stable fields (``overhead_pct``, ``violations``,
  ``monitor_stats``).

Usage::

    from repro.api import ProtectConfig, run
    from repro import ContextPolicy

    result = run("nginx", scale=0.5)
    print(result.overhead_pct, result.monitor_stats["hit_rate"])

    relaxed = ProtectConfig(policy=ContextPolicy.full().without("arg_integrity"))
    result = run("nginx", relaxed, scale=0.5)

    # baselines are first-class: pick any repro.mechanisms name
    result = run("nginx", ProtectConfig(mechanism="seccomp_allowlist"))
    print(result.stages)  # per-stage cycle attribution

:func:`bench` measures the pinned performance-trajectory matrix and
returns exactly the records ``BENCH_<pr>.json`` serializes (see
``docs/perf.md``).
"""

from dataclasses import dataclass, field

from repro.bench.harness import (
    CONFIGS,
    DefenseConfig,
    SIM_HZ,
    _run_app,
    run_app_scheduled,
)
from repro.compiler.pipeline import BastionCompiler
from repro.monitor.monitor import SyscallIntegrityViolation
from repro.monitor.policy import ContextPolicy


@dataclass(frozen=True)
class ProtectConfig:
    """Declarative protection settings consumed by :func:`protect` / :func:`run`.

    The default is full BASTION as shipped: all three contexts enforced,
    CET shadow stack on, and the monitor fast path (verdict cache) enabled.
    ``mechanism`` selects a different protection mechanism entirely — any
    name from :data:`repro.mechanisms.MECHANISM_NAMES` — so callers reach
    the software baselines through the stable API instead of
    ``bench.harness.CONFIGS``.
    """

    policy: ContextPolicy = field(default_factory=ContextPolicy.full)
    #: run with the CET-style shadow stack (the paper's deployment baseline)
    cet: bool = True
    #: override the protected syscall set (``protect`` only; ``run`` uses
    #: the paper's Table 1 set, optionally extended)
    sensitive: tuple = None
    #: add the §11.2 filesystem-syscall extension set
    extend_filesystem: bool = False
    #: display name used in results and reports (defaults to the
    #: mechanism's name)
    label: str = None
    #: which protection mechanism to run: 'bastion' (the default) or a
    #: repro.mechanisms baseline ('seccomp_allowlist', 'temporal',
    #: 'debloat', 'binary_only', 'llvm_cfi', 'dfi', 'sfip', 'sfip_origin')
    mechanism: str = "bastion"

    def __post_init__(self):
        from repro.mechanisms import MECHANISM_NAMES

        if self.mechanism not in MECHANISM_NAMES:
            raise ValueError(
                "unknown mechanism %r (expected one of %s)"
                % (self.mechanism, ", ".join(MECHANISM_NAMES))
            )

    def defense(self):
        """The equivalent bench-harness :class:`DefenseConfig`."""
        if self.mechanism != "bastion":
            if (
                self.sensitive is not None
                or self.extend_filesystem
                or self.policy != ContextPolicy.full()
            ):
                raise ValueError(
                    "policy/sensitive/extend_filesystem configure the "
                    "BASTION mechanism; they do not apply to mechanism=%r"
                    % (self.mechanism,)
                )
            from repro.mechanisms import defense_for_mechanism

            return defense_for_mechanism(self.mechanism, self.label)
        return DefenseConfig(
            self.label or "bastion",
            cet=self.cet,
            policy=self.policy,
            instrumented=True,
            extend_filesystem=self.extend_filesystem,
        )


def protect(module, config=None, *, sensitive=None, extend_filesystem=False):
    """Compile ``module`` with BASTION protection; returns the artifact.

    Accepts either a :class:`ProtectConfig` or the legacy keyword
    arguments (kept for ``repro.protect`` compatibility).
    """
    if config is not None:
        if sensitive is not None or extend_filesystem:
            raise ValueError("pass either a ProtectConfig or keyword arguments")
        sensitive = config.sensitive
        extend_filesystem = config.extend_filesystem
    return BastionCompiler(
        sensitive=sensitive, extend_filesystem=extend_filesystem
    ).compile(module)


@dataclass
class RunResult:
    """Stable result surface of :func:`run`.

    ``bench`` holds the raw bench-harness result for anything not promoted
    to a stable field; ``baseline`` is the vanilla run used for
    ``overhead_pct`` (``None`` when no baseline was run).
    """

    app: str
    config: str
    ok: bool
    #: percent more steady-state cycles than the unprotected baseline;
    #: ``None`` when no baseline comparison was possible
    overhead_pct: float
    violations: list
    monitor_stats: dict
    work_units: int
    bytes_sent: int
    syscall_counts: dict
    init_cycles: int
    steady_cycles: int
    total_cycles: int
    #: scheduled runs only: per-request latency summary in cycles
    #: (``{'count', 'p50', 'p95', 'p99', 'mean', 'max'}``), else empty
    latency: dict = field(default_factory=dict)
    #: telemetry-bus per-stage cycle attribution ('seccomp', 'trace_stop',
    #: 'verify.unwind', ... — see docs/telemetry.md), else empty
    stage_cycles: dict = field(default_factory=dict)
    bench: object = field(repr=False, default=None)
    baseline: object = field(repr=False, default=None)

    @property
    def stages(self):
        """Per-stage cycle attribution: a dict view over the telemetry bus.

        Keys are dispatch-pipeline stages ('seccomp', 'trace_stop', ...)
        plus the monitor's 'verify.*' sub-stages — see docs/telemetry.md.
        """
        return self.stage_cycles

    @property
    def steady_seconds(self):
        return self.steady_cycles / SIM_HZ

    def latency_ms(self, which="p99"):
        """A latency percentile ('p50'|'p95'|'p99'|'mean') in milliseconds."""
        return 1000.0 * self.latency.get(which, 0) / SIM_HZ

    def throughput_mbps(self):
        return self.bench.throughput_mbps()

    def notpm(self):
        return self.bench.notpm()

    def transfer_seconds(self):
        return self.bench.transfer_seconds()

    def summary(self):
        return self.bench.summary()


#: vanilla runs memoized per (app, scale, app_config)
_baseline_cache = {}


def _resolve_config(config):
    if config is None:
        config = ProtectConfig()
    if isinstance(config, ProtectConfig):
        if config.sensitive is not None:
            raise ValueError(
                "ProtectConfig.sensitive applies to protect(); run() always "
                "uses the paper's sensitive set (extend_filesystem aside)"
            )
        return config.defense()
    if isinstance(config, DefenseConfig):
        return config
    if isinstance(config, str):
        try:
            return CONFIGS[config]
        except KeyError:
            raise ValueError(
                "unknown config %r (expected one of %s)"
                % (config, ", ".join(sorted(CONFIGS)))
            ) from None
    raise TypeError("config must be a ProtectConfig, DefenseConfig, or name")


def run(
    app,
    config=None,
    *,
    scale=1.0,
    workload=None,
    app_config=None,
    compare_baseline=True,
    raise_on_violation=False,
    scheduled=False,
    quantum=None,
):
    """Run ``app`` under ``config`` and return a :class:`RunResult`.

    Args:
        app: 'nginx' | 'sqlite' | 'vsftpd'.
        config: ``None`` (full BASTION, fast path on), a
            :class:`ProtectConfig`, a bench :class:`DefenseConfig`, or a
            name from ``repro.bench.harness.CONFIGS``.
        scale: workload size multiplier.
        workload: custom workload object; disables the baseline comparison
            (workloads are stateful, so no identical second run exists).
        app_config: application build-time configuration override.
        compare_baseline: also run (and memoize) the vanilla baseline so
            ``overhead_pct`` is populated.
        raise_on_violation: re-raise the monitor's verdict as
            :class:`~repro.monitor.monitor.SyscallIntegrityViolation`.
        scheduled: drive the run with the :mod:`repro.sched` preemptive
            scheduler — clone()d children run interleaved with the parent,
            blocking syscalls park their process, and ``RunResult.latency``
            is populated when the workload samples per-request latency
            (``quantum`` implies ``scheduled=True``).
        quantum: preemption quantum in cycles (default
            ``repro.sched.DEFAULT_QUANTUM``).
    """
    defense = _resolve_config(config)
    if quantum is not None:
        scheduled = True
    if scheduled:
        bench = run_app_scheduled(
            app,
            config=defense,
            scale=scale,
            app_config=app_config,
            workload=workload,
            quantum=quantum,
        )
    else:
        bench = _run_app(
            app, config=defense, scale=scale, app_config=app_config, workload=workload
        )

    baseline = None
    overhead = None
    if (
        compare_baseline
        and workload is None
        and not scheduled
        and defense.name != "vanilla"
    ):
        key = (app, scale, app_config)
        if key not in _baseline_cache:
            _baseline_cache[key] = _run_app(
                app, config="vanilla", scale=scale, app_config=app_config
            )
        baseline = _baseline_cache[key]
        overhead = bench.overhead_pct(baseline)

    if raise_on_violation and bench.violations:
        raise SyscallIntegrityViolation(bench.violations[0])

    return RunResult(
        app=app,
        config=defense.name,
        ok=bench.ok,
        overhead_pct=overhead,
        violations=list(bench.violations),
        monitor_stats=dict(bench.monitor_stats),
        work_units=bench.work_units,
        bytes_sent=bench.bytes_sent,
        syscall_counts=dict(bench.syscall_counts),
        init_cycles=bench.init_cycles,
        steady_cycles=bench.steady_cycles,
        total_cycles=bench.total_cycles,
        latency=dict(bench.latency),
        stage_cycles=dict(bench.stage_cycles),
        bench=bench,
        baseline=baseline,
    )


def bench(
    *,
    workers=None,
    configs=None,
    scale=None,
    clock=None,
    calibration=None,
):
    """Measure the pinned performance-trajectory matrix.

    Returns the list of per-cell records that ``BENCH_<pr>.json``
    serializes (``python -m repro.bench trajectory`` — see docs/perf.md):
    deterministic cycle fields plus the spin-calibrated ``wall_index``.

    Args:
        workers: worker counts to sweep (default: the pinned matrix).
        configs: config names from ``bench.harness.CONFIGS`` or
            :class:`ProtectConfig` / DefenseConfig objects (default: the
            pinned matrix).
        scale: workload scale (default: the pinned trajectory scale).
        clock: injectable timer (tests); defaults to CPU process time.
        calibration: seconds-per-spin override (tests).
    """
    from repro.bench import trajectory

    kwargs = {}
    if workers is not None:
        kwargs["workers"] = tuple(workers)
    if configs is not None:
        kwargs["configs"] = tuple(_resolve_config(c) for c in configs)
    if scale is not None:
        kwargs["scale"] = scale
    if clock is not None:
        kwargs["clock"] = clock
    if calibration is not None:
        kwargs["calibration"] = calibration
    return trajectory.measure_cells(**kwargs)


def analyze(target, config=None, *, waivers=None, strict=False):
    """Run the static-analysis pass suite; returns an ``AnalysisReport``.

    Args:
        target: a registered app name ('nginx', ...), an IR ``Module``, or
            an already-compiled ``BastionArtifact``.
        config: optional :class:`ProtectConfig` controlling the compile
            (app-name and Module targets only).
        waivers: iterable of :class:`repro.analyze.Waiver`; defaults to the
            shipped table.  Pass ``()`` to disable waivers entirely.
        strict: raise :class:`AnalysisFailure` unless the report is clean
            (``False``: the report is returned regardless).
    """
    from repro.analyze import SHIPPED_WAIVERS, analyze_artifact
    from repro.compiler.pipeline import BastionArtifact

    if waivers is None:
        waivers = SHIPPED_WAIVERS
    if isinstance(target, BastionArtifact):
        artifact = target
    else:
        if isinstance(target, str):
            from repro.apps import build_app_module

            module = build_app_module(target)
        else:
            module = target
        cfg = config if config is not None else ProtectConfig()
        artifact = BastionCompiler(
            sensitive=cfg.sensitive,
            extend_filesystem=cfg.extend_filesystem,
        ).compile(module)
    report = analyze_artifact(artifact, waivers=waivers)
    if strict and not report.clean:
        raise AnalysisFailure(report)
    return report


class AnalysisFailure(AssertionError):
    """Raised by :func:`analyze(strict=True)` when findings survive waivers."""

    def __init__(self, report):
        super().__init__(report.render_text())
        self.report = report
