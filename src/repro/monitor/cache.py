"""The monitor fast path: memoized ALLOW verdicts (SFIP-style).

BASTION's dominant runtime cost is re-deriving the same verdict thousands
of times: every ``SECCOMP_RET_TRACE`` stop fetches registers, unwinds the
rbp chain, and re-checks the three contexts even though a server's steady
state invokes each sensitive syscall from the same callsite, over the same
call chain, with the same argument pattern (§9.2's call-depth observation).
SFIP (Canella et al.) showed syscall-flow enforcement collapses to cheap
lookups once the verdict is precomputed; Linux itself caches seccomp
actions per syscall number for the same reason.

:class:`VerdictCache` memoizes ALLOW verdicts from the
:class:`~repro.monitor.verify.ContextVerifier`:

- **lookup key** — ``(syscall, rip, rbp, argument fingerprint)``: the
  trapped instruction, the frame the syscall fired in, and the exact six
  argument registers.  Any attacker-controlled argument value changes the
  fingerprint and forces a full re-verification.
- **chain probe** — a hit is only valid if the cached call chain still
  holds.  The entry stores the first frame's ``(saved_fp, return_addr)``
  pair plus an FNV hash of the whole unwound chain; the probe re-reads one
  frame (one ``process_vm_readv``) instead of re-walking the stack.  A
  pivoted stack (ROP) lands on a different ``rbp``/frame and misses.
- **dependencies** — every shadow-table slot and binding record the
  verifier consulted.  A ``ctx_write_mem`` / ``ctx_bind_*`` that *changes*
  one of those slots invalidates every dependent entry (the runtime
  notifies the monitor; see :class:`~repro.runtime.bastion_rt.BastionRuntime`).
- **volatile verdicts are never cached** — if the verifier compared live
  application memory beyond the registers (pointee verification of
  extended arguments like ``execve``'s path), the verdict depends on bytes
  the fingerprint cannot see, so it is recomputed every time.  In-place
  checks of sensitive global struct fields are *re-run on every hit* (the
  resident check), so data-only corruption of e.g. ``ngx_exec_ctx_t.path``
  is still caught with the cache enabled.

``MonitorStats`` aggregates the monitor's observability counters (hook
counts, cache hits/misses/invalidations, unwind depths, trap batching) and
is surfaced through the bench harness and ``repro.api.RunResult``.  It is a
*view* over the telemetry bus: standalone it carries a small private bus,
and when the monitor attaches to a kernel the view is rebound onto
``kernel.telemetry``, where the same numbers live under ``monitor.*``
counter keys.
"""

from dataclasses import dataclass

from repro.telemetry import BusCounter, BusMax, BusView


def chain_hash(frames):
    """Deterministic FNV-1a fold of an unwound call chain."""
    h = 2166136261
    for frame in frames:
        for value in (frame.fp, frame.return_addr):
            h = ((h ^ (value & 0xFFFFFFFFFFFF)) * 16777619) & 0xFFFFFFFF
    return h


class MonitorStats(BusView):
    """Counters describing one monitor's lifetime (surfaced by the harness).

    Every attribute is backed by a ``monitor.*`` counter on the telemetry
    bus; reads and writes keep their historical shape while the storage
    lives on the spine.
    """

    HOOK_PREFIX = "monitor.hook."

    hooks = BusCounter("monitor.hooks")
    violation_count = BusCounter("monitor.violations")

    # verdict cache
    cache_hits = BusCounter("monitor.cache_hits")
    cache_misses = BusCounter("monitor.cache_misses")
    cache_stores = BusCounter("monitor.cache_stores")
    cache_evictions = BusCounter("monitor.cache_evictions")
    invalidations = BusCounter("monitor.invalidations")
    probe_failures = BusCounter("monitor.probe_failures")

    # unwinding (misses only: hits skip the walk)
    unwind_samples = BusCounter("monitor.unwind_samples")
    unwind_depth_total = BusCounter("monitor.unwind_depth_total")
    max_unwind_depth = BusMax("monitor.max_unwind_depth")

    # trace-stop accounting (full round trips vs batched continuations)
    trap_stops_full = BusCounter("monitor.trap_stops_full")
    trap_stops_batched = BusCounter("monitor.trap_stops_batched")

    @property
    def hook_counts(self):
        """Per-syscall hook counts, assembled from ``monitor.hook.*``."""
        return self._bus.counters_with_prefix(self.HOOK_PREFIX)

    def count_hook(self, syscall_name):
        bus = self._bus
        bus.count("monitor.hooks")
        bus.count(self.HOOK_PREFIX + syscall_name)

    def sample_unwind(self, depth):
        bus = self._bus
        bus.count("monitor.unwind_samples")
        bus.count("monitor.unwind_depth_total", depth)
        bus.record_max("monitor.max_unwind_depth", depth)

    @property
    def average_unwind_depth(self):
        if not self.unwind_samples:
            return 0.0
        return self.unwind_depth_total / self.unwind_samples

    @property
    def hit_rate(self):
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self):
        return {
            "hooks": self.hooks,
            "violations": self.violation_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "cache_evictions": self.cache_evictions,
            "invalidations": self.invalidations,
            "probe_failures": self.probe_failures,
            "hit_rate": self.hit_rate,
            "unwind_samples": self.unwind_samples,
            "avg_unwind_depth": self.average_unwind_depth,
            "max_unwind_depth": self.max_unwind_depth,
            "trap_stops_full": self.trap_stops_full,
            "trap_stops_batched": self.trap_stops_batched,
        }


class VerificationDeps:
    """What one full verification read, recorded for cache invalidation."""

    def __init__(self):
        self.shadow_addrs = set()  # copies-table keys consulted
        self.callsites = set()  # bindings-table keys consulted
        self.volatile = False  # compared live app memory beyond registers

    def read_shadow(self, addr):
        self.shadow_addrs.add(addr)

    def read_bindings(self, callsite_addr):
        self.callsites.add(callsite_addr)

    def mark_volatile(self):
        self.volatile = True


@dataclass
class CacheEntry:
    """One memoized ALLOW verdict."""

    key: tuple  # (syscall, rip, rbp, args fingerprint)
    probe: tuple  # (saved_fp, return_addr) of the first frame
    chain: int  # FNV hash of the full unwound chain
    depth: int  # frames the original unwind walked
    shadow_addrs: frozenset
    callsites: frozenset


class VerdictCache:
    """Bounded memo of ALLOW verdicts with inverted invalidation indexes."""

    def __init__(self, capacity=4096, stats=None):
        self.capacity = capacity
        self.stats = stats or MonitorStats()
        self._entries = {}  # key -> CacheEntry (insertion-ordered: FIFO evict)
        self._by_shadow = {}  # shadow addr -> set of keys
        self._by_callsite = {}  # callsite addr -> set of keys

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def key_for(syscall_name, regs, pid=0):
        """The lookup key: tracee + trapped site + frame + exact argument
        registers.

        The pid matters once a scheduler multiplexes tracees: stack slots
        are recycled on process exit, so two different workers can trap at
        the *same* ``(rip, rbp, args)`` over their lifetimes — a verdict
        memoized for one pid must never shortcut verification for another.
        """
        return (pid, syscall_name, regs.rip, regs.rbp, regs.syscall_args())

    def lookup(self, key):
        return self._entries.get(key)

    def store(self, key, frames, deps):
        """Memoize an ALLOW verdict; refuses volatile verdicts."""
        if deps.volatile or not frames:
            return None
        if key in self._entries:
            self._remove(key)
        while len(self._entries) >= self.capacity:
            self._remove(next(iter(self._entries)))
            self.stats.cache_evictions += 1
        frame0 = frames[0]
        saved_fp = frames[1].fp if len(frames) > 1 else None
        entry = CacheEntry(
            key=key,
            probe=(saved_fp, frame0.return_addr),
            chain=chain_hash(frames),
            depth=len(frames),
            shadow_addrs=frozenset(deps.shadow_addrs),
            callsites=frozenset(deps.callsites),
        )
        self._entries[key] = entry
        for addr in entry.shadow_addrs:
            self._by_shadow.setdefault(addr, set()).add(key)
        for addr in entry.callsites:
            self._by_callsite.setdefault(addr, set()).add(key)
        self.stats.cache_stores += 1
        return entry

    def probe_ok(self, entry, pt, regs):
        """One ``readv`` re-validates the cached chain's first frame.

        The frame holds ``[saved_fp, return_addr]`` at ``[rbp, rbp+8]``; a
        hijacked return address or a repointed saved frame pointer at the
        trapped frame breaks the probe and forces a full re-unwind.
        """
        saved_fp, return_addr = pt.readv(regs.rbp, 2)
        expected_fp, expected_ret = entry.probe
        if return_addr != expected_ret or (
            expected_fp is not None and saved_fp != expected_fp
        ):
            self.stats.probe_failures += 1
            return False
        return True

    # -- invalidation ------------------------------------------------------

    def invalidate_shadow(self, addr):
        """A shadow copy changed: drop every verdict that consulted it."""
        self._invalidate_index(self._by_shadow, addr)

    def invalidate_callsite(self, callsite_addr):
        """A binding record changed: drop every verdict that consulted it."""
        self._invalidate_index(self._by_callsite, callsite_addr)

    def invalidate_key(self, key):
        if key in self._entries:
            self._remove(key)
            self.stats.invalidations += 1

    def clear(self):
        count = len(self._entries)
        self._entries.clear()
        self._by_shadow.clear()
        self._by_callsite.clear()
        self.stats.invalidations += count

    def _invalidate_index(self, index, addr):
        keys = index.get(addr)
        if not keys:
            return
        for key in tuple(keys):
            self._remove(key)
            self.stats.invalidations += 1

    def _remove(self, key):
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for addr in entry.shadow_addrs:
            keys = self._by_shadow.get(addr)
            if keys:
                keys.discard(key)
                if not keys:
                    del self._by_shadow[addr]
        for addr in entry.callsites:
            keys = self._by_callsite.get(addr)
            if keys:
                keys.discard(key)
                if not keys:
                    del self._by_callsite[addr]
