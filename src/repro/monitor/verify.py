"""The three context verifiers (§7.2–§7.4).

Each verifier receives only what a real out-of-process monitor has: the
register file from PTRACE_GETREGS, the unwound frames, the program image
(for decoding call kinds at return addresses), the compiler metadata, and
ptrace-mediated reads of the tracee's memory and shadow region.

Verdicts are :class:`Violation` records naming the violated context; the
monitor turns a verdict into a kill (§7.2: "assumes this is an attack
attempt and immediately kills the protected application").
"""

from dataclasses import dataclass

from repro.monitor.unwind import callee_param_slot
from repro.runtime.shadow_table import (
    BIND_MEM,
    BINDINGS_LAYOUT,
    COPIES_LAYOUT,
    ShadowTableReader,
)
from repro.syscalls.argspec import ArgKind, argspec_for
from repro.vm.memory import WORD


@dataclass
class Violation:
    """One detected context violation."""

    context: str  # 'call-type' | 'control-flow' | 'arg-integrity'
    syscall: str
    detail: str
    rip: int = 0

    def __str__(self):
        return "[%s] %s: %s (rip=%#x)" % (
            self.context,
            self.syscall,
            self.detail,
            self.rip,
        )


#: pointee verification bound for extended arguments (slots)
MAX_EXTENDED_SLOTS = 64


class ContextVerifier:
    """Stateless-per-stop verification engine shared by the monitor."""

    def __init__(self, metadata, image, resolved, costs):
        """``resolved`` is the monitor's address-resolved metadata view.

        Required attributes: ``valid_callers`` (func -> set of callsite
        addresses), ``indirect_sites`` (set of addresses), ``callsites``
        (address -> CallsiteMeta), ``address_taken`` (set of names).
        """
        self.metadata = metadata
        self.image = image
        self.resolved = resolved
        self.costs = costs
        #: fetch-state mode performs the reads but not the comparisons;
        #: only enforcing runs charge the comparison cost (Table 7 rows 2/3)
        self.charge_checks = True
        #: optional :class:`~repro.monitor.cache.VerificationDeps` sink the
        #: monitor installs around a full verification so the verdict cache
        #: learns which shadow slots / binding records the verdict depends on
        self.deps = None

    def _charge_check(self, pt):
        if self.charge_checks:
            pt.proc.ledger.charge(self.costs.monitor_check, "monitor")

    # ------------------------------------------------------------------
    # §7.2 call-type context
    # ------------------------------------------------------------------

    def verify_call_type(self, pt, regs, syscall_name, frames, inline):
        """Check which call kind reached the syscall against the metadata."""
        self._charge_check(pt)
        allowed = self.metadata.call_types.get(syscall_name)
        if not allowed:
            return Violation(
                "call-type", syscall_name, "not-callable syscall invoked", regs.rip
            )
        if inline:
            # An inline syscall instruction is by definition a direct use.
            if not allowed.get("direct"):
                return Violation(
                    "call-type",
                    syscall_name,
                    "inline syscall but only indirect use is permitted",
                    regs.rip,
                )
            return None

        frame0 = frames[0]
        kind = frame0.kind
        if kind in ("bottom", None):
            # The wrapper was entered without a decodeable call (ROP's
            # return-into-wrapper).  The call-type context only reasons
            # about *how a call invokes* a syscall; a missing call is a
            # control-flow property and is caught there (Table 6 classifies
            # ROP as bypassing CT but caught by CF/AI).
            return None
        if kind == "direct":
            if not allowed.get("direct"):
                return Violation(
                    "call-type",
                    syscall_name,
                    "direct invocation of an indirect-only syscall",
                    regs.rip,
                )
            return None
        # indirect
        if not allowed.get("indirect"):
            return Violation(
                "call-type",
                syscall_name,
                "indirect invocation of a direct-only syscall",
                regs.rip,
            )
        self._charge_check(pt)
        if frame0.callsite_addr not in self.resolved.indirect_sites:
            return Violation(
                "call-type",
                syscall_name,
                "indirect call from an unknown callsite %#x" % frame0.callsite_addr,
                regs.rip,
            )
        return None

    # ------------------------------------------------------------------
    # §7.3 control-flow context
    # ------------------------------------------------------------------

    def verify_control_flow(self, pt, regs, syscall_name, frames):
        """Edge-check every callee→caller hop until main or an indirect call."""
        for frame in frames:
            self._charge_check(pt)
            if frame.kind == "bottom":
                # main's sentinel — or a thread's: clone()-start routines
                # are legitimate stack bottoms (§7.1)
                if (
                    frame.func != self.metadata.entry
                    and frame.func not in self.metadata.thread_entries
                ):
                    return Violation(
                        "control-flow",
                        syscall_name,
                        "stack bottoms out in %r, not %s or a thread entry"
                        % (frame.func, self.metadata.entry),
                        regs.rip,
                    )
                return None
            if frame.kind is None:
                return Violation(
                    "control-flow",
                    syscall_name,
                    "return address %#x does not follow a call" % frame.return_addr,
                    regs.rip,
                )
            if frame.kind == "indirect":
                # Partial-trace termination (§7.3): the callsite must be a
                # legitimate indirect callsite and the callee address-taken.
                if frame.callsite_addr not in self.resolved.indirect_sites:
                    return Violation(
                        "control-flow",
                        syscall_name,
                        "indirect callsite %#x not in the binary"
                        % frame.callsite_addr,
                        regs.rip,
                    )
                if frame.func not in self.metadata.address_taken:
                    return Violation(
                        "control-flow",
                        syscall_name,
                        "function %r reached indirectly but never address-taken"
                        % frame.func,
                        regs.rip,
                    )
                return None
            # direct edge: caller callsite must be in the callee's list
            valid = self.resolved.valid_callers.get(frame.func)
            if not valid or frame.callsite_addr not in valid:
                return Violation(
                    "control-flow",
                    syscall_name,
                    "%s called from illegitimate callsite %s"
                    % (frame.func, self.image.describe(frame.callsite_addr)),
                    regs.rip,
                )
        return Violation(
            "control-flow", syscall_name, "stack unwind exhausted", regs.rip
        )

    # ------------------------------------------------------------------
    # §7.4 argument-integrity context
    # ------------------------------------------------------------------

    def verify_arg_integrity(self, pt, regs, syscall_name, frames, inline, enforce):
        """Verify bound arguments at the syscall callsite and up the stack."""
        copies = ShadowTableReader(pt.readv, COPIES_LAYOUT)
        bindings = ShadowTableReader(pt.readv, BINDINGS_LAYOUT)

        syscall_site = regs.rip if inline else frames[0].callsite_addr
        meta = self.resolved.callsites.get(syscall_site)
        if meta is None or meta.syscall is None:
            if enforce:
                return Violation(
                    "arg-integrity",
                    syscall_name,
                    "no binding metadata for syscall callsite %s"
                    % self.image.describe(syscall_site or 0),
                    regs.rip,
                )
            return None

        verdict = self._verify_syscall_site(
            pt, regs, syscall_name, syscall_site, meta, copies, bindings, enforce
        )
        if verdict is not None:
            return verdict

        verdict = self.verify_global_fields(pt, regs, syscall_name, enforce)
        if verdict is not None:
            return verdict

        # Walk the remaining frames: pass-through callsites carrying
        # sensitive variables (Figure 2's foo -> bar flags binding).
        for frame in frames[1:]:
            if frame.kind in ("bottom", None):
                break
            frame_meta = self.resolved.callsites.get(frame.callsite_addr)
            if frame_meta is None:
                continue
            verdict = self._verify_passthrough_site(
                pt, regs, syscall_name, frame, frame_meta, copies, enforce
            )
            if verdict is not None:
                return verdict
        return None

    def verify_global_fields(self, pt, regs, syscall_name, enforce):
        """In-place verification of sensitive global struct fields (§7.4).

        This is what catches data-only corruption of e.g.
        ``ngx_exec_ctx_t.path`` performed entirely through legitimate
        control flow.  The monitor fast path re-runs this sweep on every
        cache *hit* (the resident check): the field lives in corruptible
        application memory, so no fingerprint can stand in for reading it.
        """
        copies = ShadowTableReader(pt.readv, COPIES_LAYOUT)
        for slot_addr in self.resolved.global_field_slots:
            self._charge_check(pt)
            shadow = self._shadow_value(copies, slot_addr)
            if shadow is None:
                continue  # field not initialized yet on this path
            actual = pt.peekdata(slot_addr)
            if enforce and actual != shadow:
                return Violation(
                    "arg-integrity",
                    syscall_name,
                    "sensitive global field at %#x corrupted (%d != shadow %d)"
                    % (slot_addr, actual, shadow),
                    regs.rip,
                )
        return None

    def _shadow_value(self, copies, addr):
        if self.deps is not None:
            self.deps.read_shadow(addr)
        entry = copies.get(addr)
        return None if entry is None else entry[0]

    def _verify_syscall_site(
        self, pt, regs, syscall_name, site_addr, meta, copies, bindings, enforce
    ):
        spec = argspec_for(syscall_name)
        if self.deps is not None:
            self.deps.read_bindings(site_addr)
        record = bindings.get(site_addr)  # [argmask, (kind, payload) x 6]
        for binding in meta.binds:
            self._charge_check(pt)
            actual = regs.arg(binding.position)
            if binding.kind == "const":
                if enforce and actual != binding.value:
                    return Violation(
                        "arg-integrity",
                        syscall_name,
                        "arg%d: constant %d corrupted to %d"
                        % (binding.position, binding.value, actual),
                        regs.rip,
                    )
            else:
                if record is None:
                    if enforce:
                        return Violation(
                            "arg-integrity",
                            syscall_name,
                            "no runtime binding record for callsite",
                            regs.rip,
                        )
                    continue
                kind = record[1 + (binding.position - 1) * 2]
                payload = record[2 + (binding.position - 1) * 2]
                if kind != BIND_MEM:
                    if enforce:
                        return Violation(
                            "arg-integrity",
                            syscall_name,
                            "arg%d: binding record missing/clobbered"
                            % binding.position,
                            regs.rip,
                        )
                    continue
                expected = self._shadow_value(copies, payload)
                if enforce and expected is None:
                    return Violation(
                        "arg-integrity",
                        syscall_name,
                        "arg%d: bound variable has no shadow copy"
                        % binding.position,
                        regs.rip,
                    )
                if enforce and expected != actual:
                    return Violation(
                        "arg-integrity",
                        syscall_name,
                        "arg%d: value %d, shadow copy %d"
                        % (binding.position, actual, expected),
                        regs.rip,
                    )
            # Extended arguments: also verify pointee memory (§6.3.2).
            # Pointee bytes live in corruptible app memory the argument
            # fingerprint cannot see, so such verdicts are never cached.
            arg_kind = spec.kind(binding.position)
            if arg_kind in (ArgKind.EXTENDED, ArgKind.VECTOR) and actual > 0:
                if self.deps is not None:
                    self.deps.mark_volatile()
            if arg_kind == ArgKind.EXTENDED and actual > 0:
                verdict = self._verify_pointee(
                    pt, regs, syscall_name, binding.position, actual, copies, enforce
                )
                if verdict is not None:
                    return verdict
            elif arg_kind == ArgKind.VECTOR and actual > 0:
                pointers = pt.read_vector(actual, 16)
                for ptr in pointers:
                    verdict = self._verify_pointee(
                        pt, regs, syscall_name, binding.position, ptr, copies, enforce
                    )
                    if verdict is not None:
                        return verdict
            # OUT_SOCKADDR (§9.2 fast path): kernel-written output — the
            # pointer itself was verified above; the pointee is exempt.
        return None

    def _verify_pointee(
        self, pt, regs, syscall_name, position, pointer, copies, enforce
    ):
        """Compare pointee slots against their shadow copies.

        Slots without a shadow entry are not tracked (e.g. kernel-written or
        dynamically allocated data) and are skipped — statically identified
        buffers (sensitive globals, struct fields) are always tracked.
        """
        for i in range(MAX_EXTENDED_SLOTS):
            slot_addr = pointer + i * WORD
            actual = pt.peekdata(slot_addr)
            shadow = self._shadow_value(copies, slot_addr)
            if shadow is not None and enforce and shadow != actual:
                return Violation(
                    "arg-integrity",
                    syscall_name,
                    "arg%d: pointee slot %d corrupted (%d != shadow %d)"
                    % (position, i, actual, shadow),
                    regs.rip,
                )
            if actual == 0:
                break  # NUL terminator / end of tracked buffer
        return None

    def _verify_passthrough_site(
        self, pt, regs, syscall_name, frame, meta, copies, enforce
    ):
        """Verify callee parameter slots against bound caller variables."""
        bindings = ShadowTableReader(pt.readv, BINDINGS_LAYOUT)
        if self.deps is not None:
            self.deps.read_bindings(frame.callsite_addr)
        record = bindings.get(frame.callsite_addr)
        for binding in meta.binds:
            self._charge_check(pt)
            actual = pt.peekdata(callee_param_slot(frame, binding.position))
            if binding.kind == "const":
                if enforce and actual != binding.value:
                    return Violation(
                        "arg-integrity",
                        syscall_name,
                        "frame %s arg%d: constant %d corrupted to %d"
                        % (frame.func, binding.position, binding.value, actual),
                        regs.rip,
                    )
                continue
            if record is None:
                continue  # callsite never executed a bind on this path
            kind = record[1 + (binding.position - 1) * 2]
            payload = record[2 + (binding.position - 1) * 2]
            if kind != BIND_MEM:
                continue
            expected = self._shadow_value(copies, payload)
            if enforce and expected is not None and expected != actual:
                return Violation(
                    "arg-integrity",
                    syscall_name,
                    "frame %s arg%d: value %d, shadow copy %d"
                    % (frame.func, binding.position, actual, expected),
                    regs.rip,
                )
        return None
