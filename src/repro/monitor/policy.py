"""Monitor enforcement policy: which contexts run, and how state is fetched.

The Figure 3 ladder (CET -> CET+CT -> CET+CT+CF -> CET+CT+CF+AI) is a
sequence of policies; the Table 7 decomposition (hook only / fetch state /
full checking) is the ``mode`` axis; the §11.2 in-kernel ablation is the
``transport`` axis.
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ContextPolicy:
    """What the monitor enforces at each sensitive-syscall stop."""

    call_type: bool = True
    control_flow: bool = True
    arg_integrity: bool = True
    #: 'full' enforces; 'fetch_state' performs every ptrace/shadow read but
    #: suppresses verdicts; 'hook_only' returns immediately at the stop.
    mode: str = "full"
    #: 'ptrace' (separate monitor process) or 'inkernel' (§11.2 ablation).
    transport: str = "ptrace"
    #: memoize ALLOW verdicts (the monitor fast path); only effective when
    #: enforcing.  Disable to reproduce the paper's re-verify-everything
    #: monitor exactly (the Figure 3 ladder runs with this off).
    verdict_cache: bool = True

    #: fluent aliases accepted by :meth:`without` / :meth:`with_contexts`
    _FEATURES = {
        "ct": "call_type",
        "call_type": "call_type",
        "cf": "control_flow",
        "control_flow": "control_flow",
        "ai": "arg_integrity",
        "arg_integrity": "arg_integrity",
        "cache": "verdict_cache",
        "verdict_cache": "verdict_cache",
    }

    def __post_init__(self):
        if self.mode not in ("full", "fetch_state", "hook_only"):
            raise ValueError("bad monitor mode %r" % self.mode)
        if self.transport not in ("ptrace", "inkernel"):
            raise ValueError("bad monitor transport %r" % self.transport)

    # -- Figure 3 ladder -----------------------------------------------------

    @staticmethod
    def ct_only():
        return ContextPolicy(call_type=True, control_flow=False, arg_integrity=False)

    @staticmethod
    def ct_cf():
        return ContextPolicy(call_type=True, control_flow=True, arg_integrity=False)

    @staticmethod
    def full():
        return ContextPolicy()

    @staticmethod
    def cf_only():
        return ContextPolicy(call_type=False, control_flow=True, arg_integrity=False)

    @staticmethod
    def ai_only():
        return ContextPolicy(call_type=False, control_flow=False, arg_integrity=True)

    # -- Table 7 decomposition -------------------------------------------------

    def as_hook_only(self):
        return replace(self, mode="hook_only")

    def as_fetch_state(self):
        return replace(self, mode="fetch_state")

    # -- §11.2 ablation -----------------------------------------------------------

    def as_inkernel(self):
        return replace(self, transport="inkernel")

    # -- fluent construction (repro.api surface) -------------------------------

    def _resolve(self, feature):
        try:
            return self._FEATURES[feature.lower().replace("-", "_")]
        except (KeyError, AttributeError):
            raise ValueError(
                "unknown policy feature %r (expected one of %s)"
                % (feature, ", ".join(sorted(set(self._FEATURES))))
            )

    def without(self, *features):
        """Disable features by name: ``ContextPolicy.full().without("ai")``.

        Accepted names: ``ct``/``call_type``, ``cf``/``control_flow``,
        ``ai``/``arg_integrity``, ``cache``/``verdict_cache``.
        """
        return replace(self, **{self._resolve(f): False for f in features})

    def with_contexts(self, *features):
        """Enable features by name (the dual of :meth:`without`)."""
        return replace(self, **{self._resolve(f): True for f in features})

    @property
    def enforcing(self):
        return self.mode == "full"

    def label(self):
        if not (self.call_type or self.control_flow or self.arg_integrity):
            return "monitor-only"
        parts = []
        if self.call_type:
            parts.append("CT")
        if self.control_flow:
            parts.append("CF")
        if self.arg_integrity:
            parts.append("AI")
        return "+".join(parts)
