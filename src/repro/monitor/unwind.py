"""Frame-pointer stack unwinding over the ptrace transport (§7.3).

The monitor walks the tracee's rbp chain: each frame holds
``[saved_fp, return_address]`` at ``[fp, fp+8]``.  Every hop is one real
``process_vm_readv`` with its cycle cost — the paper's dominant runtime
expense when the protected set grows (Table 7).

The walk also *decodes the call instruction* at ``return_address - 4`` in
the program image, classifying each hop as a direct call, an indirect call,
or not-a-callsite (the smoking gun of a ROP return).
"""

from dataclasses import dataclass

from repro.vm.loader import INSTR_STRIDE
from repro.vm.memory import WORD


@dataclass
class Frame:
    """One unwound stack frame.

    Attributes:
        func: name of the function this frame belongs to (None if the frame
            pointer was hijacked to garbage).
        fp: the frame pointer value.
        return_addr: saved return address (0 at the main sentinel).
        callsite_addr: ``return_addr - 4`` (None at the bottom).
        kind: 'direct' | 'indirect' | None (not a call instruction) |
            'bottom' (main sentinel reached).
    """

    func: str
    fp: int
    return_addr: int
    callsite_addr: int = None
    kind: str = None


def unwind_stack(pt, regs, image, max_frames=64):
    """Unwind the tracee stack from a syscall stop; returns ``[Frame, ...]``.

    The first frame is the one containing the trapped syscall instruction
    (its ``callsite_addr`` is the call that *invoked* that function).  The
    walk stops at the main sentinel (return address 0), at a hijacked chain
    (unresolvable return address), or after ``max_frames``.
    """
    frames = []
    fp = regs.rbp
    func = image.func_containing(regs.rip)
    while len(frames) < max_frames:
        saved_fp, return_addr = pt.readv(fp, 2)
        if return_addr == 0:
            frames.append(Frame(func, fp, 0, None, "bottom"))
            break
        callsite_addr = return_addr - INSTR_STRIDE
        kind = image.call_kind_at(callsite_addr)
        frames.append(Frame(func, fp, return_addr, callsite_addr, kind))
        if kind is None:
            break  # corrupted chain: nothing above can be trusted
        func = image.func_containing(callsite_addr)
        fp = saved_fp
        if func is None:
            break
    return frames


def callee_param_slot(frame, position):
    """Address of the callee's ``position``-th (1-based) parameter slot."""
    return frame.fp - WORD * position
