"""The BASTION monitor process (§7).

Lifecycle (§7.1):

1. **Load metadata** and resolve its symbolic program points against the
   binary image (the ELF/DWARF step of the paper).
2. **Launch** the protected application: create the process, seed the
   shadow-memory region in *its* address space (initial shadow copies of
   statically-identified sensitive globals), build and install the seccomp
   filter (ALLOW non-sensitive, KILL not-callable, TRACE sensitive), and
   attach as tracer.
3. **Handle syscall stops**: on each ``SECCOMP_RET_TRACE`` stop, fetch
   registers, unwind the stack, and verify Call-Type, then Control-Flow,
   then Argument-Integrity; kill the application on the first violation.
"""

from dataclasses import dataclass, field

from repro.errors import ProcessKilled
from repro.kernel.ptrace import PtraceHandle
from repro.kernel.seccomp import (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRACE,
    build_action_filter,
)
from repro.monitor.cache import MonitorStats, VerdictCache, VerificationDeps
from repro.monitor.policy import ContextPolicy
from repro.monitor.unwind import unwind_stack
from repro.monitor.verify import ContextVerifier, Violation
from repro.runtime.bastion_rt import BastionRuntime
from repro.syscalls.table import SYSCALLS
from repro.vm.costs import DEFAULT_COSTS
from repro.vm.cpu import CPU, CPUOptions


class SyscallIntegrityViolation(ProcessKilled):
    """The monitor's kill verdict, as a catchable exception.

    Raised by the kernel dispatcher when the monitor kills the protected
    application at a trace stop, so callers driving the kernel directly can
    ``except SyscallIntegrityViolation`` (``repro.api.run`` re-raises it on
    request via ``raise_on_violation=True``).  Carries the underlying
    :class:`~repro.monitor.verify.Violation` record.
    """

    def __init__(self, violation, message=None):
        super().__init__(
            message or str(violation), reason=getattr(violation, "context", None)
        )
        self.violation = violation

    @property
    def context(self):
        return self.violation.context

    @property
    def syscall(self):
        return self.violation.syscall

    @property
    def detail(self):
        return self.violation.detail


@dataclass
class MonitorSession:
    """Per-tracee monitor state (one per pid, created at its first stop).

    The paper's monitor ptrace-attaches to every process the application
    forks (§7.1) and fields stops from whichever tracee the kernel
    schedules next.  Policy, metadata, and the verdict cache are shared
    across the whole tree; what is *per-tracee* is the bookkeeping below —
    the shadow state itself lives in the (shared) address space, and the
    unwinder always walks the stopped pid's own stack because registers
    and stack slots are per-process.
    """

    pid: int
    stops: int = 0
    stop_counts: dict = field(default_factory=dict)
    fast_hits: int = 0
    violations: list = field(default_factory=list)
    killed: bool = False

    def count_stop(self, syscall_name):
        self.stops += 1
        self.stop_counts[syscall_name] = self.stop_counts.get(syscall_name, 0) + 1


@dataclass
class _ResolvedMetadata:
    """Metadata with program points resolved to code addresses."""

    valid_callers: dict = field(default_factory=dict)  # func -> set(addr)
    indirect_sites: set = field(default_factory=set)
    callsites: dict = field(default_factory=dict)  # addr -> CallsiteMeta
    address_taken: set = field(default_factory=set)
    global_field_slots: tuple = ()  # absolute addresses of sensitive fields


class BastionMonitor:
    """Runtime enforcement monitor for one protected application."""

    def __init__(self, artifact, policy=None, costs=DEFAULT_COSTS):
        self.artifact = artifact
        self.metadata = artifact.metadata
        self.policy = policy or ContextPolicy.full()
        self.costs = costs
        self.image = artifact.image()
        self.resolved = self._resolve_metadata()
        self.verifier = ContextVerifier(
            self.metadata, self.image, self.resolved, costs
        )
        self.verifier.charge_checks = self.policy.enforcing

        #: kernel consults these: hook-only mode skips the trace-stop cost,
        #: an in-kernel monitor never context-switches (§11.2 ablation)
        self.stops_at_trace = self.policy.mode != "hook_only"
        self.in_kernel = self.policy.transport == "inkernel"

        self.stats = MonitorStats()
        self.violations = []
        #: pid -> MonitorSession, created lazily at each tracee's first stop
        self.sessions = {}
        #: the fast path only memoizes *enforced* ALLOW verdicts — the
        #: fetch-state/hook-only accounting ablations never produce one
        self.cache = (
            VerdictCache(stats=self.stats)
            if self.policy.verdict_cache and self.policy.enforcing
            else None
        )

    # ------------------------------------------------------------------
    # initialization (§7.1)
    # ------------------------------------------------------------------

    def _resolve_metadata(self):
        """Turn SiteKeys into code addresses using the program image."""
        image = self.image
        resolved = _ResolvedMetadata()

        def addr(site_key):
            return image.addr_of(site_key.func, site_key.index)

        for callee, sites in self.metadata.valid_callers.items():
            resolved.valid_callers[callee] = {addr(s) for s in sites}
        resolved.indirect_sites = {addr(s) for s in self.metadata.indirect_sites}
        resolved.callsites = {
            addr(meta.site): meta for meta in self.metadata.callsites.values()
        }
        resolved.address_taken = set(self.metadata.address_taken)
        resolved.global_field_slots = tuple(
            image.global_addr[name] + 8 * offset
            for name, offset in self.metadata.global_field_slots
            if name in image.global_addr
        )
        return resolved

    def check_metadata_consistency(self):
        """Audit the loaded metadata against the program image and IR.

        Runs the :mod:`repro.analyze` consistency pass over this monitor's
        artifact and additionally confirms every ``SiteKey`` the monitor
        resolved maps to a real code address in the loaded image.  Returns
        the list of :class:`repro.analyze.Diagnostic` findings (empty when
        the metadata is exactly the one the IR derives).  Intended for
        launch-time self-checks and the ``repro.analyze`` CLI; the monitor
        itself never calls it on the hot path.
        """
        # Imported lazily: repro.analyze depends on the compiler package,
        # and the monitor must stay importable without it.
        from repro.analyze.consistency import check_consistency, PASS_NAME
        from repro.analyze.diagnostics import Diagnostic

        diagnostics, _metrics = check_consistency(
            self.artifact.module, self.metadata
        )
        image = self.image
        for site in sorted(
            {s for sites in self.metadata.valid_callers.values() for s in sites}
            | set(self.metadata.indirect_sites)
            | set(self.metadata.callsites)
        ):
            try:
                image.addr_of(site.func, site.index)
            except (KeyError, IndexError):
                diagnostics.append(
                    Diagnostic(
                        PASS_NAME,
                        "unresolvable-site",
                        "error",
                        "SiteKey does not resolve to a code address in the "
                        "loaded image",
                        func=site.func,
                        index=site.index,
                    )
                )
        return diagnostics

    def build_filter(self):
        """The seccomp-BPF program of §7.1.

        - not-callable syscalls (never used by the program): KILL;
        - used sensitive syscalls: TRACE (stop into this monitor);
        - everything else: ALLOW.
        """
        actions = {}
        used = self.metadata.call_types
        sensitive = set(self.metadata.sensitive_set)
        for entry in SYSCALLS:
            if entry.name not in used:
                # KILLing not-callable syscalls is the coarse half of the
                # call-type context; without CT the filter only TRACEs the
                # sensitive set so the other contexts still get their stops.
                if self.policy.call_type:
                    actions[entry.nr] = SECCOMP_RET_KILL_PROCESS
                elif entry.name in sensitive:
                    actions[entry.nr] = SECCOMP_RET_TRACE
            elif entry.name in sensitive:
                actions[entry.nr] = SECCOMP_RET_TRACE
        return build_action_filter(actions, label="bastion:%s" % self.metadata.program)

    def attach(self, kernel, proc):
        """Install this monitor on an existing process of ``kernel``.

        Sets up the BASTION runtime and shadow globals, installs the
        seccomp filter, registers as the process's tracer, and rebinds the
        monitor's stats view onto the kernel's telemetry bus (so every
        ``monitor.*`` counter lands on the one spine).
        """
        runtime = BastionRuntime(proc)
        runtime.initialize_globals(self.image, self.metadata.sensitive_globals)
        proc.bastion_runtime = runtime
        if self.cache is not None:
            runtime.subscribe(self)
        kernel.install_seccomp(proc, self.build_filter())
        proc.tracer = self
        self.stats.rebind(kernel.telemetry)
        return proc

    def launch(self, kernel, cpu_options=None):
        """Fork + set up the protected application; returns ``(proc, cpu)``.

        The caller drives ``cpu.run()``; the monitor fields syscall stops.
        """
        proc = kernel.create_process(self.metadata.program, self.image)
        self.attach(kernel, proc)
        options = cpu_options or CPUOptions(cet=True)
        cpu = CPU(self.image, proc, kernel, options)
        return proc, cpu

    # ------------------------------------------------------------------
    # syscall stops (§7.2–§7.4)
    # ------------------------------------------------------------------

    def on_syscall_stop(self, proc, syscall_name):
        """Called by the kernel at each SECCOMP_RET_TRACE stop.

        Returns ``True`` when the stop resolved on the fast path (a cached
        ALLOW verdict revalidated); the kernel then batches the trace-stop
        context-switch cost instead of charging a full round trip.
        """
        self.stats.count_hook(syscall_name)
        session = self.session_of(proc.pid)
        session.count_stop(syscall_name)
        policy = self.policy
        if policy.mode == "hook_only":
            return False

        pt = PtraceHandle(proc, self.costs, transport=policy.transport)
        regs = pt.getregs()
        bus = self.stats.bus
        ledger = proc.ledger

        # -- fast path: memoized ALLOW verdict (cache.py) ------------------
        key = None
        if self.cache is not None:
            before = ledger.cycles
            try:
                key = VerdictCache.key_for(syscall_name, regs, proc.pid)
                pt.proc.ledger.charge(self.costs.verdict_cache_lookup, "monitor")
                entry = self.cache.lookup(key)
                if entry is not None and self.cache.probe_ok(entry, pt, regs):
                    # resident check: sensitive global struct fields are
                    # compared in place on every hit — data-only corruption of
                    # a cached callsite's globals is invisible to the
                    # register fingerprint but not to this sweep.
                    resident = None
                    if policy.arg_integrity:
                        resident = self.verifier.verify_global_fields(
                            pt, regs, syscall_name, True
                        )
                    if resident is None:
                        self.stats.cache_hits += 1
                        self.stats.trap_stops_batched += 1
                        session.fast_hits += 1
                        return True
                    self.cache.invalidate_key(key)
                    self._verdict(pt, resident)
                    return False
            finally:
                bus.charge_stage("verify.cache", ledger.cycles - before)
            self.stats.cache_misses += 1
        self.stats.trap_stops_full += 1

        # -- slow path: full unwind + three-context verification -----------
        func_name = self.image.func_containing(regs.rip)
        if func_name is None:
            self._verdict(
                pt,
                Violation("call-type", syscall_name, "syscall outside text", regs.rip),
            )
            return False
        known = self.metadata.syscall_functions.get(func_name, ())
        if syscall_name not in known:
            self._verdict(
                pt,
                Violation(
                    "call-type",
                    syscall_name,
                    "syscall from unexpected function %s" % func_name,
                    regs.rip,
                ),
            )
            return False
        func = self.image.module.functions[func_name]
        inline = not func.is_wrapper

        # Call-type alone only needs the invoking callsite (one frame); the
        # control-flow and argument-integrity contexts walk the whole stack.
        if policy.control_flow or policy.arg_integrity:
            max_frames = 64
        else:
            max_frames = 1
        before = ledger.cycles
        frames = unwind_stack(pt, regs, self.image, max_frames=max_frames)
        bus.charge_stage("verify.unwind", ledger.cycles - before)
        self.stats.sample_unwind(len(frames))

        enforce = policy.enforcing
        deps = VerificationDeps() if self.cache is not None else None
        self.verifier.deps = deps
        try:
            if policy.call_type:
                before = ledger.cycles
                verdict = self.verifier.verify_call_type(
                    pt, regs, syscall_name, frames, inline
                )
                bus.charge_stage("verify.call_type", ledger.cycles - before)
                if verdict is not None and enforce:
                    self._verdict(pt, verdict)
                    return False
            if policy.control_flow:
                before = ledger.cycles
                verdict = self.verifier.verify_control_flow(
                    pt, regs, syscall_name, frames
                )
                bus.charge_stage("verify.control_flow", ledger.cycles - before)
                if verdict is not None and enforce:
                    self._verdict(pt, verdict)
                    return False
            if policy.arg_integrity:
                before = ledger.cycles
                verdict = self.verifier.verify_arg_integrity(
                    pt, regs, syscall_name, frames, inline, enforce
                )
                bus.charge_stage("verify.arg_integrity", ledger.cycles - before)
                if verdict is not None and enforce:
                    self._verdict(pt, verdict)
                    return False
        finally:
            self.verifier.deps = None

        if self.cache is not None:
            self.cache.store(key, frames, deps)
        return False

    # -- shadow-update notifications (BastionRuntime.subscribe) -------------

    def on_shadow_write(self, slot_addr):
        if self.cache is not None:
            self.cache.invalidate_shadow(slot_addr)

    def on_bind_write(self, callsite_addr):
        if self.cache is not None:
            self.cache.invalidate_callsite(callsite_addr)

    def session_of(self, pid):
        """The per-tracee session for ``pid`` (created on first use)."""
        session = self.sessions.get(pid)
        if session is None:
            session = self.sessions[pid] = MonitorSession(pid)
        return session

    def _verdict(self, pt, violation):
        """Record the violation and kill the *stopped tracee* (§7.2).

        Only the offending pid dies: siblings sharing the same filters and
        monitor keep running (asserted by the inheritance tests).
        """
        self.violations.append(violation)
        self.stats.violation_count += 1
        session = self.session_of(pt.proc.pid)
        session.violations.append(violation)
        session.killed = True
        pt.proc.pending_exception = SyscallIntegrityViolation(violation)
        pt.kill_tracee(str(violation))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    # legacy attribute names kept as views over :class:`MonitorStats`

    @property
    def hook_count(self):
        return self.stats.hooks

    @property
    def hook_counts(self):
        return self.stats.hook_counts

    @property
    def max_unwind_depth(self):
        return self.stats.max_unwind_depth

    @property
    def unwind_depth_total(self):
        return self.stats.unwind_depth_total

    @property
    def unwind_samples(self):
        return self.stats.unwind_samples

    @property
    def average_unwind_depth(self):
        return self.stats.average_unwind_depth

    def summary(self):
        lines = [
            "BASTION monitor [%s] for %s"
            % (self.policy.label(), self.metadata.program),
            "  hooks: %d  violations: %d" % (self.hook_count, len(self.violations)),
        ]
        if self.cache is not None:
            lines.append(
                "  cache: %d hits / %d misses (%.1f%%)  invalidations: %d"
                % (
                    self.stats.cache_hits,
                    self.stats.cache_misses,
                    100.0 * self.stats.hit_rate,
                    self.stats.invalidations,
                )
            )
        for name, count in sorted(self.hook_counts.items(), key=lambda kv: -kv[1]):
            lines.append("  %-18s %d" % (name, count))
        return "\n".join(lines)
