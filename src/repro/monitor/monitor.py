"""The BASTION monitor process (§7).

Lifecycle (§7.1):

1. **Load metadata** and resolve its symbolic program points against the
   binary image (the ELF/DWARF step of the paper).
2. **Launch** the protected application: create the process, seed the
   shadow-memory region in *its* address space (initial shadow copies of
   statically-identified sensitive globals), build and install the seccomp
   filter (ALLOW non-sensitive, KILL not-callable, TRACE sensitive), and
   attach as tracer.
3. **Handle syscall stops**: on each ``SECCOMP_RET_TRACE`` stop, fetch
   registers, unwind the stack, and verify Call-Type, then Control-Flow,
   then Argument-Integrity; kill the application on the first violation.
"""

from dataclasses import dataclass, field

from repro.kernel.ptrace import PtraceHandle
from repro.kernel.seccomp import (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRACE,
    build_action_filter,
)
from repro.monitor.policy import ContextPolicy
from repro.monitor.unwind import unwind_stack
from repro.monitor.verify import ContextVerifier, Violation
from repro.runtime.bastion_rt import BastionRuntime
from repro.syscalls.table import SYSCALLS
from repro.vm.costs import DEFAULT_COSTS
from repro.vm.cpu import CPU, CPUOptions


#: Backwards-friendly alias: a violation *is* the integrity failure record.
SyscallIntegrityViolation = Violation


@dataclass
class _ResolvedMetadata:
    """Metadata with program points resolved to code addresses."""

    valid_callers: dict = field(default_factory=dict)  # func -> set(addr)
    indirect_sites: set = field(default_factory=set)
    callsites: dict = field(default_factory=dict)  # addr -> CallsiteMeta
    address_taken: set = field(default_factory=set)
    global_field_slots: tuple = ()  # absolute addresses of sensitive fields


class BastionMonitor:
    """Runtime enforcement monitor for one protected application."""

    def __init__(self, artifact, policy=None, costs=DEFAULT_COSTS):
        self.artifact = artifact
        self.metadata = artifact.metadata
        self.policy = policy or ContextPolicy.full()
        self.costs = costs
        self.image = artifact.image()
        self.resolved = self._resolve_metadata()
        self.verifier = ContextVerifier(
            self.metadata, self.image, self.resolved, costs
        )
        self.verifier.charge_checks = self.policy.enforcing

        #: kernel consults these: hook-only mode skips the trace-stop cost,
        #: an in-kernel monitor never context-switches (§11.2 ablation)
        self.stops_at_trace = self.policy.mode != "hook_only"
        self.in_kernel = self.policy.transport == "inkernel"

        self.hook_count = 0
        self.hook_counts = {}
        self.violations = []
        self.max_unwind_depth = 0
        self.unwind_depth_total = 0
        self.unwind_samples = 0

    # ------------------------------------------------------------------
    # initialization (§7.1)
    # ------------------------------------------------------------------

    def _resolve_metadata(self):
        """Turn SiteKeys into code addresses using the program image."""
        image = self.image
        resolved = _ResolvedMetadata()

        def addr(site_key):
            return image.addr_of(site_key.func, site_key.index)

        for callee, sites in self.metadata.valid_callers.items():
            resolved.valid_callers[callee] = {addr(s) for s in sites}
        resolved.indirect_sites = {addr(s) for s in self.metadata.indirect_sites}
        resolved.callsites = {
            addr(meta.site): meta for meta in self.metadata.callsites.values()
        }
        resolved.address_taken = set(self.metadata.address_taken)
        resolved.global_field_slots = tuple(
            image.global_addr[name] + 8 * offset
            for name, offset in self.metadata.global_field_slots
            if name in image.global_addr
        )
        return resolved

    def build_filter(self):
        """The seccomp-BPF program of §7.1.

        - not-callable syscalls (never used by the program): KILL;
        - used sensitive syscalls: TRACE (stop into this monitor);
        - everything else: ALLOW.
        """
        actions = {}
        used = self.metadata.call_types
        sensitive = set(self.metadata.sensitive_set)
        for entry in SYSCALLS:
            if entry.name not in used:
                # KILLing not-callable syscalls is the coarse half of the
                # call-type context; without CT the filter only TRACEs the
                # sensitive set so the other contexts still get their stops.
                if self.policy.call_type:
                    actions[entry.nr] = SECCOMP_RET_KILL_PROCESS
                elif entry.name in sensitive:
                    actions[entry.nr] = SECCOMP_RET_TRACE
            elif entry.name in sensitive:
                actions[entry.nr] = SECCOMP_RET_TRACE
        return build_action_filter(actions, label="bastion:%s" % self.metadata.program)

    def launch(self, kernel, cpu_options=None):
        """Fork + set up the protected application; returns ``(proc, cpu)``.

        The caller drives ``cpu.run()``; the monitor fields syscall stops.
        """
        proc = kernel.create_process(self.metadata.program, self.image)
        runtime = BastionRuntime(proc)
        runtime.initialize_globals(self.image, self.metadata.sensitive_globals)
        proc.bastion_runtime = runtime
        kernel.install_seccomp(proc, self.build_filter())
        proc.tracer = self
        options = cpu_options or CPUOptions(cet=True)
        cpu = CPU(self.image, proc, kernel, options)
        return proc, cpu

    # ------------------------------------------------------------------
    # syscall stops (§7.2–§7.4)
    # ------------------------------------------------------------------

    def on_syscall_stop(self, proc, syscall_name):
        """Called by the kernel at each SECCOMP_RET_TRACE stop."""
        self.hook_count += 1
        self.hook_counts[syscall_name] = self.hook_counts.get(syscall_name, 0) + 1
        policy = self.policy
        if policy.mode == "hook_only":
            return

        pt = PtraceHandle(proc, self.costs, transport=policy.transport)
        regs = pt.getregs()

        func_name = self.image.func_containing(regs.rip)
        if func_name is None:
            self._verdict(
                pt,
                Violation("call-type", syscall_name, "syscall outside text", regs.rip),
            )
            return
        known = self.metadata.syscall_functions.get(func_name, ())
        if syscall_name not in known:
            self._verdict(
                pt,
                Violation(
                    "call-type",
                    syscall_name,
                    "syscall from unexpected function %s" % func_name,
                    regs.rip,
                ),
            )
            return
        func = self.image.module.functions[func_name]
        inline = not func.is_wrapper

        # Call-type alone only needs the invoking callsite (one frame); the
        # control-flow and argument-integrity contexts walk the whole stack.
        if policy.control_flow or policy.arg_integrity:
            max_frames = 64
        else:
            max_frames = 1
        frames = unwind_stack(pt, regs, self.image, max_frames=max_frames)
        depth = len(frames)
        self.max_unwind_depth = max(self.max_unwind_depth, depth)
        self.unwind_depth_total += depth
        self.unwind_samples += 1

        enforce = policy.enforcing

        if policy.call_type:
            verdict = self.verifier.verify_call_type(
                pt, regs, syscall_name, frames, inline
            )
            if verdict is not None and enforce:
                self._verdict(pt, verdict)
                return
        if policy.control_flow:
            verdict = self.verifier.verify_control_flow(
                pt, regs, syscall_name, frames
            )
            if verdict is not None and enforce:
                self._verdict(pt, verdict)
                return
        if policy.arg_integrity:
            verdict = self.verifier.verify_arg_integrity(
                pt, regs, syscall_name, frames, inline, enforce
            )
            if verdict is not None and enforce:
                self._verdict(pt, verdict)
                return

    def _verdict(self, pt, violation):
        """Record the violation and kill the protected application (§7.2)."""
        self.violations.append(violation)
        pt.kill_tracee(str(violation))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def average_unwind_depth(self):
        if not self.unwind_samples:
            return 0.0
        return self.unwind_depth_total / self.unwind_samples

    def summary(self):
        lines = [
            "BASTION monitor [%s] for %s"
            % (self.policy.label(), self.metadata.program),
            "  hooks: %d  violations: %d" % (self.hook_count, len(self.violations)),
        ]
        for name, count in sorted(self.hook_counts.items(), key=lambda kv: -kv[1]):
            lines.append("  %-18s %d" % (name, count))
        return "\n".join(lines)
