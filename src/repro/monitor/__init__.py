"""The BASTION runtime monitor (§7).

A separate "process" that can only observe the protected application through
ptrace / ``process_vm_readv``:

- :mod:`repro.monitor.policy` — which contexts are enforced (the Figure 3
  configurations) and the Table 7 decomposition modes;
- :mod:`repro.monitor.unwind` — frame-pointer stack unwinding over ptrace;
- :mod:`repro.monitor.verify` — the three context verifiers (CT, CF, AI);
- :mod:`repro.monitor.monitor` — initialization (metadata load, symbol
  resolution, seccomp filter install, shadow-region setup) and the
  syscall-stop handler.
"""

from repro.monitor.policy import ContextPolicy
from repro.monitor.monitor import BastionMonitor, SyscallIntegrityViolation
from repro.monitor.unwind import Frame, unwind_stack

__all__ = [
    "ContextPolicy",
    "BastionMonitor",
    "SyscallIntegrityViolation",
    "Frame",
    "unwind_stack",
]
