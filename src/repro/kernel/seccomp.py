"""seccomp-BPF: filter objects, action precedence, and filter generation.

The BASTION monitor (§7.1) installs a filter specifying:

- ``SECCOMP_RET_ALLOW`` for all non-sensitive syscalls,
- ``SECCOMP_RET_KILL`` for *not-callable* syscalls (call-type context's
  coarse half), and
- ``SECCOMP_RET_TRACE`` for directly-/indirectly-callable sensitive
  syscalls, so the monitor is stopped into for verification.

:func:`build_action_filter` turns such an action map into a real cBPF
program (one JEQ chain entry per syscall), which the kernel evaluates on
every syscall of the protected process.
"""

from dataclasses import dataclass

from repro.kernel.bpf import (
    AUDIT_ARCH_X86_64,
    BPF_ABS,
    BPF_JEQ,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    BPFProgram,
    SECCOMP_DATA_ARCH,
    SECCOMP_DATA_NR,
    SeccompData,
    jump,
    stmt,
)

SECCOMP_RET_KILL_PROCESS = 0x80000000
SECCOMP_RET_KILL_THREAD = 0x00000000
SECCOMP_RET_TRAP = 0x00030000
SECCOMP_RET_ERRNO = 0x00050000
SECCOMP_RET_TRACE = 0x7FF00000
SECCOMP_RET_LOG = 0x7FFC0000
SECCOMP_RET_ALLOW = 0x7FFF0000

SECCOMP_RET_ACTION_FULL = 0xFFFF0000
SECCOMP_RET_DATA = 0x0000FFFF

#: Linux action precedence (highest wins when multiple filters disagree).
_PRECEDENCE = (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_TRAP,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_LOG,
    SECCOMP_RET_ALLOW,
)


def action_name(action):
    """Printable name of a seccomp action value."""
    names = {
        SECCOMP_RET_KILL_PROCESS: "KILL_PROCESS",
        SECCOMP_RET_KILL_THREAD: "KILL_THREAD",
        SECCOMP_RET_TRAP: "TRAP",
        SECCOMP_RET_ERRNO: "ERRNO",
        SECCOMP_RET_TRACE: "TRACE",
        SECCOMP_RET_LOG: "LOG",
        SECCOMP_RET_ALLOW: "ALLOW",
    }
    return names.get(action & SECCOMP_RET_ACTION_FULL, "0x%08x" % action)


@dataclass
class SeccompFilter:
    """One attached filter: a cBPF program plus bookkeeping."""

    program: BPFProgram
    label: str = "filter"

    def evaluate(self, data):
        """Run the program; returns ``(action_value, instructions_executed)``."""
        return self.program.run(data)


def combine_actions(actions):
    """Linux semantics: every attached filter runs; strictest action wins."""
    best = SECCOMP_RET_ALLOW
    best_rank = _PRECEDENCE.index(SECCOMP_RET_ALLOW)
    for action in actions:
        base = action & SECCOMP_RET_ACTION_FULL
        try:
            rank = _PRECEDENCE.index(base)
        except ValueError:
            rank = 0  # unknown action values are treated as KILL
        if rank < best_rank:
            best, best_rank = action, rank
    return best


def build_action_filter(action_by_nr, default_action=SECCOMP_RET_ALLOW, label="bastion"):
    """Build a :class:`SeccompFilter` from ``{syscall_nr: action}``.

    Generated shape (exactly the classic seccomp tutorial filter)::

        ld  [arch]
        jne #AUDIT_ARCH_X86_64, kill
        ld  [nr]
        jeq #nr_0, ret_action_0
        jeq #nr_1, ret_action_1
        ...
        ret #default
        ret #KILL   ; arch mismatch
    """
    instructions = [stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_ARCH)]
    body = [stmt(BPF_LD | BPF_W | BPF_ABS, SECCOMP_DATA_NR)]

    entries = sorted(action_by_nr.items())
    # Each entry is a JEQ that either skips to its own RET (placed after the
    # chain and the default RET) or falls through to the next JEQ.  The i-th
    # RET sits (n-1-i) JEQs + 1 default RET + i earlier RETs past the JEQ,
    # which is a constant distance of n.
    n = len(entries)
    for nr, _action in entries:
        body.append(jump(BPF_JMP | BPF_JEQ | BPF_K, nr, n, 0))
    body.append(stmt(BPF_RET | BPF_K, default_action))
    for _nr, action in entries:
        body.append(stmt(BPF_RET | BPF_K, action))

    # arch check: jump over the whole body on mismatch, to the final KILL.
    instructions.append(
        jump(BPF_JMP | BPF_JEQ | BPF_K, AUDIT_ARCH_X86_64, 0, len(body))
    )
    instructions.extend(body)
    instructions.append(stmt(BPF_RET | BPF_K, SECCOMP_RET_KILL_PROCESS))
    return SeccompFilter(BPFProgram(instructions), label=label)


def evaluate_filters(filters, nr, ip=0, args=(0, 0, 0, 0, 0, 0)):
    """Evaluate all attached filters; returns ``(action, instructions_run)``."""
    data = SeccompData(nr=nr, instruction_pointer=ip, args=tuple(args))
    total_insns = 0
    actions = []
    for filt in filters:
        action, executed = filt.evaluate(data)
        actions.append(action)
        total_insns += executed
    if not actions:
        return SECCOMP_RET_ALLOW, 0
    return combine_actions(actions), total_insns


# ---------------------------------------------------------------------------
# per-syscall action cache (Linux's SECCOMP_CACHE_NR_ONLY bitmap)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeccompActionCache:
    """Syscall numbers whose combined filter action is provably ALLOW.

    Linux precomputes, at filter-attach time, a per-syscall-nr bitmap of
    numbers every attached filter allows *regardless of arguments*; those
    syscalls then skip the BPF engine entirely (a single bit test).  Only
    ALLOW is ever cached — any stricter action still runs the filters, so
    the cache can never weaken enforcement, only skip re-deriving an ALLOW.
    """

    allow_nrs: frozenset

    def allows(self, nr):
        return nr in self.allow_nrs

    def __len__(self):
        return len(self.allow_nrs)


def _filter_is_nr_only(filt):
    """True if the program reads nothing but the syscall nr and arch.

    The cache is only sound when the verdict cannot depend on arguments or
    the instruction pointer.  Rather than emulating with unknowns (Linux's
    approach), reject any program whose absolute loads reach past the
    ``arch`` field; :func:`build_action_filter` programs always pass.
    """
    for ins in filt.program.instructions:
        if ins.code & 0x07 != BPF_LD:
            continue
        mode = ins.code & 0xE0
        if mode == BPF_ABS and ins.k not in (SECCOMP_DATA_NR, SECCOMP_DATA_ARCH):
            return False
    return True


def compute_action_cache(filters, nrs):
    """Precompute the ALLOW bitmap for ``nrs`` against ``filters``.

    Returns ``None`` (no cache, every syscall runs the BPF engine) when no
    filter is attached or any attached filter is argument/ip-dependent.
    """
    if not filters or not all(_filter_is_nr_only(f) for f in filters):
        return None
    allow = set()
    for nr in nrs:
        action, _insns = evaluate_filters(filters, nr)
        if action & SECCOMP_RET_ACTION_FULL == SECCOMP_RET_ALLOW:
            allow.add(nr)
    return SeccompActionCache(allow_nrs=frozenset(allow))
