"""A classic-BPF (cBPF) instruction VM — the engine under seccomp filters.

Implements the subset of cBPF that seccomp filters use: 32-bit absolute
loads from ``struct seccomp_data``, immediate/accumulator ALU, conditional
and unconditional jumps, and returns.  Instruction encoding follows
``<linux/filter.h>``: each instruction is ``(code, jt, jf, k)``.

The BASTION monitor generates real programs through :mod:`repro.kernel.seccomp`
and the kernel evaluates them here on every syscall — so seccomp's
evaluation cost scales with actual filter length, as in Table 7 row 1.
"""

from dataclasses import dataclass

from repro.errors import KernelError

# -- instruction classes -----------------------------------------------------
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_MISC = 0x07

# -- size / mode --------------------------------------------------------------
BPF_W = 0x00
BPF_IMM = 0x00
BPF_ABS = 0x20
BPF_MEM = 0x60

# -- ALU / JMP ops -------------------------------------------------------------
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_AND = 0x50
BPF_OR = 0x40
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40

# -- sources -------------------------------------------------------------------
BPF_K = 0x00
BPF_X = 0x08
BPF_A = 0x10

_U32 = 0xFFFFFFFF

#: ``struct seccomp_data`` field offsets (x86-64).
SECCOMP_DATA_NR = 0
SECCOMP_DATA_ARCH = 4
SECCOMP_DATA_IP_LO = 8
SECCOMP_DATA_IP_HI = 12
SECCOMP_DATA_ARGS = 16  # six u64 args follow, lo/hi pairs

AUDIT_ARCH_X86_64 = 0xC000003E


@dataclass(frozen=True)
class BPFInstruction:
    """One cBPF instruction: ``(code, jt, jf, k)``."""

    code: int
    jt: int
    jf: int
    k: int


def stmt(code, k):
    """A non-jump statement (``BPF_STMT`` macro)."""
    return BPFInstruction(code, 0, 0, k & _U32)


def jump(code, k, jt, jf):
    """A conditional jump (``BPF_JUMP`` macro)."""
    return BPFInstruction(code, jt, jf, k & _U32)


@dataclass(frozen=True)
class SeccompData:
    """The data cBPF loads from: syscall nr, arch, ip, and six u64 args."""

    nr: int
    arch: int = AUDIT_ARCH_X86_64
    instruction_pointer: int = 0
    args: tuple = (0, 0, 0, 0, 0, 0)

    def load32(self, offset):
        """32-bit little-endian load at ``offset`` into seccomp_data."""
        if offset == SECCOMP_DATA_NR:
            return self.nr & _U32
        if offset == SECCOMP_DATA_ARCH:
            return self.arch & _U32
        if offset == SECCOMP_DATA_IP_LO:
            return self.instruction_pointer & _U32
        if offset == SECCOMP_DATA_IP_HI:
            return (self.instruction_pointer >> 32) & _U32
        if SECCOMP_DATA_ARGS <= offset < SECCOMP_DATA_ARGS + 6 * 8:
            rel = offset - SECCOMP_DATA_ARGS
            arg = self.args[rel // 8] if rel // 8 < len(self.args) else 0
            if rel % 8 == 0:
                return arg & _U32
            if rel % 8 == 4:
                return (arg >> 32) & _U32
        raise KernelError("bad seccomp_data load offset %d" % offset)


class BPFProgram:
    """A validated cBPF program, executable against :class:`SeccompData`."""

    MAX_INSNS = 4096

    def __init__(self, instructions):
        instructions = list(instructions)
        if not instructions:
            raise KernelError("empty BPF program")
        if len(instructions) > self.MAX_INSNS:
            raise KernelError("BPF program too long")
        for pc, ins in enumerate(instructions):
            if ins.code & 0x07 == BPF_JMP and ins.code != BPF_JMP | BPF_JA | BPF_K:
                if pc + 1 + max(ins.jt, ins.jf) >= len(instructions):
                    raise KernelError("BPF jump out of range at %d" % pc)
        if instructions[-1].code & 0x07 not in (BPF_RET,):
            # Linux requires provable termination; we require a final RET.
            last = instructions[-1]
            if last.code & 0x07 != BPF_RET:
                raise KernelError("BPF program must end in RET")
        self.instructions = instructions

    def __len__(self):
        return len(self.instructions)

    def run(self, data):
        """Execute against ``data``; returns ``(action, instructions_run)``."""
        acc = 0
        idx_reg = 0
        scratch = [0] * 16
        pc = 0
        executed = 0
        insns = self.instructions
        while pc < len(insns):
            ins = insns[pc]
            executed += 1
            cls = ins.code & 0x07
            if cls == BPF_LD:
                mode = ins.code & 0xE0
                if mode == BPF_ABS:
                    acc = data.load32(ins.k)
                elif mode == BPF_IMM:
                    acc = ins.k
                elif mode == BPF_MEM:
                    acc = scratch[ins.k]
                else:
                    raise KernelError("bad LD mode %#x" % ins.code)
            elif cls == BPF_LDX:
                idx_reg = ins.k if (ins.code & 0xE0) == BPF_IMM else scratch[ins.k]
            elif cls == BPF_ST:
                scratch[ins.k] = acc
            elif cls == BPF_ALU:
                src = idx_reg if ins.code & BPF_X else ins.k
                op = ins.code & 0xF0
                if op == BPF_ADD:
                    acc = (acc + src) & _U32
                elif op == BPF_SUB:
                    acc = (acc - src) & _U32
                elif op == BPF_MUL:
                    acc = (acc * src) & _U32
                elif op == BPF_DIV:
                    acc = 0 if src == 0 else (acc // src) & _U32
                elif op == BPF_AND:
                    acc &= src
                elif op == BPF_OR:
                    acc |= src
                elif op == BPF_LSH:
                    acc = (acc << (src & 31)) & _U32
                elif op == BPF_RSH:
                    acc = (acc >> (src & 31)) & _U32
                else:
                    raise KernelError("bad ALU op %#x" % ins.code)
            elif cls == BPF_JMP:
                op = ins.code & 0xF0
                src = idx_reg if ins.code & BPF_X else ins.k
                if op == BPF_JA:
                    pc += ins.k + 1
                    continue
                if op == BPF_JEQ:
                    taken = acc == src
                elif op == BPF_JGT:
                    taken = acc > src
                elif op == BPF_JGE:
                    taken = acc >= src
                elif op == BPF_JSET:
                    taken = bool(acc & src)
                else:
                    raise KernelError("bad JMP op %#x" % ins.code)
                pc += 1 + (ins.jt if taken else ins.jf)
                continue
            elif cls == BPF_RET:
                value = acc if (ins.code & 0x18) == BPF_A else ins.k
                return value, executed
            else:
                raise KernelError("bad BPF class %#x" % ins.code)
            pc += 1
        raise KernelError("BPF program fell off the end")
