"""A simulated Linux kernel — the substrate BASTION's prototype runs on.

Implements just enough of Linux for the paper's experiments to be faithful:

- :mod:`repro.kernel.errno` — error numbers;
- :mod:`repro.kernel.bpf` — a classic-BPF (cBPF) instruction VM;
- :mod:`repro.kernel.seccomp` — seccomp-BPF filter attach/evaluate with
  Linux action precedence (KILL > TRAP > ERRNO > TRACE > ALLOW);
- :mod:`repro.kernel.vfs` — an in-memory filesystem with per-process fds;
- :mod:`repro.kernel.net` — sockets, listening queues, byte accounting
  (the throughput numbers of Table 3 come from here);
- :mod:`repro.kernel.mm` — mmap/mprotect region tracking (DEP + the
  memory-permission attack goals of Table 1);
- :mod:`repro.kernel.cred` — uid/gid credentials (privilege escalation);
- :mod:`repro.kernel.process` — process control blocks and register files;
- :mod:`repro.kernel.ptrace` — the tracing transport the monitor uses
  (PTRACE_GETREGS / PTRACE_PEEKDATA / process_vm_readv), with an
  "in-kernel" transport variant for the §11.2 ablation;
- :mod:`repro.kernel.kernel` — the syscall dispatcher tying it together.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, RegisterFile
from repro.kernel.seccomp import (
    SeccompFilter,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    build_action_filter,
)
from repro.kernel.ptrace import PtraceHandle
from repro.kernel import errno

__all__ = [
    "Kernel",
    "Process",
    "RegisterFile",
    "SeccompFilter",
    "SECCOMP_RET_ALLOW",
    "SECCOMP_RET_ERRNO",
    "SECCOMP_RET_KILL_PROCESS",
    "SECCOMP_RET_TRACE",
    "SECCOMP_RET_TRAP",
    "build_action_filter",
    "PtraceHandle",
    "errno",
]
