"""Per-process virtual memory regions: mmap / mprotect / munmap / brk.

This is where the *memory-permission* attack goals of Table 1 become
observable: an attack that weaponizes ``mprotect`` to make a writable region
executable flips a region to W+X here, and the kernel records the event —
both the legitimate-use statistics (Table 4) and the attack-success oracle
read this log.
"""

from dataclasses import dataclass, field

from repro.kernel import errno
from repro.vm.loader import HEAP_BASE, MMAP_BASE, STACK_TOP
from repro.vm.memory import WORD

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

MAP_PRIVATE = 2
MAP_ANONYMOUS = 0x20
MAP_SHARED = 1
MAP_FIXED = 0x10

PAGE = 4096


def _page_align(n):
    return (n + PAGE - 1) // PAGE * PAGE


@dataclass
class Region:
    """One contiguous mapping ``[start, end)`` with protection bits."""

    start: int
    end: int
    prot: int
    tag: str = ""

    def contains(self, addr):
        return self.start <= addr < self.end

    def __repr__(self):
        flags = "".join(
            bit if self.prot & mask else "-"
            for bit, mask in (("r", PROT_READ), ("w", PROT_WRITE), ("x", PROT_EXEC))
        )
        return "<Region %#x-%#x %s %s>" % (self.start, self.end, flags, self.tag)


@dataclass
class AddressSpace:
    """A process's region list plus heap/mmap bump allocators."""

    regions: list = field(default_factory=list)
    brk: int = HEAP_BASE
    mmap_next: int = MMAP_BASE

    def map_fixed(self, start, length, prot, tag=""):
        """Install a region at a fixed address (loader segments, stack)."""
        region = Region(start, start + _page_align(length), prot, tag)
        self.regions.append(region)
        return region

    def do_mmap(self, addr, length, prot, flags, tag="mmap"):
        """``mmap``: allocate (or place) a region; returns its address."""
        if length <= 0:
            return -errno.EINVAL
        length = _page_align(length)
        if flags & MAP_FIXED and addr:
            start = addr
        else:
            start = self.mmap_next
            self.mmap_next += length + PAGE  # guard gap
        self.regions.append(Region(start, start + length, prot, tag))
        return start

    def do_munmap(self, addr, length):
        length = _page_align(max(length, 1))
        end = addr + length
        kept = []
        found = False
        for region in self.regions:
            if region.end <= addr or region.start >= end:
                kept.append(region)
                continue
            found = True
            if region.start < addr:
                kept.append(Region(region.start, addr, region.prot, region.tag))
            if region.end > end:
                kept.append(Region(end, region.end, region.prot, region.tag))
        self.regions = kept
        return 0 if found else -errno.EINVAL

    def do_mprotect(self, addr, length, prot):
        """``mprotect``: split overlapping regions and update protections."""
        if addr % PAGE:
            return -errno.EINVAL
        length = _page_align(max(length, 1))
        end = addr + length
        touched = False
        out = []
        for region in self.regions:
            if region.end <= addr or region.start >= end:
                out.append(region)
                continue
            touched = True
            if region.start < addr:
                out.append(Region(region.start, addr, region.prot, region.tag))
            mid_start = max(region.start, addr)
            mid_end = min(region.end, end)
            out.append(Region(mid_start, mid_end, prot, region.tag))
            if region.end > end:
                out.append(Region(end, region.end, region.prot, region.tag))
        self.regions = out
        return 0 if touched else -errno.ENOMEM

    def do_brk(self, new_brk):
        if new_brk > self.brk:
            self.brk = new_brk
        return self.brk

    def region_at(self, addr):
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def prot_at(self, addr):
        region = self.region_at(addr)
        return region.prot if region is not None else PROT_NONE

    def is_executable(self, addr):
        return bool(self.prot_at(addr) & PROT_EXEC)

    def has_wx_region(self):
        """Any region both writable and executable (DEP defeated)?"""
        wx = PROT_WRITE | PROT_EXEC
        return any(region.prot & wx == wx for region in self.regions)


def standard_layout(image):
    """Address space for a freshly loaded image: text r-x, data rw-, stack rw-."""
    space = AddressSpace()
    from repro.vm.loader import DATA_BASE, TEXT_BASE

    space.map_fixed(
        TEXT_BASE, image.text_end - TEXT_BASE, PROT_READ | PROT_EXEC, "text"
    )
    space.map_fixed(
        DATA_BASE,
        max(image.data_end - DATA_BASE, PAGE),
        PROT_READ | PROT_WRITE,
        "data",
    )
    stack_len = 1 << 23  # 8 MiB of address space (words are sparse anyway)
    space.map_fixed(
        STACK_TOP - stack_len * WORD, stack_len * WORD, PROT_READ | PROT_WRITE, "stack"
    )
    return space
