"""An in-memory Unix-style filesystem.

Backs the workload applications: NGINX serves a static page from it, SQLite
keeps its database and journal files in it, vsftpd serves the 100 MB
download from it.  File *contents* are Python ``bytes`` on the kernel side;
the kernel's read/write handlers copy a bounded prefix into simulated
memory (data-plane elision, DESIGN.md) while charging cycle costs for the
full transfer size.
"""

import posixpath
from dataclasses import dataclass, field

from repro.kernel import errno

#: st_mode type bits (subset)
S_IFREG = 0o100000
S_IFDIR = 0o040000

#: open(2) flags (subset)
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000


@dataclass
class Inode:
    """A file or directory node."""

    kind: str  # 'file' | 'dir'
    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    data: bytes = b""
    children: dict = field(default_factory=dict)

    @property
    def size(self):
        return len(self.data) if self.kind == "file" else len(self.children)


class FileSystem:
    """The mount: a directory tree addressed by absolute paths."""

    def __init__(self):
        self.root = Inode("dir", mode=0o755)

    # -- path resolution -------------------------------------------------

    @staticmethod
    def _parts(path):
        norm = posixpath.normpath("/" + path.strip())
        return [p for p in norm.split("/") if p]

    def lookup(self, path):
        """Resolve ``path`` to an :class:`Inode`, or None."""
        node = self.root
        for part in self._parts(path):
            if node.kind != "dir":
                return None
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def _lookup_parent(self, path):
        parts = self._parts(path)
        if not parts:
            return None, None
        node = self.root
        for part in parts[:-1]:
            if node.kind != "dir":
                return None, None
            node = node.children.get(part)
            if node is None:
                return None, None
        return node, parts[-1]

    # -- operations --------------------------------------------------------

    def mkdir(self, path, mode=0o755):
        parent, name = self._lookup_parent(path)
        if parent is None or parent.kind != "dir":
            return -errno.ENOENT
        if name in parent.children:
            return -errno.EEXIST
        parent.children[name] = Inode("dir", mode=mode)
        return 0

    def makedirs(self, path):
        """Create all missing directories along ``path`` (setup helper)."""
        node = self.root
        for part in self._parts(path):
            nxt = node.children.get(part)
            if nxt is None:
                nxt = Inode("dir", mode=0o755)
                node.children[part] = nxt
            node = nxt
        return node

    def create(self, path, mode=0o644):
        parent, name = self._lookup_parent(path)
        if parent is None or parent.kind != "dir":
            return None
        node = parent.children.get(name)
        if node is None:
            node = Inode("file", mode=mode)
            parent.children[name] = node
        return node

    def write_file(self, path, data, mode=0o644):
        """Setup helper: create/overwrite a file with ``data`` bytes."""
        node = self.create(path, mode)
        if node is None:
            raise FileNotFoundError(path)
        node.data = bytes(data)
        return node

    def unlink(self, path):
        parent, name = self._lookup_parent(path)
        if parent is None or name not in parent.children:
            return -errno.ENOENT
        if parent.children[name].kind == "dir":
            return -errno.EISDIR
        del parent.children[name]
        return 0

    def rename(self, old, new):
        node = self.lookup(old)
        if node is None:
            return -errno.ENOENT
        new_parent, new_name = self._lookup_parent(new)
        if new_parent is None or new_parent.kind != "dir":
            return -errno.ENOENT
        old_parent, old_name = self._lookup_parent(old)
        del old_parent.children[old_name]
        new_parent.children[new_name] = node
        return 0

    def chmod(self, path, mode):
        node = self.lookup(path)
        if node is None:
            return -errno.ENOENT
        node.mode = (node.mode & ~0o7777) | (mode & 0o7777)
        return 0


@dataclass
class OpenFile:
    """A file description (shared offset object behind an fd)."""

    node: Inode
    flags: int = O_RDONLY
    pos: int = 0
    path: str = ""

    def read(self, count):
        if self.node.kind != "file":
            return None
        chunk = self.node.data[self.pos : self.pos + count]
        self.pos += len(chunk)
        return chunk

    def write(self, data):
        if self.node.kind != "file":
            return -errno.EISDIR
        if self.flags & O_APPEND:
            self.pos = len(self.node.data)
        buf = bytearray(self.node.data)
        end = self.pos + len(data)
        if end > len(buf):
            buf.extend(b"\x00" * (end - len(buf)))
        buf[self.pos : end] = data
        self.node.data = bytes(buf)
        self.pos = end
        return len(data)

    def seek(self, offset, whence):
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self.pos + offset
        elif whence == 2:
            new = len(self.node.data) + offset
        else:
            return -errno.EINVAL
        if new < 0:
            return -errno.EINVAL
        self.pos = new
        return new
