"""Process credentials: the privilege-escalation surface of Table 1."""

from dataclasses import dataclass

from repro.kernel import errno


@dataclass
class Credentials:
    """uid/gid state with (simplified) Linux permission rules."""

    uid: int = 0
    gid: int = 0
    euid: int = 0
    egid: int = 0

    def is_root(self):
        return self.euid == 0

    def setuid(self, uid):
        """root may become anyone; others only themselves."""
        if self.is_root():
            self.uid = self.euid = uid
            return 0
        if uid in (self.uid, self.euid):
            self.euid = uid
            return 0
        return -errno.EPERM

    def setgid(self, gid):
        if self.is_root():
            self.gid = self.egid = gid
            return 0
        if gid in (self.gid, self.egid):
            self.egid = gid
            return 0
        return -errno.EPERM

    def setreuid(self, ruid, euid):
        if not self.is_root() and not all(
            target in (self.uid, self.euid, -1) for target in (ruid, euid)
        ):
            return -errno.EPERM
        if ruid != -1:
            self.uid = ruid
        if euid != -1:
            self.euid = euid
        return 0

    def clone(self):
        return Credentials(self.uid, self.gid, self.euid, self.egid)
