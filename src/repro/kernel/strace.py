"""An strace-style syscall tracer for the simulated kernel.

Wraps a process's existing tracer (or none) and records every *dispatched*
syscall with decoded arguments — string pointees for path arguments,
flag names for protections — producing output a Linux user would recognize::

    openat(AT_FDCWD, "/etc/nginx/nginx.conf", O_RDONLY) = 3
    mmap(NULL, 16384, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0) = 0x7f0000000000

Used for debugging workloads and in DESIGN.md-level sanity checks; it is a
*kernel-side* tap (sees the truth after seccomp), not part of BASTION.
"""

from dataclasses import dataclass, field

from repro.kernel import errno
from repro.syscalls.argspec import ArgKind, argspec_for

_PROT_NAMES = ((1, "PROT_READ"), (2, "PROT_WRITE"), (4, "PROT_EXEC"))
_MAP_NAMES = ((1, "MAP_SHARED"), (2, "MAP_PRIVATE"), (0x10, "MAP_FIXED"), (0x20, "MAP_ANONYMOUS"))


def _flags(value, table, zero="0"):
    names = [name for bit, name in table if value & bit]
    return "|".join(names) if names else zero


def format_arg(proc, syscall_name, position, value):
    """Decode one argument the way strace would."""
    kind = argspec_for(syscall_name).kind(position)
    if kind in (ArgKind.EXTENDED,) and value > 0:
        return '"%s"' % proc.memory.read_cstr(value, max_slots=64)
    if syscall_name in ("mmap", "mprotect") and position == 3:
        return _flags(value, _PROT_NAMES, "PROT_NONE")
    if syscall_name == "mmap" and position == 4:
        return _flags(value, _MAP_NAMES)
    if value == 0 and position == 1 and syscall_name == "mmap":
        return "NULL"
    if value > 0x10000:
        return hex(value)
    return str(value)


def format_result(syscall_name, result):
    if result < 0:
        return "-1 %s" % errno.errno_name(-result)
    if syscall_name in ("mmap", "brk", "mremap") and result > 0x10000:
        return hex(result)
    return str(result)


@dataclass
class TraceEntry:
    """One recorded syscall."""

    name: str
    args: tuple
    rendered_args: tuple
    result: int = None

    def __str__(self):
        result = "?" if self.result is None else format_result(self.name, self.result)
        return "%s(%s) = %s" % (self.name, ", ".join(self.rendered_args), result)


@dataclass
class Strace:
    """Attachable syscall log; install with :func:`attach_strace`."""

    entries: list = field(default_factory=list)
    filter_names: frozenset = None  # None = everything

    def record(self, proc, name, args, result):
        if self.filter_names is not None and name not in self.filter_names:
            return
        nargs = argspec_for(name)
        shown = args[: max(len(nargs.kinds), len(args))]
        rendered = tuple(
            format_arg(proc, name, i + 1, value) for i, value in enumerate(shown)
        )
        self.entries.append(TraceEntry(name, tuple(args), rendered, result))

    def lines(self):
        return [str(entry) for entry in self.entries]

    def counts(self):
        out = {}
        for entry in self.entries:
            out[entry.name] = out.get(entry.name, 0) + 1
        return out

    def __str__(self):
        return "\n".join(self.lines())


def attach_strace(kernel, only=None):
    """Tap the kernel's dispatcher; returns the :class:`Strace` log.

    Decorates ``kernel.dispatch`` so every syscall (post-seccomp) is
    recorded with its decoded arguments and result.
    """
    trace = Strace(filter_names=frozenset(only) if only else None)
    original = kernel.dispatch

    def dispatch(proc, name, args):
        result = original(proc, name, args)
        trace.record(proc, name, args, result)
        return result

    kernel.dispatch = dispatch
    return trace
