"""Linux error numbers (the subset the simulated kernel returns).

Syscall handlers return ``-errno`` on failure, exactly like the real ABI.
"""

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
EBADF = 9
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOSPC = 28
ESPIPE = 29
EPIPE = 32
ENOSYS = 38
ENOTEMPTY = 39
ENOTSOCK = 88
EOPNOTSUPP = 95
EADDRINUSE = 98
ECONNREFUSED = 111

_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if name.isupper() and isinstance(value, int)
}


def errno_name(code):
    """Name of a (positive) errno value, for trace printing."""
    return _NAMES.get(code, "E%d" % code)
